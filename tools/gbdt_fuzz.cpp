// Differential fuzzer for the trainer paths.
//
// Draws random cases (dataset shape, loss, depth, RLE gating, #GPUs,
// out-of-core chunking) from a replayable 64-bit seed stream, trains each
// case through every trainer path, and checks the paths agree with the
// exact-greedy CPU reference (see src/testing/oracle.h for the comparison
// policy).  On a failure the case is shrunk to a minimal reproducer and a
// one-line replay command is printed.
//
//   gbdt_fuzz --cases 50 --start-seed 0x1234        # fuzzing sweep
//   gbdt_fuzz --seed 0xdeadbeef                     # replay one case
//   gbdt_fuzz --seed 0xdeadbeef --rows 25 --cols 4  # replay a shrunk case
//   gbdt_fuzz --hist --cases 25                     # hist_vs_exact-only sweep
//   gbdt_fuzz --serve --cases 25                    # serving-path sweep
//                                                   # (serve_vs_batch oracle)
//   gbdt_fuzz --objective --cases 25                # objective/sampling sweep
//                                                   # (seeded-sampling
//                                                   # determinism + ranking)
//   gbdt_fuzz --mgpu --cases 25                     # multi-GPU collective
//                                                   # sweep (ring/tree vs
//                                                   # the GBDT_ALLTOONE
//                                                   # hatch, bitwise)
//   gbdt_fuzz --self-test                           # fault-injection check
//   gbdt_fuzz --cases 50 --audit                    # sweep with the kernel
//                                                   # access auditor armed
//   gbdt_fuzz --audit-fault                         # seeded overlapping-write
//                                                   # fault; exits nonzero
//                                                   # when the auditor fires
//   gbdt_fuzz --race --cases 25                     # sweep with the
//                                                   # happens-before race
//                                                   # detector armed + stream
//                                                   # schedule perturbation
//   gbdt_fuzz --race-fault unordered_write          # seeded stream race;
//                                                   # exits 1 when the
//                                                   # detector fires
//
// Exit code 0: all cases pass.  1: at least one real discrepancy.  2: bad
// usage.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/access_audit.h"
#include "analysis/fault_kernels.h"
#include "analysis/hb_race.h"
#include "testing/invariants.h"
#include "testing/oracle.h"

namespace {

using gbdt::testing::FuzzCase;
using gbdt::testing::OracleResult;

struct Options {
  int cases = 50;
  std::uint64_t start_seed = 0x9d1cebab5eedull;
  std::optional<std::uint64_t> seed;  // single-case replay
  std::optional<std::int64_t> rows;
  std::optional<std::int64_t> cols;
  std::optional<int> trees;
  std::optional<int> depth;
  bool check_invariants = true;
  bool minimize = true;
  bool self_test = false;
  bool audit = false;
  bool audit_fault = false;
  bool hist_only = false;
  bool serve_only = false;
  bool race_only = false;
  bool objective_only = false;
  bool mgpu_only = false;
  std::string race_fault;  // seeded stream-race fault name
};

void usage() {
  std::cerr
      << "usage: gbdt_fuzz [options]\n"
         "  --cases N          number of random cases to run (default 50)\n"
         "  --start-seed SEED  base of the case-seed stream (hex ok)\n"
         "  --seed SEED        replay a single case from its seed\n"
         "  --rows N           override n_instances (replay of a shrunk case)\n"
         "  --cols N           override n_attributes\n"
         "  --trees N          override n_trees\n"
         "  --depth N          override depth\n"
         "  --hist             run only the hist_vs_exact leg (device\n"
         "                     histogram trainer vs the CPU reference)\n"
         "  --serve            route cases through the serving path instead:\n"
         "                     micro-batched, sharded and single-row scoring\n"
         "                     must match the offline predictor bit for bit\n"
         "  --objective        objective/sampling sweep: trivial sampling\n"
         "                     plans must be bitwise inert, seeded sampled\n"
         "                     runs must replay bit for bit and agree across\n"
         "                     trainer paths, and LambdaMART must beat the\n"
         "                     squared-error baseline on held-out NDCG@10\n"
         "  --mgpu             multi-GPU collective sweep: the ring and\n"
         "                     tree allreduce merges and feature-parallel\n"
         "                     sharding must reproduce the GBDT_ALLTOONE\n"
         "                     legacy schedule's forest, and K-shard\n"
         "                     histogram training must match the\n"
         "                     single-device histogram trainer bit for bit\n"
         "  --no-invariants    do not arm in-trainer invariant checks\n"
         "  --no-minimize      report failures without shrinking them\n"
         "  --self-test        verify the invariant checker catches injected\n"
         "                     faults, then exit\n"
         "  --audit            arm the kernel access auditor (as if\n"
         "                     GBDT_AUDIT_ACCESS=1) for the run\n"
         "  --audit-fault      run the seeded overlapping-write fault kernel\n"
         "                     under the auditor; exits 1 (with the report)\n"
         "                     when the auditor fires, 0 if it failed to\n"
         "                     fire\n"
         "  --race             arm the happens-before race detector and run\n"
         "                     the full oracle plus out-of-core stream legs:\n"
         "                     the GBDT_SYNC_STREAMS hatch and seeded\n"
         "                     schedule perturbations must be bitwise\n"
         "                     identical to the async pipeline\n"
         "  --race-fault NAME  run one seeded stream-race fault under the\n"
         "                     detector; exits 1 (with the report) when it\n"
         "                     fires, 0 if it failed to fire.  NAME is one\n"
         "                     of unordered_write, missing_event_wait,\n"
         "                     copy_overlaps_kernel, or event_wait_fixed\n"
         "                     (the negative control: must NOT fire)\n";
}

std::uint64_t parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);  // base 0: accepts 0x-prefixed hex
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--cases") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.cases = std::atoi(v);
    } else if (a == "--start-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.start_seed = parse_u64(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = parse_u64(v);
    } else if (a == "--rows") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.rows = std::atoll(v);
    } else if (a == "--cols") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.cols = std::atoll(v);
    } else if (a == "--trees") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.trees = std::atoi(v);
    } else if (a == "--depth") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.depth = std::atoi(v);
    } else if (a == "--hist") {
      opt.hist_only = true;
    } else if (a == "--serve") {
      opt.serve_only = true;
    } else if (a == "--objective") {
      opt.objective_only = true;
    } else if (a == "--mgpu") {
      opt.mgpu_only = true;
    } else if (a == "--no-invariants") {
      opt.check_invariants = false;
    } else if (a == "--no-minimize") {
      opt.minimize = false;
    } else if (a == "--self-test") {
      opt.self_test = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--audit-fault") {
      opt.audit_fault = true;
    } else if (a == "--race") {
      opt.race_only = true;
    } else if (a == "--race-fault") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.race_fault = v;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << "\n";
      return false;
    }
  }
  if (opt.cases < 0) {
    std::cerr << "--cases must be >= 0\n";
    return false;
  }
  if ((opt.rows && *opt.rows < 1) || (opt.cols && *opt.cols < 1) ||
      (opt.trees && *opt.trees < 1) || (opt.depth && *opt.depth < 1)) {
    std::cerr << "--rows/--cols/--trees/--depth must be >= 1\n";
    return false;
  }
  return true;
}

FuzzCase build_case(std::uint64_t seed, const Options& opt) {
  FuzzCase c = FuzzCase::from_seed(seed);
  if (opt.rows) c.n_instances = *opt.rows;
  if (opt.cols) c.n_attributes = *opt.cols;
  if (opt.trees) c.n_trees = *opt.trees;
  if (opt.depth) c.depth = *opt.depth;
  return c;
}

/// Runs one case; on failure minimizes and prints the repro line.  Returns
/// true when the case passes.
bool run_case(const FuzzCase& c, const Options& opt, int index, int total) {
  const OracleResult r =
      opt.hist_only ? gbdt::testing::run_hist_oracle(c, opt.check_invariants)
      : opt.serve_only
          ? gbdt::testing::run_serve_oracle(c, opt.check_invariants)
      : opt.objective_only
          ? gbdt::testing::run_objective_oracle(c, opt.check_invariants)
      : opt.mgpu_only
          ? gbdt::testing::run_mgpu_oracle(c, opt.check_invariants)
      : opt.race_only
          ? gbdt::testing::run_race_oracle(c, opt.check_invariants)
          : run_oracle(c, opt.check_invariants);
  std::cout << "[" << index << "/" << total << "] "
            << (r.pass() ? "PASS" : "FAIL") << " " << c.describe();
  if (r.pass() && r.ties() > 0) {
    std::cout << " (" << r.ties() << " exact-gain tie"
              << (r.ties() > 1 ? "s" : "") << ")";
  }
  std::cout << "\n";
  if (r.pass()) return true;

  std::cout << r.failure_report();
  FuzzCase repro = c;
  // The minimizer re-runs whichever oracle failed, so the shrunk case still
  // fails the same way.  --hist failures are reported unshrunk (the repro
  // line still replays exactly).
  if (opt.minimize && !opt.hist_only) {
    const bool check = opt.check_invariants;
    if (opt.serve_only) {
      repro = gbdt::testing::minimize_case_with(c, [check](const FuzzCase& s) {
        return !gbdt::testing::run_serve_oracle(s, check).pass();
      });
    } else if (opt.objective_only) {
      repro = gbdt::testing::minimize_case_with(c, [check](const FuzzCase& s) {
        return !gbdt::testing::run_objective_oracle(s, check).pass();
      });
    } else if (opt.mgpu_only) {
      repro = gbdt::testing::minimize_case_with(c, [check](const FuzzCase& s) {
        return !gbdt::testing::run_mgpu_oracle(s, check).pass();
      });
    } else if (opt.race_only) {
      repro = gbdt::testing::minimize_case_with(c, [check](const FuzzCase& s) {
        return !gbdt::testing::run_race_oracle(s, check).pass();
      });
    } else {
      repro = gbdt::testing::minimize_case(c, opt.check_invariants);
    }
    if (repro.n_instances != c.n_instances ||
        repro.n_attributes != c.n_attributes || repro.n_trees != c.n_trees ||
        repro.depth != c.depth) {
      std::cout << "  minimized to: " << repro.describe() << "\n";
    }
  }
  // Ready-to-paste replay: the mode and analysis flags must ride along or
  // the repro runs a different (likely passing) configuration.
  std::string flags = opt.serve_only       ? " --serve"
                      : opt.hist_only      ? " --hist"
                      : opt.objective_only ? " --objective"
                      : opt.mgpu_only      ? " --mgpu"
                      : opt.race_only      ? " --race"
                                           : "";
  if (opt.audit) flags += " --audit";
  if (!opt.check_invariants) flags += " --no-invariants";
  std::cout << "  repro: " << repro.repro_command() << flags << "\n";
  return false;
}

/// Fault-injection self-test: armed faults must be caught by the invariant
/// checker, and must be inert while checking is disabled.
int self_test() {
  // A case that exercises the sparse partition on every leg: dense-ish,
  // multiple levels, two trees.
  FuzzCase c = FuzzCase::from_seed(0x5e1f7e57ull);
  c.n_instances = 120;
  c.n_attributes = 6;
  c.depth = 3;
  c.n_trees = 2;
  auto& fi = gbdt::testing::fault_injection();
  int failures = 0;

  auto expect = [&](const char* what, bool ok) {
    std::cout << "self-test: " << what << ": " << (ok ? "ok" : "FAILED")
              << "\n";
    if (!ok) ++failures;
  };

  {
    fi = {};
    fi.break_partition_order = true;
    const OracleResult r = run_oracle(c, /*check_invariants=*/true);
    bool caught = false;
    for (const auto& leg : r.legs) caught |= leg.invariant_violation;
    expect("partition-order fault caught by invariant checker",
           caught && !r.pass());
  }
  {
    fi = {};
    fi.break_child_counts = true;
    const OracleResult r = run_oracle(c, /*check_invariants=*/true);
    bool caught = false;
    for (const auto& leg : r.legs) caught |= leg.invariant_violation;
    expect("child-count fault caught by conservation check",
           caught && !r.pass());
  }
  {
    fi = {};
    fi.break_hist_subtraction = true;
    const OracleResult r =
        gbdt::testing::run_hist_oracle(c, /*check_invariants=*/true);
    bool caught = false;
    for (const auto& leg : r.legs) caught |= leg.invariant_violation;
    expect("hist-subtraction fault caught by bitwise self-check",
           caught && !r.pass());
  }
  {
    fi = {};
    fi.serve_torn_swap = true;
    const OracleResult r =
        gbdt::testing::run_serve_oracle(c, /*check_invariants=*/true);
    bool caught = false;
    for (const auto& leg : r.legs) caught |= leg.invariant_violation;
    expect("torn-swap fault caught by snapshot fingerprint check",
           caught && !r.pass());
  }
  {
    fi = {};
    fi.break_partition_order = true;
    const OracleResult r = run_oracle(c, /*check_invariants=*/false);
    expect("armed fault inert while checks disabled", r.pass());
  }
  {
    fi = {};
    fi.serve_torn_swap = true;
    const OracleResult r =
        gbdt::testing::run_serve_oracle(c, /*check_invariants=*/false);
    expect("armed torn-swap fault inert while checks disabled", r.pass());
  }
  {
    fi = {};
    fi.break_hist_subtraction = true;
    const OracleResult r =
        gbdt::testing::run_hist_oracle(c, /*check_invariants=*/false);
    expect("armed hist fault inert while checks disabled", r.pass());
  }
  {
    fi = {};
    const OracleResult r = run_oracle(c, /*check_invariants=*/true);
    expect("clean run passes with checks armed", r.pass());
  }
  {
    fi = {};
    const OracleResult r =
        gbdt::testing::run_serve_oracle(c, /*check_invariants=*/true);
    expect("clean serving run passes with checks armed", r.pass());
  }
  fi = {};
  return failures == 0 ? 0 : 1;
}

/// Seeded-fault check for the access auditor: the overlapping-scatter kernel
/// must be detected (exit 1 with the kernel/buffer/block report — registered
/// in CTest with WILL_FAIL so a silent pass fails the suite).  Runs on a
/// single-worker device: the fault performs real overlapping writes, which
/// serial block execution keeps benign on the host while the declarations
/// still violate the contract.
int audit_fault() {
  gbdt::analysis::set_audit_enabled(true);
  gbdt::device::Device dev(gbdt::device::DeviceConfig::titan_x_pascal(),
                           /*host_workers=*/1);
  try {
    gbdt::analysis::run_overlapping_scatter_fault(dev);
  } catch (const gbdt::analysis::AuditViolation& e) {
    std::cerr << "audit-fault detected as intended:\n  " << e.what() << "\n";
    return 1;
  }
  std::cerr << "audit-fault: auditor did NOT fire on the seeded "
               "overlapping-write fault\n";
  return 0;
}

/// Seeded-fault check for the happens-before race detector: each stream
/// mis-use must be detected (exit 1 with the two-op report — registered in
/// CTest with WILL_FAIL so a silent pass fails the suite).  The
/// event_wait_fixed variant is the negative control: correctly ordered, the
/// detector must stay silent and the run exits 0.  Single-worker device:
/// the faults perform their conflicting accesses for real, which serial
/// execution keeps benign on the host while the ordering is still wrong.
int race_fault(const std::string& name) {
  gbdt::analysis::set_race_detect_enabled(true);
  gbdt::device::set_stream_async_enabled(true);
  gbdt::device::Device dev(gbdt::device::DeviceConfig::titan_x_pascal(),
                           /*host_workers=*/1);
  try {
    if (name == "unordered_write") {
      gbdt::analysis::run_race_unordered_write(dev);
    } else if (name == "missing_event_wait") {
      gbdt::analysis::run_race_missing_event_wait(dev);
    } else if (name == "copy_overlaps_kernel") {
      gbdt::analysis::run_race_copy_overlaps_kernel(dev);
    } else if (name == "event_wait_fixed") {
      gbdt::analysis::run_race_event_wait_fixed(dev);
    } else {
      std::cerr << "unknown --race-fault '" << name
                << "' (try unordered_write, missing_event_wait, "
                   "copy_overlaps_kernel, event_wait_fixed)\n";
      return 2;
    }
  } catch (const gbdt::analysis::RaceViolation& e) {
    std::cerr << "race-fault detected as intended:\n  " << e.what() << "\n";
    return 1;
  }
  if (name == "event_wait_fixed") {
    std::cerr << "race-fault: event-ordered program is race-free, as "
                 "intended\n";
    return 0;
  }
  std::cerr << "race-fault: detector did NOT fire on " << name << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.audit) gbdt::analysis::set_audit_enabled(true);
  if (opt.audit_fault) return audit_fault();
  if (!opt.race_fault.empty()) return race_fault(opt.race_fault);
  if (opt.self_test) return self_test();

  if (opt.seed) {
    const FuzzCase c = build_case(*opt.seed, opt);
    return run_case(c, opt, 1, 1) ? 0 : 1;
  }

  int failures = 0;
  std::uint64_t stream = opt.start_seed;
  for (int i = 0; i < opt.cases; ++i) {
    const std::uint64_t seed = gbdt::testing::splitmix64(stream);
    const FuzzCase c = build_case(seed, opt);
    if (!run_case(c, opt, i + 1, opt.cases)) ++failures;
  }
  std::cout << (opt.cases - failures) << "/" << opt.cases << " cases passed\n";
  return failures == 0 ? 0 : 1;
}
