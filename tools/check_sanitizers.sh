#!/usr/bin/env bash
# Builds the repository with AddressSanitizer + UndefinedBehaviorSanitizer
# (the GBDT_SANITIZE CMake option) and runs the test suite under it.
#
#   tools/check_sanitizers.sh             # unit + property tests
#   tools/check_sanitizers.sh -L unit     # any extra args go to ctest
#
# The sanitized tree lives in build-asan/ next to the regular build/.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" -DGBDT_SANITIZE=ON
cmake --build "${build_dir}" -j

# halt_on_error keeps a sanitizer report from being drowned out by later
# tests; detect_leaks stays on (the default) to catch allocator misuse in
# the simulated-device buffers.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cd "${build_dir}"
ctest --output-on-failure "$@"
