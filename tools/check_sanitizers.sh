#!/usr/bin/env bash
# Builds the repository under a sanitizer (the GBDT_SANITIZE CMake option)
# and runs the test suite with it.
#
#   tools/check_sanitizers.sh                      # ASan+UBSan, all tests
#   tools/check_sanitizers.sh -L unit              # extra args go to ctest
#   GBDT_SANITIZE=thread tools/check_sanitizers.sh # ThreadSanitizer
#
# The ASan+UBSan tree lives in build-asan/, the TSan tree in build-tsan/,
# both next to the regular build/.  The TSan lane runs the unit, property,
# bench_smoke, hist_smoke, serve_smoke, race_smoke, objective_smoke and
# mgpu_smoke labels (the
# concurrency-relevant suites: every kernel launch exercises the thread
# pool, the bench smoke drives the observability hooks — trace spans,
# metrics shards — from those workers, the hist smoke hammers the privatized
# histogram build/merge kernels whose block-disjoint partial tiles are
# exactly the kind of sharing TSan would catch if they overlapped, the serve
# smoke runs the serving layer's producer/worker/hot-swap machinery — the
# request queue, the engine shared_ptr swap and the per-shard device locks —
# under real threads, the race smoke runs the happens-before detector's
# fault-injection triple plus the schedule-perturbation sweep of the
# double-buffered out-of-core pipeline, and the objective smoke trains
# sampled and ranking cases through every trainer path — the gradient
# masking and LambdaMART kernels run on the same worker pool, and the mgpu
# smoke drives K per-shard devices — each with its own worker pool and comm
# stream — through the ring/tree collectives and their event edges
# concurrently); audit-mode
# and race-mode
# fault-injection tests run their racy kernels on single-worker devices
# precisely so this lane stays clean.  The test_serve hot-swap race test
# (N producers x M publishes) also lives in the unit label, so both lanes
# cover it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${GBDT_SANITIZE:-address}"

if [[ "${mode}" == "thread" ]]; then
  build_dir="${repo_root}/build-tsan"
  cmake -B "${build_dir}" -S "${repo_root}" -DGBDT_SANITIZE=thread
  cmake --build "${build_dir}" -j

  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

  cd "${build_dir}"
  if [[ $# -gt 0 ]]; then
    ctest --output-on-failure "$@"
  else
    ctest --output-on-failure -L 'unit|property|bench_smoke|hist_smoke|serve_smoke|race_smoke|objective_smoke|mgpu_smoke'
  fi
else
  build_dir="${repo_root}/build-asan"
  cmake -B "${build_dir}" -S "${repo_root}" -DGBDT_SANITIZE=ON
  cmake --build "${build_dir}" -j

  # halt_on_error keeps a sanitizer report from being drowned out by later
  # tests; detect_leaks stays on (the default) to catch allocator misuse in
  # the simulated-device buffers.
  export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

  cd "${build_dir}"
  ctest --output-on-failure "$@"
fi
