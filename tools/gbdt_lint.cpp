// In-tree convention linter for the simulated-GPU codebase.
//
// Scans every .h/.cpp under the given directories (default: src/) and
// enforces the kernel and memory conventions the access auditor relies on:
//
//   1. Headers use `#pragma once`.
//   2. No raw `new` / `delete` / `malloc` / `free` in src/ — device memory
//      goes through DeviceAllocator, host memory through containers.
//      (`= delete`d functions and the DeviceBuffer::free() member are fine.)
//   3. `run_chunks` is called only by the Device launch wrapper — kernels
//      must go through the labeled `dev.launch(...)` path so the auditor
//      and the timeline see them.
//   4. Every `.launch(` site passes a label as its first argument: a string
//      literal, or the `name` parameter of a labeled primitive wrapper.
//   5. Inside a launch region, assignment or increment of an identifier
//      that is not declared inside the region (i.e. mutation of captured
//      shared state that the per-element auditor cannot see) requires a
//      `// block-disjoint:` justification near the launch.
//   6. Every `obs::ScopedSpan` is constructed with a string-literal name, so
//      trace reports stay greppable and span names form a closed vocabulary.
//      A dynamic name needs a `// span-name-ok:` justification near the
//      construction.  (The obs/trace.h declarations themselves are exempt.)
//   7. The fused find-split wrappers (primitives/fused_split.h) label every
//      internal pass with a `fused_`-prefixed literal; the per-call phase-1
//      and argmax launches take the caller's `name` parameter.  Rules 4/5
//      apply to these launches like any other — the wrappers get no
//      exemption, only the extra prefix check.
//   8. The histogram kernels (primitives/histogram.h) label every launch
//      with a `hist_`-prefixed literal, same rationale and same
//      no-exemption policy as rule 7.
//   9. The serving layer (src/serve/) labels every launch and names every
//      `obs::ScopedSpan` with a `serve_`-prefixed literal, so request-path
//      device work is separable from training in traces, metrics and audit
//      reports.  Same no-exemption policy as rules 7/8.
//  10. Stream-aware async ops: every `launch_async` / `copy_to_device_async`
//      / `copy_to_host_async` call site labels itself with a `stream_`-
//      prefixed literal (so multi-stream work is separable in traces and
//      race reports), and every `wait_event` call carries a `// hb: <edge>`
//      comment nearby naming the happens-before edge it establishes.  The
//      device layer itself (device_context.h) and the race detector
//      (hb_race.*) are exempt — they define the machinery.
//  11. The objective/sampling layer (src/objective/) labels every launch
//      with an `obj_`- or `sample_`-prefixed literal and names every
//      `obs::ScopedSpan` with an `objective_` or `sampling_` prefix, so
//      gradient production and mask work stay separable in traces and
//      audit reports.  The layer also bans unseeded randomness sources
//      (`std::random_device`, `rand`, `srand`, `random_shuffle`,
//      `time(nullptr)`): every draw must derive from
//      GBDTParam::sampling_seed via splitmix64, or sampled forests stop
//      being bitwise-reproducible across trainer paths.
//  12. The multi-GPU collectives (src/multigpu/allreduce.h) stay greppable
//      under `comm_`: every `allreduce<...>(` invocation passes a
//      `comm_`-prefixed string-literal tag (the modeled wire legs derive
//      their labels from it, so comm traffic is separable from compute in
//      traces and race reports), and inside src/multigpu/ every direct
//      `peer_transfer_async(` site either labels itself with a `comm_`- or
//      `stream_`-prefixed literal or forwards the collective's `label`
//      parameter (the enqueue_leg machinery).
//
// Comments and string literals are blanked (length-preserving) before any
// rule other than the justification search runs, so prose never trips the
// scanner.  The mutation rule is a heuristic: subscripted stores (`x[i] =`)
// are exempt because the dynamic auditor checks them element-wise.
//
// Exit status: 0 when clean, 1 with one finding per line on stderr.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line;
  std::string message;
};

std::vector<Finding> g_findings;

void report(const std::string& file, std::size_t line, std::string msg) {
  g_findings.push_back({file, line, std::move(msg)});
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// Blank comments, string literals and char literals with spaces, keeping
/// offsets and line numbers identical to the raw text.
std::string strip(const std::string& in) {
  std::string out = in;
  enum class St { Code, Line, Block, Str, Chr };
  St st = St::Code;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && next == '/') {
          st = St::Line;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case St::Block:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && next != '\n') out[++i] = ' ';
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && next != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Best-effort "is `name` declared inside this region": matches
/// `auto name`, builtin-type name, or `UpperCamel name` (custom types),
/// each optionally via reference/pointer.  Lambda parameters match too.
bool declared_in(const std::string& region, const std::string& name) {
  const std::string decl =
      "(?:\\bauto\\b|\\b(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|int|long|"
      "short|bool|float|double|char|unsigned)\\b|\\b[A-Z]\\w*\\b)"
      "\\s*(?:<[^<>;]*>)?\\s*[&*]?\\s*\\b" +
      name + "\\b";
  if (std::regex_search(region, std::regex(decl))) return true;
  // Later declarator in a comma list: `std::int64_t lo = a, name = b;`.
  const std::string comma_decl = ",\\s*\\b" + name + "\\b\\s*(?:=|;|\\{)";
  return std::regex_search(region, std::regex(comma_decl));
}

/// Rule 5: captured-state mutation inside launch regions.
void check_region_mutations(const std::string& file, const std::string& raw,
                            const std::string& code, std::size_t region_lo,
                            std::size_t region_hi) {
  const std::string region = code.substr(region_lo, region_hi - region_lo);

  // Justification window: a few lines above the launch through its end.
  std::size_t window_lo = region_lo;
  for (int back = 0; back < 6 && window_lo > 0; ++back) {
    std::size_t prev = raw.rfind('\n', window_lo - 1);
    if (prev == std::string::npos) {
      window_lo = 0;
      break;
    }
    window_lo = prev;
  }
  const bool justified =
      raw.substr(window_lo, region_hi - window_lo).find("block-disjoint:") !=
      std::string::npos;
  if (justified) return;

  static const std::regex assign(
      R"(([A-Za-z_]\w*)((?:\.[A-Za-z_]\w*)*)\s*(\+\+|--|\+=|-=|\*=|/=|\|=|&=|\^=|=(?!=)))");
  for (auto it = std::sregex_iterator(region.begin(), region.end(), assign);
       it != std::sregex_iterator(); ++it) {
    const auto& m = *it;
    const std::size_t at = static_cast<std::size_t>(m.position(0));
    // Root of the LHS must start the expression: not a member, subscript
    // result, or part of a longer identifier.
    if (at > 0) {
      const char prev = region[at - 1];
      if (is_ident(prev) || prev == '.' || prev == ']' || prev == '>') {
        continue;
      }
    }
    const std::string root = m[1].str();
    if (root == "b") continue;  // BlockCtx accounting calls never match anyway
    if (declared_in(region, root)) continue;
    report(file, line_of(code, region_lo + at),
           "mutation of captured '" + root +
               "' inside a kernel without a `// block-disjoint:` "
               "justification near the launch");
  }
  // Prefix increment/decrement of a bare identifier.
  static const std::regex prefix(R"((\+\+|--)\s*([A-Za-z_]\w*)\b\s*([^\[\w]|$))");
  for (auto it = std::sregex_iterator(region.begin(), region.end(), prefix);
       it != std::sregex_iterator(); ++it) {
    const auto& m = *it;
    const std::string root = m[2].str();
    if (declared_in(region, root)) continue;
    report(file, line_of(code, region_lo + static_cast<std::size_t>(m.position(0))),
           "increment of captured '" + root +
               "' inside a kernel without a `// block-disjoint:` "
               "justification near the launch");
  }
}

void check_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string raw = ss.str();
  const std::string code = strip(raw);
  const std::string file = path.generic_string();
  const std::string fname = path.filename().generic_string();

  // Rule 1: headers use #pragma once.
  if (path.extension() == ".h" &&
      raw.find("#pragma once") == std::string::npos) {
    report(file, 1, "header without `#pragma once`");
  }

  // Rule 2: raw allocation primitives.  `= delete`d members are blanked
  // first; `.free()` / `->free()` member calls never match the \bfree\b
  // word-boundary check below because we require call position and no
  // member access before it.
  {
    std::string mem = code;
    static const std::regex deleted(R"(=\s*delete\b)");
    mem = std::regex_replace(mem, deleted, "         ");
    static const std::regex raw_alloc(
        R"(\b(new|delete|malloc|calloc|realloc|free)\b)");
    for (auto it = std::sregex_iterator(mem.begin(), mem.end(), raw_alloc);
         it != std::sregex_iterator(); ++it) {
      const auto& m = *it;
      const auto at = static_cast<std::size_t>(m.position(0));
      const std::string word = m[1].str();
      if (word == "malloc" || word == "calloc" || word == "realloc" ||
          word == "free") {
        // Member calls (buffer.free()) and declarations are fine; only a
        // free-function call position counts.
        std::size_t before = at;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(mem[before - 1]))) {
          --before;
        }
        if (before > 0 &&
            (mem[before - 1] == '.' ||
             (before > 1 && mem[before - 2] == '-' && mem[before - 1] == '>') ||
             (before > 1 && mem[before - 2] == ':' && mem[before - 1] == ':'))) {
          continue;
        }
        std::size_t after = at + word.size();
        while (after < mem.size() &&
               std::isspace(static_cast<unsigned char>(mem[after]))) {
          ++after;
        }
        if (after >= mem.size() || mem[after] != '(') continue;
        // libc free/malloc always take arguments: an empty argument list is
        // a member declaration or an unqualified member call.
        std::size_t arg = after + 1;
        while (arg < mem.size() &&
               std::isspace(static_cast<unsigned char>(mem[arg]))) {
          ++arg;
        }
        if (arg < mem.size() && mem[arg] == ')') continue;
      }
      report(file, line_of(code, at),
             "raw `" + word + "` — use DeviceAllocator / standard containers");
    }
  }

  // Rule 3: run_chunks stays inside the device launch machinery.
  {
    const bool allowed = file.find("src/device/thread_pool.") !=
                             std::string::npos ||
                         fname == "device_context.h";
    if (!allowed) {
      const std::size_t at = code.find("run_chunks");
      if (at != std::string::npos) {
        report(file, line_of(code, at),
               "direct `run_chunks` use — launch kernels through "
               "`dev.launch(\"label\", ...)`");
      }
    }
  }

  // Rules 4 + 5: launch sites.
  static const std::regex launch_re(R"(\.\s*launch\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), launch_re);
       it != std::sregex_iterator(); ++it) {
    const auto open = static_cast<std::size_t>(it->position(0)) +
                      static_cast<std::size_t>(it->length(0)) - 1;
    // First argument: a string literal (blanked to `"..."` shells by
    // strip(), so the quote survives) or the `name` identifier of a
    // labeled wrapper.
    std::size_t a = open + 1;
    while (a < code.size() &&
           std::isspace(static_cast<unsigned char>(code[a]))) {
      ++a;
    }
    const bool labeled =
        a < code.size() &&
        (code[a] == '"' ||
         (code.compare(a, 4, "name") == 0 && !is_ident(code[a + 4])));
    if (!labeled) {
      report(file, line_of(code, open),
             "`.launch(` without a label as first argument");
    }
    // Rule 7: the fused find-split wrappers label their internal passes
    // with a `fused_` prefix (the per-call phase-1 / argmax launches take
    // the caller's `name` parameter), so the whole family stays greppable
    // in trace and audit reports.  Literal contents live in `raw` — strip()
    // blanks them in `code`.
    if (fname == "fused_split.h" && labeled && code[a] == '"' &&
        raw.compare(a + 1, 6, "fused_") != 0) {
      report(file, line_of(code, open),
             "fused_split.h launch label without `fused_` prefix");
    }
    // Rule 8: the histogram kernel family (primitives/histogram.h) keeps
    // the same greppable-prefix contract with `hist_`.
    if (fname == "histogram.h" && labeled && code[a] == '"' &&
        raw.compare(a + 1, 5, "hist_") != 0) {
      report(file, line_of(code, open),
             "histogram.h launch label without `hist_` prefix");
    }
    // Rule 9: serving-layer launches keep the contract with `serve_`.
    if (file.find("/serve/") != std::string::npos && labeled &&
        code[a] == '"' && raw.compare(a + 1, 6, "serve_") != 0) {
      report(file, line_of(code, open),
             "src/serve/ launch label without `serve_` prefix");
    }
    // Rule 11: objective-layer launches keep the contract with `obj_` /
    // `sample_` (gradient kernels vs. mask kernels).
    if (file.find("/objective/") != std::string::npos && labeled &&
        code[a] == '"' && raw.compare(a + 1, 4, "obj_") != 0 &&
        raw.compare(a + 1, 7, "sample_") != 0) {
      report(file, line_of(code, open),
             "src/objective/ launch label without `obj_` or `sample_` "
             "prefix");
    }
    // Region end: matching close paren.
    int depth = 1;
    std::size_t end = open + 1;
    while (end < code.size() && depth > 0) {
      if (code[end] == '(') ++depth;
      if (code[end] == ')') --depth;
      ++end;
    }
    check_region_mutations(file, raw, code, open, end);
  }

  // Rule 10: async op labels + wait_event justification.  The device layer
  // and the race detector define the machinery and are exempt.
  if (fname != "device_context.h" && fname != "hb_race.h" &&
      fname != "hb_race.cpp") {
    static const std::regex async_re(
        R"([.>]\s*(launch_async|copy_to_device_async|copy_to_host_async)\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), async_re);
         it != std::sregex_iterator(); ++it) {
      const auto open = static_cast<std::size_t>(it->position(0)) +
                        static_cast<std::size_t>(it->length(0)) - 1;
      std::size_t a = open + 1;
      while (a < code.size() &&
             std::isspace(static_cast<unsigned char>(code[a]))) {
        ++a;
      }
      // Literal contents live in `raw` — strip() blanks them in `code`.
      const bool labeled = a < code.size() && code[a] == '"' &&
                           raw.compare(a + 1, 7, "stream_") == 0;
      if (!labeled) {
        report(file, line_of(code, open),
               "`" + it->str(1) +
                   "(` without a `stream_`-prefixed label as first argument");
      }
    }
    static const std::regex wait_re(R"([.>]\s*wait_event\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), wait_re);
         it != std::sregex_iterator(); ++it) {
      const auto at = static_cast<std::size_t>(it->position(0));
      // Justification window: a few lines above the call through the end of
      // its line — a `// hb: <edge>` comment must name the edge this wait
      // establishes.
      std::size_t window_lo = at;
      for (int back = 0; back < 6 && window_lo > 0; ++back) {
        const std::size_t prev = raw.rfind('\n', window_lo - 1);
        if (prev == std::string::npos) {
          window_lo = 0;
          break;
        }
        window_lo = prev;
      }
      std::size_t window_hi = raw.find('\n', at);
      if (window_hi == std::string::npos) window_hi = raw.size();
      if (raw.substr(window_lo, window_hi - window_lo).find("hb:") !=
          std::string::npos) {
        continue;
      }
      report(file, line_of(code, at),
             "`wait_event` without a `// hb: <edge>` justification naming "
             "the happens-before edge it establishes");
    }
  }

  // Rule 11: no unseeded randomness in the objective/sampling layer — the
  // masks must replay bitwise from GBDTParam::sampling_seed alone.
  if (file.find("/objective/") != std::string::npos) {
    static const std::regex rng_re(
        R"(\brandom_device\b|\brand\s*\(|\bsrand\s*\(|\brandom_shuffle\b|\btime\s*\(\s*nullptr\s*\))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), rng_re);
         it != std::sregex_iterator(); ++it) {
      report(file, line_of(code, static_cast<std::size_t>(it->position(0))),
             "unseeded randomness in src/objective/ — derive every draw "
             "from GBDTParam::sampling_seed via splitmix64");
    }
  }

  // Rule 12: multi-GPU collective labels stay greppable under `comm_`.
  {
    static const std::regex coll_re(R"(\ballreduce\s*<[^;(]*>\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), coll_re);
         it != std::sregex_iterator(); ++it) {
      const auto open = static_cast<std::size_t>(it->position(0)) +
                        static_cast<std::size_t>(it->length(0)) - 1;
      std::size_t a = open + 1;
      while (a < code.size() &&
             std::isspace(static_cast<unsigned char>(code[a]))) {
        ++a;
      }
      // Literal contents live in `raw` — strip() blanks them in `code`.
      const bool ok = a < code.size() && code[a] == '"' &&
                      raw.compare(a + 1, 5, "comm_") == 0;
      if (!ok) {
        report(file, line_of(code, open),
               "`allreduce<...>(` without a `comm_`-prefixed label as first "
               "argument");
      }
    }
    if (file.find("/multigpu/") != std::string::npos) {
      static const std::regex peer_re(R"([.>]\s*peer_transfer_async\s*\()");
      for (auto it = std::sregex_iterator(code.begin(), code.end(), peer_re);
           it != std::sregex_iterator(); ++it) {
        const auto open = static_cast<std::size_t>(it->position(0)) +
                          static_cast<std::size_t>(it->length(0)) - 1;
        std::size_t a = open + 1;
        while (a < code.size() &&
               std::isspace(static_cast<unsigned char>(code[a]))) {
          ++a;
        }
        const bool literal_ok = a < code.size() && code[a] == '"' &&
                                (raw.compare(a + 1, 5, "comm_") == 0 ||
                                 raw.compare(a + 1, 7, "stream_") == 0);
        const bool forwards_label =
            a + 5 < code.size() && code.compare(a, 5, "label") == 0 &&
            !is_ident(code[a + 5]);
        if (!literal_ok && !forwards_label) {
          report(file, line_of(code, open),
                 "src/multigpu/ `peer_transfer_async(` without a `comm_`/"
                 "`stream_`-prefixed label (or the forwarded `label` "
                 "parameter) as first argument");
        }
      }
    }
  }

  // Rule 6: ScopedSpan names are string literals (declaration site exempt).
  if (fname != "trace.h" && fname != "trace.cpp") {
    static const std::regex span_re(R"(\bScopedSpan\b)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), span_re);
         it != std::sregex_iterator(); ++it) {
      std::size_t j = static_cast<std::size_t>(it->position(0)) +
                      static_cast<std::size_t>(it->length(0));
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      // Optional variable name of a declaration.
      if (j < code.size() && is_ident(code[j]) ) {
        while (j < code.size() && is_ident(code[j])) ++j;
        while (j < code.size() &&
               std::isspace(static_cast<unsigned char>(code[j]))) {
          ++j;
        }
      }
      if (j >= code.size() || (code[j] != '(' && code[j] != '{')) continue;
      const std::size_t open_at = j;
      ++j;
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      if (j < code.size() && code[j] == '"') {
        // Rule 9: serving-layer spans carry the `serve_` prefix so the
        // request path stays separable from training in trace reports.
        if (file.find("/serve/") != std::string::npos &&
            raw.compare(j + 1, 6, "serve_") != 0) {
          report(file, line_of(code, j),
                 "src/serve/ ScopedSpan name without `serve_` prefix");
        }
        // Rule 11: objective-layer spans carry `objective_` / `sampling_`.
        if (file.find("/objective/") != std::string::npos &&
            raw.compare(j + 1, 10, "objective_") != 0 &&
            raw.compare(j + 1, 9, "sampling_") != 0) {
          report(file, line_of(code, j),
                 "src/objective/ ScopedSpan name without `objective_` or "
                 "`sampling_` prefix");
        }
        continue;
      }
      // Justification window: a few lines above through the closing paren.
      std::size_t end = open_at + 1;
      int depth = 1;
      const char close = code[open_at] == '(' ? ')' : '}';
      const char open_ch = code[open_at];
      while (end < code.size() && depth > 0) {
        if (code[end] == open_ch) ++depth;
        if (code[end] == close) --depth;
        ++end;
      }
      std::size_t window_lo = open_at;
      for (int back = 0; back < 6 && window_lo > 0; ++back) {
        const std::size_t prev = raw.rfind('\n', window_lo - 1);
        if (prev == std::string::npos) {
          window_lo = 0;
          break;
        }
        window_lo = prev;
      }
      if (raw.substr(window_lo, end - window_lo).find("span-name-ok:") !=
          std::string::npos) {
        continue;
      }
      report(file, line_of(code, open_at),
             "ScopedSpan name must be a string literal (or add a "
             "`// span-name-ok:` justification)");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back("src");

  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::fprintf(stderr, "gbdt_lint: no such path: %s\n",
                   root.generic_string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp") check_file(entry.path());
    }
  }

  for (const auto& f : g_findings) {
    std::fprintf(stderr, "%s:%zu: %s\n", f.file.c_str(), f.line, f.message.c_str());
  }
  if (!g_findings.empty()) {
    std::fprintf(stderr, "gbdt_lint: %zu finding(s)\n", g_findings.size());
    return 1;
  }
  return 0;
}
