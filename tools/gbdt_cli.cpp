// gbdt — command-line interface to the GPU-GBDT library.
//
//   gbdt train   --data=train.libsvm --model=out.model [hyper-params...]
//   gbdt predict --data=test.libsvm --model=out.model [--output=pred.txt]
//   gbdt eval    --data=test.libsvm --model=out.model
//   gbdt dump    --model=out.model [--tree=K]
//   gbdt importance --model=out.model [--kind=gain|cover|splits]
//   gbdt synth   --out=data.libsvm --instances=N --attributes=D [...]
//   gbdt serve   --model=out.model --data=requests.libsvm|-  [serving knobs]
//   gbdt loadgen --model=out.model --data=requests.libsvm --rate=R [...]
//
// Run `gbdt help` (or any subcommand with --help) for the full flag list.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/autotune.h"
#include "core/cv.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "core/predictor.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "multigpu/multi_trainer.h"
#include "obs/trace.h"
#include "primitives/transform.h"
#include "serve/percentile.h"
#include "serve/service.h"

namespace {

using namespace gbdt;

/// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& def = "") const {
    const auto it = values_.find(key);
    if (it != values_.end()) used_.push_back(key);
    return it == values_.end() ? def : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double def) const {
    const auto s = str(key);
    return s.empty() ? def : std::atof(s.c_str());
  }
  [[nodiscard]] long integer(const std::string& key, long def) const {
    const auto s = str(key);
    return s.empty() ? def : std::atol(s.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return str(key) == "1" || str(key) == "true";
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto s = str(key);
    if (s.empty()) {
      std::fprintf(stderr, "missing required flag --%s=\n", key.c_str());
      std::exit(2);
    }
    return s;
  }

  void warn_unused() const {
    for (const auto& [k, v] : values_) {
      if (std::find(used_.begin(), used_.end(), k) == used_.end()) {
        std::fprintf(stderr, "warning: unused flag --%s\n", k.c_str());
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> used_;
};

device::DeviceConfig device_by_name(const std::string& name) {
  if (name == "titanx" || name.empty()) return device::DeviceConfig::titan_x_pascal();
  if (name == "p100") return device::DeviceConfig::tesla_p100();
  if (name == "k20") return device::DeviceConfig::tesla_k20();
  std::fprintf(stderr, "unknown device '%s' (use titanx|p100|k20)\n",
               name.c_str());
  std::exit(2);
}

GBDTParam params_from(const Flags& f) {
  GBDTParam p;
  p.depth = static_cast<int>(f.integer("depth", p.depth));
  p.n_trees = static_cast<int>(f.integer("trees", p.n_trees));
  p.eta = f.num("eta", p.eta);
  p.lambda = f.num("lambda", p.lambda);
  p.gamma = f.num("gamma", p.gamma);
  p.base_score = f.num("base-score", p.base_score);
  p.rle_threshold_r = f.num("rle-threshold", p.rle_threshold_r);
  const std::string loss = f.str("loss", "l2");
  if (loss == "l2" || loss == "squared") {
    p.loss = LossKind::kSquaredError;
  } else if (loss == "logistic" || loss == "binary") {
    p.loss = LossKind::kLogistic;
  } else {
    std::fprintf(stderr, "unknown loss '%s' (use l2|logistic)\n", loss.c_str());
    std::exit(2);
  }
  const std::string objective = f.str("objective", "pointwise");
  if (objective == "ranking") {
    p.objective = ObjectiveKind::kRanking;
  } else if (objective != "pointwise") {
    std::fprintf(stderr, "unknown objective '%s' (use pointwise|ranking)\n",
                 objective.c_str());
    std::exit(2);
  }
  p.ndcg_k = static_cast<int>(f.integer("ndcg-k", p.ndcg_k));
  p.subsample = f.num("subsample", p.subsample);
  const std::string bag = f.str("feature-bag", "all");
  if (bag == "all") {
    p.feature_bag = 0;
  } else if (bag == "sqrt") {
    p.feature_bag = -1;
  } else {
    p.feature_bag = std::atoll(bag.c_str());
    if (p.feature_bag <= 0) {
      std::fprintf(stderr, "bad --feature-bag '%s' (use sqrt|all|N)\n",
                   bag.c_str());
      std::exit(2);
    }
  }
  p.sampling_seed = static_cast<std::uint64_t>(
      f.integer("sample-seed", static_cast<long>(p.sampling_seed)));
  p.eval_freq = static_cast<int>(f.integer("eval-freq", p.eval_freq));
  if (p.eval_freq < 1) {
    std::fprintf(stderr, "--eval-freq must be >= 1\n");
    std::exit(2);
  }
  const std::string method = f.str("method", "exact");
  if (method == "hist") {
    p.use_hist_trainer = true;
  } else if (method != "exact") {
    std::fprintf(stderr, "unknown method '%s' (use exact|hist)\n",
                 method.c_str());
    std::exit(2);
  }
  p.n_bins = static_cast<int>(f.integer("bins", p.n_bins));
  if (f.flag("no-rle")) p.use_rle = false;
  if (f.flag("force-rle")) p.force_rle = true;
  if (f.flag("no-smartgd")) p.use_smart_gd = false;
  if (f.flag("no-setkey")) p.use_custom_setkey = false;
  if (f.flag("no-idxcomp")) p.use_custom_idxcomp_workload = false;
  if (f.flag("no-direct-rle")) p.use_direct_rle_split = false;
  if (f.flag("autotune")) p.autotune = true;
  return p;
}

void print_profile_row(const obs::Span& s, int indent) {
  std::fprintf(stderr, "  %*s%-*s %12.6f %10.3f %8llu\n", indent, "",
               30 - indent, s.name().c_str(), s.modeled_total_seconds(),
               s.stats().wall_seconds,
               static_cast<unsigned long long>(s.stats().invocations));
  for (const auto& c : s.children()) print_profile_row(*c, indent + 2);
}

void print_profile(const obs::ObsSession& session) {
  std::fprintf(stderr, "\nprofile (per training phase):\n");
  std::fprintf(stderr, "  %-30s %12s %10s %8s\n", "phase", "modeled(s)",
               "wall(s)", "calls");
  for (const auto& c : session.root().children()) print_profile_row(*c, 0);
  std::fprintf(stderr, "  peak device memory: %.1f MiB\n",
               static_cast<double>(session.root().peak_device_bytes_total()) /
                   (1 << 20));
}

void print_tuning(const autotune::TuningReport& t) {
  std::fprintf(stderr, "\ntuning (cost-model autotuner):\n");
  std::fprintf(stderr,
               "  setkey: %s, predicted find-split %.6f s/tree "
               "(paper C=1000: %.6f s/tree)\n",
               t.use_custom_setkey
                   ? ("custom C=" + std::to_string(t.setkey_c)).c_str()
                   : "one block per segment",
               t.tuned_find_split_seconds, t.baseline_find_split_seconds);
  std::fprintf(stderr, "  setkey sweep:");
  for (const auto& c : t.candidates) {
    if (c.use_custom_setkey) {
      std::fprintf(stderr, " C=%lld:%.2ems",
                   static_cast<long long>(c.setkey_c),
                   c.find_split_seconds * 1e3);
    } else {
      std::fprintf(stderr, " off:%.2ems", c.find_split_seconds * 1e3);
    }
  }
  std::fprintf(stderr, "\n");
  std::fprintf(stderr,
               "  idxcomp workload: %s (custom %.6f s vs naive %.6f s at the "
               "deepest level)\n",
               t.use_custom_idxcomp_workload ? "custom" : "naive",
               t.partition_custom_seconds, t.partition_naive_seconds);
  std::fprintf(stderr,
               "  out-of-core chunk: %zu MiB; fused find-split: %s "
               "(saves %.6f s/tree of intermediate traffic)\n",
               t.ooc_chunk_bytes >> 20, t.fused_find ? "on" : "off",
               t.fused_saving_seconds);
}

int cmd_train(const Flags& f) {
  const auto data_path = f.require("data");
  const auto model_path = f.require("model");
  auto ds = data::read_libsvm_file(data_path);
  std::fprintf(stderr, "loaded %lld instances x %lld attributes from %s\n",
               static_cast<long long>(ds.n_instances()),
               static_cast<long long>(ds.n_attributes()), data_path.c_str());

  device::Device dev(device_by_name(f.str("device")));
  const auto param = params_from(f);
  const auto query_path = f.str("query-file");
  if (!query_path.empty()) {
    data::read_query_file(ds, query_path);
    std::fprintf(stderr, "loaded %lld query groups from %s\n",
                 static_cast<long long>(ds.n_queries()), query_path.c_str());
  }
  if (param.objective == ObjectiveKind::kRanking && !ds.has_queries()) {
    std::fprintf(stderr,
                 "--objective=ranking needs query groups: pass "
                 "--query-file=F (one docs-per-query count per line)\n");
    return 2;
  }
  const auto valid_path = f.str("valid");
  const auto valid_query_path = f.str("valid-query-file");
  const int early = static_cast<int>(f.integer("early-stopping", 0));
  const bool profile = f.flag("profile");
  const int gpus = static_cast<int>(f.integer("gpus", 1));
  const std::string shard_str = f.str("shard", "data");
  const std::string allreduce_str = f.str("allreduce", "ring");
  const std::string link_str = f.str("link", "pcie");
  f.warn_unused();

  if (gpus > 1) {
    if (!valid_path.empty()) {
      std::fprintf(stderr,
                   "--gpus>1 does not support --valid/--early-stopping\n");
      return 2;
    }
    multigpu::MultiGpuOptions opts;
    if (!multigpu::parse_shard_mode(shard_str, opts.shard)) {
      std::fprintf(stderr, "unknown shard mode '%s' (use data|feature)\n",
                   shard_str.c_str());
      return 2;
    }
    if (!multigpu::parse_allreduce_algo(allreduce_str, opts.algo)) {
      std::fprintf(stderr,
                   "unknown allreduce '%s' (use ring|tree|alltoone)\n",
                   allreduce_str.c_str());
      return 2;
    }
    multigpu::Interconnect link = multigpu::Interconnect::pcie3();
    if (link_str == "nvlink") {
      link = multigpu::Interconnect::nvlink();
    } else if (link_str != "pcie") {
      std::fprintf(stderr, "unknown link '%s' (use pcie|nvlink)\n",
                   link_str.c_str());
      return 2;
    }
    obs::ObsSession session;
    if (profile) session.activate();
    multigpu::MultiGpuTrainer trainer(device_by_name(f.str("device")), gpus,
                                      param, link, opts);
    const auto report = trainer.train(ds);
    if (profile) {
      session.deactivate();
      print_profile(session);
    }
    GBDTModel model(param, report.trees, report.base_score,
                    ds.n_attributes());
    model.save(model_path);
    std::fprintf(
        stderr,
        "trained %zu trees on %d shards (%s, %s allreduce) -> %s\n"
        "modeled %.4f s critical path, comm %.4f s (allreduce %.4f s, "
        "%.1f MiB, %llu msgs), overlap %.0f%%\n",
        report.trees.size(), gpus, multigpu::shard_mode_name(opts.shard),
        multigpu::allreduce_algo_name(opts.algo), model_path.c_str(),
        report.modeled_seconds, report.comm_seconds, report.allreduce_seconds,
        static_cast<double>(report.comm_bytes) / (1 << 20),
        static_cast<unsigned long long>(report.comm_messages),
        100.0 * report.comm_overlap_ratio);
    const double train_rmse = rmse(report.train_scores, ds.labels());
    std::fprintf(stderr, "train rmse %.6f\n", train_rmse);
    return 0;
  }

  obs::ObsSession session;
  if (profile) session.activate();
  GBDTModel model;
  TrainReport report;
  if (!valid_path.empty()) {
    if (param.use_hist_trainer) {
      std::fprintf(stderr,
                   "--method=hist does not support --valid/--early-stopping "
                   "(per-tree validation hooks are exact-trainer only)\n");
      return 2;
    }
    auto valid = data::read_libsvm_file(valid_path);
    if (!valid_query_path.empty()) data::read_query_file(valid, valid_query_path);
    if (param.objective == ObjectiveKind::kRanking && !valid.has_queries()) {
      std::fprintf(stderr,
                   "--objective=ranking scores validation by NDCG: pass "
                   "--valid-query-file=F\n");
      return 2;
    }
    auto [m, r, history] = GBDTModel::train_with_validation(
        dev, ds, valid, param, early);
    model = std::move(m);
    report = std::move(r);
    double best_metric = history.metric.empty() ? 0.0 : history.metric[0];
    for (std::size_t i = 0; i < history.eval_iteration.size(); ++i) {
      if (history.eval_iteration[i] == history.best_iteration) {
        best_metric = history.metric[i];
      }
    }
    std::fprintf(stderr, "validation %s: best %.6f at tree %d%s\n",
                 history.metric_name.c_str(), best_metric,
                 history.best_iteration,
                 history.stopped_early ? " (early stop)" : "");
  } else {
    auto [m, r] = GBDTModel::train(dev, ds, param);
    model = std::move(m);
    report = std::move(r);
  }
  if (profile) {
    session.deactivate();
    print_profile(session);
  }
  if (report.tuned) print_tuning(report.tuning);
  model.save(model_path);
  std::fprintf(stderr,
               "trained %zu trees -> %s\n"
               "modeled device time %.4f s (find-split %.0f%%), wall %.2f s, "
               "peak device mem %.1f MiB, RLE %s (ratio %.2f)\n",
               model.trees().size(), model_path.c_str(),
               report.modeled.total(),
               100.0 * report.modeled.find_split / report.modeled.total(),
               report.wall_seconds,
               static_cast<double>(report.peak_device_bytes) / (1 << 20),
               report.used_rle ? "on" : "off", report.rle_ratio);
  const double train_rmse = rmse(report.train_scores, ds.labels());
  std::fprintf(stderr, "train rmse %.6f\n", train_rmse);
  return 0;
}

int cmd_predict(const Flags& f) {
  const auto ds = data::read_libsvm_file(f.require("data"));
  const auto model = GBDTModel::load(f.require("model"));
  const auto out_path = f.str("output");
  const bool transform = f.flag("transform");
  device::Device dev(device_by_name(f.str("device")));
  f.warn_unused();

  // Device-resident scoring: the forest and the rows are each uploaded
  // exactly once (predict_on_device would re-upload per call).
  const DeviceForest forest(
      dev, ForestSoA::flatten(model.trees(), model.base_score()));
  const DeviceRows rows(dev, ds);
  auto d_out = dev.alloc<double>(static_cast<std::size_t>(ds.n_instances()));
  prim::fill(dev, d_out, model.base_score());
  predict_resident(dev, forest, rows, d_out, 0, forest.n_trees());
  auto scores = dev.to_host(d_out);
  if (transform) scores = model.transform_scores(scores);
  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out = &file;
  }
  out->precision(9);
  for (double s : scores) *out << s << '\n';
  return 0;
}

int cmd_eval(const Flags& f) {
  const auto ds = data::read_libsvm_file(f.require("data"));
  const auto model = GBDTModel::load(f.require("model"));
  f.warn_unused();
  const auto raw = model.predict(ds);
  const auto prob = model.transform_scores(raw);
  std::printf("instances: %lld\n", static_cast<long long>(ds.n_instances()));
  std::printf("rmse:      %.6f\n", rmse(raw, ds.labels()));
  std::printf("error:     %.6f\n", error_rate(prob, ds.labels()));
  return 0;
}

int cmd_dump(const Flags& f) {
  const auto model = GBDTModel::load(f.require("model"));
  const long which = f.integer("tree", -1);
  f.warn_unused();
  for (std::size_t t = 0; t < model.trees().size(); ++t) {
    if (which >= 0 && static_cast<std::size_t>(which) != t) continue;
    std::printf("booster[%zu]:\n%s", t, model.trees()[t].dump().c_str());
  }
  return 0;
}

int cmd_importance(const Flags& f) {
  const auto model = GBDTModel::load(f.require("model"));
  const auto kind_s = f.str("kind", "gain");
  f.warn_unused();
  ImportanceKind kind = ImportanceKind::kGain;
  if (kind_s == "cover") kind = ImportanceKind::kCover;
  else if (kind_s == "splits") kind = ImportanceKind::kSplitCount;
  else if (kind_s != "gain") {
    std::fprintf(stderr, "unknown kind '%s' (gain|cover|splits)\n",
                 kind_s.c_str());
    return 2;
  }
  const auto imp = model.feature_importance(kind);
  std::vector<std::size_t> order(imp.size());
  for (std::size_t i = 0; i < imp.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });
  for (std::size_t i : order) {
    if (imp[i] <= 0) break;
    std::printf("f%zu\t%.6f\n", i, imp[i]);
  }
  return 0;
}

int cmd_cv(const Flags& f) {
  const auto ds = data::read_libsvm_file(f.require("data"));
  const int folds = static_cast<int>(f.integer("folds", 5));
  const auto seed = static_cast<unsigned>(f.integer("seed", 42));
  device::Device dev(device_by_name(f.str("device")));
  const auto param = params_from(f);
  const int early = static_cast<int>(f.integer("early-stopping", 0));
  f.warn_unused();
  const auto cv = cross_validate(dev, ds, param, folds, seed, early);
  for (std::size_t k = 0; k < cv.fold_metric.size(); ++k) {
    std::printf("fold %zu: %s = %.6f", k, cv.metric_name.c_str(),
                cv.fold_metric[k]);
    if (k < cv.fold_best_iteration.size()) {
      std::printf("  (best tree %d)", cv.fold_best_iteration[k]);
    }
    std::printf("\n");
  }
  std::printf("cv-%s: %.6f +/- %.6f (%d folds)\n", cv.metric_name.c_str(),
              cv.mean, cv.stddev, folds);
  return 0;
}

int cmd_synth(const Flags& f) {
  data::SyntheticSpec spec;
  const auto paper = f.str("paper");
  if (!paper.empty()) {
    spec = data::paper_dataset(paper, f.num("scale", 1.0)).spec;
  } else {
    spec.n_instances = f.integer("instances", 1000);
    spec.n_attributes = f.integer("attributes", 20);
    spec.density = f.num("density", 1.0);
    spec.distinct_values = static_cast<int>(f.integer("distinct", 0));
    spec.binary_labels = f.flag("binary");
    spec.seed = static_cast<unsigned>(f.integer("seed", 42));
  }
  const auto out = f.require("out");
  f.warn_unused();
  data::write_libsvm_file(data::generate(spec), out);
  std::fprintf(stderr, "wrote %s (%lld x %lld)\n", out.c_str(),
               static_cast<long long>(spec.n_instances),
               static_cast<long long>(spec.n_attributes));
  return 0;
}

serve::ServeConfig serve_config_from(const Flags& f) {
  serve::ServeConfig sc;
  sc.queue_capacity = static_cast<std::size_t>(
      f.integer("queue", static_cast<long>(sc.queue_capacity)));
  sc.max_batch = static_cast<std::size_t>(
      f.integer("max-batch", static_cast<long>(sc.max_batch)));
  sc.max_wait_ticks = f.integer("max-wait-ticks", sc.max_wait_ticks);
  sc.n_workers = static_cast<int>(f.integer("workers", sc.n_workers));
  sc.n_shards = static_cast<int>(f.integer("shards", sc.n_shards));
  sc.device = device_by_name(f.str("device"));
  const auto mode = f.str("mode", "replicate");
  if (mode == "replicate") {
    sc.mode = serve::ShardMode::kReplicate;
  } else if (mode == "treeshard") {
    sc.mode = serve::ShardMode::kTreeShard;
  } else {
    std::fprintf(stderr, "unknown mode '%s' (use replicate|treeshard)\n",
                 mode.c_str());
    std::exit(2);
  }
  const auto policy = f.str("policy", "block");
  if (policy == "block") {
    sc.policy = serve::OverflowPolicy::kBlock;
  } else if (policy == "reject") {
    sc.policy = serve::OverflowPolicy::kReject;
  } else {
    std::fprintf(stderr, "unknown policy '%s' (use block|reject)\n",
                 policy.c_str());
    std::exit(2);
  }
  return sc;
}

/// Request rows for serve/loadgen: a libsvm file, or stdin when `-`.
data::Dataset read_requests(const std::string& path) {
  if (path == "-") return data::read_libsvm(std::cin);
  return data::read_libsvm_file(path);
}

int cmd_serve(const Flags& f) {
  const auto model = GBDTModel::load(f.require("model"));
  const auto ds = read_requests(f.require("data"));
  const auto out_path = f.str("output");
  const bool transform = f.flag("transform");
  const bool selfcheck = f.flag("selfcheck");
  const bool row_path = f.flag("row-path");
  const auto sc = serve_config_from(f);
  f.warn_unused();

  serve::PredictionService svc(model, sc);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> latency;
  latency.reserve(static_cast<std::size_t>(ds.n_instances()));
  std::vector<double> scores;
  scores.reserve(static_cast<std::size_t>(ds.n_instances()));
  std::uint64_t rejected = 0;

  if (row_path) {
    // Single-row fast path: host-side traversal, no queue, no device.
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      const auto sent = std::chrono::steady_clock::now();
      const auto r = svc.predict_row(ds.instance(i));
      scores.push_back(r.score);
      latency.push_back(
          std::chrono::duration<double>(r.completed - sent).count());
    }
  } else {
    std::vector<std::future<serve::Response>> futs;
    std::vector<std::chrono::steady_clock::time_point> sent;
    futs.reserve(static_cast<std::size_t>(ds.n_instances()));
    sent.reserve(futs.capacity());
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      auto row = ds.instance(i);
      sent.push_back(std::chrono::steady_clock::now());
      auto fut = svc.submit({row.begin(), row.end()});
      if (!fut) {
        ++rejected;
        sent.pop_back();
        continue;
      }
      futs.push_back(std::move(*fut));
    }
    svc.shutdown();
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const auto r = futs[i].get();
      scores.push_back(r.score);
      latency.push_back(
          std::chrono::duration<double>(r.completed - sent[i]).count());
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (selfcheck) {
    // Replay the same rows through the offline batch predictor; serving
    // must agree bit for bit on every row it admitted.
    device::Device dev(sc.device);
    const auto offline =
        predict_on_device(dev, model.trees(), model.base_score(), ds);
    if (rejected == 0) {
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] != offline[i]) {
          std::fprintf(stderr,
                       "selfcheck FAILED: row %zu served %.17g offline %.17g\n",
                       i, scores[i], offline[i]);
          return 1;
        }
      }
      std::fprintf(stderr, "selfcheck ok: %zu rows bitwise-identical\n",
                   scores.size());
    } else {
      std::fprintf(stderr,
                   "selfcheck skipped: %llu rejected rows misalign the "
                   "comparison\n",
                   static_cast<unsigned long long>(rejected));
    }
  }

  auto printed = scores;
  if (transform) printed = model.transform_scores(printed);
  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out = &file;
  }
  out->precision(9);
  for (double s : printed) *out << s << '\n';

  const auto pcts = serve::percentiles(latency, {50.0, 95.0, 99.0});
  std::fprintf(stderr,
               "served %zu rows (%llu rejected) in %.3f s (%.0f rows/s), "
               "%llu batches, model v%llu\n"
               "latency p50 %.6f ms  p95 %.6f ms  p99 %.6f ms; "
               "modeled device time %.6f s\n",
               scores.size(), static_cast<unsigned long long>(rejected), wall,
               static_cast<double>(scores.size()) / wall,
               static_cast<unsigned long long>(svc.batches()),
               static_cast<unsigned long long>(svc.current_snapshot()->version),
               1e3 * pcts[0], 1e3 * pcts[1], 1e3 * pcts[2],
               svc.modeled_seconds());
  return 0;
}

int cmd_loadgen(const Flags& f) {
  const auto model = GBDTModel::load(f.require("model"));
  const auto ds = read_requests(f.require("data"));
  const double rate = f.num("rate", 1000.0);
  const auto n_requests = static_cast<std::int64_t>(
      f.integer("requests", static_cast<long>(ds.n_instances())));
  const bool poisson = f.flag("poisson");
  const auto seed = static_cast<unsigned>(f.integer("seed", 42));
  const auto sc = serve_config_from(f);
  f.warn_unused();
  if (rate <= 0.0 || ds.n_instances() == 0 || n_requests <= 0) {
    std::fprintf(stderr, "--rate must be > 0 and data must be non-empty\n");
    return 2;
  }

  // Open-loop arrivals: request k is *scheduled* at t_k regardless of how
  // the service is keeping up, so queueing delay shows up in the latency —
  // the closed-loop alternative would hide overload.
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> exp_gap(rate);
  std::vector<double> arrival(static_cast<std::size_t>(n_requests));
  double t = 0.0;
  for (auto& a : arrival) {
    t += poisson ? exp_gap(rng) : 1.0 / rate;
    a = t;
  }

  serve::PredictionService svc(model, sc);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::Response>> futs;
  std::vector<std::chrono::steady_clock::time_point> sched;
  futs.reserve(arrival.size());
  sched.reserve(arrival.size());
  std::uint64_t rejected = 0;
  for (std::size_t k = 0; k < arrival.size(); ++k) {
    const auto due =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(arrival[k]));
    std::this_thread::sleep_until(due);
    auto row = ds.instance(static_cast<std::int64_t>(
        k % static_cast<std::size_t>(ds.n_instances())));
    auto fut = svc.submit({row.begin(), row.end()});
    if (!fut) {
      ++rejected;
      continue;
    }
    futs.push_back(std::move(*fut));
    sched.push_back(due);
  }
  svc.shutdown();

  std::vector<double> latency;
  latency.reserve(futs.size());
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    latency.push_back(
        std::chrono::duration<double>(r.completed - sched[i]).count());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto pcts = serve::percentiles(latency, {50.0, 95.0, 99.0});
  std::printf(
      "loadgen: rate %.0f req/s (%s), %zu completed, %llu rejected, "
      "%.3f s wall (%.0f rows/s)\n"
      "latency p50 %.6f ms  p95 %.6f ms  p99 %.6f ms\n"
      "batches %llu (mean size %.2f), modeled device time %.6f s\n",
      rate, poisson ? "poisson" : "uniform", latency.size(),
      static_cast<unsigned long long>(rejected), wall,
      static_cast<double>(latency.size()) / wall,
      1e3 * pcts[0], 1e3 * pcts[1], 1e3 * pcts[2],
      static_cast<unsigned long long>(svc.batches()),
      svc.batches() > 0
          ? static_cast<double>(svc.completed()) /
                static_cast<double>(svc.batches())
          : 0.0,
      svc.modeled_seconds());
  return 0;
}

void usage() {
  std::puts(
      "gbdt — GPU-GBDT command line (simulated device)\n"
      "\n"
      "subcommands:\n"
      "  train   --data=F --model=F [--valid=F --early-stopping=K\n"
      "           --eval-freq=1]\n"
      "          [--trees=40 --depth=6 --eta=0.3 --lambda=1 --gamma=0\n"
      "           --loss=l2|logistic --device=titanx|p100|k20\n"
      "           --method=exact|hist --bins=64\n"
      "           --objective=pointwise|ranking --query-file=F\n"
      "           --valid-query-file=F --ndcg-k=10\n"
      "           --subsample=1.0 --feature-bag=sqrt|all|N --sample-seed=42\n"
      "           --no-rle --force-rle --no-smartgd --no-setkey\n"
      "           --no-idxcomp --no-direct-rle --autotune --profile]\n"
      "          [--gpus=K --shard=data|feature --allreduce=ring|tree|alltoone\n"
      "           --link=pcie|nvlink]  (multi-GPU training)\n"
      "  predict --data=F --model=F [--output=F --transform]\n"
      "  eval    --data=F --model=F\n"
      "  cv      --data=F [--folds=5 --seed=42 --early-stopping=K\n"
      "           + train hyper-params]\n"
      "  dump    --model=F [--tree=K]\n"
      "  importance --model=F [--kind=gain|cover|splits]\n"
      "  synth   --out=F (--paper=NAME [--scale=S] |\n"
      "           --instances=N --attributes=D [--density=1 --distinct=0\n"
      "           --binary --seed=42])\n"
      "  serve   --model=F --data=F|-  (replay requests through the serving\n"
      "          pipeline; `-` reads libsvm rows from stdin)\n"
      "          [--shards=1 --mode=replicate|treeshard --max-batch=64\n"
      "           --max-wait-ticks=4 --workers=1 --queue=1024\n"
      "           --policy=block|reject --row-path --selfcheck\n"
      "           --transform --output=F --device=titanx|p100|k20]\n"
      "  loadgen --model=F --data=F --rate=R (open-loop arrival generator)\n"
      "          [--requests=N --poisson --seed=42 + serve knobs]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help") {
    usage();
    return 0;
  }
  const Flags flags(argc, argv, 2);
  try {
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "predict") return cmd_predict(flags);
    if (cmd == "eval") return cmd_eval(flags);
    if (cmd == "cv") return cmd_cv(flags);
    if (cmd == "dump") return cmd_dump(flags);
    if (cmd == "importance") return cmd_importance(flags);
    if (cmd == "synth") return cmd_synth(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "loadgen") return cmd_loadgen(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  usage();
  return 2;
}
