// Benchmark suite runner: executes the paper-reproduction bench binaries,
// collects their gbdt-bench-v1 JSON reports into one consolidated
// BENCH_suite.json ("gbdt-bench-suite-v1"), and optionally compares the
// result against a historical suite report, exiting nonzero when any case's
// modeled seconds regressed past the threshold.
//
//   gbdt_bench --json=BENCH_suite.json                 # run + consolidate
//   gbdt_bench --quick --json=s.json                   # tiny-scale smoke
//   gbdt_bench --json=s.json --compare=old.json        # run, then compare
//   gbdt_bench --compare-only --json=s.json --compare=old.json
//
// Comparison keys on cases' metrics.modeled_seconds — the simulation is
// deterministic, so any drift is a real cost-model or algorithm change, not
// machine noise; the threshold exists for intentional small reworks.
//
// Exit codes: 0 ok, 1 regression detected, 2 usage error, 3 a bench failed.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"

#ifndef GBDT_BENCH_DIR
#define GBDT_BENCH_DIR "."
#endif

namespace {

using gbdt::obs::Json;

struct BenchEntry {
  const char* name;    // suite name and BENCH_<name>.json stem
  const char* binary;  // executable inside the bench dir
};

// bench_primitives is deliberately absent: it emits google-benchmark's own
// JSON schema (via the --json= passthrough), which the suite cannot merge.
constexpr BenchEntry kBenches[] = {
    {"table2", "bench_table2"},
    {"fig8a", "bench_fig8a"},
    {"fig8b", "bench_fig8b"},
    {"fig9", "bench_fig9"},
    {"fig10a", "bench_fig10a"},
    {"fig10b", "bench_fig10b"},
    {"devices", "bench_devices"},
    {"exact_vs_hist", "bench_exact_vs_hist"},
    {"out_of_core", "bench_out_of_core"},
    {"multigpu", "bench_multigpu"},
    {"serve", "bench_serve"},
    {"objective", "bench_objective"},
};

struct SuiteOptions {
  std::string json_path = "BENCH_suite.json";
  std::string compare_path;
  std::string bench_dir = GBDT_BENCH_DIR;
  std::string out_dir = ".";
  std::vector<std::string> only;
  double threshold_pct = 5.0;
  bool quick = false;
  bool list = false;
  bool compare_only = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --list              list the suite's benches and exit\n"
      "  --only=<a,b,...>    run only the named benches\n"
      "  --quick             tiny scale (smoke-test speed)\n"
      "  --json=<path>       consolidated suite report "
      "(default BENCH_suite.json)\n"
      "  --out-dir=<dir>     where per-bench BENCH_<name>.json land "
      "(default .)\n"
      "  --bench-dir=<dir>   bench binaries location "
      "(default: build tree)\n"
      "  --compare=<path>    old suite report to compare against\n"
      "  --compare-only      skip running; compare --json against --compare\n"
      "  --threshold=<pct>   modeled-seconds regression threshold "
      "(default 5)\n"
      "  --help              this message\n",
      argv0);
}

bool parse_args(int argc, char** argv, SuiteOptions& o) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0]);
      std::exit(0);
    } else if (std::strcmp(a, "--list") == 0) {
      o.list = true;
    } else if (std::strcmp(a, "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(a, "--compare-only") == 0) {
      o.compare_only = true;
    } else if (std::strncmp(a, "--only=", 7) == 0) {
      std::string rest = a + 7;
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = rest.find(',', pos);
        const std::string item =
            rest.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty()) o.only.push_back(item);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      o.json_path = a + 7;
    } else if (std::strncmp(a, "--out-dir=", 10) == 0) {
      o.out_dir = a + 10;
    } else if (std::strncmp(a, "--bench-dir=", 12) == 0) {
      o.bench_dir = a + 12;
    } else if (std::strncmp(a, "--compare=", 10) == 0) {
      o.compare_path = a + 10;
    } else if (std::strncmp(a, "--threshold=", 12) == 0) {
      o.threshold_pct = std::atof(a + 12);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      return false;
    }
  }
  return true;
}

bool selected(const SuiteOptions& o, const char* name) {
  if (o.only.empty()) return true;
  for (const auto& s : o.only) {
    if (s == name) return true;
  }
  return false;
}

/// Runs one bench binary, returning its exit code (-1: could not run).
int run_bench(const SuiteOptions& o, const BenchEntry& b,
              const std::string& report_path) {
  std::string cmd = "'" + o.bench_dir + "/" + b.binary + "'";
  if (o.quick) cmd += " --scale=0.1 --trees=2 --depth=3";
  cmd += " --json='" + report_path + "' > /dev/null";
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  return -1;
}

/// Flattens a suite doc into (bench/case, modeled_seconds) rows.
std::vector<std::pair<std::string, double>> modeled_rows(const Json& suite) {
  std::vector<std::pair<std::string, double>> rows;
  const Json* benches = suite.find("benches");
  if (benches == nullptr) return rows;
  for (const auto& [bname, bdoc] : benches->members()) {
    const Json* cases = bdoc.find("cases");
    if (cases == nullptr) continue;
    for (const Json& c : cases->items()) {
      const Json* name = c.find("name");
      const Json* metrics = c.find("metrics");
      if (name == nullptr || metrics == nullptr) continue;
      const Json* modeled = metrics->find("modeled_seconds");
      if (modeled == nullptr || !modeled->is_number()) continue;
      rows.emplace_back(bname + "/" + name->str(), modeled->number_or(0.0));
    }
  }
  return rows;
}

/// Compares two suite reports; returns the number of regressions.
int compare_suites(const Json& now, const Json& old, double threshold_pct) {
  const auto new_rows = modeled_rows(now);
  const auto old_rows = modeled_rows(old);
  int regressions = 0;
  int matched = 0;
  for (const auto& [key, new_secs] : new_rows) {
    const double* old_secs = nullptr;
    for (const auto& [okey, osecs] : old_rows) {
      if (okey == key) {
        old_secs = &osecs;
        break;
      }
    }
    if (old_secs == nullptr) {
      std::printf("  NEW       %-46s %12.6fs\n", key.c_str(), new_secs);
      continue;
    }
    ++matched;
    const double limit = *old_secs * (1.0 + threshold_pct / 100.0);
    const double delta_pct =
        *old_secs > 0.0 ? 100.0 * (new_secs - *old_secs) / *old_secs : 0.0;
    if (new_secs > limit) {
      ++regressions;
      std::printf("  REGRESSED %-46s %12.6fs -> %12.6fs (%+.1f%%)\n",
                  key.c_str(), *old_secs, new_secs, delta_pct);
    }
  }
  std::printf("compared %d cases, %d regression(s) beyond %.1f%%\n", matched,
              regressions, threshold_pct);
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.list) {
    for (const auto& b : kBenches) std::printf("%s\n", b.name);
    std::printf(
        "(bench_primitives is excluded: google-benchmark JSON schema)\n");
    return 0;
  }

  Json suite;
  std::string err;
  if (opt.compare_only) {
    suite = gbdt::obs::read_json_file(opt.json_path, &err);
    if (suite.is_null()) {
      std::fprintf(stderr, "cannot read %s: %s\n", opt.json_path.c_str(),
                   err.c_str());
      return 2;
    }
  } else {
    suite = Json::object();
    suite["schema"] = "gbdt-bench-suite-v1";
    auto run_opts = Json::object();
    run_opts["quick"] = opt.quick;
    suite["options"] = std::move(run_opts);
    suite["benches"] = Json::object();
    for (const auto& b : kBenches) {
      if (!selected(opt, b.name)) continue;
      const std::string report_path =
          opt.out_dir + "/BENCH_" + b.name + ".json";
      std::printf("running %-14s ...", b.name);
      std::fflush(stdout);
      const int rc = run_bench(opt, b, report_path);
      if (rc != 0) {
        std::printf(" FAILED (exit %d)\n", rc);
        return 3;
      }
      Json doc = gbdt::obs::read_json_file(report_path, &err);
      if (doc.is_null()) {
        std::printf(" no report (%s)\n", err.c_str());
        return 3;
      }
      const std::size_t n_cases =
          doc.find("cases") != nullptr ? doc.find("cases")->size() : 0;
      std::printf(" ok (%zu cases)\n", n_cases);
      suite["benches"][b.name] = std::move(doc);
    }
    if (!gbdt::obs::write_json_file(opt.json_path, suite)) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 3;
    }
    std::printf("suite report: %s\n", opt.json_path.c_str());
  }

  if (!opt.compare_path.empty()) {
    const Json old = gbdt::obs::read_json_file(opt.compare_path, &err);
    if (old.is_null()) {
      std::fprintf(stderr, "cannot read %s: %s\n", opt.compare_path.c_str(),
                   err.c_str());
      return 2;
    }
    if (compare_suites(suite, old, opt.threshold_pct) > 0) return 1;
  }
  return 0;
}
