// Training a dataset whose attribute lists exceed the device memory — the
// constraint that motivates the paper's memory-efficiency work ("GPUs have
// relatively small memory ... make full use of the GPU memory to efficiently
// handle large datasets, and reduce data transferring between CPUs and
// GPUs").  The in-core trainer refuses; the out-of-core trainer streams
// column chunks per level, and RLE-compressed chunk shipping cuts the PCI-e
// bill — the same compression lever as the paper's Section III-C.
//
//   ./examples/large_scale_ooc [n_instances] [n_attributes]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "core/out_of_core.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

int main(int argc, char** argv) {
  using namespace gbdt;

  data::SyntheticSpec spec;
  spec.name = "large-scale";
  spec.n_instances = argc > 1 ? std::atoll(argv[1]) : 40000;
  spec.n_attributes = argc > 2 ? std::atoll(argv[2]) : 32;
  spec.density = 1.0;
  spec.distinct_values = 24;  // quantised sensor readings: RLE-friendly
  spec.seed = 99;
  const auto ds = data::generate(spec);

  GBDTParam param;
  param.depth = 5;
  param.n_trees = 10;
  param.use_rle = false;

  // A deliberately small "GPU": the sorted attribute lists don't fit.
  auto cfg = device::DeviceConfig::titan_x_pascal();
  cfg.global_mem_bytes = 6u << 20;  // 6 MiB
  std::printf("dataset: %lld x %lld (%lld entries); device memory: %zu MiB\n",
              static_cast<long long>(ds.n_instances()),
              static_cast<long long>(ds.n_attributes()),
              static_cast<long long>(ds.n_entries()),
              cfg.global_mem_bytes >> 20);

  {
    device::Device dev(cfg);
    try {
      (void)GpuGbdtTrainer(dev, param).train(ds);
      std::printf("in-core trainer unexpectedly fit — enlarge the dataset\n");
    } catch (const device::DeviceOutOfMemory& e) {
      std::printf("in-core trainer: %s\n", e.what());
    }
  }

  for (const bool compressed : {false, true}) {
    device::Device dev(cfg);
    OutOfCoreTrainer trainer(dev, param, /*chunk_bytes=*/2u << 20, compressed);
    const auto r = trainer.train(ds);
    std::printf("out-of-core (%s): %zu trees in %.3f modeled s, "
                "streamed %.1f MiB over PCI-e across %d chunks, peak device "
                "memory %.1f MiB (in-core lists: %.1f MiB), train rmse %.4f\n",
                compressed ? "RLE chunks" : "raw chunks", r.trees.size(),
                r.modeled_seconds,
                static_cast<double>(r.streamed_bytes) / (1 << 20), r.n_chunks,
                static_cast<double>(r.peak_device_bytes) / (1 << 20),
                static_cast<double>(r.in_core_bytes) / (1 << 20),
                rmse(r.train_scores, ds.labels()));
  }
  return 0;
}
