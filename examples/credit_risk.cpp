// Case study (i) of the paper (Section IV-E): credit risk prediction, an
// online-learning setting where the model must be retrained frequently as
// transactions stream in.  The cited workload has 211,357 instances with
// 8,990 features; this example uses a scaled analog with the same shape
// (sparse, high-dimensional, binary target) and measures the retraining
// latency of GPU-GBDT against the modeled CPU baseline, then simulates a
// stream of retraining rounds with freshly arrived transactions.
#include <cstdio>
#include <cstdlib>

#include "baselines/xgb_exact.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "device/device_context.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  // Shape analog of the credit-risk dataset in [18]: 211,357 x 8,990,
  // sparse categorical transaction features.
  data::SyntheticSpec spec;
  spec.name = "credit-risk";
  spec.n_instances =
      std::max<std::int64_t>(512, static_cast<std::int64_t>(211357 * scale));
  spec.n_attributes = 8990;
  spec.density = 0.01;
  spec.distinct_values = 8;  // categorical transaction codes
  spec.binary_labels = true;
  spec.seed = 1234;
  const auto ds = data::generate(spec);
  std::printf("credit-risk analog: %lld x %lld (scale %.3f of the paper's "
              "211357 x 8990)\n",
              static_cast<long long>(ds.n_instances()),
              static_cast<long long>(ds.n_attributes()), scale);

  GBDTParam param;
  param.depth = 6;
  param.n_trees = 40;
  param.loss = LossKind::kLogistic;

  // One full (re)training round on the GPU vs the 40-thread CPU baseline.
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  auto [model, report] = GBDTModel::train(dev, ds, param);
  baseline::XgbExactTrainer cpu(param);
  const auto cpu_report = cpu.train(ds);
  const auto cpu_cfg = device::CpuConfig::dual_xeon_e5_2640v4();

  const double gpu_s = report.modeled.total();
  const double cpu40_s = cpu_report.modeled_seconds(cpu_cfg, 40);
  std::printf("retrain latency (modeled): GPU-GBDT %.3f s, xgbst-40 %.3f s "
              "-> %.2fx faster response to new fraud patterns\n",
              gpu_s, cpu40_s, cpu40_s / gpu_s);
  const auto prob = model.transform_scores(report.train_scores);
  std::printf("training error: %.3f (RLE %s)\n",
              error_rate(prob, ds.labels()), report.used_rle ? "on" : "off");

  // Simulated online stream: every round brings fresh transactions; the
  // model is retrained and the per-round latency determines how quickly the
  // deployment reacts.
  const int rounds = 3;
  double total_gpu = 0.0;
  for (int r = 0; r < rounds; ++r) {
    data::SyntheticSpec fresh = spec;
    fresh.seed += static_cast<unsigned>(r + 1);
    fresh.n_instances += r * (spec.n_instances / 10);  // the log grows
    const auto batch = data::generate(fresh);
    device::Device round_dev(device::DeviceConfig::titan_x_pascal());
    GpuGbdtTrainer trainer(round_dev, param);
    const auto round_report = trainer.train(batch);
    total_gpu += round_report.modeled.total();
    std::printf("  round %d: %lld transactions, retrained in %.3f s "
                "(modeled)\n",
                r + 1, static_cast<long long>(batch.n_instances()),
                round_report.modeled.total());
  }
  std::printf("%d retraining rounds in %.3f modeled seconds total\n", rounds,
              total_gpu);
  return 0;
}
