// Quickstart: train a GPU-GBDT model on a synthetic regression dataset,
// inspect the report, predict, and save/load the model.
//
//   ./examples/quickstart [n_instances] [n_attributes]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "device/device_context.h"

int main(int argc, char** argv) {
  using namespace gbdt;

  // 1. Make (or load) a dataset.  read_libsvm_file() loads LibSVM text; here
  //    we generate a synthetic regression problem.
  data::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.n_instances = argc > 1 ? std::atoll(argv[1]) : 5000;
  spec.n_attributes = argc > 2 ? std::atoll(argv[2]) : 20;
  spec.density = 0.8;
  spec.label_noise = 0.1;
  const auto dataset = data::generate(spec);
  const auto [train, test] = dataset.split_at(dataset.n_instances() * 4 / 5);
  std::printf("dataset: %lld instances x %lld attributes (density %.2f)\n",
              static_cast<long long>(dataset.n_instances()),
              static_cast<long long>(dataset.n_attributes()),
              dataset.density());

  // 2. Pick a simulated device and hyper-parameters.
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  GBDTParam param;
  param.depth = 6;     // d in the paper
  param.n_trees = 40;  // T in the paper
  param.eta = 0.3;
  param.lambda = 1.0;

  // 3. Train.
  auto [model, report] = GBDTModel::train(dev, train, param);
  std::printf("trained %zu trees  (RLE: %s, ratio %.2f)\n",
              model.trees().size(), report.used_rle ? "on" : "off",
              report.rle_ratio);
  std::printf("modeled device time: %.4f s  (transfer %.4f, gradients %.4f, "
              "find-split %.4f, split-node %.4f)\n",
              report.modeled.total(), report.modeled.transfer,
              report.modeled.gradients, report.modeled.find_split,
              report.modeled.split_node);
  std::printf("peak device memory: %.1f MiB, wall clock: %.2f s\n",
              static_cast<double>(report.peak_device_bytes) / (1 << 20),
              report.wall_seconds);

  // 4. Evaluate.
  const double train_rmse = rmse(report.train_scores, train.labels());
  const auto test_pred = model.predict(test);
  const double test_rmse = rmse(test_pred, test.labels());
  std::printf("train RMSE: %.4f   test RMSE: %.4f\n", train_rmse, test_rmse);

  // 5. Persist and reload.
  model.save("/tmp/quickstart_model.txt");
  const auto reloaded = GBDTModel::load("/tmp/quickstart_model.txt");
  std::printf("model round-trips through /tmp/quickstart_model.txt (%zu "
              "trees)\n",
              reloaded.trees().size());

  // 6. Device-side batch prediction (the paper's Section III-D kernel).
  const auto device_pred = model.predict_device(dev, test);
  double max_diff = 0;
  for (std::size_t i = 0; i < device_pred.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(device_pred[i] - test_pred[i]));
  }
  std::printf("device prediction of %zu test instances matches host "
              "(max |diff| = %.2e)\n",
              device_pred.size(), max_diff);
  return 0;
}
