// Case study (iii) of the paper (Section IV-E): hyper-parameter search under
// a time budget, modeled on the Santander product-recommendation Kaggle
// competition.  The paper sweeps T in {500,1000,2000,4000}, d in {2,4,6,8},
// gamma in {0,0.1,0.2} and eta in {0.2,0.3,0.4} — 144 models — and reports
// the sweep shrinking from ~22.3 days (20-core CPU) to ~10 days on the GPU.
//
// This example runs a scaled grid on a product-recommendation analog, picks
// the configuration with the best held-out error, and totals the modeled
// GPU vs CPU sweep cost.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "baselines/xgb_exact.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "device/device_context.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.0001;

  // Product-recommendation analog: the paper's solution uses 142 features
  // over 17M instances; mixed categorical/behavioural data.
  data::SyntheticSpec spec;
  spec.name = "product-rec";
  spec.n_instances = std::max<std::int64_t>(
      2000, static_cast<std::int64_t>(17000000 * scale));
  spec.n_attributes = 142;
  spec.density = 0.5;
  spec.distinct_values = 16;
  spec.binary_labels = true;
  spec.seed = 777;
  const auto ds = data::generate(spec);
  const auto [train, valid] = ds.split_at(ds.n_instances() * 4 / 5);
  std::printf("product-rec analog: %lld train / %lld validation\n",
              static_cast<long long>(train.n_instances()),
              static_cast<long long>(valid.n_instances()));

  // Scaled-down grid (tree counts /100 so the sweep runs in seconds).
  const std::vector<int> trees{5, 10, 20, 40};
  const std::vector<int> depths{2, 4, 6, 8};
  const std::vector<double> gammas{0.0, 0.1, 0.2};
  const std::vector<double> etas{0.2, 0.3, 0.4};

  double best_err = std::numeric_limits<double>::infinity();
  GBDTParam best;
  double gpu_total = 0.0;
  double cpu40_total = 0.0;
  const auto cpu_cfg = device::CpuConfig::dual_xeon_e5_2640v4();
  int done = 0;

  for (int T : trees) {
    for (int d : depths) {
      for (double gamma : gammas) {
        for (double eta : etas) {
          GBDTParam p;
          p.n_trees = T;
          p.depth = d;
          p.gamma = gamma;
          p.eta = eta;
          p.loss = LossKind::kLogistic;
          device::Device dev(device::DeviceConfig::titan_x_pascal());
          auto [model, report] = GBDTModel::train(dev, train, p);
          gpu_total += report.modeled.total();

          const auto prob = model.transform_scores(model.predict(valid));
          const double err = error_rate(prob, valid.labels());
          if (err < best_err) {
            best_err = err;
            best = p;
          }
          ++done;
          if (done % 36 == 0) {
            std::printf("  %3d/144 models trained (best error so far "
                        "%.4f)\n",
                        done, best_err);
          }
        }
      }
    }
  }

  // One representative CPU training per (T, d) corner scales the CPU sweep
  // estimate (gamma/eta barely change cost).
  for (int T : trees) {
    for (int d : depths) {
      GBDTParam p;
      p.n_trees = T;
      p.depth = d;
      p.loss = LossKind::kLogistic;
      baseline::XgbExactTrainer cpu(p);
      const auto r = cpu.train(train);
      cpu40_total += r.modeled_seconds(cpu_cfg, 40) *
                     static_cast<double>(gammas.size() * etas.size());
    }
  }

  std::printf("\nbest configuration: T=%d depth=%d gamma=%.1f eta=%.1f "
              "(validation error %.4f)\n",
              best.n_trees, best.depth, best.gamma, best.eta, best_err);
  std::printf("sweep cost (modeled): GPU-GBDT %.2f s vs xgbst-40 %.2f s -> "
              "%.2fx\n",
              gpu_total, cpu40_total, cpu40_total / gpu_total);
  std::printf("(the paper's full-scale sweep: ~22.3 days on 20 CPU cores vs "
              "~10 days with GPU-GBDT, a 2.2x gap)\n");
  return 0;
}
