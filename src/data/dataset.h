// Instance-major sparse training data (the "sparse representation" of paper
// Table I): each instance stores only its non-missing (attribute, value)
// pairs, CSR-style, plus a label per instance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gbdt::data {

/// One non-missing feature of an instance.
struct Entry {
  std::int32_t attr = 0;
  float value = 0.f;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Sparse instance-major dataset (CSR rows of Entry + labels).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::int64_t n_attributes) : n_attributes_(n_attributes) {}

  /// Appends an instance; entries must have attr in [0, n_attributes) and be
  /// free of duplicate attributes (checked in debug builds).
  void add_instance(std::span<const Entry> entries, float label);

  [[nodiscard]] std::int64_t n_instances() const {
    return static_cast<std::int64_t>(row_offsets_.size()) - 1;
  }
  [[nodiscard]] std::int64_t n_attributes() const { return n_attributes_; }
  [[nodiscard]] std::int64_t n_entries() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  /// Fraction of the dense n x d grid that is present.
  [[nodiscard]] double density() const;

  [[nodiscard]] std::span<const Entry> instance(std::int64_t i) const {
    return {entries_.data() + row_offsets_[static_cast<std::size_t>(i)],
            entries_.data() + row_offsets_[static_cast<std::size_t>(i) + 1]};
  }
  [[nodiscard]] const std::vector<float>& labels() const { return labels_; }
  [[nodiscard]] std::vector<float>& labels() { return labels_; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] const std::vector<std::int64_t>& row_offsets() const {
    return row_offsets_;
  }

  /// Raises n_attributes (e.g. after reading a file with unknown width).
  void set_n_attributes(std::int64_t d) {
    if (d > n_attributes_) n_attributes_ = d;
  }

  /// Bytes of the sparse representation (entries + offsets + labels).
  [[nodiscard]] std::size_t sparse_bytes() const;
  /// Bytes a dense n x d float matrix of the same data would need.
  [[nodiscard]] std::size_t dense_bytes() const;

  /// Splits off the first `head` instances into one dataset and the rest into
  /// another (train/test split helper; instances keep their order).
  [[nodiscard]] std::pair<Dataset, Dataset> split_at(std::int64_t head) const;

  // ---- query groups (learning-to-rank) ------------------------------------
  /// Installs query-group boundaries: offsets[0] = 0, offsets.back() =
  /// n_instances(), strictly increasing.  Instances of one query must be
  /// contiguous (the LightGBM .query convention).  Throws
  /// std::invalid_argument on malformed offsets.
  void set_query_offsets(std::vector<std::int64_t> offsets);

  [[nodiscard]] bool has_queries() const { return !query_offsets_.empty(); }
  [[nodiscard]] const std::vector<std::int64_t>& query_offsets() const {
    return query_offsets_;
  }
  [[nodiscard]] std::int64_t n_queries() const {
    return query_offsets_.empty()
               ? 0
               : static_cast<std::int64_t>(query_offsets_.size()) - 1;
  }

  /// Splits off the first `head_queries` query groups into one dataset and
  /// the rest into another; both halves keep (rebased) query offsets.
  [[nodiscard]] std::pair<Dataset, Dataset> split_queries_at(
      std::int64_t head_queries) const;

 private:
  std::int64_t n_attributes_ = 0;
  std::vector<std::int64_t> row_offsets_{0};
  std::vector<Entry> entries_;
  std::vector<float> labels_;
  std::vector<std::int64_t> query_offsets_;  // empty = no query structure
};

}  // namespace gbdt::data
