// Dense n x d representation (paper Table I, "Dense").  Missing values are
// filled with 0 — the behaviour the paper blames for the RMSE deviation of
// the dense-representation XGBoost GPU plugin on sparse datasets.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace gbdt::data {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(const Dataset& ds);

  [[nodiscard]] std::int64_t n_instances() const { return n_; }
  [[nodiscard]] std::int64_t n_attributes() const { return d_; }

  [[nodiscard]] float at(std::int64_t i, std::int64_t a) const {
    return cells_[static_cast<std::size_t>(i * d_ + a)];
  }
  [[nodiscard]] const std::vector<float>& cells() const { return cells_; }
  [[nodiscard]] std::size_t bytes() const {
    return cells_.size() * sizeof(float);
  }

  /// Footprint a dense copy of `ds` would need, without materialising it.
  [[nodiscard]] static std::size_t bytes_for(const Dataset& ds) {
    return static_cast<std::size_t>(ds.n_instances()) *
           static_cast<std::size_t>(ds.n_attributes()) * sizeof(float);
  }

 private:
  std::int64_t n_ = 0;
  std::int64_t d_ = 0;
  std::vector<float> cells_;
};

}  // namespace gbdt::data
