// LibSVM text format I/O ("label idx:value idx:value ...", 1-based indices),
// the format of the eight datasets the paper downloads from the LibSVM site.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace gbdt::data {

/// Parses LibSVM text.  Lines may end with comments introduced by '#'.
/// Indices must be strictly increasing within a line (LibSVM convention);
/// violations raise std::runtime_error with the offending line number.
[[nodiscard]] Dataset read_libsvm(std::istream& in);
[[nodiscard]] Dataset read_libsvm_file(const std::string& path);

void write_libsvm(const Dataset& ds, std::ostream& out);
void write_libsvm_file(const Dataset& ds, const std::string& path);

/// Reads a LightGBM-style query file (one integer per line: the number of
/// consecutive instances belonging to each query) and installs the resulting
/// offsets on `ds`.  Counts must be positive and sum to ds.n_instances().
void read_query_file(Dataset& ds, std::istream& in);
void read_query_file(Dataset& ds, const std::string& path);

}  // namespace gbdt::data
