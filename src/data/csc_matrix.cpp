#include "data/csc_matrix.h"

#include <algorithm>
#include <cassert>

#include "primitives/sort.h"
#include "primitives/transform.h"

namespace gbdt::data {

CscMatrix build_csc_host(const Dataset& ds) {
  CscMatrix csc;
  csc.n_instances = ds.n_instances();
  csc.n_attributes = ds.n_attributes();

  // Count entries per column.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(csc.n_attributes), 0);
  for (const auto& e : ds.entries()) ++counts[static_cast<std::size_t>(e.attr)];

  csc.col_offsets.assign(static_cast<std::size_t>(csc.n_attributes) + 1, 0);
  for (std::int64_t a = 0; a < csc.n_attributes; ++a) {
    csc.col_offsets[static_cast<std::size_t>(a) + 1] =
        csc.col_offsets[static_cast<std::size_t>(a)] +
        counts[static_cast<std::size_t>(a)];
  }

  const auto n = static_cast<std::size_t>(ds.n_entries());
  csc.values.resize(n);
  csc.inst_ids.resize(n);

  // Bucket entries into columns in instance order, then sort each column by
  // value descending with a stable sort so ties keep ascending instance ids
  // (identical to the stable device radix sort on the composite key).
  std::vector<std::int64_t> cursor(csc.col_offsets.begin(),
                                   csc.col_offsets.end() - 1);
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    for (const auto& e : ds.instance(i)) {
      const auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.attr)]++);
      csc.values[pos] = e.value;
      csc.inst_ids[pos] = static_cast<std::int32_t>(i);
    }
  }
  std::vector<std::int32_t> order;
  for (std::int64_t a = 0; a < csc.n_attributes; ++a) {
    const auto lo = static_cast<std::size_t>(csc.col_offsets[static_cast<std::size_t>(a)]);
    const auto hi = static_cast<std::size_t>(csc.col_offsets[static_cast<std::size_t>(a) + 1]);
    order.resize(hi - lo);
    for (std::size_t k = 0; k < order.size(); ++k) {
      order[k] = static_cast<std::int32_t>(k);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t x, std::int32_t y) {
                       return csc.values[lo + static_cast<std::size_t>(x)] >
                              csc.values[lo + static_cast<std::size_t>(y)];
                     });
    std::vector<float> v(order.size());
    std::vector<std::int32_t> id(order.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      v[k] = csc.values[lo + static_cast<std::size_t>(order[k])];
      id[k] = csc.inst_ids[lo + static_cast<std::size_t>(order[k])];
    }
    std::copy(v.begin(), v.end(), csc.values.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(id.begin(), id.end(), csc.inst_ids.begin() + static_cast<std::ptrdiff_t>(lo));
  }
  return csc;
}

DeviceCsc build_csc_device(device::Device& dev, const Dataset& ds) {
  DeviceCsc out;
  out.n_instances = ds.n_instances();
  out.n_attributes = ds.n_attributes();
  const std::int64_t n = ds.n_entries();

  // Ship the raw sparse entries over PCI-e: (attr, value) pairs plus the
  // instance id of each entry.
  std::vector<std::int32_t> h_attr(static_cast<std::size_t>(n));
  std::vector<float> h_val(static_cast<std::size_t>(n));
  std::vector<std::int32_t> h_inst(static_cast<std::size_t>(n));
  {
    std::size_t k = 0;
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      for (const auto& e : ds.instance(i)) {
        h_attr[k] = e.attr;
        h_val[k] = e.value;
        h_inst[k] = static_cast<std::int32_t>(i);
        ++k;
      }
    }
  }
  auto d_attr = dev.to_device<std::int32_t>(h_attr);
  auto d_val = dev.to_device<float>(h_val);
  auto d_inst = dev.to_device<std::int32_t>(h_inst);

  // Composite sort keys: attribute ascending, value descending.  The radix
  // sort is stable and entries arrive in ascending instance order, so equal
  // (attr, value) pairs keep ascending instance ids.
  auto keys = dev.alloc<std::uint64_t>(static_cast<std::size_t>(n));
  auto payload = dev.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  {
    auto a = d_attr.span();
    auto v = d_val.span();
    auto k = keys.span();
    auto p = payload.span();
    dev.launch("csc_make_keys", device::grid_for(n, prim::kBlockDim),
               prim::kBlockDim, [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i < n) {
                     const auto u = static_cast<std::size_t>(i);
                     k[u] = prim::column_desc_key(
                         static_cast<std::uint32_t>(a[u]), v[u]);
                     p[u] = static_cast<std::uint32_t>(i);
                   }
                 });
                 b.mem_coalesced(prim::elems_in_block(b, n) * 20);
               });
  }
  prim::radix_sort_pairs(dev, keys, payload, 64);

  // Permute values and instance ids by the sorted payload.
  out.values = dev.alloc<float>(static_cast<std::size_t>(n));
  out.inst_ids = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  {
    auto p = payload.span();
    auto v_in = d_val.span();
    auto i_in = d_inst.span();
    auto v_out = out.values.span();
    auto i_out = out.inst_ids.span();
    dev.launch("csc_permute", device::grid_for(n, prim::kBlockDim),
               prim::kBlockDim, [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i < n) {
                     const auto u = static_cast<std::size_t>(i);
                     const auto src = static_cast<std::size_t>(p[u]);
                     v_out[u] = v_in[src];
                     i_out[u] = i_in[src];
                   }
                 });
                 const auto m = prim::elems_in_block(b, n);
                 b.mem_coalesced(m * 12);
                 b.mem_irregular(m * 2);  // payload-directed gathers
               });
  }

  // Column offsets from the sorted attribute sequence (single-block sweep;
  // runs once per dataset).
  out.col_offsets = dev.alloc<std::int64_t>(
      static_cast<std::size_t>(out.n_attributes) + 1);
  {
    auto k = keys.span();
    auto off = out.col_offsets.span();
    const std::int64_t n_attr = out.n_attributes;
    dev.launch("csc_offsets", 1, prim::kBlockDim, [&](device::BlockCtx& b) {
      std::int64_t e = 0;
      for (std::int64_t a = 0; a <= n_attr; ++a) {
        while (e < n &&
               static_cast<std::int64_t>(k[static_cast<std::size_t>(e)] >> 32) < a) {
          ++e;
        }
        off[static_cast<std::size_t>(a)] = e;
      }
      b.work(static_cast<std::uint64_t>(n + n_attr));
      b.mem_coalesced(static_cast<std::uint64_t>(n) * 8 +
                      static_cast<std::uint64_t>(n_attr + 1) * 8);
    });
  }
  return out;
}

DeviceCsc upload_csc(device::Device& dev, const CscMatrix& csc) {
  DeviceCsc out;
  out.n_instances = csc.n_instances;
  out.n_attributes = csc.n_attributes;
  out.col_offsets = dev.to_device<std::int64_t>(csc.col_offsets);
  out.values = dev.to_device<float>(csc.values);
  out.inst_ids = dev.to_device<std::int32_t>(csc.inst_ids);
  return out;
}

}  // namespace gbdt::data
