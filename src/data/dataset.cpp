#include "data/dataset.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace gbdt::data {

void Dataset::add_instance(std::span<const Entry> entries, float label) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < entries.size(); ++i) {
    assert(entries[i].attr >= 0 && entries[i].attr < n_attributes_ &&
           "entry attribute out of range");
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      assert(entries[i].attr != entries[j].attr && "duplicate attribute");
    }
  }
#endif
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  row_offsets_.push_back(static_cast<std::int64_t>(entries_.size()));
  labels_.push_back(label);
}

double Dataset::density() const {
  const double cells =
      static_cast<double>(n_instances()) * static_cast<double>(n_attributes_);
  return cells == 0 ? 0.0 : static_cast<double>(n_entries()) / cells;
}

std::size_t Dataset::sparse_bytes() const {
  return entries_.size() * sizeof(Entry) +
         row_offsets_.size() * sizeof(std::int64_t) +
         labels_.size() * sizeof(float);
}

std::size_t Dataset::dense_bytes() const {
  return static_cast<std::size_t>(n_instances()) *
             static_cast<std::size_t>(n_attributes_) * sizeof(float) +
         labels_.size() * sizeof(float);
}

std::pair<Dataset, Dataset> Dataset::split_at(std::int64_t head) const {
  Dataset a(n_attributes_);
  Dataset b(n_attributes_);
  for (std::int64_t i = 0; i < n_instances(); ++i) {
    (i < head ? a : b).add_instance(instance(i), labels_[static_cast<std::size_t>(i)]);
  }
  return {std::move(a), std::move(b)};
}

void Dataset::set_query_offsets(std::vector<std::int64_t> offsets) {
  if (offsets.size() < 2 || offsets.front() != 0 ||
      offsets.back() != n_instances()) {
    throw std::invalid_argument(
        "query offsets must start at 0 and end at n_instances");
  }
  for (std::size_t q = 1; q < offsets.size(); ++q) {
    if (offsets[q] <= offsets[q - 1]) {
      throw std::invalid_argument("query offsets must be strictly increasing");
    }
  }
  query_offsets_ = std::move(offsets);
}

std::pair<Dataset, Dataset> Dataset::split_queries_at(
    std::int64_t head_queries) const {
  if (!has_queries()) {
    throw std::logic_error("split_queries_at needs query offsets");
  }
  if (head_queries < 0 || head_queries > n_queries()) {
    throw std::invalid_argument("head_queries out of range");
  }
  const std::int64_t head_rows =
      query_offsets_[static_cast<std::size_t>(head_queries)];
  auto [a, b] = split_at(head_rows);
  std::vector<std::int64_t> qa(query_offsets_.begin(),
                               query_offsets_.begin() + head_queries + 1);
  std::vector<std::int64_t> qb;
  for (std::size_t q = static_cast<std::size_t>(head_queries);
       q < query_offsets_.size(); ++q) {
    qb.push_back(query_offsets_[q] - head_rows);
  }
  if (head_queries > 0) a.set_query_offsets(std::move(qa));
  if (head_queries < n_queries()) b.set_query_offsets(std::move(qb));
  return {std::move(a), std::move(b)};
}

}  // namespace gbdt::data
