#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace gbdt::data {

namespace {

/// Distinct value table for a categorical-ish attribute: k values spread over
/// [-1, 1], plus Zipf-like pick probabilities when requested.
struct ValueTable {
  std::vector<float> values;
  std::discrete_distribution<int> pick;
};

ValueTable make_value_table(int k, bool zipf, std::mt19937& rng) {
  ValueTable t;
  t.values.resize(static_cast<std::size_t>(k));
  std::uniform_real_distribution<float> u(-1.f, 1.f);
  for (auto& v : t.values) v = u(rng);
  std::vector<double> w(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    w[static_cast<std::size_t>(r)] = zipf ? 1.0 / (r + 1) : 1.0;
  }
  t.pick = std::discrete_distribution<int>(w.begin(), w.end());
  return t;
}

}  // namespace

Dataset generate(const SyntheticSpec& spec) {
  if (spec.n_instances <= 0 || spec.n_attributes <= 0) {
    throw std::invalid_argument("synthetic spec needs positive dimensions");
  }
  if (spec.density <= 0.0 || spec.density > 1.0) {
    throw std::invalid_argument("synthetic density must be in (0, 1]");
  }
  std::mt19937 rng(spec.seed);
  Dataset ds(spec.n_attributes);

  // Signal: the first k_sig attributes carry the target.
  const int k_sig = static_cast<int>(std::min<std::int64_t>(8, spec.n_attributes));
  std::vector<float> weights(static_cast<std::size_t>(k_sig));
  std::normal_distribution<float> wdist(0.f, 1.f);
  for (auto& w : weights) w = wdist(rng);

  // Per-attribute value tables for the categorical case (shared table keeps
  // memory bounded for very high-dimensional analogs: attributes reuse one of
  // 64 tables).
  std::vector<ValueTable> tables;
  if (spec.distinct_values > 0) {
    const int n_tables =
        static_cast<int>(std::min<std::int64_t>(64, spec.n_attributes));
    tables.reserve(static_cast<std::size_t>(n_tables));
    for (int t = 0; t < n_tables; ++t) {
      tables.push_back(make_value_table(spec.distinct_values,
                                        spec.zipf_values, rng));
    }
  }

  std::uniform_real_distribution<float> cont(-1.f, 1.f);
  std::normal_distribution<float> noise(0.f, static_cast<float>(spec.label_noise));
  std::binomial_distribution<std::int64_t> nnz_dist(
      spec.n_attributes, spec.density);
  std::uniform_int_distribution<std::int64_t> attr_pick(0, spec.n_attributes - 1);

  std::vector<Entry> row;
  std::vector<std::int64_t> attrs;
  std::unordered_set<std::int64_t> seen;
  for (std::int64_t i = 0; i < spec.n_instances; ++i) {
    // Choose which attributes are present.
    attrs.clear();
    if (spec.density >= 1.0) {
      attrs.resize(static_cast<std::size_t>(spec.n_attributes));
      for (std::int64_t a = 0; a < spec.n_attributes; ++a) attrs[static_cast<std::size_t>(a)] = a;
    } else {
      const std::int64_t nnz = std::max<std::int64_t>(1, nnz_dist(rng));
      seen.clear();
      while (static_cast<std::int64_t>(seen.size()) < nnz) {
        seen.insert(attr_pick(rng));
      }
      attrs.assign(seen.begin(), seen.end());
      std::sort(attrs.begin(), attrs.end());
    }

    row.clear();
    row.reserve(attrs.size());
    float signal = 0.f;
    float first_two[2] = {0.f, 0.f};
    for (const std::int64_t a : attrs) {
      float v = 0.f;
      if (spec.distinct_values > 0) {
        auto& table = tables[static_cast<std::size_t>(a % static_cast<std::int64_t>(tables.size()))];
        v = table.values[static_cast<std::size_t>(table.pick(rng))];
      } else {
        v = cont(rng);
      }
      row.push_back({static_cast<std::int32_t>(a), v});
      if (a < k_sig) {
        signal += weights[static_cast<std::size_t>(a)] * v;
        if (a < 2) first_two[a] = v;
      }
    }
    signal += 0.5f * first_two[0] * first_two[1];  // interaction term
    float label = signal + noise(rng);
    if (spec.binary_labels) label = label > 0.f ? 1.f : 0.f;
    ds.add_instance(row, label);
  }
  return ds;
}

std::vector<PaperDatasetInfo> paper_datasets(double scale) {
  if (scale <= 0.0) throw std::invalid_argument("scale must be positive");
  // Analog shapes at scale = 1 (see DESIGN.md section 2): cardinality is
  // scaled down from the real datasets so the whole suite runs on one core;
  // density and value-repetition match the real data's regime.
  std::vector<PaperDatasetInfo> all;

  auto add = [&](std::string paper, std::int64_t card, std::int64_t dim,
                 double speedup, bool gpu_fails, std::int64_t n,
                 std::int64_t d, double density, int distinct, bool binary,
                 unsigned seed) {
    SyntheticSpec s;
    s.name = paper;
    s.n_instances = std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                                   static_cast<double>(n) * scale));
    s.n_attributes = d;
    s.density = density;
    s.distinct_values = distinct;
    s.binary_labels = binary;
    s.seed = seed;
    all.push_back(PaperDatasetInfo{std::move(paper), card, dim, speedup,
                                   gpu_fails, std::move(s)});
  };

  // name          real card  real dim   x40   gpuOOM    n      d   density dist bin seed
  add("covtype",     581012,       54,  1.62,  true,  48000,   54, 0.22,  40, true,  101);
  add("e2006",        16087,   150360,  0.00,  true,   8000, 8000, 0.008,  0, false, 102);
  add("higgs",     11000000,       28,  1.75,  true,  50000,   28, 0.92,   0, true,  103);
  add("insurance",   250000,      298,  0.00,  true,  15000,  300, 0.15,   8, false, 104);
  add("log1p",        16087,  4272227,  0.00,  true,   8000,20000, 0.0015, 0, false, 105);
  add("news20",       19954,  1355191,  1.87,  true,   6000,40000, 0.002, 12, true,  106);
  add("real-sim",     72309,    20958,  1.42,  true,  12000, 3000, 0.017, 10, true,  107);
  add("susy",       5000000,       18,  1.56,  false, 50000,   18, 1.00,   0, true,  108);
  return all;
}

PaperDatasetInfo paper_dataset(const std::string& name, double scale) {
  for (auto& info : paper_datasets(scale)) {
    if (info.paper_name == name) return info;
  }
  throw std::out_of_range("unknown paper dataset: " + name);
}

}  // namespace gbdt::data
