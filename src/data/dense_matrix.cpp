#include "data/dense_matrix.h"

namespace gbdt::data {

DenseMatrix::DenseMatrix(const Dataset& ds)
    : n_(ds.n_instances()), d_(ds.n_attributes()) {
  cells_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(d_),
                0.f);  // missing -> 0
  for (std::int64_t i = 0; i < n_; ++i) {
    for (const auto& e : ds.instance(i)) {
      cells_[static_cast<std::size_t>(i * d_ + e.attr)] = e.value;
    }
  }
}

}  // namespace gbdt::data
