#include "data/libsvm_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gbdt::data {

namespace {

[[noreturn]] void fail(std::int64_t line_no, const std::string& what) {
  throw std::runtime_error("libsvm parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

Dataset read_libsvm(std::istream& in) {
  Dataset ds;
  std::string line;
  std::vector<Entry> entries;
  std::int64_t line_no = 0;
  std::int64_t max_attr = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ss(line);
    float label = 0.f;
    if (!(ss >> label)) continue;  // blank line

    entries.clear();
    std::string tok;
    std::int64_t prev_idx = 0;
    while (ss >> tok) {
      const auto colon = tok.find(':');
      if (colon == std::string::npos) fail(line_no, "missing ':' in '" + tok + "'");
      std::int64_t idx = 0;
      const auto* first = tok.data();
      const auto [p, ec] = std::from_chars(first, first + colon, idx);
      if (ec != std::errc{} || p != first + colon || idx < 1) {
        fail(line_no, "bad feature index in '" + tok + "'");
      }
      if (idx <= prev_idx) fail(line_no, "indices not strictly increasing");
      prev_idx = idx;
      float value = 0.f;
      try {
        value = std::stof(tok.substr(colon + 1));
      } catch (const std::exception&) {
        fail(line_no, "bad feature value in '" + tok + "'");
      }
      entries.push_back({static_cast<std::int32_t>(idx - 1), value});
      if (idx > max_attr) max_attr = idx;
    }
    ds.set_n_attributes(max_attr);
    ds.add_instance(entries, label);
  }
  ds.set_n_attributes(max_attr);
  return ds;
}

Dataset read_libsvm_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_libsvm(in);
}

void write_libsvm(const Dataset& ds, std::ostream& out) {
  out.precision(9);  // float round-trip precision
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    out << ds.labels()[static_cast<std::size_t>(i)];
    for (const auto& e : ds.instance(i)) {
      out << ' ' << (e.attr + 1) << ':' << e.value;
    }
    out << '\n';
  }
}

void write_libsvm_file(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_libsvm(ds, out);
}

void read_query_file(Dataset& ds, std::istream& in) {
  std::vector<std::int64_t> offsets{0};
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ss(line);
    std::int64_t count = 0;
    if (!(ss >> count)) continue;  // blank line
    if (count < 1) fail(line_no, "query group size must be >= 1");
    offsets.push_back(offsets.back() + count);
  }
  if (offsets.back() != ds.n_instances()) {
    throw std::runtime_error(
        "query file covers " + std::to_string(offsets.back()) +
        " instances but the dataset has " + std::to_string(ds.n_instances()));
  }
  ds.set_query_offsets(std::move(offsets));
}

void read_query_file(Dataset& ds, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  read_query_file(ds, in);
}

}  // namespace gbdt::data
