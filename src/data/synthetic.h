// Synthetic dataset generators and the registry of paper-dataset analogs.
//
// The paper evaluates on eight LibSVM datasets spanning three regimes:
// dense/low-dimensional (susy, higgs, covtype), sparse/high-dimensional
// (news20, real-sim, log1p, e2006) and categorical (insurance claims).  The
// effects the paper measures are driven by the *shape* of the data —
// cardinality, dimensionality, density, and how often attribute values
// repeat (which drives RLE compressibility) — so each analog reproduces
// those shape parameters at a scale that runs on one host core.  See
// DESIGN.md section 2 for the substitution rationale and EXPERIMENTS.md for
// the scale factors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace gbdt::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t n_instances = 1000;
  std::int64_t n_attributes = 10;
  /// Fraction of attributes present (non-missing) per instance.
  double density = 1.0;
  /// Number of distinct values per attribute; 0 = continuous (no repeats).
  /// Small values produce long equal-value runs in the sorted attribute
  /// lists, i.e. high RLE compression ratios.
  int distinct_values = 0;
  /// Distinct values are drawn with a Zipf-like skew when true (realistic
  /// for categorical/count data); uniformly otherwise.
  bool zipf_values = true;
  /// Standard deviation of Gaussian label noise.
  double label_noise = 0.1;
  /// Regression target by default; true yields {0,1} labels.
  bool binary_labels = false;
  unsigned seed = 42;
};

/// Generates a sparse dataset with a learnable target: a linear model over a
/// few signal attributes plus one interaction term plus noise.
[[nodiscard]] Dataset generate(const SyntheticSpec& spec);

/// One of the paper's eight datasets, as a scaled synthetic analog.
struct PaperDatasetInfo {
  std::string paper_name;       // name in Table II
  std::int64_t paper_cardinality;  // instances in the real dataset
  std::int64_t paper_dimension;    // attributes in the real dataset
  /// Speedup of GPU-GBDT over xgbst-40 reported in Table II (0 = not legible
  /// in the available copy of the paper).
  double paper_speedup_over_xgb40;
  /// Whether Table II reports the dense xgbst-gpu running out of memory /
  /// failing on this dataset.
  bool paper_xgb_gpu_fails;
  SyntheticSpec spec;  // the analog at scale = 1
};

/// The eight analogs.  `scale` multiplies the analog cardinality (attribute
/// counts stay fixed); use < 1 for quick runs.
[[nodiscard]] std::vector<PaperDatasetInfo> paper_datasets(double scale = 1.0);

/// Lookup by paper name (e.g. "news20"); throws std::out_of_range.
[[nodiscard]] PaperDatasetInfo paper_dataset(const std::string& name,
                                             double scale = 1.0);

}  // namespace gbdt::data
