// Sorted attribute lists (the transposed, per-attribute-sorted layout of
// paper Section II-A): for every attribute, the (instance, value) pairs of
// all instances that have the attribute, sorted by value *descending*.  This
// is the representation GPU-GBDT trains on; instances absent from a column
// have a missing value there and follow the learned default direction.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt::data {

/// Host-side CSC with per-column descending value order.
struct CscMatrix {
  std::int64_t n_instances = 0;
  std::int64_t n_attributes = 0;
  /// col_offsets[a] .. col_offsets[a+1] delimit attribute a's entries.
  std::vector<std::int64_t> col_offsets;
  std::vector<float> values;        // sorted desc within each column
  std::vector<std::int32_t> inst_ids;  // aligned with values

  [[nodiscard]] std::int64_t n_entries() const {
    return static_cast<std::int64_t>(values.size());
  }
  [[nodiscard]] std::size_t bytes() const {
    return values.size() * sizeof(float) +
           inst_ids.size() * sizeof(std::int32_t) +
           col_offsets.size() * sizeof(std::int64_t);
  }
};

/// Builds the CSC on the host (std::stable_sort per column).  Ties keep
/// ascending instance order, matching the device build exactly.
[[nodiscard]] CscMatrix build_csc_host(const Dataset& ds);

/// The same CSC resident on a simulated device.
struct DeviceCsc {
  std::int64_t n_instances = 0;
  std::int64_t n_attributes = 0;
  device::DeviceBuffer<std::int64_t> col_offsets;
  device::DeviceBuffer<float> values;
  device::DeviceBuffer<std::int32_t> inst_ids;
};

/// Transfers the raw entries over PCI-e and sorts them into CSC layout on the
/// device with one composite-key radix sort (attribute asc, value desc,
/// instance asc for ties) — the pipeline GPU-GBDT runs once per dataset.
[[nodiscard]] DeviceCsc build_csc_device(device::Device& dev, const Dataset& ds);

/// Uploads a host CSC as-is (counts the PCI-e traffic, skips the sort).
[[nodiscard]] DeviceCsc upload_csc(device::Device& dev, const CscMatrix& csc);

}  // namespace gbdt::data
