#include "objective/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "primitives/transform.h"

namespace gbdt::objective {

using device::BlockCtx;
using prim::kBlockDim;

RankingObjective::RankingObjective(device::Device& dev,
                                   const GBDTParam& param,
                                   const data::Dataset& ds)
    : dev_(dev), ndcg_k_(param.ndcg_k) {
  if (!ds.has_queries()) {
    throw std::invalid_argument(
        "ranking objective needs query groups on the dataset "
        "(--query-file or Dataset::set_query_offsets)");
  }
  if (ndcg_k_ < 1) throw std::invalid_argument("ndcg_k must be >= 1");
  const auto& offs = ds.query_offsets();
  if (offs.front() != 0 || offs.back() != ds.n_instances()) {
    throw std::invalid_argument("query offsets must cover [0, n_instances)");
  }
  for (std::size_t q = 1; q < offs.size(); ++q) {
    if (offs[q] <= offs[q - 1]) {
      throw std::invalid_argument("query offsets must be strictly increasing");
    }
  }
  n_queries_ = ds.n_queries();
  d_query_offsets_ = dev_.to_device<std::int64_t>(offs);
}

void RankingObjective::gradients(detail::TrainState& st,
                                 const device::DeviceBuffer<float>& labels) {
  const std::int64_t nq = n_queries_;
  const int k = ndcg_k_;
  auto qo = d_query_offsets_.span();
  auto y = labels.span();
  auto p = st.y_pred.span();
  auto g = st.grad.span();
  auto h = st.hess.span();
  constexpr double kSigma = 1.0;
  st.dev.launch(
      "obj_lambda_gradients", device::grid_for(nq, kBlockDim), kBlockDim,
      [&](BlockCtx& b) {
        std::uint64_t pair_ops = 0;
        std::uint64_t docs = 0;
        b.for_each_thread([&](std::int64_t q) {
          if (q >= nq) return;
          const std::int64_t lo = qo[static_cast<std::size_t>(q)];
          const std::int64_t hi = qo[static_cast<std::size_t>(q) + 1];
          const std::int64_t m = hi - lo;
          b.reads(qo, q, 2);
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto u = static_cast<std::size_t>(i);
            g[u] = 0.0;
            h[u] = 0.0;
          }
          // Queries partition the rows, so the scattered g/h writes of
          // distinct threads/blocks never alias.  block-disjoint: each
          // query's [lo, hi) range belongs to exactly one thread.
          b.reads(y, lo, m);
          b.reads(p, lo, m);
          b.writes(g, lo, m);
          b.writes(h, lo, m);
          docs += static_cast<std::uint64_t>(m);
          if (m < 2) return;

          // Positions under the current scores (descending; ties broken by
          // the lower document index, deterministically).
          std::vector<std::int64_t> order(static_cast<std::size_t>(m));
          std::iota(order.begin(), order.end(), lo);
          std::sort(order.begin(), order.end(),
                    [&](std::int64_t a, std::int64_t c) {
                      const auto au = static_cast<std::size_t>(a);
                      const auto cu = static_cast<std::size_t>(c);
                      if (p[au] != p[cu]) return p[au] > p[cu];
                      return a < c;
                    });
          std::vector<double> disc(static_cast<std::size_t>(m), 0.0);
          for (std::int64_t r = 0; r < m; ++r) {
            const auto doc =
                static_cast<std::size_t>(order[static_cast<std::size_t>(r)] -
                                         lo);
            disc[doc] = r < k ? 1.0 / std::log2(static_cast<double>(r) + 2.0)
                              : 0.0;
          }
          // Ideal DCG@k from the labels sorted descending.
          std::vector<double> gains(static_cast<std::size_t>(m));
          for (std::int64_t i = 0; i < m; ++i) {
            gains[static_cast<std::size_t>(i)] =
                std::exp2(static_cast<double>(
                    y[static_cast<std::size_t>(lo + i)])) -
                1.0;
          }
          std::vector<double> ideal = gains;
          std::sort(ideal.begin(), ideal.end(), std::greater<>());
          double idcg = 0.0;
          for (std::int64_t r = 0; r < std::min<std::int64_t>(m, k); ++r) {
            idcg += ideal[static_cast<std::size_t>(r)] /
                    std::log2(static_cast<double>(r) + 2.0);
          }
          if (!(idcg > 0.0)) return;  // all-zero gains: no preference pairs

          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = i + 1; j < m; ++j) {
              const auto iu = static_cast<std::size_t>(i);
              const auto ju = static_cast<std::size_t>(j);
              if (gains[iu] == gains[ju]) continue;
              const bool i_high = gains[iu] > gains[ju];
              const auto hu =
                  static_cast<std::size_t>(lo + (i_high ? i : j));
              const auto lu =
                  static_cast<std::size_t>(lo + (i_high ? j : i));
              const double dndcg =
                  std::abs(gains[iu] - gains[ju]) *
                  std::abs(disc[iu] - disc[ju]) / idcg;
              if (dndcg == 0.0) continue;  // both outside the top-k cutoff
              const double rho =
                  1.0 / (1.0 + std::exp(kSigma * (static_cast<double>(p[hu]) -
                                                  static_cast<double>(p[lu]))));
              const double lam = kSigma * rho * dndcg;
              g[hu] -= lam;
              g[lu] += lam;
              const double w = kSigma * kSigma * rho * (1.0 - rho) * dndcg;
              h[hu] += w;
              h[lu] += w;
              pair_ops += 1;
            }
          }
        });
        // Sort + all-pairs sweep per query; gathers of (y, p) are coalesced
        // within a query's contiguous range, pair updates hit the same
        // cached range repeatedly.
        b.work(docs * 8 + pair_ops * 4);
        b.flop(docs * 6 + pair_ops * 12);
        b.mem_coalesced(docs * 24);
        b.mem_irregular(pair_ops / 4 + 1);
      });
}

}  // namespace gbdt::objective
