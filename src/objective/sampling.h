// Seeded per-tree sampling plans: row subsampling + feature bagging.
//
// A SamplingPlan is drawn on the host from (sampling_seed, tree_index) with
// splitmix64 sub-streams, so every trainer path (exact, sparse, RLE, hist,
// out-of-core, multi-GPU) sees the identical draw and sampled forests are
// bitwise-reproducible for a fixed seed.
//
// The plan is realized as *masks*, not compacted copies: the row mask zeroes
// the unsampled rows' gradients (their contribution to every gain, leaf
// weight and root sum vanishes since g = h = 0, while segment layouts and
// instance counts stay structural), and the feature mask suppresses the
// masked attributes' split candidates inside the existing gain kernels.
// Compaction would change the working-layout segment structure and
// partition kernels of all five trainer paths; masks leave them untouched,
// which is also what keeps the disabled path bitwise-identical (an empty
// mask span means the gain kernels execute the exact pre-sampling code).
#pragma once

#include <cstdint>
#include <vector>

#include "core/param.h"

namespace gbdt::objective {

/// splitmix64 finalizer: the repo-wide seeded sub-stream derivation.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Resolves the feature_bag knob against the attribute count: 0 = all,
/// -1 = floor(sqrt(F)) (clamped to >= 1), n > 0 = min(n, F).
[[nodiscard]] std::int64_t resolve_feature_bag(std::int64_t feature_bag,
                                               std::int64_t n_attr);

/// One boosting round's visibility draw.  Host-side; the RoundDriver uploads
/// the masks and launches the gradient-masking kernel.
class SamplingPlan {
 public:
  /// Draws round `tree_index`'s masks.  Deterministic in
  /// (param.sampling_seed, tree_index, n_inst, n_attr).
  [[nodiscard]] static SamplingPlan make(const GBDTParam& param,
                                         int tree_index, std::int64_t n_inst,
                                         std::int64_t n_attr);

  /// Full visibility: no masks exist and no kernels run (the escape hatch
  /// that keeps subsample=1.0 / feature_bag=all bitwise-identical to the
  /// pre-sampling trainer).
  [[nodiscard]] bool trivial() const {
    return row_mask_.empty() && feature_mask_.empty();
  }
  [[nodiscard]] bool rows_masked() const { return !row_mask_.empty(); }
  [[nodiscard]] bool features_masked() const {
    return !feature_mask_.empty();
  }

  /// Per-row visibility (1 = sampled), size n_inst; empty when subsample=1.
  [[nodiscard]] const std::vector<std::uint8_t>& row_mask() const {
    return row_mask_;
  }
  /// Per-attribute visibility (1 = in the bag), size n_attr; empty when the
  /// bag is the full feature set.
  [[nodiscard]] const std::vector<std::uint8_t>& feature_mask() const {
    return feature_mask_;
  }

  /// Shard-local view of the feature mask for the multi-GPU attribute
  /// sharding (global attribute a lives on shard a % n_shards as local
  /// a / n_shards).  Empty when features are unmasked.
  [[nodiscard]] std::vector<std::uint8_t> shard_feature_mask(
      int n_shards, int shard_index) const;

  [[nodiscard]] std::int64_t sampled_rows() const { return sampled_rows_; }

 private:
  std::vector<std::uint8_t> row_mask_;
  std::vector<std::uint8_t> feature_mask_;
  std::int64_t sampled_rows_ = 0;
};

}  // namespace gbdt::objective
