#include "objective/sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gbdt::objective {

std::int64_t resolve_feature_bag(std::int64_t feature_bag,
                                 std::int64_t n_attr) {
  if (feature_bag == 0) return n_attr;
  if (feature_bag < 0) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::floor(std::sqrt(static_cast<double>(n_attr)))));
  }
  return std::min(feature_bag, n_attr);
}

SamplingPlan SamplingPlan::make(const GBDTParam& param, int tree_index,
                                std::int64_t n_inst, std::int64_t n_attr) {
  if (!(param.subsample > 0.0) || param.subsample > 1.0) {
    throw std::invalid_argument("subsample must be in (0, 1]");
  }
  SamplingPlan plan;
  plan.sampled_rows_ = n_inst;

  // Each draw kind gets its own sub-stream so adding one knob never
  // perturbs the other's sequence for the same (seed, tree).
  const std::uint64_t base =
      param.sampling_seed + 0x51ed2701u * static_cast<std::uint64_t>(
                                              tree_index + 1);

  if (param.subsample < 1.0) {
    // Bernoulli row mask with a deterministic keep-at-least-one fallback so
    // a tiny dataset never trains on an all-zero gradient vector.
    std::uint64_t s = base ^ 0x726f777384u;  // "rows" stream
    const auto threshold = static_cast<std::uint64_t>(
        param.subsample * 18446744073709551615.0);  // 2^64 - 1
    plan.row_mask_.assign(static_cast<std::size_t>(n_inst), 0);
    plan.sampled_rows_ = 0;
    for (std::int64_t i = 0; i < n_inst; ++i) {
      if (splitmix64(s) <= threshold) {
        plan.row_mask_[static_cast<std::size_t>(i)] = 1;
        ++plan.sampled_rows_;
      }
    }
    if (plan.sampled_rows_ == 0) {
      plan.row_mask_[static_cast<std::size_t>(splitmix64(s) %
                                              static_cast<std::uint64_t>(
                                                  n_inst))] = 1;
      plan.sampled_rows_ = 1;
    }
  }

  const std::int64_t bag = resolve_feature_bag(param.feature_bag, n_attr);
  if (bag < n_attr) {
    // Fisher-Yates over the attribute ids, first `bag` form the tree's bag.
    std::uint64_t s = base ^ 0x666561747384u;  // "feats" stream
    std::vector<std::int64_t> perm(static_cast<std::size_t>(n_attr));
    for (std::int64_t a = 0; a < n_attr; ++a) {
      perm[static_cast<std::size_t>(a)] = a;
    }
    for (std::int64_t a = 0; a < bag; ++a) {
      const auto j = a + static_cast<std::int64_t>(
                             splitmix64(s) %
                             static_cast<std::uint64_t>(n_attr - a));
      std::swap(perm[static_cast<std::size_t>(a)],
                perm[static_cast<std::size_t>(j)]);
    }
    plan.feature_mask_.assign(static_cast<std::size_t>(n_attr), 0);
    for (std::int64_t a = 0; a < bag; ++a) {
      plan.feature_mask_[static_cast<std::size_t>(
          perm[static_cast<std::size_t>(a)])] = 1;
    }
  }
  return plan;
}

std::vector<std::uint8_t> SamplingPlan::shard_feature_mask(
    int n_shards, int shard_index) const {
  if (feature_mask_.empty()) return {};
  const auto n_attr = static_cast<std::int64_t>(feature_mask_.size());
  // ceil((F - k) / K) local attributes on shard k; local a maps to global
  // a * K + k (the inverse of global a -> shard a % K, local a / K).
  std::vector<std::uint8_t> local;
  local.reserve(static_cast<std::size_t>(
      (n_attr + (n_shards - 1 - shard_index)) / n_shards));
  for (std::int64_t a = shard_index; a < n_attr;
       a += static_cast<std::int64_t>(n_shards)) {
    local.push_back(feature_mask_[static_cast<std::size_t>(a)]);
  }
  return local;
}

}  // namespace gbdt::objective
