// Pairwise LambdaMART gradients over query groups (learning-to-rank).
//
// For every within-query document pair (i, j) with label_i > label_j the
// pairwise logistic loss l = log(1 + exp(-sigma * (s_i - s_j))) contributes
//
//   rho    = 1 / (1 + exp(sigma * (s_i - s_j)))
//   lambda = sigma * rho * |dNDCG_ij|
//   g_i -= lambda          g_j += lambda
//   h_i += sigma^2 * rho * (1 - rho) * |dNDCG_ij|   (h_j likewise)
//
// where |dNDCG_ij| is the NDCG@k change of swapping the pair's positions in
// the ranking induced by the current scores:
//
//   |2^y_i - 2^y_j| * |disc(pos_i) - disc(pos_j)| / idealDCG@k,
//   disc(p) = 1 / log2(p + 2) for p < k, else 0.
//
// Within a query the lambda gradients sum to zero, so a feature that is
// constant inside every query produces (near-)zero split gains — the
// property that makes the ranking objective ignore query-level bias features
// a pointwise squared error happily splits on.
#pragma once

#include <cstdint>

#include "objective/objective.h"

namespace gbdt::objective {

/// One thread per query: queries partition the instance range, so the
/// per-query gradient writes are block-disjoint by construction.
class RankingObjective final : public Objective {
 public:
  /// Uploads the dataset's query offsets once.  Throws
  /// std::invalid_argument when the dataset has no (or malformed) groups.
  RankingObjective(device::Device& dev, const GBDTParam& param,
                   const data::Dataset& ds);

  void gradients(detail::TrainState& st,
                 const device::DeviceBuffer<float>& labels) override;
  [[nodiscard]] const char* name() const override { return "lambdarank"; }

  [[nodiscard]] std::int64_t n_queries() const { return n_queries_; }

 private:
  device::Device& dev_;
  int ndcg_k_;
  std::int64_t n_queries_ = 0;
  device::DeviceBuffer<std::int64_t> d_query_offsets_;
};

}  // namespace gbdt::objective
