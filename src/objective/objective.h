// The objective layer: per-round gradient production + row/feature
// visibility, shared by every trainer path (exact, sparse, RLE, hist,
// out-of-core; multi-GPU inherits per shard).
//
// It sits between the per-instance `Loss` and the trainers: a trainer no
// longer calls detail::compute_gradients directly at the top of each
// boosting round — it asks a RoundDriver, which dispatches to the configured
// Objective (pointwise Loss derivatives, or pairwise LambdaMART over query
// groups) and then installs the round's SamplingPlan (row-mask kernel +
// feature-mask span on the TrainState).  With the default configuration
// (pointwise, subsample=1.0, feature_bag=all) the driver reduces to exactly
// the old compute_gradients call: no extra kernels, no extra spans, bitwise
// identical forests.
#pragma once

#include <cstdint>
#include <memory>

#include "core/loss.h"
#include "core/param.h"
#include "core/trainer_detail.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt::objective {

/// Produces one boosting round's gradients into st.grad / st.hess from the
/// current st.y_pred and the device-resident labels.
class Objective {
 public:
  virtual ~Objective() = default;
  virtual void gradients(detail::TrainState& st,
                         const device::DeviceBuffer<float>& labels) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Pointwise objective: defers to the per-instance Loss via the shared
/// compute_gradients kernel (bitwise-identical to the pre-objective-layer
/// trainers by construction — it is the same call).
class PointwiseObjective final : public Objective {
 public:
  void gradients(detail::TrainState& st,
                 const device::DeviceBuffer<float>& labels) override {
    detail::compute_gradients(st, labels);
  }
  [[nodiscard]] const char* name() const override { return "pointwise"; }
};

/// Builds the objective the param asks for.  kRanking requires query groups
/// on the dataset (throws std::invalid_argument otherwise).
[[nodiscard]] std::unique_ptr<Objective> make_objective(
    device::Device& dev, const GBDTParam& param, const data::Dataset& ds);

/// How a multi-GPU shard's local attribute ids map to global ones.
enum class ShardAttrMap {
  /// Global attribute a lives on shard a % K as local a / K (the data-
  /// parallel exact path's historical layout).
  kRoundRobin,
  /// Shard k owns the contiguous global range [F*k/K, F*(k+1)/K) and local
  /// a maps to global lo_k + a (the --shard=feature layout).
  kContiguous,
};

/// Per-trainer driver of the objective/sampling layer: owns the Objective
/// and the device-resident masks, and runs the start-of-round sequence.
///
/// Multi-GPU shards pass (n_shards, shard_index) so the feature mask is
/// remapped to shard-local attribute ids; gradients are replicated (every
/// shard holds the full row set), so the same driver works unchanged.
class RoundDriver {
 public:
  RoundDriver(device::Device& dev, const GBDTParam& param,
              const data::Dataset& ds, int n_shards = 1, int shard_index = 0,
              ShardAttrMap attr_map = ShardAttrMap::kRoundRobin);

  /// Start-of-round hook, replacing the trainers' direct
  /// detail::compute_gradients call: produces gradients, then (only when
  /// sampling is configured) draws the round's SamplingPlan, zeroes the
  /// unsampled rows' gradients on the device, and points st.feature_mask at
  /// the round's bag.  st.feature_mask is cleared first, so a trivial plan
  /// leaves the TrainState exactly as the pre-sampling trainers did.
  void begin_round(detail::TrainState& st,
                   const device::DeviceBuffer<float>& labels, int tree_index);

  [[nodiscard]] bool sampling_enabled() const { return sampling_enabled_; }
  [[nodiscard]] const Objective& objective() const { return *objective_; }

 private:
  device::Device& dev_;
  const GBDTParam& param_;
  std::unique_ptr<Objective> objective_;
  std::int64_t global_n_attr_ = 0;
  int n_shards_ = 1;
  int shard_index_ = 0;
  ShardAttrMap attr_map_ = ShardAttrMap::kRoundRobin;
  bool sampling_enabled_ = false;
  device::DeviceBuffer<std::uint8_t> d_row_mask_;
  device::DeviceBuffer<std::uint8_t> d_feature_mask_;
};

}  // namespace gbdt::objective
