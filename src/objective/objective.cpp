#include "objective/objective.h"

#include <stdexcept>

#include "obs/trace.h"
#include "objective/ranking.h"
#include "objective/sampling.h"
#include "primitives/transform.h"

namespace gbdt::objective {

using device::BlockCtx;
using prim::kBlockDim;

std::unique_ptr<Objective> make_objective(device::Device& dev,
                                          const GBDTParam& param,
                                          const data::Dataset& ds) {
  switch (param.objective) {
    case ObjectiveKind::kPointwise:
      return std::make_unique<PointwiseObjective>();
    case ObjectiveKind::kRanking:
      return std::make_unique<RankingObjective>(dev, param, ds);
  }
  throw std::invalid_argument("unknown objective kind");
}

RoundDriver::RoundDriver(device::Device& dev, const GBDTParam& param,
                         const data::Dataset& ds, int n_shards,
                         int shard_index, ShardAttrMap attr_map)
    : dev_(dev), param_(param),
      objective_(make_objective(dev, param, ds)),
      global_n_attr_(ds.n_attributes()), n_shards_(n_shards),
      shard_index_(shard_index), attr_map_(attr_map) {
  if (n_shards_ < 1 || shard_index_ < 0 || shard_index_ >= n_shards_) {
    throw std::invalid_argument("bad shard spec");
  }
  sampling_enabled_ =
      param.subsample < 1.0 ||
      resolve_feature_bag(param.feature_bag, global_n_attr_) < global_n_attr_;
}

void RoundDriver::begin_round(detail::TrainState& st,
                              const device::DeviceBuffer<float>& labels,
                              int tree_index) {
  st.feature_mask = {};
  if (param_.objective == ObjectiveKind::kPointwise) {
    // Same call the trainers used to make directly: bitwise identical and
    // span-free on the default path.
    objective_->gradients(st, labels);
  } else {
    obs::ScopedSpan span("objective_gradients");
    objective_->gradients(st, labels);
  }
  if (!sampling_enabled_) return;

  obs::ScopedSpan span("sampling_plan");
  const SamplingPlan plan =
      SamplingPlan::make(param_, tree_index, st.n_inst, global_n_attr_);

  if (plan.rows_masked()) {
    if (d_row_mask_.size() == 0) {
      d_row_mask_ =
          dev_.alloc<std::uint8_t>(static_cast<std::size_t>(st.n_inst));
    }
    dev_.copy_to_device<std::uint8_t>(plan.row_mask(), d_row_mask_);
    const std::int64_t n = st.n_inst;
    auto mask = d_row_mask_.span();
    auto g = st.grad.span();
    auto h = st.hess.span();
    dev_.launch("sample_mask_gradients", device::grid_for(n, kBlockDim),
                kBlockDim, [&](BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    if (mask[u] == 0) {
                      g[u] = 0.0;
                      h[u] = 0.0;
                    }
                  });
                  b.reads_tile(mask, n);
                  b.writes_tile(g, n);
                  b.writes_tile(h, n);
                  // mask byte read + up to two double writes per row
                  b.mem_coalesced(prim::elems_in_block(b, n) * 17);
                });
  }

  if (plan.features_masked()) {
    std::vector<std::uint8_t> local;
    if (n_shards_ == 1) {
      local = plan.feature_mask();
    } else if (attr_map_ == ShardAttrMap::kRoundRobin) {
      local = plan.shard_feature_mask(n_shards_, shard_index_);
    } else {
      // Contiguous column range [F*k/K, F*(k+1)/K): a straight slice.
      const auto& full = plan.feature_mask();
      const auto f = static_cast<std::size_t>(global_n_attr_);
      const auto k = static_cast<std::size_t>(shard_index_);
      const auto n = static_cast<std::size_t>(n_shards_);
      local.assign(full.begin() + static_cast<std::ptrdiff_t>(f * k / n),
                   full.begin() + static_cast<std::ptrdiff_t>(f * (k + 1) / n));
    }
    if (d_feature_mask_.size() == 0) {
      d_feature_mask_ = dev_.alloc<std::uint8_t>(local.size());
    }
    dev_.copy_to_device<std::uint8_t>(local, d_feature_mask_);
    st.feature_mask = d_feature_mask_.span();
  }
}

}  // namespace gbdt::objective
