// Validation-driven early stopping, metric-direction aware.
//
// The stopper is pure host-side bookkeeping shared by train_with_validation
// and cross_validate: it decides *which* boosting rounds get scored
// (eval_freq) and *when* to stop (patience evaluations without improvement),
// and remembers the best iteration so the caller can truncate the forest
// back to it.
#pragma once

#include <limits>

namespace gbdt::objective {

class EarlyStopper {
 public:
  /// patience: stop after this many *evaluations* without improvement
  /// (0 = never stop, just track the best iteration).
  /// eval_freq: score every eval_freq-th tree (the last tree of the budget
  /// is always scored, so the final model is never unevaluated).
  /// higher_is_better: metric direction (true for NDCG/AUC, false for
  /// rmse/error).
  EarlyStopper(int patience, int eval_freq = 1, bool higher_is_better = false)
      : patience_(patience), eval_freq_(eval_freq < 1 ? 1 : eval_freq),
        higher_(higher_is_better),
        best_metric_(higher_is_better
                         ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity()) {}

  /// Should tree `tree_index` (0-based) of an `n_trees` budget be scored?
  [[nodiscard]] bool should_eval(int tree_index, int n_trees) const {
    return (tree_index + 1) % eval_freq_ == 0 || tree_index == n_trees - 1;
  }

  /// Records the metric of an evaluated round; returns true when training
  /// should stop now.
  bool record(int tree_index, double metric) {
    const bool improved = higher_ ? metric > best_metric_
                                  : metric < best_metric_;
    if (improved) {
      best_metric_ = metric;
      best_iteration_ = tree_index;
      evals_without_improvement_ = 0;
    } else {
      ++evals_without_improvement_;
    }
    if (patience_ > 0 && evals_without_improvement_ >= patience_) {
      stopped_ = true;
    }
    return stopped_;
  }

  [[nodiscard]] int best_iteration() const { return best_iteration_; }
  [[nodiscard]] double best_metric() const { return best_metric_; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] int eval_freq() const { return eval_freq_; }
  [[nodiscard]] bool higher_is_better() const { return higher_; }

 private:
  int patience_;
  int eval_freq_;
  bool higher_;
  double best_metric_;
  int best_iteration_ = -1;
  int evals_without_improvement_ = 0;
  bool stopped_ = false;
};

}  // namespace gbdt::objective
