// Forest sharding/replication across simulated devices.
//
// A ShardScorer pins one ModelSnapshot and uploads its forest to a fleet of
// simulated devices ONCE at construction; every batch after that pays only
// the row upload and the traversal — the serving answer to satellite 4's
// "predict_on_device re-uploads the forest per call".
//
//   kReplicate — every device holds the full forest; batches round-robin
//                across replicas, so independent batches score genuinely in
//                parallel (per-shard mutex, no shared device state).
//   kTreeShard — device k holds only trees [lo_k, hi_k); a batch relays
//                through the shards in order, each seeding its traversal
//                with the previous shard's partial sums.
//
// Bitwise story: predict_resident accumulates a row's trees in ascending
// order onto the seeded output cell.  The relay seeds shard 0 with
// base_score and shard k with shard k-1's partials, so the final double is
// produced by the exact same addition sequence as the offline
// predict_on_device pass — sharded serving is bit-for-bit identical, not
// merely close.  (Independent per-shard sums merged at the end would NOT
// be: floating-point addition does not reassociate.)  kReplicate is
// trivially identical: each replica runs the whole-forest pass.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/predictor.h"
#include "data/dataset.h"
#include "device/device_config.h"
#include "device/device_context.h"
#include "serve/snapshot.h"

namespace gbdt::serve {

/// How the forest is laid out across devices.
enum class ShardMode {
  kReplicate,  // full forest on every device, batches round-robin
  kTreeShard,  // tree ranges across devices, batches relay through all
};

/// The tree range [lo, hi) of `f` as a self-contained forest with
/// tree-local offsets.  Child indices inside a tree are tree-relative, so
/// no node rebasing is needed.
[[nodiscard]] ForestSoA slice_forest(const ForestSoA& f, std::int64_t lo,
                                     std::int64_t hi);

/// A snapshot's forest resident across n_shards simulated devices.
class ShardScorer {
 public:
  ShardScorer(SnapshotPtr snap, int n_shards, ShardMode mode,
              const device::DeviceConfig& cfg);

  ShardScorer(const ShardScorer&) = delete;
  ShardScorer& operator=(const ShardScorer&) = delete;

  /// Scores every row of `batch`: base_score + all leaf weights, bitwise
  /// identical to predict_on_device on the snapshot's source forest.
  /// Thread-safe; concurrent batches interleave across replicas
  /// (kReplicate) or pipeline through the shard relay (kTreeShard).
  [[nodiscard]] std::vector<double> score_batch(const data::Dataset& batch);

  [[nodiscard]] const SnapshotPtr& snapshot() const { return snap_; }
  [[nodiscard]] int n_shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] ShardMode mode() const { return mode_; }

  /// Modeled device-seconds accumulated across all shards' timelines.
  [[nodiscard]] double modeled_seconds() const;

 private:
  struct Shard {
    std::unique_ptr<device::Device> dev;
    std::unique_ptr<DeviceForest> forest;  // full (replicate) or slice
    std::int64_t tree_lo = 0;              // global range held by this shard
    std::int64_t tree_hi = 0;
    std::mutex mu;  // Device is not thread-safe; serialize per shard
  };

  SnapshotPtr snap_;
  ShardMode mode_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> rr_{0};  // replicate-mode round-robin cursor
};

}  // namespace gbdt::serve
