#include "serve/shard_scorer.h"

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "primitives/transform.h"

namespace gbdt::serve {

ForestSoA slice_forest(const ForestSoA& f, std::int64_t lo, std::int64_t hi) {
  ForestSoA s;
  s.base_score = f.base_score;
  const std::size_t node_lo =
      static_cast<std::size_t>(f.tree_off[static_cast<std::size_t>(lo)]);
  const std::size_t node_hi =
      static_cast<std::size_t>(f.tree_off[static_cast<std::size_t>(hi)]);
  s.tree_off.reserve(static_cast<std::size_t>(hi - lo) + 1);
  for (std::int64_t t = lo; t <= hi; ++t) {
    s.tree_off.push_back(f.tree_off[static_cast<std::size_t>(t)] -
                         static_cast<std::int64_t>(node_lo));
  }
  s.left.assign(f.left.begin() + node_lo, f.left.begin() + node_hi);
  s.right.assign(f.right.begin() + node_lo, f.right.begin() + node_hi);
  s.attr.assign(f.attr.begin() + node_lo, f.attr.begin() + node_hi);
  s.split.assign(f.split.begin() + node_lo, f.split.begin() + node_hi);
  s.def_left.assign(f.def_left.begin() + node_lo, f.def_left.begin() + node_hi);
  s.weight.assign(f.weight.begin() + node_lo, f.weight.begin() + node_hi);
  return s;
}

ShardScorer::ShardScorer(SnapshotPtr snap, int n_shards, ShardMode mode,
                         const device::DeviceConfig& cfg)
    : snap_(std::move(snap)), mode_(mode) {
  if (!snap_) throw std::invalid_argument("ShardScorer: null snapshot");
  if (n_shards < 1) throw std::invalid_argument("ShardScorer: n_shards < 1");
  const std::int64_t n_trees = snap_->forest.n_trees();
  // More tree shards than trees would leave empty devices; clamp.
  if (mode_ == ShardMode::kTreeShard && n_trees > 0 &&
      n_shards > static_cast<int>(n_trees)) {
    n_shards = static_cast<int>(n_trees);
  }
  obs::ScopedSpan span("serve_upload_forest");
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int k = 0; k < n_shards; ++k) {
    auto sh = std::make_unique<Shard>();
    sh->dev = std::make_unique<device::Device>(cfg);
    if (mode_ == ShardMode::kTreeShard) {
      sh->tree_lo = n_trees * k / n_shards;
      sh->tree_hi = n_trees * (k + 1) / n_shards;
      sh->forest = std::make_unique<DeviceForest>(
          *sh->dev, slice_forest(snap_->forest, sh->tree_lo, sh->tree_hi));
    } else {
      sh->tree_lo = 0;
      sh->tree_hi = n_trees;
      sh->forest = std::make_unique<DeviceForest>(*sh->dev, snap_->forest);
    }
    shards_.push_back(std::move(sh));
  }
}

std::vector<double> ShardScorer::score_batch(const data::Dataset& batch) {
  const auto n = static_cast<std::size_t>(batch.n_instances());
  std::vector<double> partials(n, snap_->forest.base_score);
  if (n == 0 || snap_->forest.n_trees() == 0) return partials;

  if (mode_ == ShardMode::kReplicate) {
    obs::ScopedSpan span("serve_score_replica");
    Shard& sh = *shards_[rr_.fetch_add(1, std::memory_order_relaxed) %
                         shards_.size()];
    std::lock_guard lk(sh.mu);
    const DeviceRows rows(*sh.dev, batch);
    auto d_out = sh.dev->to_device<double>(partials);
    predict_resident(*sh.dev, *sh.forest, rows, d_out, 0,
                     sh.forest->n_trees(), "serve_predict");
    return sh.dev->to_host(d_out);
  }

  // Tree-shard relay: shard k seeds its traversal with shard k-1's partial
  // sums, so the additions happen in global ascending tree order and the
  // result matches the offline single-device pass bit for bit.
  obs::ScopedSpan span("serve_score_relay");
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard lk(sh.mu);
    const DeviceRows rows(*sh.dev, batch);
    auto d_out = sh.dev->to_device<double>(partials);
    predict_resident(*sh.dev, *sh.forest, rows, d_out, 0,
                     sh.forest->n_trees(), "serve_predict_shard");
    partials = sh.dev->to_host(d_out);
  }
  return partials;
}

double ShardScorer::modeled_seconds() const {
  double s = 0.0;
  for (const auto& shp : shards_) {
    std::lock_guard lk(shp->mu);
    s += shp->dev->elapsed_seconds();
  }
  return s;
}

}  // namespace gbdt::serve
