#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/invariants.h"

namespace gbdt::serve {

namespace {

obs::Histogram& request_seconds(const char* which) {
  // Bucket bounds tuned for sub-millisecond serving latencies.
  static const std::vector<double> kBounds = {
      1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1};
  return obs::Registry::global().histogram(which, {}, kBounds);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

PredictionService::Engine::Engine(SnapshotPtr s, const ServeConfig& cfg)
    : snap(std::move(s)),
      scorer(std::make_unique<ShardScorer>(snap, cfg.n_shards, cfg.mode,
                                           cfg.device)),
      row_pred(snap->forest) {}

PredictionService::PredictionService(const GBDTModel& model, ServeConfig cfg)
    : cfg_(cfg), q_(cfg.queue_capacity, cfg.policy) {
  {
    obs::ScopedSpan span("serve_publish");
    auto snap = registry_.publish(model);
    auto eng = std::make_shared<const Engine>(std::move(snap), cfg_);
    std::lock_guard lk(engine_mu_);
    engine_ = std::move(eng);
  }
  const int n_workers = std::max(1, cfg_.n_workers);
  workers_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PredictionService::~PredictionService() { shutdown(); }

SnapshotPtr PredictionService::publish(const GBDTModel& model) {
  obs::ScopedSpan span("serve_publish");
  // Build the whole engine before taking the swap lock: forest uploads to
  // every shard device happen off to the side, serving never pauses.
  auto snap = registry_.publish(model);
  auto eng = std::make_shared<const Engine>(snap, cfg_);
  {
    std::lock_guard lk(engine_mu_);
    engine_ = std::move(eng);
  }
  obs::Registry::global().counter("serve_swaps_total").inc();
  return snap;
}

SnapshotPtr PredictionService::current_snapshot() const {
  return engine()->snap;
}

std::shared_ptr<const PredictionService::Engine> PredictionService::engine()
    const {
  std::lock_guard lk(engine_mu_);
  return engine_;
}

std::optional<std::future<Response>> PredictionService::submit(
    std::vector<data::Entry> row) {
  Request req;
  req.row = std::move(row);
  req.enqueued = std::chrono::steady_clock::now();
  auto fut = req.promise.get_future();
  obs::Registry::global().counter("serve_requests_total").inc();
  if (!q_.push(std::move(req))) {
    obs::Registry::global().counter("serve_rejected_total").inc();
    return std::nullopt;
  }
  return fut;
}

Response PredictionService::predict_row(
    std::span<const data::Entry> row) const {
  obs::ScopedSpan span("serve_predict_row");
  const auto t0 = std::chrono::steady_clock::now();
  auto eng = engine();  // pin: a concurrent publish cannot tear this call
  if (testing::invariants_enabled()) eng->snap->verify();
  Response r{eng->row_pred.score(row), eng->snap->version,
             std::chrono::steady_clock::now()};
  request_seconds("serve_row_request_seconds").observe(seconds_since(t0));
  obs::Registry::global().counter("serve_row_requests_total").inc();
  return r;
}

void PredictionService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    q_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  });
}

void PredictionService::worker_loop() {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    const std::size_t n = q_.pop_batch(batch, cfg_.max_batch, cfg_.max_wait());
    if (n == 0) break;  // closed and drained
    process_batch(batch);
  }
}

void PredictionService::process_batch(std::vector<Request>& batch) {
  obs::ScopedSpan span("serve_batch");
  auto eng = engine();  // pinned: the whole batch scores on one version
  try {
    if (testing::invariants_enabled()) eng->snap->verify();
    // Batch rows may mention attributes the training data never saw; widen
    // the scratch dataset so add_instance's range check holds (the forest
    // simply never splits on them).
    std::int64_t width = eng->snap->n_attributes;
    for (const auto& r : batch) {
      for (const auto& e : r.row) {
        width = std::max<std::int64_t>(width, e.attr + 1);
      }
    }
    data::Dataset rows(width);
    for (const auto& r : batch) {
      rows.add_instance(r.row, 0.0f);
    }
    const std::vector<double> scores = eng->scorer->score_batch(rows);
    const auto done = std::chrono::steady_clock::now();
    auto& lat = request_seconds("serve_batch_request_seconds");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(
          Response{scores[i], eng->snap->version, done});
      lat.observe(seconds_since(batch[i].enqueued));
    }
  } catch (...) {
    // A failed batch (e.g. a torn-swap InvariantViolation) fails every
    // request in it — callers see the exception through their future.
    for (auto& r : batch) {
      r.promise.set_exception(std::current_exception());
    }
  }
  obs::Registry::global().counter("serve_batches_total").inc();
  obs::Registry::global()
      .histogram("serve_batch_size")
      .observe(static_cast<double>(batch.size()));
  std::lock_guard lk(stat_mu_);
  ++batches_;
  completed_ += batch.size();
}

std::uint64_t PredictionService::completed() const {
  std::lock_guard lk(stat_mu_);
  return completed_;
}

std::uint64_t PredictionService::batches() const {
  std::lock_guard lk(stat_mu_);
  return batches_;
}

std::uint64_t PredictionService::swaps() const { return registry_.swaps(); }

double PredictionService::modeled_seconds() const {
  return engine()->scorer->modeled_seconds();
}

}  // namespace gbdt::serve
