// Bounded MPMC request queue feeding the serving micro-batcher.
//
// Producers are request threads (PredictionService::submit), consumers are
// batcher workers.  The queue is bounded so a traffic spike turns into
// explicit backpressure instead of unbounded memory growth; the overflow
// policy picks between the two production answers:
//
//   kBlock  — producers wait until a slot frees (admission control at the
//             caller, latency absorbs the spike);
//   kReject — push fails immediately when full (load shedding; the caller
//             sees the rejection and can retry or degrade).
//
// pop_batch implements the micro-batcher's flush rule: it waits for the
// first request, then keeps collecting until either `max` requests are in
// hand or the flush deadline (max_wait from the *first* pop) passes —
// "flush on max_batch or max_wait ticks".
//
// close() stops new work while letting consumers drain: pushes fail after
// close, pop_batch keeps returning queued requests until the queue is
// empty, then returns 0 with closed() observable — so a shutting-down
// service finishes every admitted request (drain-on-shutdown is tested).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace gbdt::serve {

/// What a full queue does to the next push.
enum class OverflowPolicy {
  kBlock,   // wait for space (backpressure)
  kReject,  // fail fast (load shedding)
};

/// Bounded multi-producer multi-consumer FIFO.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity,
                        OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues one item.  Returns false when the item was NOT admitted:
  /// the queue is closed, or it is full under kReject.  Under kBlock a
  /// full queue makes the caller wait; a close() while waiting also
  /// returns false.
  bool push(T item) {
    std::unique_lock lk(mu_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lk, [&] { return closed_ || q_.size() < capacity_; });
    }
    if (closed_ || q_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    q_.push_back(std::move(item));
    ++pushed_;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Collects up to `max` items into `out` (appended).  Blocks until the
  /// first item arrives (or the queue closes empty), then keeps collecting
  /// until `max` items are in hand or `max_wait` has elapsed since the
  /// first item was taken.  Returns the number of items appended; 0 means
  /// closed-and-drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max,
                        std::chrono::nanoseconds max_wait) {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return 0;  // closed and drained

    std::size_t taken = 0;
    auto take_available = [&] {
      while (taken < max && !q_.empty()) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
        ++taken;
      }
    };
    take_available();
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (taken < max && !closed_) {
      if (not_empty_.wait_until(lk, deadline, [&] {
            return closed_ || !q_.empty();
          })) {
        take_available();
      } else {
        break;  // flush deadline passed
      }
    }
    popped_ += taken;
    lk.unlock();
    // Under kBlock every taken slot may unblock one waiting producer.
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Rejects all future pushes; wakes blocked producers (their push fails)
  /// and consumers (they drain, then see 0).
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }

  /// Lifetime counters (exact once producers/consumers have quiesced).
  [[nodiscard]] std::uint64_t pushed() const {
    std::lock_guard lk(mu_);
    return pushed_;
  }
  [[nodiscard]] std::uint64_t popped() const {
    std::lock_guard lk(mu_);
    return popped_;
  }
  [[nodiscard]] std::uint64_t rejected() const {
    std::lock_guard lk(mu_);
    return rejected_;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> q_;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace gbdt::serve
