#include "serve/snapshot.h"

#include <cstring>
#include <string>

#include "testing/invariants.h"

namespace gbdt::serve {

namespace {

/// FNV-1a over a raw byte range.
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_vec(const std::vector<T>& v, std::uint64_t h) {
  return fnv1a(v.data(), v.size() * sizeof(T), h);
}

}  // namespace

std::uint64_t ModelSnapshot::compute_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(&version, sizeof(version), h);
  h = fnv1a(&forest.base_score, sizeof(forest.base_score), h);
  h = fnv1a_vec(forest.tree_off, h);
  h = fnv1a_vec(forest.left, h);
  h = fnv1a_vec(forest.right, h);
  h = fnv1a_vec(forest.attr, h);
  h = fnv1a_vec(forest.split, h);
  h = fnv1a_vec(forest.def_left, h);
  h = fnv1a_vec(forest.weight, h);
  return h;
}

void ModelSnapshot::verify() const {
  const std::uint64_t now = compute_fingerprint();
  if (now != fingerprint) {
    throw testing::InvariantViolation(
        "serving snapshot v" + std::to_string(version) +
        " failed its fingerprint check (torn swap: published " +
        std::to_string(fingerprint) + ", observed " + std::to_string(now) +
        ")");
  }
}

SnapshotPtr make_snapshot(const GBDTModel& model, std::uint64_t version) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->forest = ForestSoA::flatten(model.trees(), model.base_score());
  snap->loss = model.param().loss;
  snap->n_attributes = model.n_attributes();
  snap->fingerprint = snap->compute_fingerprint();
  // Fault injection: corrupt one leaf weight AFTER fingerprinting, so the
  // published snapshot is torn the way a racy non-atomic swap would be.
  if (testing::invariants_enabled() &&
      testing::fault_injection().serve_torn_swap &&
      !snap->forest.weight.empty()) {
    snap->forest.weight.back() += 1.0;
  }
  return snap;
}

SnapshotPtr SnapshotRegistry::publish(const GBDTModel& model) {
  std::lock_guard lk(mu_);
  auto snap = make_snapshot(model, next_version_++);
  cur_ = snap;
  ++swaps_;
  return snap;
}

SnapshotPtr SnapshotRegistry::current() const {
  std::lock_guard lk(mu_);
  return cur_;
}

std::uint64_t SnapshotRegistry::swaps() const {
  std::lock_guard lk(mu_);
  return swaps_;
}

}  // namespace gbdt::serve
