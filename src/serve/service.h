// The prediction service: bounded request queue -> dynamic micro-batcher ->
// shard scorer -> per-request responses, with atomic model hot-swap.
//
// Request path (batched):
//   submit(row) enqueues a promise-backed request; worker threads pop
//   micro-batches (flush on max_batch or max_wait ticks), pin the current
//   engine (snapshot + shard scorer), score the batch on the simulated
//   device fleet and fulfil each promise with {raw score, model version}.
//
// Request path (single-row fast path):
//   predict_row(row) skips the queue entirely and scores on the host
//   RowPredictor over the pinned snapshot's flat SoA — no upload, no
//   batching latency, bitwise identical to the batched answer.
//
// Hot swap:
//   publish(model) builds a complete new engine off to the side (snapshot,
//   fingerprint, forest uploads to every shard device) and then swaps one
//   shared_ptr under a mutex.  In-flight batches and fast-path calls keep
//   the engine they pinned, so they finish on their version; new arrivals
//   see the new one.  Zero pause, no torn state — and the snapshot
//   fingerprint check (invariant-gated) makes "no torn state" executable.
//
// Shutdown:
//   close the queue (new submits fail), workers drain everything already
//   admitted, then join.  No admitted request is ever dropped.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/gbdt.h"
#include "core/predictor.h"
#include "data/dataset.h"
#include "serve/request_queue.h"
#include "serve/shard_scorer.h"
#include "serve/snapshot.h"

namespace gbdt::serve {

/// Knobs of the serving pipeline.  `max_wait_ticks` is in scheduler ticks
/// (tick duration below) so tests can reason in integers.
struct ServeConfig {
  std::size_t queue_capacity = 1024;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  std::size_t max_batch = 64;
  std::int64_t max_wait_ticks = 4;
  std::chrono::nanoseconds tick = std::chrono::microseconds(50);
  int n_workers = 1;
  int n_shards = 1;
  ShardMode mode = ShardMode::kReplicate;
  device::DeviceConfig device = device::DeviceConfig::titan_x_pascal();

  [[nodiscard]] std::chrono::nanoseconds max_wait() const {
    return tick * max_wait_ticks;
  }
};

/// One scored request: the raw score (pre loss transform) and the model
/// version that produced it — every response is attributable to exactly
/// one published snapshot.  `completed` is stamped by the scorer the moment
/// the score is ready, so clients compute exact per-request latency even
/// when they harvest futures out of order.
struct Response {
  double score = 0.0;
  std::uint64_t version = 0;
  std::chrono::steady_clock::time_point completed;
};

class PredictionService {
 public:
  PredictionService(const GBDTModel& model, ServeConfig cfg);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Hot-swaps to `model`: builds the new engine (snapshot + uploads) off
  /// to the side, then publishes it atomically.  Returns the new snapshot.
  SnapshotPtr publish(const GBDTModel& model);

  /// The currently published snapshot.
  [[nodiscard]] SnapshotPtr current_snapshot() const;

  /// Enqueues one row for micro-batched scoring.  Returns nullopt when the
  /// request was not admitted (queue closed, or full under kReject).
  [[nodiscard]] std::optional<std::future<Response>> submit(
      std::vector<data::Entry> row);

  /// Single-row fast path: host-side traversal of the pinned snapshot, no
  /// queue, no device round-trip.  Bitwise identical to the batched path.
  [[nodiscard]] Response predict_row(std::span<const data::Entry> row) const;

  /// Closes the queue and drains: every admitted request is fulfilled
  /// before the workers exit.  Idempotent; the destructor calls it.
  void shutdown();

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const { return q_.pushed(); }
  [[nodiscard]] std::uint64_t rejected() const { return q_.rejected(); }
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t batches() const;
  [[nodiscard]] std::uint64_t swaps() const;
  /// Modeled device-seconds on the current engine's shard fleet.
  [[nodiscard]] double modeled_seconds() const;
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }

 private:
  /// Everything a request needs from one published version, swapped as a
  /// unit so a batch never mixes two models.
  struct Engine {
    SnapshotPtr snap;
    std::unique_ptr<ShardScorer> scorer;
    RowPredictor row_pred;
    Engine(SnapshotPtr s, const ServeConfig& cfg);
  };

  struct Request {
    std::vector<data::Entry> row;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  [[nodiscard]] std::shared_ptr<const Engine> engine() const;
  void worker_loop();
  void process_batch(std::vector<Request>& batch);

  ServeConfig cfg_;
  SnapshotRegistry registry_;

  mutable std::mutex engine_mu_;
  std::shared_ptr<const Engine> engine_;

  RequestQueue<Request> q_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  mutable std::mutex stat_mu_;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace gbdt::serve
