// Versioned immutable model snapshots and the hot-swap registry.
//
// A ModelSnapshot is a frozen, flattened copy of a GBDTModel: the flat-SoA
// forest the predictor traverses, the loss (for score transforms), a
// monotonically increasing version number, and a fingerprint over the
// forest bytes taken at build time.  Snapshots are immutable after
// publish; everything downstream (shard scorers, row predictors, in-flight
// batches) holds them by shared_ptr, so a hot swap never pauses serving:
// new requests pin the new version, in-flight batches finish on the
// version they pinned, and the old snapshot dies with its last reference.
//
// The fingerprint makes "no torn forests" executable: verify() rehashes
// the arrays and throws testing::InvariantViolation on mismatch.  The
// serving layer calls it (invariant-gated, free when disabled) before
// scoring with a pinned snapshot; the serve_torn_swap fault injection
// publishes a snapshot corrupted *after* fingerprinting so tests can prove
// the detector fires.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/gbdt.h"
#include "core/predictor.h"

namespace gbdt::serve {

/// Immutable published model version.
struct ModelSnapshot {
  std::uint64_t version = 0;
  ForestSoA forest;
  LossKind loss = LossKind::kSquaredError;
  std::int64_t n_attributes = 0;
  std::uint64_t fingerprint = 0;  // FNV-1a over the forest arrays

  /// Rehashes the forest arrays.
  [[nodiscard]] std::uint64_t compute_fingerprint() const;

  /// Throws testing::InvariantViolation when the forest no longer matches
  /// the fingerprint taken at publish time (a torn swap).
  void verify() const;
};

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Builds a frozen snapshot of `model` with the given version; the
/// fingerprint is taken here.  When the serve_torn_swap fault is armed
/// (and invariants are enabled) one leaf weight is flipped *after*
/// fingerprinting, producing the torn snapshot the detector must catch.
[[nodiscard]] SnapshotPtr make_snapshot(const GBDTModel& model,
                                        std::uint64_t version);

/// Atomic publish/read point for the current model version.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Freezes `model` as the next version and publishes it.  Returns the
  /// published snapshot.
  SnapshotPtr publish(const GBDTModel& model);

  /// The latest published snapshot (nullptr before the first publish).
  /// The returned pointer pins that version for as long as it is held.
  [[nodiscard]] SnapshotPtr current() const;

  /// Number of publishes so far.
  [[nodiscard]] std::uint64_t swaps() const;

 private:
  mutable std::mutex mu_;
  SnapshotPtr cur_;
  std::uint64_t next_version_ = 1;
  std::uint64_t swaps_ = 0;
};

}  // namespace gbdt::serve
