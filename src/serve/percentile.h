// Exact nearest-rank percentiles over recorded latency samples — shared by
// `gbdt serve/loadgen` and bench_serve so every report computes p50/p95/p99
// the same way (the obs histograms are bucketed; these are exact).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gbdt::serve {

/// Nearest-rank percentiles (each p in [0, 100]) of `xs`, sorting the
/// samples once; result is positional (out[i] answers ps[i]).  All zeros
/// when `xs` is empty.
inline std::vector<double> percentiles(std::vector<double> xs,
                                       std::initializer_list<double> ps) {
  std::vector<double> out;
  out.reserve(ps.size());
  if (xs.empty()) {
    out.assign(ps.size(), 0.0);
    return out;
  }
  std::sort(xs.begin(), xs.end());
  for (const double p : ps) {
    const double rank = p / 100.0 * static_cast<double>(xs.size());
    auto idx = static_cast<std::size_t>(std::ceil(rank));
    if (idx > 0) --idx;
    if (idx >= xs.size()) idx = xs.size() - 1;
    out.push_back(xs[idx]);
  }
  return out;
}

/// Nearest-rank percentile (p in [0, 100]) of `xs`; 0 when empty.
inline double percentile(std::vector<double> xs, double p) {
  return percentiles(std::move(xs), {p}).front();
}

}  // namespace gbdt::serve
