// Exact nearest-rank percentiles over recorded latency samples — shared by
// `gbdt serve/loadgen` and bench_serve so every report computes p50/p95/p99
// the same way (the obs histograms are bucketed; these are exact).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace gbdt::serve {

/// Nearest-rank percentile (p in [0, 100]) of `xs`; 0 when empty.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

}  // namespace gbdt::serve
