// Kernel access auditor: per-buffer shadow access maps for simulated kernels.
//
// The thread-pool contract ("kernel bodies must only write to disjoint
// outputs per block") is what makes the host-parallel execution of simulated
// kernels race-free — and, on a real GPU, what makes the corresponding
// kernels correct without atomics.  This header turns that prose contract
// into an enforced one: kernel bodies *declare* the element intervals each
// block reads and writes (BlockCtx::reads / BlockCtx::writes), and when
// auditing is armed (GBDT_AUDIT_ACCESS=1 or set_audit_enabled) every launch
// verifies at kernel end that
//   (a) no two blocks wrote overlapping elements,
//   (b) no block read an element another block wrote in the same launch,
//   (c) every declared access was in bounds (checked at record time, so the
//       report carries the offending block).
// Violations throw AuditViolation with a minimized report: kernel label,
// buffer identity/geometry, the conflicting block ids, and the overlapping
// element range.  When auditing is off, recording collapses to a null-pointer
// check per declaration.
//
// Annotations may under-approximate *reads* of buffers no launch writes
// (read-only tables); they must never under-approximate writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gbdt::analysis {

/// Thrown when a launch violates the block-disjoint access contract.
class AuditViolation : public std::logic_error {
 public:
  explicit AuditViolation(const std::string& what)
      : std::logic_error("kernel access violation: " + what) {}
};

/// Whether launches audit their declared accesses.  Initialised lazily from
/// the GBDT_AUDIT_ACCESS environment variable ("1"/"on"/"true");
/// set_audit_enabled overrides it (tests, the fuzz harness).
[[nodiscard]] bool audit_enabled();
void set_audit_enabled(bool enabled);

/// DeviceAllocator hook: called when more bytes are released than are in
/// use.  Accounting-only when auditing is off; when auditing is armed the
/// over-release is reported to stderr and the process aborts (release runs
/// in destructors, so throwing is not an option).
void report_over_release(std::size_t bytes, std::size_t used);

/// Per-Device shadow access map of one kernel launch.
///
/// begin() opens the shadow maps for a launch; record() appends one
/// read/write interval of one block (thread-safe: blocks run across the host
/// thread pool); finish() verifies the block-disjointness contract and
/// clears; abandon() clears without verifying (used when the kernel body
/// itself threw).  Bounds violations throw from record() so the error
/// carries the offending block and unwinds through the (exception-safe)
/// thread pool.
class LaunchAuditor {
 public:
  void begin(std::string_view kernel);
  void record(std::int64_t block, const void* base, std::size_t elem_size,
              std::size_t n_elems, std::int64_t lo, std::int64_t count,
              bool is_write);
  void finish();
  void abandon();

 private:
  struct Interval {
    std::int64_t lo;
    std::int64_t hi;  // exclusive
    std::int64_t block;
  };
  struct ShadowMap {
    std::size_t elem_size = 0;
    std::size_t n_elems = 0;
    std::vector<Interval> writes;
    std::vector<Interval> reads;
  };

  [[nodiscard]] std::string describe_buffer(const void* base,
                                            const ShadowMap& m) const;

  std::mutex mu_;
  std::string kernel_;
  std::map<const void*, ShadowMap> buffers_;
};

}  // namespace gbdt::analysis
