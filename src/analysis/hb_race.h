// Stream-aware happens-before race detector for the simulated device.
//
// The PR-3 access auditor checks block-disjointness *within* one launch;
// this detector checks ordering *between* operations once the device grows
// streams.  Every device operation (kernel launch, async copy) carries the
// per-buffer element intervals it reads and writes — reusing the footprint
// declarations kernels already make via BlockCtx::reads/writes — and the
// detector maintains:
//
//  * one vector clock per stream (VC[s][t] = number of stream-t operations
//    stream s provably happens-after), advanced by the edge rules below;
//  * a host clock H joined into every enqueue (work enqueued after a
//    sync() returns is ordered after everything the sync covered);
//  * per-event snapshots of the recording stream's clock;
//  * shadow last-writer / last-reader interval lists per device buffer.
//
// Edge rules (the model documented in DESIGN.md §5h):
//  * program order: operations on one stream are FIFO — each op increments
//    its stream's own component;
//  * record_event(s) snapshots VC[s]; wait_event(d, e) joins the snapshot
//    into VC[d];
//  * sync(s) joins VC[s] into H; sync() joins every stream into H; every
//    enqueue on stream s first joins H into VC[s];
//  * the default stream (0) has legacy blocking semantics: a default-stream
//    op joins *all* stream clocks before running and propagates its clock
//    to all streams after — which is why fully synchronous programs can
//    never race.
//
// An earlier access B on stream t happens-before the current op A iff
// VC_A[t] >= B's own-component timestamp at record time (the FastTrack
// epoch test).  Two overlapping accesses, at least one a write, with no
// such ordering throw RaceViolation naming both operations, the buffer,
// the overlapping byte range, and the missing edge.
//
// Armed by GBDT_RACE_DETECT=1 or set_race_detect_enabled (the fuzz
// harness); when off, every hook is a relaxed atomic load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gbdt::analysis {

/// Thrown when two device operations touch overlapping buffer elements
/// with no happens-before edge between them.
class RaceViolation : public std::logic_error {
 public:
  explicit RaceViolation(const std::string& what)
      : std::logic_error("stream race violation: " + what) {}
};

/// Whether device operations feed the happens-before detector.  Initialised
/// lazily from the GBDT_RACE_DETECT environment variable ("1"/"on"/"true");
/// set_race_detect_enabled overrides it (tests, the fuzz harness).
[[nodiscard]] bool race_detect_enabled();
void set_race_detect_enabled(bool enabled);

/// Collects one operation's merged per-buffer access footprint.  Kernel
/// blocks record concurrently from the host thread pool (mutex-guarded);
/// the Device hands the collected map to HbRaceDetector::on_op.
class LaunchFootprint {
 public:
  struct Interval {
    std::int64_t lo;
    std::int64_t hi;  // exclusive
  };
  struct Buffer {
    std::size_t elem_size = 0;
    std::size_t n_elems = 0;
    std::vector<Interval> writes;
    std::vector<Interval> reads;
  };
  using Map = std::map<const void*, Buffer>;

  void record(const void* base, std::size_t elem_size, std::size_t n_elems,
              std::int64_t lo, std::int64_t count, bool is_write);

  /// Returns the collected footprint and leaves the collector empty.
  [[nodiscard]] Map take();

 private:
  std::mutex mu_;
  Map buffers_;
};

/// Per-Device happens-before state.  All methods are called from the host
/// thread that drives the device (kernel *bodies* run on the pool, but ops
/// are processed one at a time), so no internal locking is needed beyond
/// LaunchFootprint's.
class HbRaceDetector {
 public:
  /// Processes one operation's footprint on `stream` (0 = default stream).
  /// `kind` is a short noun for reports ("kernel", "copy").  Throws
  /// RaceViolation on the first unordered overlapping access pair.
  void on_op(int stream, std::string_view label, std::string_view kind,
             LaunchFootprint::Map footprint);

  /// Event edges: record snapshots the stream clock, wait joins it.
  void record_event(int stream, int event);
  void wait_event(int stream, int event);

  /// Host joins: sync(s) / sync-all fold stream clocks into the host clock,
  /// ordering everything enqueued afterwards behind them.
  void sync_stream(int stream);
  void sync_all();

  /// Buffer freed: drop its shadow state so a later allocation reusing the
  /// address does not inherit stale accesses.
  void on_free(const void* base) noexcept;

  /// Drops all shadow/clock state (paired with Device::reset_timeline-style
  /// reuse in tests).
  void reset();

 private:
  using Clock = std::vector<std::uint64_t>;

  struct Access {
    std::int64_t lo;
    std::int64_t hi;  // exclusive
    int stream;
    std::uint64_t epoch;   // owner-component timestamp at record time
    std::uint64_t op_seq;  // per-stream op number, for reports
    std::string label;
    std::string kind;
  };
  struct Shadow {
    std::size_t elem_size = 0;
    std::size_t n_elems = 0;
    std::vector<Access> writes;
    std::vector<Access> reads;
  };

  void ensure_stream(int stream);
  static void join(Clock& into, const Clock& from);
  /// True iff the recorded access happens-before a clock (epoch test).
  [[nodiscard]] static bool ordered(const Access& b, const Clock& vc);
  [[noreturn]] void report(const Access& prior, bool prior_write,
                           const void* base, const Shadow& m, int stream,
                           std::uint64_t op_seq, std::string_view label,
                           std::string_view kind, std::int64_t lo,
                           std::int64_t hi, bool is_write) const;

  std::vector<Clock> vc_;        // per-stream clocks
  Clock host_vc_;                // host clock H
  std::map<int, Clock> events_;  // event id -> recorded snapshot
  std::vector<std::uint64_t> op_count_;  // per-stream ops, for reports
  std::map<const void*, Shadow> shadow_;
};

}  // namespace gbdt::analysis
