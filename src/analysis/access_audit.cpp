#include "analysis/access_audit.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gbdt::analysis {

namespace {

bool env_audit_enabled() {
  const char* v = std::getenv("GBDT_AUDIT_ACCESS");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "true" || s == "ON" || s == "TRUE";
}

std::atomic<int>& audit_state() {
  // -1: unresolved (consult the environment), 0: off, 1: on.
  static std::atomic<int> state{-1};
  return state;
}

}  // namespace

bool audit_enabled() {
  int s = audit_state().load(std::memory_order_relaxed);
  if (s < 0) {
    s = env_audit_enabled() ? 1 : 0;
    audit_state().store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_audit_enabled(bool enabled) {
  audit_state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void report_over_release(std::size_t bytes, std::size_t used) {
  if (!audit_enabled()) return;
  // release() is noexcept and runs inside destructors, so the only honest
  // way to fail is hard: report and abort (EXPECT_DEATH-testable).
  std::fprintf(stderr,
               "gbdt audit: DeviceAllocator over-release: released %zu bytes "
               "with only %zu in use\n",
               bytes, used);
  std::fflush(stderr);
  std::abort();
}

void LaunchAuditor::begin(std::string_view kernel) {
  std::lock_guard<std::mutex> lk(mu_);
  kernel_.assign(kernel);
  buffers_.clear();
}

std::string LaunchAuditor::describe_buffer(const void* base,
                                           const ShadowMap& m) const {
  std::ostringstream os;
  os << "buffer " << base << " (" << m.n_elems << " elems x " << m.elem_size
     << "B)";
  return os.str();
}

void LaunchAuditor::record(std::int64_t block, const void* base,
                           std::size_t elem_size, std::size_t n_elems,
                           std::int64_t lo, std::int64_t count,
                           bool is_write) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  ShadowMap& m = buffers_[base];
  if (m.elem_size == 0) {
    m.elem_size = elem_size;
    m.n_elems = n_elems;
  }
  if (lo < 0 || count > static_cast<std::int64_t>(n_elems) ||
      lo > static_cast<std::int64_t>(n_elems) - count) {
    std::ostringstream os;
    os << "kernel '" << kernel_ << "': block " << block << " "
       << (is_write ? "writes" : "reads") << " out of bounds: elements [" << lo
       << ", " << (lo + count) << ") of " << describe_buffer(base, m);
    throw AuditViolation(os.str());
  }
  std::vector<Interval>& v = is_write ? m.writes : m.reads;
  // Coalesce the common pattern of a block touching consecutive elements.
  if (!v.empty() && v.back().block == block && v.back().hi == lo) {
    v.back().hi = lo + count;
  } else {
    v.push_back(Interval{lo, lo + count, block});
  }
}

void LaunchAuditor::abandon() {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_.clear();
  kernel_.clear();
}

void LaunchAuditor::finish() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> problems;
  const auto interval_less = [](const Interval& a, const Interval& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
  };
  for (auto& [base, m] : buffers_) {
    std::sort(m.writes.begin(), m.writes.end(), interval_less);

    // (a) No two blocks may write overlapping elements.  Sweep the sorted
    // intervals keeping the furthest-reaching open interval; a report names
    // the first conflicting pair per buffer (minimized: one line each).
    if (!m.writes.empty()) {
      Interval cur = m.writes.front();
      for (std::size_t i = 1; i < m.writes.size(); ++i) {
        const Interval& w = m.writes[i];
        if (w.lo < cur.hi && w.block != cur.block) {
          std::ostringstream os;
          os << "kernel '" << kernel_ << "': blocks " << cur.block << " and "
             << w.block << " both write elements [" << w.lo << ", "
             << std::min(cur.hi, w.hi) << ") of " << describe_buffer(base, m);
          problems.push_back(os.str());
          break;
        }
        if (w.hi > cur.hi || w.lo >= cur.hi) {
          if (w.lo >= cur.hi) {
            cur = w;
          } else {
            cur.hi = w.hi;  // same block extends the open interval
          }
        }
      }
    }

    // (b) No block may read an element another block wrote in this launch.
    if (!m.writes.empty() && !m.reads.empty()) {
      for (const Interval& r : m.reads) {
        // First write interval that could overlap [r.lo, r.hi).
        auto it = std::upper_bound(
            m.writes.begin(), m.writes.end(), r,
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
        // Writes are sorted by lo but earlier intervals can still reach past
        // r.lo; scan back while they might.  Interval lists are per-launch
        // and short, so the backward scan is cheap.
        while (it != m.writes.begin() && std::prev(it)->hi > r.lo) --it;
        bool reported = false;
        for (; it != m.writes.end() && it->lo < r.hi; ++it) {
          if (it->hi > r.lo && it->block != r.block) {
            std::ostringstream os;
            os << "kernel '" << kernel_ << "': block " << r.block
               << " reads elements [" << std::max(r.lo, it->lo) << ", "
               << std::min(r.hi, it->hi) << ") of " << describe_buffer(base, m)
               << " which block " << it->block << " writes in the same launch";
            problems.push_back(os.str());
            reported = true;
            break;
          }
        }
        if (reported) break;  // one read/write conflict per buffer
      }
    }
  }
  buffers_.clear();
  const std::string kernel = std::move(kernel_);
  kernel_.clear();
  if (!problems.empty()) {
    std::ostringstream os;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i > 0) os << "\n  ";
      os << problems[i];
    }
    throw AuditViolation(os.str());
  }
  (void)kernel;
}

}  // namespace gbdt::analysis
