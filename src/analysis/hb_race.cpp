#include "analysis/hb_race.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>

namespace gbdt::analysis {

namespace {

bool env_race_enabled() {
  const char* v = std::getenv("GBDT_RACE_DETECT");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "true" || s == "ON" || s == "TRUE";
}

std::atomic<int>& race_state() {
  // -1: unresolved (consult the environment), 0: off, 1: on.
  static std::atomic<int> state{-1};
  return state;
}

}  // namespace

bool race_detect_enabled() {
  int s = race_state().load(std::memory_order_relaxed);
  if (s < 0) {
    s = env_race_enabled() ? 1 : 0;
    race_state().store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_race_detect_enabled(bool enabled) {
  race_state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void LaunchFootprint::record(const void* base, std::size_t elem_size,
                             std::size_t n_elems, std::int64_t lo,
                             std::int64_t count, bool is_write) {
  if (count <= 0) return;
  // Clamp to the buffer: bounds are the auditor's job, ordering is ours.
  std::int64_t hi = lo + count;
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(n_elems));
  if (lo >= hi) return;
  std::lock_guard<std::mutex> lk(mu_);
  Buffer& b = buffers_[base];
  if (b.elem_size == 0) {
    b.elem_size = elem_size;
    b.n_elems = n_elems;
  }
  std::vector<Interval>& v = is_write ? b.writes : b.reads;
  if (!v.empty() && v.back().hi == lo) {
    v.back().hi = hi;  // common pattern: consecutive tiles
  } else {
    v.push_back(Interval{lo, hi});
  }
}

LaunchFootprint::Map LaunchFootprint::take() {
  std::lock_guard<std::mutex> lk(mu_);
  Map out = std::move(buffers_);
  buffers_.clear();
  // One op touching an interval from many blocks leaves many fragments;
  // merge them so the shadow lists stay small.
  const auto merge = [](std::vector<Interval>& v) {
    if (v.size() < 2) return;
    std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
      return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
    });
    std::size_t out_n = 0;
    for (const Interval& iv : v) {
      if (out_n > 0 && iv.lo <= v[out_n - 1].hi) {
        v[out_n - 1].hi = std::max(v[out_n - 1].hi, iv.hi);
      } else {
        v[out_n++] = iv;
      }
    }
    v.resize(out_n);
  };
  for (auto& [base, b] : out) {
    merge(b.writes);
    merge(b.reads);
  }
  return out;
}

void HbRaceDetector::ensure_stream(int stream) {
  const auto need = static_cast<std::size_t>(stream) + 1;
  if (vc_.size() < need) {
    vc_.resize(need);
    op_count_.resize(need, 0);
  }
  for (Clock& c : vc_) {
    if (c.size() < need) c.resize(need, 0);
  }
  if (host_vc_.size() < need) host_vc_.resize(need, 0);
}

void HbRaceDetector::join(Clock& into, const Clock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

bool HbRaceDetector::ordered(const Access& b, const Clock& vc) {
  const auto t = static_cast<std::size_t>(b.stream);
  return t < vc.size() && vc[t] >= b.epoch;
}

void HbRaceDetector::report(const Access& prior, bool prior_write,
                            const void* base, const Shadow& m, int stream,
                            std::uint64_t op_seq, std::string_view label,
                            std::string_view kind, std::int64_t lo,
                            std::int64_t hi, bool is_write) const {
  const std::int64_t olo = std::max(lo, prior.lo);
  const std::int64_t ohi = std::min(hi, prior.hi);
  const auto es = static_cast<std::int64_t>(m.elem_size);
  std::ostringstream os;
  os << kind << " '" << label << "' (stream " << stream << ", op #" << op_seq
     << ") " << (is_write ? "writes" : "reads") << " and " << prior.kind
     << " '" << prior.label << "' (stream " << prior.stream << ", op #"
     << prior.op_seq << ") " << (prior_write ? "writes" : "reads")
     << " overlapping elements [" << olo << ", " << ohi << ") (bytes ["
     << olo * es << ", " << ohi * es << ")) of buffer " << base << " ("
     << m.n_elems << " elems x " << m.elem_size
     << "B) with no happens-before edge; order them with e = "
        "record_event(stream "
     << prior.stream << ") after '" << prior.label << "' + wait_event(stream "
     << stream << ", e) before '" << label << "', or a dev.sync()";
  throw RaceViolation(os.str());
}

void HbRaceDetector::on_op(int stream, std::string_view label,
                           std::string_view kind,
                           LaunchFootprint::Map footprint) {
  ensure_stream(stream);
  const auto s = static_cast<std::size_t>(stream);
  // Host-enqueue edge; the default stream additionally joins every stream
  // (legacy blocking semantics).
  join(vc_[s], host_vc_);
  if (stream == 0) {
    for (const Clock& c : vc_) join(vc_[0], c);
  }
  ++vc_[s][s];
  const Clock& vc = vc_[s];
  const std::uint64_t op_seq = ++op_count_[s];

  for (auto& [base, fb] : footprint) {
    Shadow& m = shadow_[base];
    if (m.elem_size == 0) {
      m.elem_size = fb.elem_size;
      m.n_elems = fb.n_elems;
    }
    // Writes conflict with earlier writes and reads; reads only with
    // earlier writes.  Checking before inserting keeps an op's own read+
    // write of the same range from self-conflicting (same epoch: ordered).
    for (const auto& w : fb.writes) {
      for (const Access& pw : m.writes) {
        if (pw.lo < w.hi && pw.hi > w.lo && !ordered(pw, vc)) {
          report(pw, /*prior_write=*/true, base, m, stream, op_seq, label,
                 kind, w.lo, w.hi, /*is_write=*/true);
        }
      }
      for (const Access& pr : m.reads) {
        if (pr.lo < w.hi && pr.hi > w.lo && !ordered(pr, vc)) {
          report(pr, /*prior_write=*/false, base, m, stream, op_seq, label,
                 kind, w.lo, w.hi, /*is_write=*/true);
        }
      }
    }
    for (const auto& r : fb.reads) {
      for (const Access& pw : m.writes) {
        if (pw.lo < r.hi && pw.hi > r.lo && !ordered(pw, vc)) {
          report(pw, /*prior_write=*/true, base, m, stream, op_seq, label,
                 kind, r.lo, r.hi, /*is_write=*/false);
        }
      }
    }
    // Insert, pruning records this op supersedes.  A new write may retire
    // any ordered record it fully covers (a future op unordered with the
    // old record must also be unordered with — and overlap — this write,
    // so detection is preserved); a new read may only retire ordered
    // covered *reads* (a write masked by a read would hide write/write
    // races).
    const auto prune = [&](std::vector<Access>& v, std::int64_t lo,
                           std::int64_t hi) {
      std::erase_if(v, [&](const Access& a) {
        return a.lo >= lo && a.hi <= hi && ordered(a, vc);
      });
    };
    for (const auto& w : fb.writes) {
      prune(m.writes, w.lo, w.hi);
      prune(m.reads, w.lo, w.hi);
      m.writes.push_back(Access{w.lo, w.hi, stream, vc[s], op_seq,
                                std::string(label), std::string(kind)});
    }
    for (const auto& r : fb.reads) {
      prune(m.reads, r.lo, r.hi);
      m.reads.push_back(Access{r.lo, r.hi, stream, vc[s], op_seq,
                               std::string(label), std::string(kind)});
    }
  }

  if (stream == 0) {
    // Legacy default-stream propagation: later ops on any stream are
    // ordered after this one.
    for (Clock& c : vc_) join(c, vc_[0]);
    join(host_vc_, vc_[0]);
  }
}

void HbRaceDetector::record_event(int stream, int event) {
  ensure_stream(stream);
  events_[event] = vc_[static_cast<std::size_t>(stream)];
}

void HbRaceDetector::wait_event(int stream, int event) {
  ensure_stream(stream);
  const auto it = events_.find(event);
  if (it != events_.end()) {
    join(vc_[static_cast<std::size_t>(stream)], it->second);
  }
}

void HbRaceDetector::sync_stream(int stream) {
  ensure_stream(stream);
  join(host_vc_, vc_[static_cast<std::size_t>(stream)]);
}

void HbRaceDetector::sync_all() {
  for (const Clock& c : vc_) join(host_vc_, c);
}

void HbRaceDetector::on_free(const void* base) noexcept {
  shadow_.erase(base);
}

void HbRaceDetector::reset() {
  vc_.clear();
  host_vc_.clear();
  events_.clear();
  op_count_.clear();
  shadow_.clear();
}

}  // namespace gbdt::analysis
