// Deliberate block-disjointness violations for auditor self-tests.
//
// Test/tool-only header (depends on the device layer; the gbdt_analysis
// library itself does not).  Each fault models a realistic way a kernel in
// this codebase could go wrong; the overlapping scatter mirrors the IdxComp
// counter matrix of the order-preserving partition, where an off-by-one in
// the per-block counter slice makes adjacent blocks bump the same counter.
#pragma once

#include <cstdint>

#include "device/device_context.h"

namespace gbdt::analysis {

/// Adjacent blocks both write the counter cell on their shared boundary —
/// the classic partition-counter overlap.  Fires check (a).
inline void run_overlapping_scatter_fault(device::Device& dev,
                                          std::int64_t grid_dim = 8) {
  auto counters = dev.alloc<std::int64_t>(static_cast<std::size_t>(grid_dim) +
                                          1);
  dev.launch("fault_overlapping_scatter", grid_dim, 32,
             [&](device::BlockCtx& b) {
               const std::int64_t blk = b.block_idx();
               auto c = counters.span();
               // Intended slice is [blk, blk+1); the off-by-one also claims
               // the next block's first cell.
               c[blk] += 1;
               c[blk + 1] += 1;
               b.writes(c, blk, 2);
               b.work(2);
             });
}

/// Each block writes its own tile but reads its right neighbour's first
/// element in the same launch.  Fires check (b).
inline void run_cross_block_read_fault(device::Device& dev,
                                       std::int64_t grid_dim = 8) {
  const int block_dim = 32;
  const std::int64_t n = grid_dim * block_dim;
  auto data = dev.alloc<float>(static_cast<std::size_t>(n));
  dev.launch("fault_cross_block_read", grid_dim, block_dim,
             [&](device::BlockCtx& b) {
               auto d = data.span();
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) d[i] = static_cast<float>(i);
               });
               b.writes_tile(d, n);
               const std::int64_t neighbour =
                   ((b.block_idx() + 1) % b.grid_dim()) * b.block_dim();
               b.reads(d, neighbour, 1);
             });
}

/// One block declares a write one element past the end of the buffer.
/// Fires check (c) at record time, on whichever host worker runs the block.
inline void run_out_of_bounds_fault(device::Device& dev,
                                    std::int64_t grid_dim = 8) {
  const int block_dim = 32;
  const std::int64_t n = grid_dim * block_dim;
  auto data = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  dev.launch("fault_out_of_bounds", grid_dim, block_dim,
             [&](device::BlockCtx& b) {
               auto d = data.span();
               b.writes_tile(d, n);
               if (b.block_idx() == b.grid_dim() - 1) b.writes(d, n, 1);
             });
}

}  // namespace gbdt::analysis
