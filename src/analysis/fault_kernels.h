// Deliberate block-disjointness violations for auditor self-tests.
//
// Test/tool-only header (depends on the device layer; the gbdt_analysis
// library itself does not).  Each fault models a realistic way a kernel in
// this codebase could go wrong; the overlapping scatter mirrors the IdxComp
// counter matrix of the order-preserving partition, where an off-by-one in
// the per-block counter slice makes adjacent blocks bump the same counter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device_context.h"

namespace gbdt::analysis {

/// Adjacent blocks both write the counter cell on their shared boundary —
/// the classic partition-counter overlap.  Fires check (a).
inline void run_overlapping_scatter_fault(device::Device& dev,
                                          std::int64_t grid_dim = 8) {
  auto counters = dev.alloc<std::int64_t>(static_cast<std::size_t>(grid_dim) +
                                          1);
  dev.launch("fault_overlapping_scatter", grid_dim, 32,
             [&](device::BlockCtx& b) {
               const std::int64_t blk = b.block_idx();
               auto c = counters.span();
               // Intended slice is [blk, blk+1); the off-by-one also claims
               // the next block's first cell.
               c[blk] += 1;
               c[blk + 1] += 1;
               b.writes(c, blk, 2);
               b.work(2);
             });
}

/// Each block writes its own tile but reads its right neighbour's first
/// element in the same launch.  Fires check (b).
inline void run_cross_block_read_fault(device::Device& dev,
                                       std::int64_t grid_dim = 8) {
  const int block_dim = 32;
  const std::int64_t n = grid_dim * block_dim;
  auto data = dev.alloc<float>(static_cast<std::size_t>(n));
  dev.launch("fault_cross_block_read", grid_dim, block_dim,
             [&](device::BlockCtx& b) {
               auto d = data.span();
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) d[i] = static_cast<float>(i);
               });
               b.writes_tile(d, n);
               const std::int64_t neighbour =
                   ((b.block_idx() + 1) % b.grid_dim()) * b.block_dim();
               b.reads(d, neighbour, 1);
             });
}

/// One block declares a write one element past the end of the buffer.
/// Fires check (c) at record time, on whichever host worker runs the block.
inline void run_out_of_bounds_fault(device::Device& dev,
                                    std::int64_t grid_dim = 8) {
  const int block_dim = 32;
  const std::int64_t n = grid_dim * block_dim;
  auto data = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  dev.launch("fault_out_of_bounds", grid_dim, block_dim,
             [&](device::BlockCtx& b) {
               auto d = data.span();
               b.writes_tile(d, n);
               if (b.block_idx() == b.grid_dim() - 1) b.writes(d, n, 1);
             });
}

// ---- Seeded stream races for the happens-before detector ------------------
//
// Each fault is a realistic mis-use of the stream API (src/analysis/
// hb_race.h); the race detector must throw RaceViolation at the second
// access of the unordered pair.

/// Two streams write the same range with no event between them — the
/// prototypical write/write race.
inline void run_race_unordered_write(device::Device& dev) {
  const int s1 = dev.stream();
  const int s2 = dev.stream();
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  const auto sp = buf.span();
  dev.launch_async("stream_race_write_a", s1, device::grid_for(n, 32), 32,
                   [sp, n](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) sp[static_cast<std::size_t>(i)] = 1.f;
                     });
                     b.writes_tile(sp, n);
                   });
  dev.launch_async("stream_race_write_b", s2, device::grid_for(n, 32), 32,
                   [sp, n](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) sp[static_cast<std::size_t>(i)] = 2.f;
                     });
                     b.writes_tile(sp, n);
                   });
  dev.sync();
}

/// An async upload on one stream feeds a kernel on another with no
/// wait_event for the copy — the double-buffering bug the out-of-core
/// pipeline must not have.
inline void run_race_missing_event_wait(device::Device& dev) {
  const int s_copy = dev.stream();
  const int s_compute = dev.stream();
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  std::vector<float> host(static_cast<std::size_t>(n), 3.f);
  dev.copy_to_device_async("stream_race_upload", s_copy,
                           std::span<const float>(host), buf);
  const auto sp = buf.span();
  dev.launch_async("stream_race_consume", s_compute, device::grid_for(n, 32),
                   32, [sp, n](device::BlockCtx& b) {
                     float acc = 0.f;
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) acc += sp[static_cast<std::size_t>(i)];
                     });
                     b.reads_tile(sp, n);
                     b.work(static_cast<std::uint64_t>(acc >= 0.f));
                   });
  dev.sync();
}

/// The fixed form of run_race_missing_event_wait: the event edge orders the
/// upload before the consumer, so the detector must stay silent.
inline void run_race_event_wait_fixed(device::Device& dev) {
  const int s_copy = dev.stream();
  const int s_compute = dev.stream();
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  std::vector<float> host(static_cast<std::size_t>(n), 3.f);
  dev.copy_to_device_async("stream_race_upload", s_copy,
                           std::span<const float>(host), buf);
  const int uploaded = dev.record_event(s_copy);
  // hb: upload(s_copy) -> consume(s_compute)
  dev.wait_event(s_compute, uploaded);
  const auto sp = buf.span();
  dev.launch_async("stream_race_consume", s_compute, device::grid_for(n, 32),
                   32, [sp, n](device::BlockCtx& b) {
                     float acc = 0.f;
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) acc += sp[static_cast<std::size_t>(i)];
                     });
                     b.reads_tile(sp, n);
                     b.work(static_cast<std::uint64_t>(acc >= 0.f));
                   });
  dev.sync();
}

/// A kernel writes a buffer on one stream while another stream downloads
/// it with no ordering edge — a torn readback.
inline void run_race_copy_overlaps_kernel(device::Device& dev) {
  const int s_compute = dev.stream();
  const int s_copy = dev.stream();
  const std::int64_t n = 64;
  auto buf = dev.alloc<float>(static_cast<std::size_t>(n));
  const auto sp = buf.span();
  dev.launch_async("stream_race_produce", s_compute, device::grid_for(n, 32),
                   32, [sp, n](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i < n) sp[static_cast<std::size_t>(i)] = 4.f;
                     });
                     b.writes_tile(sp, n);
                   });
  std::vector<float> host(static_cast<std::size_t>(n));
  dev.copy_to_host_async("stream_race_download", s_copy, buf,
                         std::span<float>(host));
  dev.sync();
}

}  // namespace gbdt::analysis
