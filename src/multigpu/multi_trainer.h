// Multi-GPU GBDT training — the paper's stated future work ("our algorithm
// is naturally applicable to multiple GPUs or GPU clusters", Section VI).
//
// Two sharding modes over K simulated devices:
//
//  * kData (default, the historical layout): attribute lists sharded
//    round-robin across devices, per-instance state replicated.  Each level
//    merges per-node best split candidates, then synchronises the
//    instance->node map (only the winning attribute's owner knows the exact
//    sides).
//  * kFeature (--shard=feature): each shard owns the contiguous column
//    range [F*k/K, F*(k+1)/K) instead of an interleave, so candidate merges
//    are the only per-level communication pattern that changes shape —
//    winners are located by range lookup rather than modulo.
//
// With --method=hist the shards switch to row parallelism: each device owns
// a contiguous row range, bins it against the *global* dataset's quantile
// cuts, and every level allreduces the accumulated (smaller-sibling)
// histogram slots — histograms, not candidates — after which all shards
// reach bitwise-identical split decisions with no further communication
// (the production data-parallel scheme of LightGBM/XGBoost).  The key-build
// of the find phase rides a dedicated compute stream so it overlaps the
// histogram allreduce on the comm streams.
//
// All merges run through multigpu::allreduce (ring by default, tree or
// all-to-one selectable; GBDT_ALLTOONE=1 restores the legacy all-to-one
// schedule bit-for-bit).  Communication is modeled over a configurable
// interconnect and rides per-shard dedicated comm streams with
// record_event/wait_event edges, so the race detector checks the overlap
// schedule and the per-device clocks price it.
//
// The exact-mode trees are equivalent to single-device training (identical
// splits up to floating-point tie-breaks; see EXPERIMENTS.md); hist-mode
// forests are bitwise identical to the single-device hist trainer.  RLE mode
// is not sharded — the multi-GPU exact path trains on the sparse
// representation.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_config.h"
#include "multigpu/allreduce.h"

namespace gbdt::multigpu {

/// How the training matrix is split across devices (exact method only; the
/// hist method always shards rows).
enum class ShardMode {
  kData,     // attributes round-robin, instance state replicated (default)
  kFeature,  // contiguous column range per shard
};

[[nodiscard]] const char* shard_mode_name(ShardMode m);
/// Parses "data" / "feature"; returns false on anything else.
[[nodiscard]] bool parse_shard_mode(std::string_view s, ShardMode& out);

struct MultiGpuOptions {
  ShardMode shard = ShardMode::kData;
  AllreduceAlgo algo = AllreduceAlgo::kRing;
};

struct MultiTrainReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  std::vector<double> train_scores;

  /// Critical-path modeled seconds: sum over steps of the slowest shard.
  /// Communication legs advance the per-device comm-stream clocks, so their
  /// cost lands here through the same max — comm_seconds is *included*, not
  /// additive.
  double modeled_seconds = 0.0;
  double comm_seconds = 0.0;           // summed collective + sync leg time
  double allreduce_seconds = 0.0;      // comm_seconds share spent in merges
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_messages = 0;
  /// Max over shards of Device::overlap_ratio() at train end: the fraction
  /// of busy time hidden by comm/compute overlap.
  double comm_overlap_ratio = 0.0;
  std::vector<double> device_seconds;  // per-shard busy time
  double wall_seconds = 0.0;
};

class MultiGpuTrainer {
 public:
  /// n_devices identical devices of configuration `cfg`.  With
  /// param.use_hist_trainer the shards train the histogram method over row
  /// shards; otherwise the exact method over `opts.shard` column shards.
  MultiGpuTrainer(device::DeviceConfig cfg, int n_devices, GBDTParam param,
                  Interconnect link = Interconnect::pcie3(),
                  MultiGpuOptions opts = {});
  ~MultiGpuTrainer();

  [[nodiscard]] MultiTrainReport train(const data::Dataset& ds);

  [[nodiscard]] int n_devices() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gbdt::multigpu
