// Multi-GPU GBDT training — the paper's stated future work ("our algorithm
// is naturally applicable to multiple GPUs or GPU clusters", Section VI).
//
// Strategy: feature-parallel exact training.  The attribute lists are
// sharded round-robin across K simulated devices; per-instance state
// (gradients, predictions, instance->node map) is replicated.  Each level:
//
//   1. every shard finds the best split of every node over its attributes;
//   2. the global best per node is an allreduce over K x nodes candidates;
//   3. shards owning winning attributes mark the exact instance sides, and
//      the instance->node map is synchronised across shards (the only bulk
//      communication: ~4 B x n_instances per level);
//   4. every shard partitions its own attribute lists locally.
//
// The trees are equivalent to single-device training (identical splits up
// to floating-point tie-breaks; see EXPERIMENTS.md).  Communication is
// modeled over a configurable interconnect.  RLE mode is not sharded yet —
// the multi-GPU path trains on the sparse representation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_config.h"

namespace gbdt::multigpu {

/// Link connecting the devices (PCI-e switch or NVLink-style mesh).
struct Interconnect {
  double bandwidth_gbps = 12.0;  // per-direction, per transfer
  double latency_us = 10.0;      // per message

  static Interconnect pcie3() { return {12.0, 10.0}; }
  static Interconnect nvlink() { return {40.0, 5.0}; }
};

struct MultiTrainReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  std::vector<double> train_scores;

  /// Critical-path modeled seconds: sum over steps of the slowest shard,
  /// plus communication.
  double modeled_seconds = 0.0;
  double comm_seconds = 0.0;          // included in modeled_seconds
  std::uint64_t comm_bytes = 0;
  std::vector<double> device_seconds;  // per-shard busy time
  double wall_seconds = 0.0;
};

class MultiGpuTrainer {
 public:
  /// n_devices identical devices of configuration `cfg`.
  MultiGpuTrainer(device::DeviceConfig cfg, int n_devices, GBDTParam param,
                  Interconnect link = Interconnect::pcie3());
  ~MultiGpuTrainer();

  [[nodiscard]] MultiTrainReport train(const data::Dataset& ds);

  [[nodiscard]] int n_devices() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gbdt::multigpu
