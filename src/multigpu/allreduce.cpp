#include "multigpu/allreduce.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gbdt::multigpu {

namespace {

bool alltoone_env() {
  const char* v = std::getenv("GBDT_ALLTOONE");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0 || std::strcmp(v, "ON") == 0 ||
         std::strcmp(v, "TRUE") == 0;
}

std::atomic<int>& alltoone_state() {
  static std::atomic<int> state{-1};  // -1: read the environment lazily
  return state;
}

}  // namespace

const char* allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAllToOne:
      return "alltoone";
    case AllreduceAlgo::kRing:
      return "ring";
    case AllreduceAlgo::kTree:
      return "tree";
  }
  return "?";
}

bool parse_allreduce_algo(std::string_view s, AllreduceAlgo& out) {
  if (s == "alltoone" || s == "all-to-one") {
    out = AllreduceAlgo::kAllToOne;
  } else if (s == "ring") {
    out = AllreduceAlgo::kRing;
  } else if (s == "tree") {
    out = AllreduceAlgo::kTree;
  } else {
    return false;
  }
  return true;
}

bool alltoone_forced() {
  int s = alltoone_state().load(std::memory_order_relaxed);
  if (s < 0) {
    s = alltoone_env() ? 1 : 0;
    alltoone_state().store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void set_alltoone_forced(int v) {
  alltoone_state().store(v, std::memory_order_relaxed);
}

}  // namespace gbdt::multigpu
