// Modeled collective allreduce over per-shard simulated devices.
//
// The multi-GPU trainer merges per-shard partial results (split candidates,
// quantized gradient histograms, root statistics) every level.  Device memory
// is host-visible in the simulation, so the wire itself carries no bits: the
// collective moves the data directly on the host, in the exact combine order
// the chosen algorithm would produce, and enqueues one modeled
// `peer_transfer_async` leg per wire message so the per-stream clocks, the
// happens-before race detector, and the byte accounting all see the real
// communication schedule.
//
// Three algorithms, all moving exactly 2(K-1)·P payload bytes total:
//
//  * kAllToOne — the legacy reduce: shard 0 receives K-1 full payloads
//    (ascending shard order, acc = combine(acc, v_k)), then sends K-1 full
//    copies back.  All 2(K-1) legs serialise on shard 0's comm stream:
//    t ≈ 2(K-1)(lat + P/bw).  `GBDT_ALLTOONE=1` forces this algorithm
//    everywhere, restoring the pre-ring merge bit-for-bit.
//  * kRing — chunked reduce-scatter + allgather.  Each shard sends chunk
//    (k-s) mod K at reduce step s and the legs ride each *receiver's* comm
//    stream, so every shard carries 2(K-1) legs of one chunk each:
//    t ≈ 2(K-1)(lat + P/(K·bw)).  Strictly faster than all-to-one for any
//    nonempty payload, and ~K× faster when bandwidth dominates.
//  * kTree — binomial reduce to shard 0 + mirrored broadcast.  Reduce legs
//    ride the receiver's stream, broadcast legs the sender's, so the root
//    carries 2·ceil(log2 K) full-payload legs: t ≈ 2·log2(K)(lat + P/bw).
//    Fewer messages than ring; wins when latency dominates tiny payloads.
//
// Timing caveat (documented in DESIGN.md §5j): per-shard legs are FIFO on
// that shard's comm stream, but cross-shard step dependencies (ring step s
// cannot start before the neighbour finished step s-1) are not modeled
// across device clocks — each device owns an independent clock.  The
// per-shard leg sums still equal the steady-state per-step bound, so the
// aggregate (max over shards) matches the textbook cost model above.
//
// Correctness caveat: the three algorithms fold in different orders, so
// bitwise ring == tree == all-to-one (asserted by test_allreduce and the
// ring_vs_alltoone fuzz leg) holds because every combine the trainer uses is
// order-independent: int64 histogram sums, double max, and lexicographic
// best-split max over globally distinct attribute ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/hb_race.h"
#include "device/device_context.h"

namespace gbdt::multigpu {

/// Inter-device link parameters (per direction, per pair).
struct Interconnect {
  /// Effective bandwidth between two devices in GB/s.
  double bandwidth_gbps = 12.0;
  /// Fixed per-message latency in microseconds.
  double latency_us = 10.0;

  /// PCI-e 3.0 x16 through a host switch (the paper's testbed).
  static Interconnect pcie3() { return {12.0, 10.0}; }
  /// NVLink 1.0 single link.
  static Interconnect nvlink() { return {40.0, 5.0}; }

  /// Modeled seconds for one message of `bytes`.
  [[nodiscard]] double leg_seconds(std::uint64_t bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

enum class AllreduceAlgo { kAllToOne, kRing, kTree };

[[nodiscard]] const char* allreduce_algo_name(AllreduceAlgo a);
/// Parses "alltoone" / "ring" / "tree"; returns false on anything else.
[[nodiscard]] bool parse_allreduce_algo(std::string_view s, AllreduceAlgo& out);

/// True when GBDT_ALLTOONE=1 (or a test forced it): every collective runs
/// the legacy all-to-one schedule regardless of the requested algorithm.
[[nodiscard]] bool alltoone_forced();
/// Test override: 1 force on, 0 force off, -1 re-read the environment.
void set_alltoone_forced(int v);

/// One shard's communication endpoints.
struct ShardLink {
  device::Device* dev = nullptr;
  /// Dedicated comm stream on `dev` (created once per shard, never default).
  int comm_stream = 0;
  /// Event to wait for (on `dev`) before this shard's first comm leg, or -1.
  /// Producers record it on the stream that filled the payload.
  int ready_event = -1;
};

/// Accounting for one collective (or a sum over several).
struct AllreduceReport {
  std::uint64_t bytes = 0;     // payload bytes that crossed the wire
  std::uint64_t messages = 0;  // wire messages (modeled legs)
  double seconds = 0.0;        // max over shards of summed leg seconds

  AllreduceReport& operator+=(const AllreduceReport& o) {
    bytes += o.bytes;
    messages += o.messages;
    seconds += o.seconds;
    return *this;
  }
};

namespace detail {

struct ChunkRange {
  std::size_t lo;
  std::size_t hi;
};

/// Ring chunk c of an n-element payload split K ways (may be empty).
inline ChunkRange chunk_range(std::size_t n, int n_shards, int c) {
  const auto k = static_cast<std::size_t>(n_shards);
  const auto cc = static_cast<std::size_t>(c);
  return {n * cc / k, n * (cc + 1) / k};
}

/// Binomial-tree rounds: smallest r with 2^r >= K.
inline int tree_rounds(int n_shards) {
  int r = 0;
  while ((1 << r) < n_shards) ++r;
  return r;
}

/// Enqueues one modeled wire leg on `link.comm_stream`, waiting on the
/// shard's ready event before its first leg.
template <typename T>
void enqueue_leg(ShardLink& link, bool& waited, std::string_view label,
                 double seconds, std::uint64_t bytes, std::span<T> payload,
                 ChunkRange reads, ChunkRange writes) {
  if (link.ready_event >= 0 && !waited) {
    // hb: the comm legs read the payload the producer kernel wrote; the
    // event recorded after that kernel orders every leg behind it.
    link.dev->wait_event(link.comm_stream, link.ready_event);
    waited = true;
  }
  analysis::LaunchFootprint fp;
  if (reads.hi > reads.lo) {
    fp.record(payload.data(), sizeof(T), payload.size(),
              static_cast<std::int64_t>(reads.lo),
              static_cast<std::int64_t>(reads.hi - reads.lo),
              /*is_write=*/false);
  }
  if (writes.hi > writes.lo) {
    fp.record(payload.data(), sizeof(T), payload.size(),
              static_cast<std::int64_t>(writes.lo),
              static_cast<std::int64_t>(writes.hi - writes.lo),
              /*is_write=*/true);
  }
  link.dev->peer_transfer_async(label, link.comm_stream, seconds, bytes,
                                fp.take());
}

}  // namespace detail

/// Allreduce over K same-length payload spans, one per shard: on return every
/// payload holds combine-fold of all K inputs, folded in the order `algo`
/// (or the GBDT_ALLTOONE override) prescribes.  `combine(a, b)` must be
/// associative; it must also be commutative if callers rely on bitwise
/// equality across algorithms (all trainer combines are).  Leg labels are
/// `label` + an algorithm suffix and must carry the `comm_` prefix
/// (lint rule 12).  K == 1 is a no-op reporting zeros.
template <typename T, typename Combine>
AllreduceReport allreduce(std::string_view label, const Interconnect& net,
                          AllreduceAlgo algo, std::vector<ShardLink>& shards,
                          std::vector<std::span<T>>& payloads,
                          Combine&& combine) {
  const int n_shards = static_cast<int>(shards.size());
  AllreduceReport rep;
  if (n_shards <= 1) return rep;
  if (alltoone_forced()) algo = AllreduceAlgo::kAllToOne;
  const std::size_t n = payloads[0].size();
  const std::string tag = std::string(label);
  std::vector<double> shard_secs(static_cast<std::size_t>(n_shards), 0.0);
  std::vector<bool> waited(static_cast<std::size_t>(n_shards), false);

  const auto leg = [&](int shard, std::string_view name, std::uint64_t bytes,
                       detail::ChunkRange reads, detail::ChunkRange writes) {
    const auto s = static_cast<std::size_t>(shard);
    const double secs = bytes > 0 ? net.leg_seconds(bytes) : 0.0;
    bool w = waited[s];
    detail::enqueue_leg(shards[s], w, name, secs, bytes, payloads[s], reads,
                        writes);
    waited[s] = w;
    if (bytes > 0) {
      rep.bytes += bytes;
      ++rep.messages;
      shard_secs[s] += secs;
    }
  };

  // ---- data movement (eager, host-side, algorithm-faithful fold order) ----
  // Producers are executed by enqueue time (default-stream semantics), so the
  // combined values are computable here; racy *schedules* are still caught by
  // the detector via the modeled legs' footprints below.
  std::vector<T> reduced(n);
  switch (algo) {
    case AllreduceAlgo::kAllToOne: {
      // acc starts at shard 0 and folds shards in ascending order — the
      // exact order of the historical host-side merge loop.
      for (std::size_t i = 0; i < n; ++i) reduced[i] = payloads[0][i];
      for (int k = 1; k < n_shards; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          reduced[i] = combine(reduced[i], payloads[static_cast<std::size_t>(
                                               k)][i]);
        }
      }
      break;
    }
    case AllreduceAlgo::kRing: {
      // Chunk c travels c -> c+1 -> ... -> c-1, each hop folding the local
      // value on the right: ((v_c ⊕ v_{c+1}) ⊕ ...) ⊕ v_{c+K-1 mod K}.
      for (int c = 0; c < n_shards; ++c) {
        const auto [lo, hi] = detail::chunk_range(n, n_shards, c);
        for (std::size_t i = lo; i < hi; ++i) {
          T acc = payloads[static_cast<std::size_t>(c)][i];
          for (int s = 1; s < n_shards; ++s) {
            const auto k = static_cast<std::size_t>((c + s) % n_shards);
            acc = combine(acc, payloads[k][i]);
          }
          reduced[i] = acc;
        }
      }
      break;
    }
    case AllreduceAlgo::kTree: {
      // Binomial fold: round r combines acc[p] = combine(acc[p], acc[p+2^r]).
      std::vector<std::vector<T>> acc(static_cast<std::size_t>(n_shards));
      for (int k = 0; k < n_shards; ++k) {
        const auto& p = payloads[static_cast<std::size_t>(k)];
        acc[static_cast<std::size_t>(k)].assign(p.begin(), p.end());
      }
      const int rounds = detail::tree_rounds(n_shards);
      for (int r = 0; r < rounds; ++r) {
        const int step = 1 << r;
        for (int p = 0; p + step < n_shards; p += 2 * step) {
          auto& dst = acc[static_cast<std::size_t>(p)];
          const auto& src = acc[static_cast<std::size_t>(p + step)];
          for (std::size_t i = 0; i < n; ++i) {
            dst[i] = combine(dst[i], src[i]);
          }
        }
      }
      reduced = std::move(acc[0]);
      break;
    }
  }

  // ---- modeled wire legs --------------------------------------------------
  const auto span_bytes = [](detail::ChunkRange r) {
    return static_cast<std::uint64_t>(r.hi - r.lo) * sizeof(T);
  };
  switch (algo) {
    case AllreduceAlgo::kAllToOne: {
      const std::uint64_t pb = static_cast<std::uint64_t>(n) * sizeof(T);
      const detail::ChunkRange full{0, n};
      for (int k = 1; k < n_shards; ++k) {
        leg(0, tag + "_a2o_gather", pb, full, full);
      }
      for (int k = 1; k < n_shards; ++k) {
        leg(0, tag + "_a2o_bcast", pb, full, {0, 0});
      }
      break;
    }
    case AllreduceAlgo::kRing: {
      // Reduce-scatter: step s, shard k sends chunk (k-s), receives and
      // folds chunk (k-1-s); the leg is charged to the receiver.
      for (int s = 0; s < n_shards - 1; ++s) {
        for (int k = 0; k < n_shards; ++k) {
          const int c_send = ((k - s) % n_shards + n_shards) % n_shards;
          const int c_recv = ((k - 1 - s) % n_shards + n_shards) % n_shards;
          const auto send = detail::chunk_range(n, n_shards, c_send);
          const auto recv = detail::chunk_range(n, n_shards, c_recv);
          if (send.hi == send.lo && recv.hi == recv.lo) continue;
          leg(k, tag + "_ring_rs", span_bytes(recv), send, recv);
        }
      }
      // Allgather: step s, shard k sends chunk (k+1-s), receives chunk (k-s)
      // fully reduced — an overwrite, no fold.
      for (int s = 0; s < n_shards - 1; ++s) {
        for (int k = 0; k < n_shards; ++k) {
          const int c_send = ((k + 1 - s) % n_shards + n_shards) % n_shards;
          const int c_recv = ((k - s) % n_shards + n_shards) % n_shards;
          const auto send = detail::chunk_range(n, n_shards, c_send);
          const auto recv = detail::chunk_range(n, n_shards, c_recv);
          if (send.hi == send.lo && recv.hi == recv.lo) continue;
          leg(k, tag + "_ring_ag", span_bytes(recv), send, recv);
        }
      }
      break;
    }
    case AllreduceAlgo::kTree: {
      const std::uint64_t pb = static_cast<std::uint64_t>(n) * sizeof(T);
      const detail::ChunkRange full{0, n};
      const int rounds = detail::tree_rounds(n_shards);
      // Reduce legs ride the receiving parent's stream ...
      for (int r = 0; r < rounds; ++r) {
        const int step = 1 << r;
        for (int p = 0; p + step < n_shards; p += 2 * step) {
          leg(p, tag + "_tree_reduce", pb, full, full);
        }
      }
      // ... broadcast legs the sending parent's stream (mirrored rounds), so
      // the root's 2·ceil(log2 K) legs serialise like its DMA engine would.
      for (int r = rounds - 1; r >= 0; --r) {
        const int step = 1 << r;
        for (int p = 0; p + step < n_shards; p += 2 * step) {
          leg(p, tag + "_tree_bcast", pb, full, {0, 0});
        }
      }
      break;
    }
  }

  for (int k = 0; k < n_shards; ++k) {
    auto& p = payloads[static_cast<std::size_t>(k)];
    std::copy(reduced.begin(), reduced.end(), p.begin());
  }
  rep.seconds = *std::max_element(shard_secs.begin(), shard_secs.end());
  return rep;
}

}  // namespace gbdt::multigpu
