#include "multigpu/multi_trainer.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/trainer_detail.h"
#include "data/csc_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/reduce.h"

namespace gbdt::multigpu {

using detail::ActiveNode;
using detail::BestSplit;
using detail::LevelPlan;
using detail::TrainState;
using device::Device;

namespace {

/// One device + its attribute shard.
struct Shard {
  std::unique_ptr<Device> dev;
  std::unique_ptr<TrainState> state;
  std::int64_t n_local_attrs = 0;
  double busy_seconds = 0.0;  // accumulated modeled time of this shard
};

/// Accumulates the max-over-shards modeled time of one parallel step into
/// the critical path.
class ParallelStep {
 public:
  explicit ParallelStep(std::vector<Shard>& shards, double& critical,
                        std::vector<double>* per_device = nullptr)
      : shards_(shards), critical_(critical), per_device_(per_device) {
    before_.reserve(shards.size());
    for (auto& s : shards_) before_.push_back(s.dev->elapsed_seconds());
  }
  ~ParallelStep() {
    double slowest = 0.0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const double delta = shards_[k].dev->elapsed_seconds() - before_[k];
      shards_[k].busy_seconds += delta;
      slowest = std::max(slowest, delta);
      if (per_device_ != nullptr) (*per_device_)[k] += delta;
    }
    critical_ += slowest;
  }
  ParallelStep(const ParallelStep&) = delete;
  ParallelStep& operator=(const ParallelStep&) = delete;

 private:
  std::vector<Shard>& shards_;
  double& critical_;
  std::vector<double>* per_device_;
  std::vector<double> before_;
};

}  // namespace

struct MultiGpuTrainer::Impl {
  device::DeviceConfig cfg;
  int n_devices;
  GBDTParam param;
  Interconnect link;
  std::unique_ptr<Loss> loss;

  Impl(device::DeviceConfig c, int n, GBDTParam p, Interconnect l)
      : cfg(std::move(c)), n_devices(n), param(std::move(p)), link(l),
        loss(make_loss(param.loss)) {
    if (n_devices < 1) throw std::invalid_argument("need >= 1 device");
    // The multi-GPU path shards by attribute over the sparse layout.
    param.use_rle = false;
    param.force_rle = false;
  }

  void account_comm(MultiTrainReport& r, std::uint64_t bytes,
                    int messages) const {
    static obs::Counter& comm_bytes_total =
        obs::Registry::global().counter("gbdt_mgpu_comm_bytes_total");
    r.comm_bytes += bytes;
    comm_bytes_total.inc(bytes);
    const double secs = messages * link.latency_us * 1e-6 +
                        static_cast<double>(bytes) / (link.bandwidth_gbps * 1e9);
    r.comm_seconds += secs;
    r.modeled_seconds += secs;
  }
};

MultiGpuTrainer::MultiGpuTrainer(device::DeviceConfig cfg, int n_devices,
                                 GBDTParam param, Interconnect link)
    : impl_(std::make_unique<Impl>(std::move(cfg), n_devices, std::move(param),
                                   link)) {}

MultiGpuTrainer::~MultiGpuTrainer() = default;

int MultiGpuTrainer::n_devices() const { return impl_->n_devices; }

MultiTrainReport MultiGpuTrainer::train(const data::Dataset& ds) {
  obs::ScopedSpan train_span("mgpu_train");
  const auto wall_start = std::chrono::steady_clock::now();
  auto& impl = *impl_;
  const GBDTParam& param = impl.param;
  const int K = impl.n_devices;
  if (ds.n_instances() == 0) throw std::invalid_argument("empty dataset");
  if (K > ds.n_attributes()) {
    throw std::invalid_argument("more devices than attributes");
  }
  const std::int64_t n_inst = ds.n_instances();

  MultiTrainReport report;
  report.base_score = param.base_score;
  report.device_seconds.assign(static_cast<std::size_t>(K), 0.0);

  // ---- build shards: attribute a lives on device a % K as local a / K ----
  std::vector<Shard> shards(static_cast<std::size_t>(K));
  {
    obs::ScopedSpan span("shard_build");
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      sh.dev = std::make_unique<Device>(impl.cfg);
      sh.n_local_attrs =
          (ds.n_attributes() + (K - 1 - k)) / K;  // ceil((d - k) / K)
      sh.state = std::make_unique<TrainState>(*sh.dev, param, *impl.loss);
      sh.state->n_inst = n_inst;
      sh.state->n_attr = sh.n_local_attrs;
    }
    // Per-shard datasets with remapped attribute ids.
    ParallelStep step(shards, report.modeled_seconds);
    std::vector<data::Entry> row;
    for (int k = 0; k < K; ++k) {
      data::Dataset local(shards[static_cast<std::size_t>(k)].n_local_attrs);
      for (std::int64_t i = 0; i < n_inst; ++i) {
        row.clear();
        for (const auto& e : ds.instance(i)) {
          if (e.attr % K == k) row.push_back({e.attr / K, e.value});
        }
        local.add_instance(row, ds.labels()[static_cast<std::size_t>(i)]);
      }
      auto& st = *shards[static_cast<std::size_t>(k)].state;
      auto csc = data::build_csc_device(*shards[static_cast<std::size_t>(k)].dev,
                                        local);
      st.orig_values = std::move(csc.values);
      st.orig_inst = std::move(csc.inst_ids);
      st.orig_seg_offsets = std::move(csc.col_offsets);
    }
  }

  // Replicated per-instance state + labels on every shard.
  std::vector<device::DeviceBuffer<float>> labels(static_cast<std::size_t>(K));
  {
    obs::ScopedSpan span("shard_build");
    ParallelStep step(shards, report.modeled_seconds);
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      auto& st = *sh.state;
      labels[static_cast<std::size_t>(k)] =
          sh.dev->to_device<float>(ds.labels());
      st.grad = sh.dev->alloc<double>(static_cast<std::size_t>(n_inst));
      st.hess = sh.dev->alloc<double>(static_cast<std::size_t>(n_inst));
      st.y_pred = sh.dev->alloc<float>(static_cast<std::size_t>(n_inst));
      st.node_of = sh.dev->alloc<std::int32_t>(static_cast<std::size_t>(n_inst));
      prim::fill(*sh.dev, st.y_pred, static_cast<float>(param.base_score));
    }
  }

  report.trees.reserve(static_cast<std::size_t>(param.n_trees));
  std::vector<std::int32_t> pre_update_node;  // node_of snapshot per level
  std::vector<std::int32_t> owner_of_node;    // winning shard per tree node

  // One RoundDriver per shard: gradients are replicated (every shard holds
  // the full row set), the feature bag is drawn from the global attribute
  // space and remapped to each shard's local ids — so the allreduced winner
  // matches what a single device with the same bag would pick.
  std::vector<std::unique_ptr<objective::RoundDriver>> drivers;
  drivers.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    drivers.push_back(std::make_unique<objective::RoundDriver>(
        *shards[static_cast<std::size_t>(k)].dev, param, ds, K, k));
  }

  for (int t = 0; t < param.n_trees; ++t) {
    {
      obs::ScopedSpan span("gradient_compute");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        auto& st = *shards[static_cast<std::size_t>(k)].state;
        if (t > 0) detail::update_predictions_smart(st, report.trees.back());
        drivers[static_cast<std::size_t>(k)]->begin_round(
            st, labels[static_cast<std::size_t>(k)], t);
        detail::reset_working_layout(st);
      }
    }

    report.trees.emplace_back();
    Tree& tree = report.trees.back();

    ActiveNode root;
    root.tree_node = 0;
    {
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      // Root statistics computed on shard 0 (all shards agree bitwise).
      auto& st0 = *shards[0].state;
      root.sum_g = prim::reduce_sum<double>(*shards[0].dev, st0.grad,
                                            "mgpu_root_sum_g");
      root.sum_h = prim::reduce_sum<double>(*shards[0].dev, st0.hess,
                                            "mgpu_root_sum_h");
    }
    // Broadcast of the root stats: two doubles per peer.
    if (K > 1) {
      impl.account_comm(report, static_cast<std::uint64_t>(K - 1) * 16,
                        K - 1);
    }
    root.count = n_inst;

    std::vector<ActiveNode> active{root};
    for (auto& sh : shards) {
      sh.state->tree = &tree;
      sh.state->active = active;
    }

    for (int level = 0; level < param.depth && !active.empty(); ++level) {
      // 1. Local best splits per shard.
      std::vector<std::vector<BestSplit>> local(static_cast<std::size_t>(K));
      {
        obs::ScopedSpan span("find_split");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          local[static_cast<std::size_t>(k)] =
              detail::find_splits_sparse(*shards[static_cast<std::size_t>(k)].state);
        }
      }

      // 2. Allreduce the candidates: the global winner per node is the
      //    maximum gain, ties resolved to the lowest *global* attribute —
      //    the same order a single device enumerates.
      std::vector<BestSplit> best(active.size());
      std::vector<std::int32_t> owner(active.size(), -1);
      {
        obs::ScopedSpan span("allreduce_merge");
        if (K > 1) {
          impl.account_comm(
              report,
              static_cast<std::uint64_t>(K) * active.size() * sizeof(BestSplit),
              K);
        }
        for (std::size_t s = 0; s < active.size(); ++s) {
          for (int k = 0; k < K; ++k) {
            BestSplit cand = local[static_cast<std::size_t>(k)][s];
            if (!cand.valid) continue;
            cand.attr = static_cast<std::int32_t>(cand.attr) * K + k;  // global
            const bool better =
                !best[s].valid || cand.gain > best[s].gain ||
                (cand.gain == best[s].gain && cand.attr < best[s].attr);
            if (better) {
              best[s] = cand;
              owner[s] = k;
            }
          }
        }
      }

      // 3. Host-side split decisions (same logic as the single-GPU loop).
      LevelPlan plan;
      plan.per_slot.resize(active.size());
      owner_of_node.assign(static_cast<std::size_t>(tree.n_nodes()) + 2 * active.size(), -1);
      for (std::size_t s = 0; s < active.size(); ++s) {
        const ActiveNode& node = active[s];
        const BestSplit& b = best[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        if (b.valid && b.gain > param.gamma) {
          const auto [l, r] = tree.split(node.tree_node, b.attr,
                                         b.split_value, b.default_left,
                                         b.gain);
          auto& e = plan.per_slot[s];
          e.split = true;
          e.chosen_seg = b.seg;  // shard-local; cleared for non-owners below
          e.best_pos = b.pos;
          e.left_id = l;
          e.right_id = r;
          e.default_left = b.default_left;
          owner_of_node[static_cast<std::size_t>(node.tree_node)] = owner[s];
          ActiveNode left = b.left;
          left.tree_node = l;
          ActiveNode right = b.right;
          right.tree_node = r;
          plan.next_active.push_back(left);
          plan.next_active.push_back(right);
        } else {
          auto& leaf = tree.node(node.tree_node);
          leaf.weight =
              param.eta * leaf_weight(node.sum_g, node.sum_h, param.lambda);
        }
      }
      if (plan.next_active.empty()) {
        active.clear();
        break;
      }
      plan.next_slot_of_tree.assign(static_cast<std::size_t>(tree.n_nodes()),
                                    -1);
      for (std::size_t k2 = 0; k2 < plan.next_active.size(); ++k2) {
        plan.next_slot_of_tree[static_cast<std::size_t>(
            plan.next_active[k2].tree_node)] = static_cast<std::int32_t>(k2);
      }

      // Snapshot the pre-update node map (host glue for the merge below).
      pre_update_node.assign(
          shards[0].state->node_of.span().begin(),
          shards[0].state->node_of.span().end());

      // 4. Mark instance sides: every shard applies the defaults; only the
      //    owner of a node's winning attribute knows the exact sides.
      std::vector<LevelPlan> shard_plans(static_cast<std::size_t>(K), plan);
      for (std::size_t s = 0; s < active.size(); ++s) {
        if (!plan.per_slot[s].split) continue;
        for (int k = 0; k < K; ++k) {
          if (k != owner[s]) {
            auto& e = shard_plans[static_cast<std::size_t>(k)].per_slot[s];
            e.chosen_seg = -1;
            e.best_pos = -1;
          }
        }
      }
      {
        obs::ScopedSpan span("mark_sides");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          detail::apply_mark_sides_sparse(
              *shards[static_cast<std::size_t>(k)].state,
              shard_plans[static_cast<std::size_t>(k)]);
        }
      }

      // 5. Synchronise node_of: instance i's authoritative value lives on
      //    the shard owning its (old) node's winning attribute.  Modeled as
      //    an allgather of the map (4 B x n_inst to and from each peer).
      if (K > 1) {
        obs::ScopedSpan span("node_sync");
        impl.account_comm(report,
                          static_cast<std::uint64_t>(K - 1) * 2 *
                              static_cast<std::uint64_t>(n_inst) * 4,
                          2 * (K - 1));
        auto merged = shards[0].state->node_of.span();
        for (std::int64_t i = 0; i < n_inst; ++i) {
          const auto u = static_cast<std::size_t>(i);
          const std::int32_t w =
              owner_of_node[static_cast<std::size_t>(pre_update_node[u])];
          if (w > 0) {
            merged[u] = shards[static_cast<std::size_t>(w)].state->node_of[u];
          }
        }
        for (int k = 1; k < K; ++k) {
          auto dst = shards[static_cast<std::size_t>(k)].state->node_of.span();
          std::copy(merged.begin(), merged.end(), dst.begin());
        }
      }

      // 6. Local order-preserving partition of every shard's lists.
      {
        obs::ScopedSpan span("partition");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          detail::apply_partition_sparse(
              *shards[static_cast<std::size_t>(k)].state,
              shard_plans[static_cast<std::size_t>(k)]);
        }
      }

      active = plan.next_active;
      for (auto& sh : shards) sh.state->active = active;
    }

    // Remaining active nodes become leaves.
    for (const ActiveNode& node : active) {
      auto& leaf = tree.node(node.tree_node);
      leaf.weight =
          param.eta * leaf_weight(node.sum_g, node.sum_h, param.lambda);
      leaf.n_instances = node.count;
      leaf.sum_g = node.sum_g;
      leaf.sum_h = node.sum_h;
    }
    active.clear();
  }

  // Fold the last tree into the replicated predictions; report shard 0's.
  {
    obs::ScopedSpan span("gradient_compute");
    ParallelStep step(shards, report.modeled_seconds, &report.device_seconds);
    for (int k = 0; k < K; ++k) {
      detail::update_predictions_smart(*shards[static_cast<std::size_t>(k)].state,
                                       report.trees.back());
    }
  }
  const auto final_pred = shards[0].dev->to_host(shards[0].state->y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt::multigpu
