#include "multigpu/multi_trainer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/autotune.h"
#include "core/trainer_detail.h"
#include "core/trainer_hist.h"
#include "data/csc_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/reduce.h"
#include "primitives/transform.h"

namespace gbdt::multigpu {

using gbdt::detail::ActiveNode;
using gbdt::detail::BestSplit;
using gbdt::detail::LevelPlan;
using gbdt::detail::TrainState;
using device::Device;

const char* shard_mode_name(ShardMode m) {
  switch (m) {
    case ShardMode::kData:
      return "data";
    case ShardMode::kFeature:
      return "feature";
  }
  return "?";
}

bool parse_shard_mode(std::string_view s, ShardMode& out) {
  if (s == "data") {
    out = ShardMode::kData;
  } else if (s == "feature") {
    out = ShardMode::kFeature;
  } else {
    return false;
  }
  return true;
}

namespace {

/// One device + its shard of the training matrix.
struct Shard {
  std::unique_ptr<Device> dev;
  std::unique_ptr<TrainState> state;
  std::int64_t n_local_attrs = 0;  // exact mode: columns held locally
  std::int64_t attr_lo = 0;        // feature mode: global id of local attr 0
  std::int64_t row_lo = 0;         // hist mode: global row range [lo, hi)
  std::int64_t row_hi = 0;
  int comm_stream = device::kDefaultStream;
  int compute_stream = device::kDefaultStream;
  double busy_seconds = 0.0;  // accumulated modeled time of this shard
};

/// Accumulates the max-over-shards modeled time of one parallel step into
/// the critical path.  Comm legs advance the per-device comm-stream clocks,
/// so a step wrapping a collective prices communication through the same
/// max — never double-counted as a separate additive term.
class ParallelStep {
 public:
  explicit ParallelStep(std::vector<Shard>& shards, double& critical,
                        std::vector<double>* per_device = nullptr)
      : shards_(shards), critical_(critical), per_device_(per_device) {
    before_.reserve(shards.size());
    for (auto& s : shards_) before_.push_back(s.dev->elapsed_seconds());
  }
  ~ParallelStep() {
    double slowest = 0.0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const double delta = shards_[k].dev->elapsed_seconds() - before_[k];
      shards_[k].busy_seconds += delta;
      slowest = std::max(slowest, delta);
      if (per_device_ != nullptr) (*per_device_)[k] += delta;
    }
    critical_ += slowest;
  }
  ParallelStep(const ParallelStep&) = delete;
  ParallelStep& operator=(const ParallelStep&) = delete;

 private:
  std::vector<Shard>& shards_;
  double& critical_;
  std::vector<double>* per_device_;
  std::vector<double> before_;
};

/// Per-train communication tally, folded into the report at the end.
struct CommStats {
  double seconds = 0.0;
  double allreduce_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;

  void add_collective(const AllreduceReport& r) {
    seconds += r.seconds;
    allreduce_seconds += r.seconds;
    bytes += r.bytes;
    messages += r.messages;
  }
};

/// Fresh ShardLinks with a ready event recorded on each shard's default
/// stream, so the collectives' comm legs wait for every kernel enqueued so
/// far (hb edge; see allreduce.h detail::enqueue_leg).
std::vector<ShardLink> make_links(std::vector<Shard>& shards) {
  std::vector<ShardLink> links;
  links.reserve(shards.size());
  for (auto& sh : shards) {
    links.push_back(ShardLink{sh.dev.get(), sh.comm_stream,
                              sh.dev->record_event(device::kDefaultStream)});
  }
  return links;
}

hist::QGH qgh_sum(const hist::QGH& a, const hist::QGH& b) {
  hist::QGH r = a;
  r += b;
  return r;
}

}  // namespace

struct MultiGpuTrainer::Impl {
  device::DeviceConfig cfg;
  int n_devices;
  GBDTParam param;
  Interconnect link;
  MultiGpuOptions opts;
  std::unique_ptr<Loss> loss;

  Impl(device::DeviceConfig c, int n, GBDTParam p, Interconnect l,
       MultiGpuOptions o)
      : cfg(std::move(c)), n_devices(n), param(std::move(p)), link(l),
        opts(o), loss(make_loss(param.loss)) {
    if (n_devices < 1) throw std::invalid_argument("need >= 1 device");
    // The multi-GPU exact path shards by attribute over the sparse layout.
    param.use_rle = false;
    param.force_rle = false;
  }

  [[nodiscard]] MultiTrainReport train_exact(const data::Dataset& ds);
  [[nodiscard]] MultiTrainReport train_hist(const data::Dataset& ds);

  void finish_comm(MultiTrainReport& report, const CommStats& comm,
                   const std::vector<Shard>& shards) const {
    static obs::Counter& comm_bytes_total =
        obs::Registry::global().counter("gbdt_mgpu_comm_bytes_total");
    static obs::Gauge& overlap_gauge =
        obs::Registry::global().gauge("gbdt_mgpu_comm_overlap_ratio");
    comm_bytes_total.inc(comm.bytes);
    report.comm_seconds = comm.seconds;
    report.allreduce_seconds = comm.allreduce_seconds;
    report.comm_bytes = comm.bytes;
    report.comm_messages = comm.messages;
    double overlap = 0.0;
    for (const auto& sh : shards) {
      overlap = std::max(overlap, sh.dev->overlap_ratio());
    }
    report.comm_overlap_ratio = overlap;
    overlap_gauge.set(overlap);
  }
};

MultiGpuTrainer::MultiGpuTrainer(device::DeviceConfig cfg, int n_devices,
                                 GBDTParam param, Interconnect link,
                                 MultiGpuOptions opts)
    : impl_(std::make_unique<Impl>(std::move(cfg), n_devices, std::move(param),
                                   link, opts)) {}

MultiGpuTrainer::~MultiGpuTrainer() = default;

int MultiGpuTrainer::n_devices() const { return impl_->n_devices; }

MultiTrainReport MultiGpuTrainer::train(const data::Dataset& ds) {
  if (impl_->param.autotune || autotune::autotune_forced()) {
    // Shards share one tuned configuration (they see the same shape).
    autotune::apply(
        autotune::tune(impl_->cfg, autotune::problem_shape(ds), impl_->param),
        impl_->param);
  }
  return impl_->param.use_hist_trainer ? impl_->train_hist(ds)
                                       : impl_->train_exact(ds);
}

// ---------------------------------------------------------------------------
// Exact method: column shards (round-robin or contiguous ranges).
// ---------------------------------------------------------------------------

MultiTrainReport MultiGpuTrainer::Impl::train_exact(const data::Dataset& ds) {
  obs::ScopedSpan train_span("mgpu_train");
  const auto wall_start = std::chrono::steady_clock::now();
  const int K = n_devices;
  if (ds.n_instances() == 0) throw std::invalid_argument("empty dataset");
  if (K > ds.n_attributes()) {
    throw std::invalid_argument("more devices than attributes");
  }
  const std::int64_t n_inst = ds.n_instances();
  const std::int64_t n_attr = ds.n_attributes();
  const bool feature_sharded = opts.shard == ShardMode::kFeature;
  const bool streams = device::stream_async_enabled();

  MultiTrainReport report;
  report.base_score = param.base_score;
  report.device_seconds.assign(static_cast<std::size_t>(K), 0.0);
  CommStats comm;

  // ---- build shards --------------------------------------------------------
  // kData: attribute a lives on device a % K as local a / K.
  // kFeature: device k owns the contiguous range [F*k/K, F*(k+1)/K).
  std::vector<Shard> shards(static_cast<std::size_t>(K));
  {
    obs::ScopedSpan span("shard_build");
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      sh.dev = std::make_unique<Device>(cfg);
      sh.comm_stream =
          streams ? sh.dev->stream() : device::kDefaultStream;
      if (feature_sharded) {
        const auto r = detail::chunk_range(
            static_cast<std::size_t>(n_attr), K, k);
        sh.attr_lo = static_cast<std::int64_t>(r.lo);
        sh.n_local_attrs = static_cast<std::int64_t>(r.hi - r.lo);
      } else {
        sh.n_local_attrs = (n_attr + (K - 1 - k)) / K;  // ceil((d - k) / K)
      }
      sh.state = std::make_unique<TrainState>(*sh.dev, param, *loss);
      sh.state->n_inst = n_inst;
      sh.state->n_attr = sh.n_local_attrs;
    }
    // Per-shard datasets with remapped attribute ids.
    ParallelStep step(shards, report.modeled_seconds);
    std::vector<data::Entry> row;
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      data::Dataset local(sh.n_local_attrs);
      for (std::int64_t i = 0; i < n_inst; ++i) {
        row.clear();
        for (const auto& e : ds.instance(i)) {
          if (feature_sharded) {
            if (e.attr >= sh.attr_lo && e.attr < sh.attr_lo + sh.n_local_attrs) {
              row.push_back(
                  {static_cast<std::int32_t>(e.attr - sh.attr_lo), e.value});
            }
          } else if (e.attr % K == k) {
            row.push_back({e.attr / K, e.value});
          }
        }
        local.add_instance(row, ds.labels()[static_cast<std::size_t>(i)]);
      }
      auto& st = *sh.state;
      auto csc = data::build_csc_device(*sh.dev, local);
      st.orig_values = std::move(csc.values);
      st.orig_inst = std::move(csc.inst_ids);
      st.orig_seg_offsets = std::move(csc.col_offsets);
    }
  }

  // Replicated per-instance state + labels on every shard.
  std::vector<device::DeviceBuffer<float>> labels(static_cast<std::size_t>(K));
  {
    obs::ScopedSpan span("shard_build");
    ParallelStep step(shards, report.modeled_seconds);
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      auto& st = *sh.state;
      labels[static_cast<std::size_t>(k)] =
          sh.dev->to_device<float>(ds.labels());
      st.grad = sh.dev->alloc<double>(static_cast<std::size_t>(n_inst));
      st.hess = sh.dev->alloc<double>(static_cast<std::size_t>(n_inst));
      st.y_pred = sh.dev->alloc<float>(static_cast<std::size_t>(n_inst));
      st.node_of = sh.dev->alloc<std::int32_t>(static_cast<std::size_t>(n_inst));
      prim::fill(*sh.dev, st.y_pred, static_cast<float>(param.base_score));
    }
  }

  report.trees.reserve(static_cast<std::size_t>(param.n_trees));
  std::vector<std::int32_t> owner_of_node;  // winning shard per *child* node

  // One RoundDriver per shard: gradients are replicated (every shard holds
  // the full row set), the feature bag is drawn from the global attribute
  // space and remapped to each shard's local ids — so the allreduced winner
  // matches what a single device with the same bag would pick.
  std::vector<std::unique_ptr<objective::RoundDriver>> drivers;
  drivers.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    drivers.push_back(std::make_unique<objective::RoundDriver>(
        *shards[static_cast<std::size_t>(k)].dev, param, ds, K, k,
        feature_sharded ? objective::ShardAttrMap::kContiguous
                        : objective::ShardAttrMap::kRoundRobin));
  }

  // Maps a winning global attribute back to the shard that owns it.
  const auto owner_of_attr = [&](std::int32_t attr) {
    if (!feature_sharded) return static_cast<int>(attr % K);
    int w = 0;
    while (w + 1 < K &&
           attr >= shards[static_cast<std::size_t>(w + 1)].attr_lo) {
      ++w;
    }
    return w;
  };

  for (int t = 0; t < param.n_trees; ++t) {
    {
      obs::ScopedSpan span("gradient_compute");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        auto& st = *shards[static_cast<std::size_t>(k)].state;
        if (t > 0) gbdt::detail::update_predictions_smart(st, report.trees.back());
        drivers[static_cast<std::size_t>(k)]->begin_round(
            st, labels[static_cast<std::size_t>(k)], t);
        gbdt::detail::reset_working_layout(st);
      }
    }

    report.trees.emplace_back();
    Tree& tree = report.trees.back();

    ActiveNode root;
    root.tree_node = 0;
    std::vector<std::array<double, 2>> root_stats(
        static_cast<std::size_t>(K));
    {
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      // Every shard reduces its replicated gradients (bitwise-identical
      // values), then the collective spreads/validates them — semantically a
      // broadcast, expressed as an allreduce with max (idempotent here).
      for (int k = 0; k < K; ++k) {
        auto& sh = shards[static_cast<std::size_t>(k)];
        root_stats[static_cast<std::size_t>(k)] = std::array<double, 2>{
            prim::reduce_sum<double>(*sh.dev, sh.state->grad,
                                     "mgpu_root_sum_g"),
            prim::reduce_sum<double>(*sh.dev, sh.state->hess,
                                     "mgpu_root_sum_h")};
      }
    }
    if (K > 1) {
      obs::ScopedSpan span("allreduce_merge");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      auto links = make_links(shards);
      std::vector<std::span<double>> payloads;
      payloads.reserve(static_cast<std::size_t>(K));
      for (auto& rs : root_stats) payloads.push_back(std::span<double>(rs));
      comm.add_collective(allreduce<double>(
          "comm_root", link, opts.algo, links, payloads,
          [](double a, double b) { return std::max(a, b); }));
    }
    root.sum_g = root_stats[0][0];
    root.sum_h = root_stats[0][1];
    root.count = n_inst;

    std::vector<ActiveNode> active{root};
    for (auto& sh : shards) {
      sh.state->tree = &tree;
      sh.state->active = active;
    }

    for (int level = 0; level < param.depth && !active.empty(); ++level) {
      // 1. Local best splits per shard.
      std::vector<std::vector<BestSplit>> local(static_cast<std::size_t>(K));
      {
        obs::ScopedSpan span("find_split");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          local[static_cast<std::size_t>(k)] =
              gbdt::detail::find_splits_sparse(*shards[static_cast<std::size_t>(k)].state);
        }
      }

      // 2. Allreduce the candidates: attribute ids are globalised first, so
      //    the combine (max gain, ties to the lowest global attribute — the
      //    same order a single device enumerates) is order-independent and
      //    every algorithm converges on the same winner bit for bit.
      std::vector<BestSplit> best;
      std::vector<int> owner(active.size(), -1);
      {
        obs::ScopedSpan span("allreduce_merge");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        std::vector<std::vector<BestSplit>> cand(local);
        for (int k = 0; k < K; ++k) {
          auto& sh = shards[static_cast<std::size_t>(k)];
          for (auto& c : cand[static_cast<std::size_t>(k)]) {
            if (!c.valid) continue;
            c.attr = feature_sharded
                         ? static_cast<std::int32_t>(sh.attr_lo) + c.attr
                         : c.attr * K + k;
          }
        }
        auto links = make_links(shards);
        std::vector<std::span<BestSplit>> payloads;
        payloads.reserve(static_cast<std::size_t>(K));
        for (auto& c : cand) payloads.push_back(std::span<BestSplit>(c));
        comm.add_collective(allreduce<BestSplit>(
            "comm_cand", link, opts.algo, links, payloads,
            [](const BestSplit& a, const BestSplit& b) {
              if (!b.valid) return a;
              if (!a.valid) return b;
              if (b.gain > a.gain) return b;
              if (b.gain == a.gain && b.attr < a.attr) return b;
              return a;
            }));
        best = std::move(cand[0]);
        for (std::size_t s = 0; s < active.size(); ++s) {
          if (best[s].valid) owner[s] = owner_of_attr(best[s].attr);
        }
      }

      // 3. Host-side split decisions (same logic as the single-GPU loop).
      LevelPlan plan;
      plan.per_slot.resize(active.size());
      std::vector<std::array<std::int32_t, 3>> child_owners;  // (l, r, owner)
      for (std::size_t s = 0; s < active.size(); ++s) {
        const ActiveNode& node = active[s];
        const BestSplit& b = best[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        if (b.valid && b.gain > param.gamma) {
          const auto [l, r] = tree.split(node.tree_node, b.attr,
                                         b.split_value, b.default_left,
                                         b.gain);
          auto& e = plan.per_slot[s];
          e.split = true;
          e.chosen_seg = b.seg;  // shard-local; cleared for non-owners below
          e.best_pos = b.pos;
          e.left_id = l;
          e.right_id = r;
          e.default_left = b.default_left;
          child_owners.push_back({l, r, owner[s]});
          ActiveNode left = b.left;
          left.tree_node = l;
          ActiveNode right = b.right;
          right.tree_node = r;
          plan.next_active.push_back(left);
          plan.next_active.push_back(right);
        } else {
          auto& leaf = tree.node(node.tree_node);
          leaf.weight =
              param.eta * leaf_weight(node.sum_g, node.sum_h, param.lambda);
        }
      }
      if (plan.next_active.empty()) {
        active.clear();
        break;
      }
      plan.next_slot_of_tree.assign(static_cast<std::size_t>(tree.n_nodes()),
                                    -1);
      for (std::size_t k2 = 0; k2 < plan.next_active.size(); ++k2) {
        plan.next_slot_of_tree[static_cast<std::size_t>(
            plan.next_active[k2].tree_node)] = static_cast<std::int32_t>(k2);
      }
      // Authoritative-shard table keyed by the *new* child ids: both
      // children inherit their slot's winning shard, so the post-split
      // instance->node value alone selects the owner — no pre-split
      // snapshot of the map is needed.
      owner_of_node.assign(static_cast<std::size_t>(tree.n_nodes()), -1);
      for (const auto& [l, r, w] : child_owners) {
        owner_of_node[static_cast<std::size_t>(l)] = w;
        owner_of_node[static_cast<std::size_t>(r)] = w;
      }

      // 4. Mark instance sides: every shard applies the defaults; only the
      //    owner of a node's winning attribute knows the exact sides.
      std::vector<LevelPlan> shard_plans(static_cast<std::size_t>(K), plan);
      for (std::size_t s = 0; s < active.size(); ++s) {
        if (!plan.per_slot[s].split) continue;
        for (int k = 0; k < K; ++k) {
          if (k != owner[s]) {
            auto& e = shard_plans[static_cast<std::size_t>(k)].per_slot[s];
            e.chosen_seg = -1;
            e.best_pos = -1;
          }
        }
      }
      {
        obs::ScopedSpan span("mark_sides");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          gbdt::detail::apply_mark_sides_sparse(
              *shards[static_cast<std::size_t>(k)].state,
              shard_plans[static_cast<std::size_t>(k)]);
        }
      }

      // 5. Synchronise node_of: instance i's authoritative value lives on
      //    the shard owning its (new) node's winning attribute.  Each shard
      //    receives one modeled leg per winning peer carrying that peer's
      //    rows, then a device kernel gathers the rows in place.
      if (K > 1) {
        obs::ScopedSpan span("node_sync");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        std::vector<std::uint64_t> rows_of_winner(
            static_cast<std::size_t>(K), 0);
        for (std::size_t s = 0; s < active.size(); ++s) {
          if (plan.per_slot[s].split && owner[s] >= 0) {
            rows_of_winner[static_cast<std::size_t>(owner[s])] +=
                static_cast<std::uint64_t>(active[s].count);
          }
        }
        auto links = make_links(shards);
        std::vector<double> shard_secs(static_cast<std::size_t>(K), 0.0);
        for (int k = 0; k < K; ++k) {
          const auto ku = static_cast<std::size_t>(k);
          bool waited = false;
          auto dst = shards[ku].state->node_of.span();
          for (int w = 0; w < K; ++w) {
            if (w == k || rows_of_winner[static_cast<std::size_t>(w)] == 0) {
              continue;
            }
            const std::uint64_t bytes =
                rows_of_winner[static_cast<std::size_t>(w)] *
                sizeof(std::int32_t);
            const double secs = link.leg_seconds(bytes);
            detail::enqueue_leg(links[ku], waited, "stream_mgpu_node_sync",
                                secs, bytes, dst, detail::ChunkRange{0, 0},
                                detail::ChunkRange{0, dst.size()});
            comm.bytes += bytes;
            ++comm.messages;
            shard_secs[ku] += secs;
          }
        }
        comm.seconds +=
            *std::max_element(shard_secs.begin(), shard_secs.end());
        // Device-side masked gather replacing the old host-side O(K·n)
        // merge loop: w = owner_of_node[node_of[i]] picks the shard whose
        // mark_sides result is authoritative for row i.  Winner shards
        // never rewrite their own rows, so cross-device kernel order is
        // free — and the default stream joins each shard's comm legs.
        std::vector<std::span<const std::int32_t>> peers(
            static_cast<std::size_t>(K));
        for (int w = 0; w < K; ++w) {
          peers[static_cast<std::size_t>(w)] =
              shards[static_cast<std::size_t>(w)].state->node_of.span();
        }
        for (int k = 0; k < K; ++k) {
          auto& sh = shards[static_cast<std::size_t>(k)];
          auto& st = *sh.state;
          auto d_owner = gbdt::detail::upload_pooled(*sh.dev, st.arena,
                                               owner_of_node);
          auto nof = st.node_of.span();
          auto own = d_owner.span();
          const std::int64_t n = n_inst;
          const int me = k;
          sh.dev->launch(
              "mgpu_node_merge", device::grid_for(n, prim::kBlockDim),
              prim::kBlockDim, [&](device::BlockCtx& b) {
                b.for_each_thread([&](std::int64_t i) {
                  if (i >= n) return;
                  const auto u = static_cast<std::size_t>(i);
                  const std::int32_t c = nof[u];
                  const int w = own[static_cast<std::size_t>(c)];
                  if (w >= 0 && w != me) {
                    nof[u] = peers[static_cast<std::size_t>(w)][u];
                  }
                });
                b.reads_tile(nof, n);
                b.writes_tile(nof, n);
                b.reads(own, 0, static_cast<std::int64_t>(own.size()));
                const std::uint64_t m = prim::elems_in_block(b, n);
                b.work(m);
                // own node read + peer gather + masked write
                b.mem_coalesced(m * 3 * sizeof(std::int32_t));
              });
        }
      }

      // 6. Local order-preserving partition of every shard's lists.
      {
        obs::ScopedSpan span("partition");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          gbdt::detail::apply_partition_sparse(
              *shards[static_cast<std::size_t>(k)].state,
              shard_plans[static_cast<std::size_t>(k)]);
        }
      }

      active = plan.next_active;
      for (auto& sh : shards) sh.state->active = active;
    }

    // Remaining active nodes become leaves.
    for (const ActiveNode& node : active) {
      auto& leaf = tree.node(node.tree_node);
      leaf.weight =
          param.eta * leaf_weight(node.sum_g, node.sum_h, param.lambda);
      leaf.n_instances = node.count;
      leaf.sum_g = node.sum_g;
      leaf.sum_h = node.sum_h;
    }
    active.clear();
  }

  // Fold the last tree into the replicated predictions; report shard 0's.
  {
    obs::ScopedSpan span("gradient_compute");
    ParallelStep step(shards, report.modeled_seconds, &report.device_seconds);
    for (int k = 0; k < K; ++k) {
      gbdt::detail::update_predictions_smart(*shards[static_cast<std::size_t>(k)].state,
                                       report.trees.back());
    }
  }
  const auto final_pred = shards[0].dev->to_host(shards[0].state->y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());
  finish_comm(report, comm, shards);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

// ---------------------------------------------------------------------------
// Histogram method: row shards, global cuts, per-level histogram allreduce.
// ---------------------------------------------------------------------------

MultiTrainReport MultiGpuTrainer::Impl::train_hist(const data::Dataset& ds) {
  obs::ScopedSpan train_span("mgpu_train");
  const auto wall_start = std::chrono::steady_clock::now();
  const int K = n_devices;
  if (ds.n_instances() == 0) throw std::invalid_argument("empty dataset");
  if (static_cast<std::int64_t>(K) > ds.n_instances()) {
    throw std::invalid_argument("more devices than instances");
  }
  if (param.n_bins < 1 || param.n_bins > 4096) {
    throw std::invalid_argument("n_bins must be in [1, 4096]");
  }
  if (param.subsample < 1.0 || param.feature_bag != 0) {
    throw std::invalid_argument(
        "multi-GPU hist: row/feature sampling is not supported (shards own "
        "row ranges; a per-tree row mask would unbalance them)");
  }
  if (param.objective == ObjectiveKind::kRanking) {
    throw std::invalid_argument(
        "multi-GPU hist: ranking objectives need query groups spanning "
        "shards; train single-device instead");
  }
  const std::int64_t n_inst = ds.n_instances();
  const std::int64_t n_attr = ds.n_attributes();
  const int n_bins = param.n_bins;
  const std::int64_t cps = n_attr * n_bins;
  const bool streams = device::stream_async_enabled();

  MultiTrainReport report;
  report.base_score = param.base_score;
  report.device_seconds.assign(static_cast<std::size_t>(K), 0.0);
  CommStats comm;

  // ---- row shards binned against the *global* quantile cuts ---------------
  std::vector<Shard> shards(static_cast<std::size_t>(K));
  std::vector<BinnedMatrix> binned(static_cast<std::size_t>(K));
  std::vector<device::DeviceBuffer<float>> labels(static_cast<std::size_t>(K));
  {
    obs::ScopedSpan span("shard_build");
    const std::vector<hist::BinCuts> cuts = build_hist_cuts(ds, n_bins);
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      sh.dev = std::make_unique<Device>(cfg);
      if (streams) {
        sh.comm_stream = sh.dev->stream();
        sh.compute_stream = sh.dev->stream();
      }
      const auto r =
          detail::chunk_range(static_cast<std::size_t>(n_inst), K, k);
      sh.row_lo = static_cast<std::int64_t>(r.lo);
      sh.row_hi = static_cast<std::int64_t>(r.hi);
      sh.state = std::make_unique<TrainState>(*sh.dev, param, *loss);
      sh.state->n_inst = sh.row_hi - sh.row_lo;
      sh.state->n_attr = n_attr;
    }
    ParallelStep step(shards, report.modeled_seconds);
    for (int k = 0; k < K; ++k) {
      auto& sh = shards[static_cast<std::size_t>(k)];
      data::Dataset local(n_attr);
      std::vector<data::Entry> row;
      for (std::int64_t i = sh.row_lo; i < sh.row_hi; ++i) {
        const auto inst = ds.instance(i);
        row.assign(inst.begin(), inst.end());
        local.add_instance(row, ds.labels()[static_cast<std::size_t>(i)]);
      }
      binned[static_cast<std::size_t>(k)] =
          build_binned_matrix(*sh.dev, local, n_bins, cuts);
      labels[static_cast<std::size_t>(k)] =
          sh.dev->to_device<float>(local.labels());
      auto& st = *sh.state;
      st.grad = sh.dev->alloc<double>(static_cast<std::size_t>(st.n_inst));
      st.hess = sh.dev->alloc<double>(static_cast<std::size_t>(st.n_inst));
      st.y_pred = sh.dev->alloc<float>(static_cast<std::size_t>(st.n_inst));
      st.node_of =
          sh.dev->alloc<std::int32_t>(static_cast<std::size_t>(st.n_inst));
      prim::fill(*sh.dev, st.y_pred, static_cast<float>(param.base_score));
    }
  }
  {
    // Feasibility: same guard as the single-device hist trainer (histogram
    // slots replicate per shard, so the bound is unchanged).
    const double widest = std::ldexp(1.0, std::min(param.depth - 1, 24));
    const double hist_bytes =
        2.0 * widest * static_cast<double>(cps) * sizeof(hist::QGH);
    if (hist_bytes > static_cast<double>(cfg.global_mem_bytes) / 4.0) {
      throw std::invalid_argument(
          "hist trainer: per-level histograms would exceed a quarter of "
          "device memory; reduce depth or n_bins");
    }
  }

  std::vector<HistGrower> growers;
  growers.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    auto& sh = shards[static_cast<std::size_t>(k)];
    growers.emplace_back(*sh.dev, param, *sh.state,
                         binned[static_cast<std::size_t>(k)],
                         /*distributed=*/true);
  }

  report.trees.reserve(static_cast<std::size_t>(param.n_trees));
  for (int t = 0; t < param.n_trees; ++t) {
    {
      obs::ScopedSpan span("gradient_compute");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        auto& st = *shards[static_cast<std::size_t>(k)].state;
        if (t > 0) gbdt::detail::update_predictions_smart(st, report.trees.back());
        gbdt::detail::compute_gradients(st, labels[static_cast<std::size_t>(k)]);
      }
    }

    // Quantization scales must agree across shards: allreduce the |g|/|h|
    // maxima (max) and the quantized root sums (+) so every shard holds the
    // global values the single-device trainer would compute.
    std::vector<std::array<double, 2>> maxima(static_cast<std::size_t>(K));
    {
      obs::ScopedSpan span("gradient_compute");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        const auto mx = growers[static_cast<std::size_t>(k)].local_abs_max();
        maxima[static_cast<std::size_t>(k)] = std::array<double, 2>{mx.g, mx.h};
      }
    }
    if (K > 1) {
      obs::ScopedSpan span("allreduce_merge");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      auto links = make_links(shards);
      std::vector<std::span<double>> payloads;
      payloads.reserve(static_cast<std::size_t>(K));
      for (auto& m : maxima) payloads.push_back(std::span<double>(m));
      comm.add_collective(allreduce<double>(
          "comm_absmax", link, opts.algo, links, payloads,
          [](double a, double b) { return std::max(a, b); }));
    }
    std::vector<hist::QGH> rootq(static_cast<std::size_t>(K));
    {
      obs::ScopedSpan span("gradient_compute");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        rootq[static_cast<std::size_t>(k)] =
            growers[static_cast<std::size_t>(k)].quantize(
                maxima[0][0], maxima[0][1], n_inst);
      }
    }
    if (K > 1) {
      obs::ScopedSpan span("allreduce_merge");
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      auto links = make_links(shards);
      std::vector<std::span<hist::QGH>> payloads;
      payloads.reserve(static_cast<std::size_t>(K));
      for (auto& q : rootq) {
        payloads.push_back(std::span<hist::QGH>(&q, 1));
      }
      comm.add_collective(allreduce<hist::QGH>("comm_rootq", link, opts.algo,
                                               links, payloads, qgh_sum));
    }

    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    {
      ParallelStep step(shards, report.modeled_seconds,
                        &report.device_seconds);
      for (int k = 0; k < K; ++k) {
        growers[static_cast<std::size_t>(k)].begin_tree(tree, rootq[0]);
      }
    }

    auto& st0 = *shards[0].state;
    for (int level = 0; level < param.depth && !st0.active.empty(); ++level) {
      for (int k = 0; k < K; ++k) {
        growers[static_cast<std::size_t>(k)].plan_level();
      }
      {
        obs::ScopedSpan span("hist_build");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].build_level();
        }
      }
      // Segment offsets + key buffer ride the default stream and must be
      // enqueued *before* the comm legs (a later default-stream op would
      // serialise behind them).
      {
        obs::ScopedSpan span("hist_find_split");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].prepare_offsets();
        }
      }
      {
        // Histogram allreduce (one collective per accumulated slot, payload
        // = that slot's cps cells) overlapping the SetKey build: the comm
        // legs ride each shard's comm stream behind an event recorded after
        // hist_build, while set_keys runs on the compute stream — the race
        // detector sees both schedules, the device clocks overlap them.
        obs::ScopedSpan span("allreduce_merge");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        if (K > 1) {
          auto links = make_links(shards);
          std::vector<std::vector<std::span<hist::QGH>>> slots(
              static_cast<std::size_t>(K));
          for (int k = 0; k < K; ++k) {
            slots[static_cast<std::size_t>(k)] =
                growers[static_cast<std::size_t>(k)].accumulated_slots();
          }
          AllreduceReport rep;
          std::vector<std::span<hist::QGH>> payloads(
              static_cast<std::size_t>(K));
          for (std::size_t j = 0; j < slots[0].size(); ++j) {
            for (int k = 0; k < K; ++k) {
              payloads[static_cast<std::size_t>(k)] =
                  slots[static_cast<std::size_t>(k)][j];
            }
            rep += allreduce<hist::QGH>("comm_hist", link, opts.algo, links,
                                        payloads, qgh_sum);
          }
          comm.add_collective(rep);
        }
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].run_set_keys(
              shards[static_cast<std::size_t>(k)].compute_stream);
        }
      }
      if (growers[0].has_derived()) {
        obs::ScopedSpan span("hist_subtract");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].subtract_level();
        }
      }
      {
        obs::ScopedSpan span("hist_find_split");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].find_level();
        }
      }

      // Shard 0 decides (mutating the shared tree once); the decision is
      // identical on every shard by construction — the histograms and slot
      // stats are global — so no decision broadcast is modeled.
      const HistGrower::LevelDecision decision = growers[0].decide_level();
      if (decision.next_active.empty()) {
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].state().active.clear();
        }
        break;
      }
      {
        obs::ScopedSpan span("hist_split_node");
        ParallelStep step(shards, report.modeled_seconds,
                          &report.device_seconds);
        for (int k = 0; k < K; ++k) {
          growers[static_cast<std::size_t>(k)].apply_level(decision);
        }
      }
      for (int k = 0; k < K; ++k) {
        growers[static_cast<std::size_t>(k)].advance_level(decision);
      }
    }

    // Leaf writes are idempotent across shards (all stats are global), so
    // every grower may finish; only the arena/level state differs.
    for (int k = 0; k < K; ++k) {
      growers[static_cast<std::size_t>(k)].finish_tree();
    }
  }

  // Fold the last tree into the per-shard predictions and concatenate the
  // row ranges back into dataset order.
  {
    obs::ScopedSpan span("gradient_compute");
    ParallelStep step(shards, report.modeled_seconds, &report.device_seconds);
    for (int k = 0; k < K; ++k) {
      gbdt::detail::update_predictions_smart(*shards[static_cast<std::size_t>(k)].state,
                                       report.trees.back());
    }
  }
  report.train_scores.reserve(static_cast<std::size_t>(n_inst));
  for (int k = 0; k < K; ++k) {
    auto& sh = shards[static_cast<std::size_t>(k)];
    const auto pred = sh.dev->to_host(sh.state->y_pred);
    report.train_scores.insert(report.train_scores.end(), pred.begin(),
                               pred.end());
  }
  finish_comm(report, comm, shards);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt::multigpu
