#include "primitives/partition.h"

#include <algorithm>
#include <cassert>

#include "primitives/scan.h"
#include "primitives/transform.h"

namespace gbdt::prim {

namespace {
constexpr std::int64_t kNaiveWorkload = 16;  // prior work's fixed b
constexpr std::int64_t kCounterSize = sizeof(std::int64_t);
}  // namespace

PartitionPlan plan_partition(std::int64_t n_elements, std::int64_t n_parts,
                             std::size_t max_counter_bytes, bool customized) {
  PartitionPlan plan;
  if (n_elements <= 0 || n_parts <= 0) return plan;
  const auto budget = static_cast<std::int64_t>(max_counter_bytes);

  if (customized) {
    // Paper formula: bound #threads so #threads * #parts counters fit the
    // budget, then spread the elements over those threads.  The effective
    // budget is additionally capped at the data size itself — building (and
    // scanning) a counter matrix bigger than the data being partitioned
    // can never pay off, which is the intent of "allocate more workload to
    // a thread when the number of partitions is large".
    const std::int64_t data_cap = std::max<std::int64_t>(
        std::int64_t{1} << 16, n_elements * kCounterSize);
    const std::int64_t eff_budget = std::min(budget, data_cap);
    const std::int64_t max_threads =
        std::max<std::int64_t>(1, eff_budget / (n_parts * kCounterSize));
    plan.n_threads = std::clamp<std::int64_t>(
        (n_elements + kNaiveWorkload - 1) / kNaiveWorkload, 1, max_threads);
  } else {
    // Naive scheme from prior work: fixed workload of 16 elements per
    // thread, regardless of how many counters that implies.  The full
    // counter matrix (#threads x #parts) can exceed device memory by orders
    // of magnitude ("runs out of GPU memory for large datasets"); to keep
    // the ablation runnable we bound the matrix by a generous 8 B/element
    // cap and amortise the overflow into at most 2 re-reads of the data,
    // shrinking the thread count as a last resort — every deviation from
    // b = 16 costs extra passes first.
    plan.n_threads = (n_elements + kNaiveWorkload - 1) / kNaiveWorkload;
    const std::int64_t eff = std::min<std::int64_t>(
        budget,
        std::max<std::int64_t>(std::int64_t{1} << 20, 8 * n_elements));
    plan.n_threads =
        std::min(plan.n_threads, std::max<std::int64_t>(1, eff / kCounterSize));
    plan.parts_per_pass = std::clamp<std::int64_t>(
        eff / (plan.n_threads * kCounterSize), 1, n_parts);
    plan.passes = static_cast<int>((n_parts + plan.parts_per_pass - 1) /
                                   plan.parts_per_pass);
    if (plan.passes > 2) {
      plan.parts_per_pass = (n_parts + 1) / 2;
      plan.n_threads = std::max<std::int64_t>(
          1, eff / (plan.parts_per_pass * kCounterSize));
      plan.passes = static_cast<int>((n_parts + plan.parts_per_pass - 1) /
                                     plan.parts_per_pass);
    }
    plan.workload = (n_elements + plan.n_threads - 1) / plan.n_threads;
    plan.counter_bytes = static_cast<std::size_t>(plan.n_threads) *
                         static_cast<std::size_t>(plan.parts_per_pass) *
                         kCounterSize;
    return plan;
  }

  // Feasibility: the counter matrix must fit the budget.  First make a single
  // partition's counter column fit (shrinking the thread count if necessary),
  // then chunk the partitions into passes.  The customized plan lands in a
  // single pass whenever one is possible.
  plan.n_threads =
      std::min(plan.n_threads, std::max<std::int64_t>(1, budget / kCounterSize));
  plan.workload = (n_elements + plan.n_threads - 1) / plan.n_threads;
  plan.parts_per_pass = std::clamp<std::int64_t>(
      budget / (plan.n_threads * kCounterSize), 1, n_parts);
  plan.passes = static_cast<int>((n_parts + plan.parts_per_pass - 1) /
                                 plan.parts_per_pass);
  plan.counter_bytes = static_cast<std::size_t>(plan.n_threads) *
                       static_cast<std::size_t>(plan.parts_per_pass) *
                       kCounterSize;
  return plan;
}

void histogram_partition(device::Device& dev,
                         std::span<const std::int32_t> part_ids,
                         std::int64_t n_parts,
                         std::span<std::int64_t> scatter_out,
                         std::span<std::int64_t> part_offsets,
                         const PartitionPlan& plan,
                         device::WorkspaceArena* arena) {
  const std::int64_t n = static_cast<std::int64_t>(part_ids.size());
  assert(static_cast<std::int64_t>(part_offsets.size()) == n_parts + 1);
  if (n == 0) {
    fill(dev, part_offsets, std::int64_t{0});
    return;
  }

  const std::int64_t threads = plan.n_threads;
  const std::int64_t work = plan.workload;
  const std::int64_t grid = device::grid_for(threads, kBlockDim);

  // Counter/base matrices: pooled when the caller has an arena (the
  // trainers' per-level loops), otherwise one-shot device allocations.
  const std::size_t matrix = static_cast<std::size_t>(plan.parts_per_pass) *
                             static_cast<std::size_t>(threads);
  device::DeviceBuffer<std::int64_t> owned_counters;
  device::DeviceBuffer<std::int64_t> owned_bases;
  device::ArenaBuffer<std::int64_t> pooled_counters;
  device::ArenaBuffer<std::int64_t> pooled_bases;
  if (arena != nullptr) {
    pooled_counters = arena->alloc<std::int64_t>(matrix);
    pooled_bases = arena->alloc<std::int64_t>(matrix);
  } else {
    owned_counters = dev.alloc<std::int64_t>(matrix);
    owned_bases = dev.alloc<std::int64_t>(matrix);
  }

  auto ids = part_ids;
  auto scat = scatter_out;
  auto offs = part_offsets;
  auto cnt = arena != nullptr ? pooled_counters.span() : owned_counters.span();
  auto base = arena != nullptr ? pooled_bases.span() : owned_bases.span();

  std::int64_t placed_before = 0;  // outputs written by earlier passes
  for (int pass = 0; pass < plan.passes; ++pass) {
    const std::int64_t p_lo = static_cast<std::int64_t>(pass) * plan.parts_per_pass;
    const std::int64_t p_hi = std::min(p_lo + plan.parts_per_pass, n_parts);
    const std::int64_t pass_parts = p_hi - p_lo;

    // Phase 1: per-(thread, partition) occurrence counts, partition-major so
    // a flat exclusive scan yields order-preserving global bases.
    dev.launch("partition_count", grid, kBlockDim, [&](device::BlockCtx& b) {
      std::uint64_t scanned = 0;
      b.for_each_thread([&](std::int64_t t) {
        if (t >= threads) return;
        const std::int64_t lo = t * work;
        const std::int64_t hi = std::min(lo + work, n);
        for (std::int64_t p = 0; p < pass_parts; ++p) {
          cnt[static_cast<std::size_t>(p * threads + t)] = 0;
        }
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::int32_t p = ids[static_cast<std::size_t>(i)];
          if (p >= p_lo && p < p_hi) {
            ++cnt[static_cast<std::size_t>((p - p_lo) * threads + t)];
          }
        }
        scanned += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo));
      });
      // Block footprint: threads [t_lo, t_hi) own elements [t_lo*work,
      // t_hi*work) and, per partition, one contiguous counter slice.
      const std::int64_t t_lo = b.block_idx() * b.block_dim();
      const std::int64_t t_hi =
          std::min<std::int64_t>(t_lo + b.block_dim(), threads);
      if (t_hi > t_lo) {
        const std::int64_t e_lo = std::min(t_lo * work, n);
        const std::int64_t e_hi = std::min(t_hi * work, n);
        b.reads(ids, e_lo, e_hi - e_lo);
        for (std::int64_t p = 0; p < pass_parts; ++p) {
          b.writes(cnt, p * threads + t_lo, t_hi - t_lo);
        }
      }
      b.work(scanned);
      b.mem_coalesced(scanned * sizeof(std::int32_t));
      // Counter updates are strided (partition-major matrix).
      b.mem_irregular(scanned / 4 + 1);
    });

    exclusive_scan(dev, cnt, base, "partition_scan", arena);

    // Record the start offset of each partition of this pass before the
    // scatter phase consumes the bases.
    dev.launch("partition_offsets", device::grid_for(pass_parts, kBlockDim),
               kBlockDim, [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t p) {
                   if (p < pass_parts) {
                     offs[static_cast<std::size_t>(p_lo + p)] =
                         placed_before +
                         base[static_cast<std::size_t>(p * threads)];
                     b.reads(base, p * threads);
                     b.writes(offs, p_lo + p);
                   }
                 });
                 b.mem_coalesced(elems_in_block(b, pass_parts) * 16);
               });

    // Phase 2: replay and scatter.  Each (thread, partition) base cell is
    // owned by exactly one logical thread, so the increments are race-free.
    dev.launch("partition_scatter", grid, kBlockDim, [&](device::BlockCtx& b) {
      std::uint64_t scanned = 0;
      std::uint64_t placed = 0;
      b.for_each_thread([&](std::int64_t t) {
        if (t >= threads) return;
        const std::int64_t lo = t * work;
        const std::int64_t hi = std::min(lo + work, n);
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto u = static_cast<std::size_t>(i);
          const std::int32_t p = ids[u];
          if (p >= p_lo && p < p_hi) {
            auto& cell = base[static_cast<std::size_t>((p - p_lo) * threads + t)];
            scat[u] = placed_before + cell++;
            ++placed;
          } else if (pass == 0 && p < 0) {
            scat[u] = -1;  // dropped
          }
        }
        scanned += static_cast<std::uint64_t>(std::max<std::int64_t>(0, hi - lo));
      });
      const std::int64_t t_lo = b.block_idx() * b.block_dim();
      const std::int64_t t_hi =
          std::min<std::int64_t>(t_lo + b.block_dim(), threads);
      if (t_hi > t_lo) {
        const std::int64_t e_lo = std::min(t_lo * work, n);
        const std::int64_t e_hi = std::min(t_hi * work, n);
        b.reads(ids, e_lo, e_hi - e_lo);
        b.writes(scat, e_lo, e_hi - e_lo);
        for (std::int64_t p = 0; p < pass_parts; ++p) {
          b.reads(base, p * threads + t_lo, t_hi - t_lo);
          b.writes(base, p * threads + t_lo, t_hi - t_lo);
        }
      }
      b.work(scanned);
      b.mem_coalesced(scanned * (sizeof(std::int32_t) + sizeof(std::int64_t)));
      b.mem_irregular(placed / 2 + 1);  // base cell read-modify-write
    });

    // Elements placed in this pass = scan total of the last pass counters.
    const std::size_t last =
        static_cast<std::size_t>(pass_parts * threads - 1);
    placed_before += base[last];  // base[last] was incremented past its count
  }

  offs[static_cast<std::size_t>(n_parts)] = placed_before;
}

}  // namespace gbdt::prim
