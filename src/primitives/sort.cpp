#include "primitives/sort.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "primitives/scan.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"

namespace gbdt::prim {

namespace {
constexpr int kRadixBits = 8;
constexpr int kRadix = 1 << kRadixBits;
}  // namespace

void radix_sort_pairs(device::Device& dev,
                      device::DeviceBuffer<std::uint64_t>& keys,
                      device::DeviceBuffer<std::uint32_t>& values,
                      int key_bits) {
  assert(key_bits % kRadixBits == 0 && key_bits <= 64);
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  assert(values.size() == keys.size());
  if (n <= 1) return;

  const std::int64_t tiles = device::grid_for(n, kBlockDim);
  auto tmp_keys = dev.alloc<std::uint64_t>(static_cast<std::size_t>(n));
  auto tmp_vals = dev.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  // Digit-major (digit, tile) count matrix so the flat exclusive scan yields
  // stable global scatter bases.
  auto counts =
      dev.alloc<std::int64_t>(static_cast<std::size_t>(tiles) * kRadix);
  auto bases =
      dev.alloc<std::int64_t>(static_cast<std::size_t>(tiles) * kRadix);

  auto* src_k = &keys;
  auto* src_v = &values;
  auto* dst_k = &tmp_keys;
  auto* dst_v = &tmp_vals;

  for (int shift = 0; shift < key_bits; shift += kRadixBits) {
    auto sk = src_k->span();
    auto sv = src_v->span();
    auto dk = dst_k->span();
    auto dv = dst_v->span();
    auto cnt = counts.span();
    auto base = bases.span();

    dev.launch("radix_hist", tiles, kBlockDim, [&](device::BlockCtx& b) {
      std::array<std::int64_t, kRadix> local{};
      const std::int64_t lo = b.block_idx() * b.block_dim();
      const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto digit = static_cast<std::uint32_t>(
            (sk[static_cast<std::size_t>(i)] >> shift) & (kRadix - 1));
        ++local[digit];
      }
      for (int d = 0; d < kRadix; ++d) {
        cnt[static_cast<std::size_t>(d) * tiles +
            static_cast<std::size_t>(b.block_idx())] = local[d];
        b.writes(cnt, static_cast<std::int64_t>(d) * tiles + b.block_idx());
      }
      b.reads(sk, lo, hi - lo);
      const std::uint64_t m = elems_in_block(b, n);
      b.work(m + kRadix);
      b.mem_coalesced(m * sizeof(std::uint64_t) +
                      kRadix * sizeof(std::int64_t));
    });

    exclusive_scan(dev, counts, bases, "radix_scan");

    dev.launch("radix_scatter", tiles, kBlockDim, [&](device::BlockCtx& b) {
      std::array<std::int64_t, kRadix> cursor;
      const auto tile = static_cast<std::size_t>(b.block_idx());
      for (int d = 0; d < kRadix; ++d) {
        cursor[d] = base[static_cast<std::size_t>(d) * tiles + tile];
        b.reads(base, static_cast<std::int64_t>(d) * tiles + b.block_idx());
      }
      const std::int64_t lo = b.block_idx() * b.block_dim();
      const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto u = static_cast<std::size_t>(i);
        const auto digit = static_cast<std::uint32_t>(
            (sk[u] >> shift) & (kRadix - 1));
        const auto pos = static_cast<std::size_t>(cursor[digit]++);
        dk[pos] = sk[u];
        dv[pos] = sv[u];
        // The per-digit cursor slices are disjoint across tiles by
        // construction of the scanned bases; the auditor verifies it.
        b.writes(dk, static_cast<std::int64_t>(pos));
        b.writes(dv, static_cast<std::int64_t>(pos));
      }
      b.reads(sk, lo, hi - lo);
      b.reads(sv, lo, hi - lo);
      const std::uint64_t m = elems_in_block(b, n);
      b.work(m + kRadix);
      b.mem_coalesced(m * (sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
                      kRadix * sizeof(std::int64_t));
      // Scattered writes hit kRadix moving fronts; roughly 1 transaction per
      // 4 elements coalesces within a front.
      b.mem_irregular(m / 4 + 1);
    });

    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }

  // After an odd number of passes the result lives in the temporaries; move
  // it back with a device-side copy kernel.
  if (src_k != &keys) {
    auto sk = src_k->span();
    auto sv = src_v->span();
    auto dk = keys.span();
    auto dv = values.span();
    dev.launch("radix_copy_back", tiles, kBlockDim, [&](device::BlockCtx& b) {
      b.for_each_thread([&](std::int64_t i) {
        if (i < n) {
          const auto u = static_cast<std::size_t>(i);
          dk[u] = sk[u];
          dv[u] = sv[u];
        }
      });
      b.reads_tile(sk, n);
      b.reads_tile(sv, n);
      b.writes_tile(dk, n);
      b.writes_tile(dv, n);
      b.mem_coalesced(elems_in_block(b, n) * 2 *
                      (sizeof(std::uint64_t) + sizeof(std::uint32_t)));
    });
  }
}


void segmented_sort_pairs(device::Device& dev,
                          device::DeviceBuffer<float>& values,
                          device::DeviceBuffer<std::uint32_t>& payload,
                          const device::DeviceBuffer<std::int64_t>& seg_offsets,
                          bool descending) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  if (n <= 1) return;
  const std::int64_t n_seg =
      static_cast<std::int64_t>(seg_offsets.size()) - 1;

  // Segment key per element, then one composite-key sort.
  auto seg_keys = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
  set_keys(dev, seg_offsets, seg_keys,
           auto_segs_per_block(n_seg, dev.config().num_sms));

  auto keys = dev.alloc<std::uint64_t>(static_cast<std::size_t>(n));
  auto order = dev.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  {
    auto v = values.span();
    auto sk = seg_keys.span();
    auto k = keys.span();
    auto o = order.span();
    dev.launch("seg_sort_make_keys", device::grid_for(n, kBlockDim),
               kBlockDim, [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   const std::uint32_t ord = float_to_ordered(v[u]);
                   k[u] = (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(sk[u]))
                           << 32) |
                          (descending ? static_cast<std::uint64_t>(~ord)
                                      : static_cast<std::uint64_t>(ord));
                   o[u] = static_cast<std::uint32_t>(i);
                 });
                 b.reads_tile(v, n);
                 b.reads_tile(sk, n);
                 b.writes_tile(k, n);
                 b.writes_tile(o, n);
                 b.mem_coalesced(elems_in_block(b, n) * 20);
               });
  }
  radix_sort_pairs(dev, keys, order, 64);

  // Permute values and payloads by the sorted order.
  auto new_values = dev.alloc<float>(static_cast<std::size_t>(n));
  auto new_payload = dev.alloc<std::uint32_t>(static_cast<std::size_t>(n));
  {
    auto v = values.span();
    auto pl = payload.span();
    auto o = order.span();
    auto nv = new_values.span();
    auto np = new_payload.span();
    dev.launch("seg_sort_permute", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   const auto src = static_cast<std::size_t>(o[u]);
                   nv[u] = v[src];
                   np[u] = pl[src];
                   b.reads(v, static_cast<std::int64_t>(src));
                   b.reads(pl, static_cast<std::int64_t>(src));
                 });
                 b.reads_tile(o, n);
                 b.writes_tile(nv, n);
                 b.writes_tile(np, n);
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 12);
                 b.mem_irregular(m * 2);
               });
  }
  values = std::move(new_values);
  payload = std::move(new_payload);
}

}  // namespace gbdt::prim
