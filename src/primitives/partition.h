// Order-preserving multiway partition (paper Section III-B, Figures 2-3).
//
// Given a partition id per element, computes for every element its scatter
// destination such that the output is grouped by partition and the original
// relative order *within* each partition is preserved.  This is what lets
// GPU-GBDT keep every attribute's value list sorted inside the child nodes
// without re-sorting: elements only ever move to positions computed from
// per-thread, per-partition counters.
//
// Memory management follows the paper: each logical thread owns one counter
// per partition, so counter memory = #threads x #partitions x 8 B.  The
// "Customized IdxComp Workload" formula sizes the per-thread workload so the
// counters fit a fixed budget; the naive scheme (workload fixed at 16) blows
// the budget for large (#values x #nodes) and must fall back to multiple
// passes over the data — the slowdown Figure 9 measures.
#pragma once

#include <cstdint>
#include <span>

#include "device/device_context.h"
#include "device/workspace_arena.h"

namespace gbdt::prim {

struct PartitionPlan {
  std::int64_t n_threads = 1;
  std::int64_t workload = 1;       // elements per logical thread
  std::int64_t parts_per_pass = 1; // < n_parts when counters exceed budget
  int passes = 1;
  std::size_t counter_bytes = 0;
};

/// Sizes the partition counters.  customized == true applies the paper's
/// workload formula; false uses the fixed workload of 16 elements per thread
/// from prior work, falling back to multi-pass when the counters do not fit.
[[nodiscard]] PartitionPlan plan_partition(std::int64_t n_elements,
                                           std::int64_t n_parts,
                                           std::size_t max_counter_bytes,
                                           bool customized);

/// Computes scatter destinations.
///  - part_ids[i] in [0, n_parts) selects the target partition; -1 drops the
///    element (scatter_out[i] = -1).
///  - part_offsets must have n_parts + 1 entries; on return part_offsets[p]
///    is the first output index of partition p and part_offsets[n_parts] the
///    number of kept elements.
/// Spans accept both owned (DeviceBuffer) and pooled (ArenaBuffer) storage.
/// When `arena` is given, the internal counter/base matrices are checked out
/// of it instead of hitting the device allocator (per-level trainer loops).
void histogram_partition(device::Device& dev,
                         std::span<const std::int32_t> part_ids,
                         std::int64_t n_parts,
                         std::span<std::int64_t> scatter_out,
                         std::span<std::int64_t> part_offsets,
                         const PartitionPlan& plan,
                         device::WorkspaceArena* arena = nullptr);

}  // namespace gbdt::prim
