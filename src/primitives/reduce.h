// Device reductions: sum, max, and argmax, via the standard two-level GPU
// scheme (per-block partial reduction, then a single-block final pass).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "device/device_context.h"
#include "primitives/transform.h"

namespace gbdt::prim {

/// Sum of all elements.  Accumulates in Acc (use double for float inputs so
/// the result does not depend on the block decomposition at float precision).
template <typename T, typename Acc = T>
[[nodiscard]] Acc reduce_sum(device::Device& dev,
                             const device::DeviceBuffer<T>& in,
                             std::string_view name = "reduce_sum") {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  if (n == 0) return Acc{};
  const std::int64_t grid = device::grid_for(n, kBlockDim);
  auto partials = dev.alloc<Acc>(static_cast<std::size_t>(grid));
  auto src = in.span();
  auto part = partials.span();
  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    Acc acc{};
    b.for_each_thread([&](std::int64_t i) {
      if (i < n) acc += static_cast<Acc>(src[static_cast<std::size_t>(i)]);
    });
    part[static_cast<std::size_t>(b.block_idx())] = acc;
    b.reads_tile(src, n);
    b.writes(part, b.block_idx());
    b.mem_coalesced(elems_in_block(b, n) * sizeof(T) + sizeof(Acc));
  });
  Acc total{};
  // block-disjoint: single-block final pass, so the captured accumulator is
  // written by exactly one block.
  dev.launch("reduce_final", 1, kBlockDim, [&](device::BlockCtx& b) {
    for (std::int64_t i = 0; i < grid; ++i) {
      total += part[static_cast<std::size_t>(i)];
    }
    b.reads(part, 0, grid);
    b.work(static_cast<std::uint64_t>(grid));
    b.mem_coalesced(static_cast<std::uint64_t>(grid) * sizeof(Acc));
  });
  return total;
}

/// Result of an argmax reduction.
template <typename T>
struct ArgMax {
  T value{};
  std::int64_t index = -1;  // -1 when the input is empty
};

/// Position and value of the maximum element; ties resolve to the lowest
/// index so results are independent of the block decomposition.
template <typename T>
[[nodiscard]] ArgMax<T> arg_max(device::Device& dev,
                                const device::DeviceBuffer<T>& in,
                                std::string_view name = "arg_max") {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  ArgMax<T> result;
  if (n == 0) return result;
  const std::int64_t grid = device::grid_for(n, kBlockDim);
  auto vals = dev.alloc<T>(static_cast<std::size_t>(grid));
  auto idxs = dev.alloc<std::int64_t>(static_cast<std::size_t>(grid));
  auto src = in.span();
  auto pv = vals.span();
  auto pi = idxs.span();
  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    T best{};
    std::int64_t best_i = -1;
    b.for_each_thread([&](std::int64_t i) {
      if (i < n) {
        const T v = src[static_cast<std::size_t>(i)];
        if (best_i < 0 || v > best) {
          best = v;
          best_i = i;
        }
      }
    });
    pv[static_cast<std::size_t>(b.block_idx())] = best;
    pi[static_cast<std::size_t>(b.block_idx())] = best_i;
    b.reads_tile(src, n);
    b.writes(pv, b.block_idx());
    b.writes(pi, b.block_idx());
    b.mem_coalesced(elems_in_block(b, n) * sizeof(T) + sizeof(T) + 8);
  });
  // block-disjoint: single-block final pass, so the captured result struct is
  // written by exactly one block.
  dev.launch("arg_max_final", 1, kBlockDim, [&](device::BlockCtx& b) {
    for (std::int64_t g = 0; g < grid; ++g) {
      const auto u = static_cast<std::size_t>(g);
      if (pi[u] >= 0 && (result.index < 0 || pv[u] > result.value)) {
        result.value = pv[u];
        result.index = pi[u];
      }
    }
    b.reads(pv, 0, grid);
    b.reads(pi, 0, grid);
    b.work(static_cast<std::uint64_t>(grid));
    b.mem_coalesced(static_cast<std::uint64_t>(grid) * (sizeof(T) + 8));
  });
  return result;
}

}  // namespace gbdt::prim
