// Element-wise device primitives: fill, iota, transform, gather, scatter.
//
// Each primitive launches one simulated kernel with a 256-thread block
// decomposition and counts its memory traffic: sequential streams are
// coalesced, index-directed accesses (gather/scatter) are irregular.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>

#include "device/device_context.h"

namespace gbdt::prim {

inline constexpr int kBlockDim = 256;

/// Normalises "anything with .span()" (DeviceBuffer, ArenaBuffer) or a plain
/// span to a std::span, so primitives work on pooled and owned storage alike.
template <typename T>
[[nodiscard]] inline std::span<T> as_span(std::span<T> s) {
  return s;
}
template <typename B>
[[nodiscard]] inline auto as_span(B& b) {
  return b.span();
}

/// Element type a buffer-like argument yields through as_span.
template <typename B>
using buffer_element_t =
    typename decltype(as_span(std::declval<B&>()))::element_type;

/// Number of in-range elements covered by block b of an n-element kernel.
[[nodiscard]] inline std::uint64_t elems_in_block(const device::BlockCtx& b,
                                                  std::int64_t n) {
  const std::int64_t lo = b.block_idx() * b.block_dim();
  const std::int64_t hi = lo + b.block_dim();
  if (lo >= n) return 0;
  return static_cast<std::uint64_t>((hi < n ? hi : n) - lo);
}

/// out[i] = value for all i.
template <typename OutBuf, typename T>
void fill(device::Device& dev, OutBuf& out, T value) {
  const std::int64_t n = static_cast<std::int64_t>(out.size());
  auto o = as_span(out);
  dev.launch("fill", device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) o[static_cast<std::size_t>(i)] = value;
               });
               b.writes_tile(o, n);
               b.mem_coalesced(elems_in_block(b, n) *
                               sizeof(buffer_element_t<OutBuf>));
             });
}

/// out[i] = start + i.
template <typename OutBuf, typename T = buffer_element_t<OutBuf>>
void iota(device::Device& dev, OutBuf& out, T start = T{}) {
  const std::int64_t n = static_cast<std::int64_t>(out.size());
  auto o = as_span(out);
  dev.launch("iota", device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) o[static_cast<std::size_t>(i)] = start + static_cast<T>(i);
               });
               b.writes_tile(o, n);
               b.mem_coalesced(elems_in_block(b, n) * sizeof(T));
             });
}

/// out[i] = f(in[i]).
template <typename InBuf, typename OutBuf, typename F>
void transform(device::Device& dev, const InBuf& in, OutBuf& out, F&& f,
               std::string_view name = "transform") {
  using In = std::remove_const_t<buffer_element_t<const InBuf>>;
  using Out = buffer_element_t<OutBuf>;
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  auto src = as_span(in);
  auto dst = as_span(out);
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) {
                   const auto u = static_cast<std::size_t>(i);
                   dst[u] = f(src[u]);
                 }
               });
               b.reads_tile(src, n);
               b.writes_tile(dst, n);
               b.mem_coalesced(elems_in_block(b, n) * (sizeof(In) + sizeof(Out)));
             });
}

/// out[i] = f(i) over [0, n): generic indexed kernel with coalesced counting
/// delegated to the caller via extra_* knobs (bytes per element).
template <typename F>
void for_each_index(device::Device& dev, std::int64_t n, F&& f,
                    std::string_view name, std::uint64_t coalesced_per_elem,
                    std::uint64_t irregular_per_elem = 0) {
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) f(i);
               });
               const std::uint64_t m = elems_in_block(b, n);
               b.mem_coalesced(m * coalesced_per_elem);
               b.mem_irregular(m * irregular_per_elem);
             });
}

/// out[i] = src[map[i]] — the map-directed read is irregular.
template <typename SrcBuf, typename MapBuf, typename OutBuf>
void gather(device::Device& dev, const SrcBuf& src, const MapBuf& map,
            OutBuf& out, std::string_view name = "gather") {
  using T = buffer_element_t<OutBuf>;
  using I = std::remove_const_t<buffer_element_t<const MapBuf>>;
  const std::int64_t n = static_cast<std::int64_t>(map.size());
  auto s = as_span(src);
  auto m = as_span(map);
  auto o = as_span(out);
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) {
                   const auto u = static_cast<std::size_t>(i);
                   o[u] = s[static_cast<std::size_t>(m[u])];
                   b.reads(s, static_cast<std::int64_t>(m[u]));
                 }
               });
               b.reads_tile(m, n);
               b.writes_tile(o, n);
               const std::uint64_t cnt = elems_in_block(b, n);
               b.mem_coalesced(cnt * (sizeof(I) + sizeof(T)));
               b.mem_irregular(cnt);  // src[map[i]]
             });
}

/// out[map[i]] = src[i] — the map-directed write is irregular.
template <typename SrcBuf, typename MapBuf, typename OutBuf>
void scatter(device::Device& dev, const SrcBuf& src, const MapBuf& map,
             OutBuf& out, std::string_view name = "scatter") {
  using T = buffer_element_t<OutBuf>;
  using I = std::remove_const_t<buffer_element_t<const MapBuf>>;
  const std::int64_t n = static_cast<std::int64_t>(src.size());
  auto s = as_span(src);
  auto m = as_span(map);
  auto o = as_span(out);
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) {
                   const auto u = static_cast<std::size_t>(i);
                   o[static_cast<std::size_t>(m[u])] = s[u];
                   b.writes(o, static_cast<std::int64_t>(m[u]));
                 }
               });
               b.reads_tile(s, n);
               b.reads_tile(m, n);
               const std::uint64_t cnt = elems_in_block(b, n);
               b.mem_coalesced(cnt * (sizeof(I) + sizeof(T)));
               b.mem_irregular(cnt);  // out[map[i]]
             });
}

}  // namespace gbdt::prim
