// Fused find-split primitives (paper Sec. III-B hot loop).
//
// The unfused find-split sequence runs 5-6 full passes over every attribute
// list per level:
//
//   gather_gradients -> seg_scan (3 phases) -> seg_present_totals
//     -> compute_gains -> segmented_arg_max
//
// materialising a gathered (g,h) array (`ghe`), full per-element `gains` and
// `dirs` arrays, and reading the scan output twice more.  The two fused
// primitives below collapse that pipeline:
//
//  * fused_gather_scan_totals — the segmented scan's per-block phase pulls
//    each element straight from the gradient arrays via a caller-supplied
//    load functor, so `ghe` never exists; per-segment present totals are
//    emitted as a side product (interior segment ends directly from phase 1,
//    each block's leading-run end finalised in the carry pass), so the
//    separate seg_present_totals pass disappears.
//  * fused_gain_argmax — gain computation, duplicate-split suppression and
//    the per-segment argmax run in one offsets-driven kernel that keeps a
//    running block-local best (gain, index, direction) and writes only the
//    per-segment winners; the full `gains`/`dirs` arrays disappear.
//
// Bit-identity with the unfused path (swept by the fuzz oracle under
// GBDT_UNFUSED_SPLIT): the scan keeps the exact per-block sequential
// association order and the exact carry/fixup addition order (`run + carry`),
// totals equal the post-fixup scan value of each segment's last element, and
// the argmax applies the same `best_i < 0 || gain > best` lowest-index
// tie-break over the same ascending element order the unfused
// compute_gains + segmented_arg_max pair uses.
//
// The escape hatch: set GBDT_UNFUSED_SPLIT=1 (or "on"/"true") in the
// environment, or call set_fused_split_enabled(false), to route the trainers
// through the historical unfused kernels.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "device/device_context.h"
#include "device/workspace_arena.h"
#include "primitives/transform.h"

namespace gbdt::prim {

namespace fused_detail {

inline bool unfused_env() {
  const char* v = std::getenv("GBDT_UNFUSED_SPLIT");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}

inline std::atomic<int>& fused_flag() {
  static std::atomic<int> flag{-1};  // -1: read the environment lazily
  return flag;
}

}  // namespace fused_detail

/// True unless GBDT_UNFUSED_SPLIT is set (or a test forced the old path).
[[nodiscard]] inline bool fused_split_enabled() {
  int s = fused_detail::fused_flag().load(std::memory_order_relaxed);
  if (s < 0) {
    s = fused_detail::unfused_env() ? 0 : 1;
    fused_detail::fused_flag().store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

/// Test/tool override; wins over the environment.
inline void set_fused_split_enabled(bool on) {
  fused_detail::fused_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// One gain evaluation: the candidate's gain and split direction
/// (1 = missing values go left, 0 = right).
struct GainDir {
  double gain = 0.0;
  std::uint8_t dir = 0;
};

/// Fused gradient gather + segmented inclusive scan + per-segment totals.
///
/// `load(b, i)` returns element i's value, declaring its own audit reads and
/// accounting its own memory traffic (the gather half of the fusion).  Keys
/// must be non-decreasing segment ids, as in segmented_inclusive_scan_by_key.
/// On return, `out[i]` holds the segmented inclusive scan of the loaded
/// values and `totals[s]` the segment-s sum for every non-empty segment
/// (empty segments are left untouched — callers must not read them, which
/// the trainers' winner-validity checks guarantee).
///
/// Per-block scratch (trailing-run sums, carries, pending leading-run ends)
/// is checked out of the arena, so steady-state levels allocate nothing.
template <typename KeyBuf, typename OutBuf, typename TotBuf, typename LoadFn>
void fused_gather_scan_totals(device::Device& dev,
                              device::WorkspaceArena& arena,
                              const KeyBuf& keys, OutBuf& out, TotBuf& totals,
                              LoadFn&& load, std::string_view name) {
  using T = buffer_element_t<OutBuf>;
  const std::int64_t n = static_cast<std::int64_t>(out.size());
  if (n == 0) return;
  const std::int64_t grid = device::grid_for(n, kBlockDim);
  auto run_sums = arena.alloc<T>(static_cast<std::size_t>(grid));
  auto carries = arena.alloc<T>(static_cast<std::size_t>(grid));
  auto pending_seg = arena.alloc<std::int32_t>(static_cast<std::size_t>(grid));
  auto pending_val = arena.alloc<T>(static_cast<std::size_t>(grid));
  auto k = as_span(keys);
  auto o = as_span(out);
  auto tot = as_span(totals);
  auto rs = run_sums.span();
  auto cr = carries.span();
  auto ps = pending_seg.span();
  auto pv = pending_val.span();

  // Phase 1: per-block sequential scan over gathered values.  A segment end
  // inside the block after at least one key change is final (no carry can
  // reach it), so its total is written here; the end of the block's leading
  // run is deferred to the carry pass, which knows the incoming carry.
  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    const std::int64_t lo = b.block_idx() * b.block_dim();
    const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
    T acc{};
    bool interior = false;  // saw a key change inside this block
    std::uint64_t totals_written = 0;
    ps[static_cast<std::size_t>(b.block_idx())] = -1;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (i > lo && k[u] != k[u - 1]) {
        acc = T{};
        interior = true;
      }
      acc += load(b, i);
      o[u] = acc;
      const bool seg_ends =
          i + 1 == n || k[static_cast<std::size_t>(i + 1)] != k[u];
      if (seg_ends) {
        if (interior) {
          tot[static_cast<std::size_t>(k[u])] = acc;
          b.writes(tot, k[u]);
          ++totals_written;
        } else {
          ps[static_cast<std::size_t>(b.block_idx())] = k[u];
          pv[static_cast<std::size_t>(b.block_idx())] = acc;
        }
      }
    }
    rs[static_cast<std::size_t>(b.block_idx())] = acc;
    // The key peek at i + 1 can cross the tile boundary by one element.
    b.reads(k, lo, std::min<std::int64_t>(hi + 1, n) - lo);
    b.writes(o, lo, hi - lo);
    b.writes(rs, b.block_idx());
    b.writes(ps, b.block_idx());
    b.writes(pv, b.block_idx());
    const std::uint64_t m = elems_in_block(b, n);
    b.work(m);
    b.mem_coalesced(m * (sizeof(T) + sizeof(std::int32_t)) + 3 * sizeof(T));
    b.mem_irregular(totals_written);  // scattered segment-total stores
  });

  // Carry pass: the sequential block walk of the unfused scan, plus the
  // fold-in of seg_present_totals — each block's deferred leading-run end
  // becomes final once its incoming carry is known.
  dev.launch("fused_scan_carries", 1, kBlockDim, [&](device::BlockCtx& b) {
    T carry{};
    std::uint64_t totals_written = 0;
    for (std::int64_t g = 0; g < grid; ++g) {
      const std::int64_t lo = g * kBlockDim;
      const std::int64_t hi = std::min<std::int64_t>(lo + kBlockDim, n);
      const bool joins_prev =
          g > 0 && k[static_cast<std::size_t>(lo)] ==
                       k[static_cast<std::size_t>(lo - 1)];
      const T incoming = joins_prev ? carry : T{};
      cr[static_cast<std::size_t>(g)] = incoming;
      const std::int32_t pend = ps[static_cast<std::size_t>(g)];
      if (pend >= 0) {
        // Same addition order as the fixup kernel's `o[i] += incoming`.
        T t = pv[static_cast<std::size_t>(g)];
        t += incoming;
        tot[static_cast<std::size_t>(pend)] = t;
        b.writes(tot, pend);
        ++totals_written;
      }
      const bool single_key = k[static_cast<std::size_t>(lo)] ==
                              k[static_cast<std::size_t>(hi - 1)];
      carry = rs[static_cast<std::size_t>(g)] + (single_key ? incoming : T{});
    }
    b.reads(k, 0, n);
    b.reads(rs, 0, grid);
    b.reads(ps, 0, grid);
    b.reads(pv, 0, grid);
    b.writes(cr, 0, grid);
    b.work(static_cast<std::uint64_t>(grid));
    b.mem_coalesced(static_cast<std::uint64_t>(grid) *
                    (3 * sizeof(T) + 2 * sizeof(std::int32_t)));
    b.mem_irregular(totals_written);
  });

  // Fixup: identical to the unfused seg_scan_fixup — adds the incoming carry
  // to each block's leading run.
  dev.launch("fused_scan_fixup", grid, kBlockDim, [&](device::BlockCtx& b) {
    const T incoming = cr[static_cast<std::size_t>(b.block_idx())];
    if (incoming == T{}) return;  // nothing to add (also skips most blocks)
    const std::int64_t lo = b.block_idx() * b.block_dim();
    const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
    const std::int32_t lead = k[static_cast<std::size_t>(lo)];
    std::uint64_t touched = 0;
    for (std::int64_t i = lo; i < hi && k[static_cast<std::size_t>(i)] == lead;
         ++i) {
      o[static_cast<std::size_t>(i)] += incoming;
      ++touched;
    }
    b.reads(cr, b.block_idx());
    b.reads(k, lo, hi - lo);
    b.reads(o, lo, static_cast<std::int64_t>(touched));
    b.writes(o, lo, static_cast<std::int64_t>(touched));
    b.work(touched);
    b.mem_coalesced(touched * 2 * sizeof(T));
  });
}

/// Fused gain computation + duplicate suppression + per-segment argmax.
///
/// `eval(b, s, e, seg_lo, seg_hi)` returns element e's candidate GainDir,
/// declaring its own audit reads and accounting its own traffic (suppressed
/// duplicates return gain 0.0 so they lose to any positive candidate, exactly
/// like the zeroed entries of the unfused `gains` array).  Each block walks
/// `segs_per_block` consecutive segments in ascending element order keeping a
/// running best with the unfused lowest-index tie-break, then writes only the
/// per-segment winner (value, element index, direction); empty segments get
/// (0.0, -1, 0) like the unfused segmented_arg_max.
template <typename OffBuf, typename BestValBuf, typename BestIdxBuf,
          typename BestDirBuf, typename EvalFn>
void fused_gain_argmax(device::Device& dev, const OffBuf& seg_offsets,
                       BestValBuf& best_values, BestIdxBuf& best_indices,
                       BestDirBuf& best_dirs, std::int64_t segs_per_block,
                       EvalFn&& eval, std::string_view name) {
  const std::int64_t n_seg = static_cast<std::int64_t>(seg_offsets.size()) - 1;
  if (n_seg <= 0) return;
  segs_per_block = std::max<std::int64_t>(1, segs_per_block);
  const std::int64_t grid = (n_seg + segs_per_block - 1) / segs_per_block;
  auto off = as_span(seg_offsets);
  auto bv = as_span(best_values);
  auto bi = as_span(best_indices);
  auto bd = as_span(best_dirs);
  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    const std::int64_t s_lo = b.block_idx() * segs_per_block;
    const std::int64_t s_hi = std::min(s_lo + segs_per_block, n_seg);
    std::uint64_t scanned = 0;
    for (std::int64_t s = s_lo; s < s_hi; ++s) {
      const std::int64_t lo = off[static_cast<std::size_t>(s)];
      const std::int64_t hi = off[static_cast<std::size_t>(s + 1)];
      double best = 0.0;
      std::int64_t best_i = -1;
      std::uint8_t best_d = 0;
      for (std::int64_t e = lo; e < hi; ++e) {
        const GainDir gd = eval(b, s, e, lo, hi);
        if (best_i < 0 || gd.gain > best) {
          best = gd.gain;
          best_i = e;
          best_d = gd.dir;
        }
      }
      bv[static_cast<std::size_t>(s)] = best;
      bi[static_cast<std::size_t>(s)] = best_i;
      bd[static_cast<std::size_t>(s)] = best_d;
      scanned += static_cast<std::uint64_t>(hi - lo);
    }
    if (s_hi > s_lo) {
      b.reads(off, s_lo, s_hi - s_lo + 1);
      b.writes(bv, s_lo, s_hi - s_lo);
      b.writes(bi, s_lo, s_hi - s_lo);
      b.writes(bd, s_lo, s_hi - s_lo);
    }
    b.work(scanned);
    b.mem_coalesced(static_cast<std::uint64_t>(s_hi - s_lo) *
                    (sizeof(double) + 2 * sizeof(std::int64_t) + 2));
  });
}

}  // namespace gbdt::prim
