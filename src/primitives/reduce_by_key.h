// reduce_by_key (Thrust analog): collapses runs of equal consecutive keys
// into one (key, aggregated value) pair — the generic form of the per-run
// gradient aggregation the RLE trainer performs (paper Figure 5).
// Built from head-flagging + exclusive scan + ordered scatter.
#pragma once

#include <cstdint>
#include <string_view>

#include "device/device_context.h"
#include "primitives/scan.h"
#include "primitives/transform.h"

namespace gbdt::prim {

/// Sums `values` over runs of equal consecutive `keys`.  Outputs must be at
/// least as long as the input (shrink afterwards); returns the number of
/// runs.  Keys need not be sorted — only consecutive equality defines runs,
/// exactly like thrust::reduce_by_key.
template <typename K, typename V>
[[nodiscard]] std::int64_t reduce_by_key(device::Device& dev,
                                         const device::DeviceBuffer<K>& keys,
                                         const device::DeviceBuffer<V>& values,
                                         device::DeviceBuffer<K>& out_keys,
                                         device::DeviceBuffer<V>& out_sums,
                                         std::string_view name = "reduce_by_key") {
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  if (n == 0) return 0;

  // Head flags -> run ids.
  auto head = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  {
    auto k = keys.span();
    auto h = head.span();
    dev.launch("rbk_flag_heads", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   h[u] = (i == 0 || k[u] != k[u - 1]) ? 1 : 0;
                 });
                 b.reads_tile(k, n);
                 b.writes_tile(h, n);
                 b.mem_coalesced(elems_in_block(b, n) * (2 * sizeof(K) + 8));
               });
  }
  auto run_idx = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  exclusive_scan(dev, head, run_idx, "rbk_scan");
  const std::int64_t n_runs = run_idx[static_cast<std::size_t>(n - 1)] +
                              head[static_cast<std::size_t>(n - 1)];

  // Per-run sums: each run's head thread walks its run (runs are short in
  // the common use; long runs are bounded by the busiest-block model).
  {
    auto k = keys.span();
    auto v = values.span();
    auto h = head.span();
    auto r = run_idx.span();
    auto ok = out_keys.span();
    auto os = out_sums.span();
    dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 std::uint64_t touched = 0;
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   if (h[u] == 0) return;
                   V acc{};
                   std::int64_t j = i;
                   while (j < n &&
                          (j == i ||
                           h[static_cast<std::size_t>(j)] == 0)) {
                     acc += v[static_cast<std::size_t>(j)];
                     ++j;
                     ++touched;
                   }
                   const auto dst = static_cast<std::size_t>(r[u]);
                   ok[dst] = k[u];
                   os[dst] = acc;
                   b.reads(v, i, j - i);
                   b.writes(ok, r[u]);
                   b.writes(os, r[u]);
                 });
                 b.reads_tile(k, n);
                 b.reads_tile(h, n);
                 b.reads_tile(r, n);
                 b.work(touched);
                 b.mem_coalesced(touched * sizeof(V) +
                                 elems_in_block(b, n) * (sizeof(K) + 16));
               });
  }
  return n_runs;
}

/// Number of runs of equal consecutive keys (thrust::unique_count analog).
template <typename K>
[[nodiscard]] std::int64_t count_runs(device::Device& dev,
                                      const device::DeviceBuffer<K>& keys) {
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  if (n == 0) return 0;
  auto head = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  {
    auto k = keys.span();
    auto h = head.span();
    dev.launch("count_runs_flag", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   h[u] = (i == 0 || k[u] != k[u - 1]) ? 1 : 0;
                 });
                 b.reads_tile(k, n);
                 b.writes_tile(h, n);
                 b.mem_coalesced(elems_in_block(b, n) * (2 * sizeof(K) + 8));
               });
  }
  auto scanned = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  inclusive_scan(dev, head, scanned, "count_runs_scan");
  return scanned[static_cast<std::size_t>(n - 1)];
}

/// out[i] = in[i] - in[i-1]; out[0] = in[0] (thrust::adjacent_difference).
template <typename T>
void adjacent_difference(device::Device& dev,
                         const device::DeviceBuffer<T>& in,
                         device::DeviceBuffer<T>& out,
                         std::string_view name = "adjacent_difference") {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  auto src = in.span();
  auto dst = out.span();
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i >= n) return;
                 const auto u = static_cast<std::size_t>(i);
                 dst[u] = i == 0 ? src[u] : src[u] - src[u - 1];
               });
               b.reads_tile(src, n);
               b.writes_tile(dst, n);
               b.mem_coalesced(elems_in_block(b, n) * 3 * sizeof(T));
             });
}

}  // namespace gbdt::prim
