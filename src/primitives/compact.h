// Stream compaction: keep the flagged elements of an array, preserving order
// (Thrust copy_if analog), built from exclusive scan + scatter.  Used by the
// Directly-Split-RLE technique to drop zero-length RLE elements (paper
// Section III-C, Figure 7).
#pragma once

#include <cstdint>
#include <string_view>

#include "device/device_context.h"
#include "primitives/scan.h"
#include "primitives/transform.h"

namespace gbdt::prim {

/// Compacts `in` into `out` keeping elements whose flag is non-zero; returns
/// the number of kept elements.  `out` must be at least in.size() long (use
/// DeviceBuffer::shrink afterwards to return the slack).
template <typename T>
[[nodiscard]] std::int64_t compact(device::Device& dev,
                                   const device::DeviceBuffer<T>& in,
                                   const device::DeviceBuffer<std::uint8_t>& flags,
                                   device::DeviceBuffer<T>& out,
                                   std::string_view name = "compact") {
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  auto positions = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  {
    auto flag_wide = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
    auto f = flags.span();
    auto fw = flag_wide.span();
    dev.launch("compact_widen", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i < n) {
                     const auto u = static_cast<std::size_t>(i);
                     fw[u] = f[u] != 0 ? 1 : 0;
                   }
                 });
                 b.reads_tile(f, n);
                 b.writes_tile(fw, n);
                 b.mem_coalesced(elems_in_block(b, n) * (1 + 8));
               });
    exclusive_scan(dev, flag_wide, positions, "compact_scan");
  }

  std::int64_t kept = 0;
  auto src = in.span();
  auto f = flags.span();
  auto pos = positions.span();
  auto dst = out.span();
  dev.launch(name, device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) {
                   const auto u = static_cast<std::size_t>(i);
                   if (f[u] != 0) {
                     dst[static_cast<std::size_t>(pos[u])] = src[u];
                     b.writes(dst, pos[u]);
                   }
                 }
               });
               b.reads_tile(src, n);
               b.reads_tile(f, n);
               b.reads_tile(pos, n);
               // Writes land densely in order, so they coalesce.
               b.mem_coalesced(elems_in_block(b, n) * (sizeof(T) + 9) +
                               elems_in_block(b, n) * sizeof(T));
             });
  // Kept count = scan total (last position + last flag).
  kept = pos[static_cast<std::size_t>(n - 1)] +
         (f[static_cast<std::size_t>(n - 1)] != 0 ? 1 : 0);
  return kept;
}

}  // namespace gbdt::prim
