// Device radix sort for (uint64 key, uint32 payload) pairs, plus the
// order-preserving float<->uint32 key maps used to build composite
// (attribute, descending value) sort keys for the CSC attribute lists.
//
// LSD radix, 8-bit digits, stable: per pass a per-tile digit histogram, an
// exclusive scan over the digit-major (digit, tile) count matrix, and an
// order-preserving scatter — the classic GPU formulation.
#pragma once

#include <bit>
#include <cstdint>

#include "device/device_context.h"

namespace gbdt::prim {

/// Monotone bijection float -> uint32: a < b  <=>  key(a) < key(b).
[[nodiscard]] inline std::uint32_t float_to_ordered(float f) {
  const auto bits = std::bit_cast<std::uint32_t>(f);
  return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

/// Inverse of float_to_ordered.
[[nodiscard]] inline float ordered_to_float(std::uint32_t k) {
  const std::uint32_t bits =
      (k & 0x80000000u) != 0 ? k & 0x7fffffffu : ~k;
  return std::bit_cast<float>(bits);
}

/// Composite key: attribute ascending, value descending within attribute.
[[nodiscard]] inline std::uint64_t column_desc_key(std::uint32_t attr,
                                                   float value) {
  return (static_cast<std::uint64_t>(attr) << 32) |
         static_cast<std::uint64_t>(~float_to_ordered(value));
}

/// Stable ascending sort of keys with payloads moved alongside.
/// `key_bits` limits the number of radix passes (e.g. 32 when the keys are
/// known to fit 32 bits); must be a multiple of 8.
void radix_sort_pairs(device::Device& dev,
                      device::DeviceBuffer<std::uint64_t>& keys,
                      device::DeviceBuffer<std::uint32_t>& values,
                      int key_bits = 64);

/// Sorts float values within each segment (descending when `descending`),
/// moving the 32-bit payloads alongside; stable within equal values.  One
/// composite-key radix sort over (segment id, ordered value) — the batched
/// small-sort pattern the paper's Section III-A identifies as expensive on
/// GPUs when done naively per segment.
void segmented_sort_pairs(device::Device& dev,
                          device::DeviceBuffer<float>& values,
                          device::DeviceBuffer<std::uint32_t>& payload,
                          const device::DeviceBuffer<std::int64_t>& seg_offsets,
                          bool descending = true);

}  // namespace gbdt::prim
