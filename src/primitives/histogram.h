// Histogram-method primitives (quantized feature bins + per-node gradient
// histograms), the device side of the trainer in core/trainer_hist.cpp.
//
// Production GPU GBDT systems (XGBoost-GPU, LightGBM, ThunderGBM) reach large
// scale by quantizing each attribute into <= n_bins quantile buckets up front
// and accumulating per-(node, attribute) gradient histograms instead of
// scanning sorted value lists.  This header holds the shared pieces:
//
//  * BinCuts / build_cuts — host-side quantile binning, shared with the CPU
//    baseline in src/baselines/hist_trainer.cpp (one implementation, so the
//    device trainer's bin-index matrix can be verified against
//    BinCuts::bin_of directly);
//  * QGH — the histogram cell: gradient/hessian sums quantized to int64
//    fixed point plus an instance count.  Integer addition is exact and
//    associative, which is what makes the histogram-subtraction trick
//    (child = parent - sibling) *bitwise* identical to direct accumulation
//    regardless of the block decomposition — with double cells the
//    subtraction would drift in the last ulp and the trainer could not be
//    deterministic;
//  * the `hist_`-labelled kernels: privatized build (per-block histogram
//    tiles, the simulator's stand-in for CUDA shared-memory privatization —
//    see the merge note below), deterministic merge, and the subtraction
//    kernel.  gbdt_lint enforces the `hist_` label prefix for every launch
//    in this file.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "device/device_context.h"
#include "device/workspace_arena.h"
#include "primitives/transform.h"

namespace gbdt::hist {

// ---- host-side quantile binning --------------------------------------------

/// Quantile bin edges of one attribute: bin_low[b] is the smallest value of
/// bin b, bins ordered by value descending (bin 0 = highest values) to match
/// the library's split convention (x >= split_value -> left).
struct BinCuts {
  std::vector<float> bin_low;

  [[nodiscard]] int bin_of(float v) const {
    // First bin whose low edge is <= v (bin_low is descending).
    const auto it = std::lower_bound(bin_low.begin(), bin_low.end(), v,
                                     [](float low, float x) { return low > x; });
    return it == bin_low.end() ? static_cast<int>(bin_low.size()) - 1
                               : static_cast<int>(it - bin_low.begin());
  }
};

/// Greedy quantile cuts over the column's values (any order), at most n_bins
/// buckets, boundaries only between distinct values.
///
/// Degenerate inputs are handled explicitly: a column with d <= n_bins
/// distinct values gets exactly one bin per distinct value, and when the
/// greedy chunking would swallow every value into a single bin (one dominant
/// run), a boundary is forced before the final run — so with n_bins >= 2 any
/// column with at least two distinct values always has at least one usable
/// split boundary.  All-equal columns legitimately produce a single bin (no
/// split exists), as does an explicit n_bins == 1 request.
inline BinCuts build_cuts(std::vector<float> values, int n_bins) {
  BinCuts cuts;
  if (values.empty()) {
    cuts.bin_low.push_back(0.f);
    return cuts;
  }
  std::sort(values.rbegin(), values.rend());  // descending
  std::size_t distinct = 1;
  for (std::size_t k = 1; k < values.size(); ++k) {
    if (values[k] != values[k - 1]) ++distinct;
  }
  const auto want = static_cast<std::size_t>(std::max(1, n_bins));
  if (distinct <= want) {
    // One bin per distinct value: each run's last element is its low edge.
    for (std::size_t k = 0; k < values.size(); ++k) {
      if (k + 1 == values.size() || values[k + 1] != values[k]) {
        cuts.bin_low.push_back(values[k]);
      }
    }
    return cuts;
  }
  // Ceiling division: at most n_bins chunks (run extension below only makes
  // chunks bigger, never more numerous).
  const std::size_t per_bin = (values.size() + want - 1) / want;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t j = std::min(values.size(), i + per_bin);
    // Extend to the end of the run of equal values (a value never straddles
    // two bins).
    while (j < values.size() && values[j] == values[j - 1]) ++j;
    cuts.bin_low.push_back(values[j - 1]);
    i = j;
  }
  if (want > 1 && cuts.bin_low.size() == 1) {
    // A dominant run swallowed the whole column: cut before the final
    // (minimum-value) run so the boundary separates distinct values.
    // (With n_bins == 1 a single bin is the requested result, not a
    // degeneracy, so no boundary is forced.)
    std::size_t r = values.size() - 1;
    while (r > 0 && values[r - 1] == values[r]) --r;
    cuts.bin_low[0] = values[r - 1];
    cuts.bin_low.push_back(values.back());
  }
  return cuts;
}

// ---- fixed-point gradient quantization -------------------------------------

/// One histogram cell: fixed-point gradient/hessian sums and the instance
/// count.  Also the element type of the fused find-split scan over bins
/// (default ctor + operator+= + operator== are what
/// prim::fused_gather_scan_totals requires).
struct QGH {
  std::int64_t g = 0;
  std::int64_t h = 0;
  std::int64_t cnt = 0;

  QGH& operator+=(const QGH& o) {
    g += o.g;
    h += o.h;
    cnt += o.cnt;
    return *this;
  }
  friend QGH operator+(QGH a, const QGH& b) { return a += b; }
  friend QGH operator-(QGH a, const QGH& b) {
    a.g -= b.g;
    a.h -= b.h;
    a.cnt -= b.cnt;
    return a;
  }
  friend bool operator==(const QGH&, const QGH&) = default;
};

inline constexpr int kQuantBits = 40;

/// Per-tree fixed-point scaling: q = llround(v * scale), v ~= q * inv.
struct GradQuant {
  double scale = 1.0;
  double inv = 1.0;
};

/// Scale mapping max |v| to 2^bits, with bits <= kQuantBits lowered until
/// n_inst * 2^bits < 2^62 so no per-node int64 sum can overflow.  Powers of
/// two keep scale * inv == 1 exactly, so dequantization is drift-free.
[[nodiscard]] inline GradQuant make_grad_quant(double max_abs,
                                               std::int64_t n_inst) {
  GradQuant q;
  if (!(max_abs > 0.0) || !std::isfinite(max_abs)) return q;
  int bits = kQuantBits;
  while (bits > 1 && static_cast<double>(n_inst) * std::ldexp(1.0, bits) >=
                         std::ldexp(1.0, 62)) {
    --bits;
  }
  q.scale = std::ldexp(1.0, bits) / max_abs;
  q.inv = max_abs * std::ldexp(1.0, -bits);
  return q;
}

// ---- device kernels --------------------------------------------------------

/// Number of privatized histogram copies for the build kernel: enough blocks
/// to keep every SM busy twice over, but bounded so the partial grid stays
/// small relative to the entry stream (a real GPU would privatize per thread
/// block in shared memory; the bound models the same residency limit).
[[nodiscard]] inline std::int64_t partial_block_count(
    const device::Device& dev, std::int64_t n_inst) {
  const std::int64_t grid = device::grid_for(n_inst, prim::kBlockDim);
  return std::min<std::int64_t>(
      grid, 2 * static_cast<std::int64_t>(dev.config().num_sms));
}

/// Accumulates per-(slot, attribute, bin) gradient histograms over the
/// quantized entry stream.
///
/// Each of the `partial_block_count` blocks walks a contiguous instance
/// chunk and accumulates into its *private* histogram copy (the
/// shared-memory tile: block-disjoint writes, no atomics — the win over the
/// atomic-per-entry CPU-baseline kernel), then a merge kernel folds the
/// copies in ascending block order.  With int64 cells the merge order cannot
/// change the result, so the build is bit-deterministic by construction.
///
/// `accum_of_node[tree_node]` selects the accumulation slot (-1 = skip the
/// instance), `dest_slot_of_accum[a]` the destination row of `out`; `out`
/// must hold max(dest)+1 rows of n_attr * n_bins cells, and only the
/// destination rows are written.
inline void build_histograms(device::Device& dev,
                             device::WorkspaceArena& arena,
                             std::span<const std::int64_t> row_offsets,
                             std::span<const std::int32_t> entry_attr,
                             std::span<const std::uint16_t> entry_bin,
                             std::span<const std::int64_t> qg,
                             std::span<const std::int64_t> qh,
                             std::span<const std::int32_t> node_of,
                             std::span<const std::int32_t> accum_of_node,
                             std::span<const std::int32_t> dest_slot_of_accum,
                             std::int64_t n_attr, std::int64_t n_bins,
                             std::span<QGH> out) {
  const auto n_inst = static_cast<std::int64_t>(node_of.size());
  const auto n_accum = static_cast<std::int64_t>(dest_slot_of_accum.size());
  const std::int64_t cells_per_slot = n_attr * n_bins;
  const std::int64_t cells = n_accum * cells_per_slot;
  if (cells == 0) return;

  const std::int64_t n_blocks = partial_block_count(dev, n_inst);
  const std::int64_t chunk = (std::max<std::int64_t>(n_inst, 1) + n_blocks - 1) / n_blocks;
  auto partials =
      arena.alloc<QGH>(static_cast<std::size_t>(n_blocks * cells));
  prim::fill(dev, partials, QGH{});
  auto part = partials.span();

  dev.launch("hist_build", n_blocks, prim::kBlockDim,
             [&](device::BlockCtx& b) {
               const std::int64_t lo = b.block_idx() * chunk;
               const std::int64_t hi = std::min(lo + chunk, n_inst);
               const std::int64_t base = b.block_idx() * cells;
               std::uint64_t touched = 0;
               for (std::int64_t i = lo; i < hi; ++i) {
                 const auto u = static_cast<std::size_t>(i);
                 const std::int32_t accum =
                     accum_of_node[static_cast<std::size_t>(node_of[u])];
                 if (accum < 0) continue;
                 const QGH gh{qg[u], qh[u], 1};
                 const std::int64_t slot_base =
                     base + static_cast<std::int64_t>(accum) * cells_per_slot;
                 for (std::int64_t e = row_offsets[u]; e < row_offsets[u + 1];
                      ++e) {
                   const auto eu = static_cast<std::size_t>(e);
                   const auto cell = static_cast<std::size_t>(
                       slot_base + entry_attr[eu] * n_bins + entry_bin[eu]);
                   part[cell] += gh;
                   ++touched;
                 }
               }
               if (hi > lo) {
                 b.reads(row_offsets, lo, hi - lo + 1);
                 b.reads(qg, lo, hi - lo);
                 b.reads(qh, lo, hi - lo);
                 b.reads(node_of, lo, hi - lo);
                 b.reads(accum_of_node, 0,
                         static_cast<std::int64_t>(accum_of_node.size()));
                 const std::int64_t e_lo = row_offsets[static_cast<std::size_t>(lo)];
                 const std::int64_t e_hi = row_offsets[static_cast<std::size_t>(hi)];
                 b.reads(entry_attr, e_lo, e_hi - e_lo);
                 b.reads(entry_bin, e_lo, e_hi - e_lo);
               }
               b.reads(part, base, cells);
               b.writes(part, base, cells);
               b.work(touched + static_cast<std::uint64_t>(
                                    hi > lo ? hi - lo : 0));
               // Entry stream + per-instance state, streamed; the privatized
               // histogram updates hit the block's own tile (shared memory,
               // not counted), which is flushed to the partial grid once.
               b.mem_coalesced(
                   touched * (sizeof(std::int32_t) + sizeof(std::uint16_t)) +
                   static_cast<std::uint64_t>(hi > lo ? hi - lo : 0) * 28 +
                   static_cast<std::uint64_t>(cells) * sizeof(QGH));
             });

  // Deterministic merge: one thread per cell sums the private copies in
  // ascending block order and scatters the total to its destination row.
  const std::int64_t grid = device::grid_for(cells, prim::kBlockDim);
  dev.launch("hist_merge", grid, prim::kBlockDim, [&](device::BlockCtx& b) {
    b.for_each_thread([&](std::int64_t c) {
      if (c >= cells) return;
      QGH sum{};
      for (std::int64_t blk = 0; blk < n_blocks; ++blk) {
        sum += part[static_cast<std::size_t>(blk * cells + c)];
      }
      const std::int64_t accum = c / cells_per_slot;
      const std::int64_t dc =
          static_cast<std::int64_t>(
              dest_slot_of_accum[static_cast<std::size_t>(accum)]) *
              cells_per_slot +
          c % cells_per_slot;
      out[static_cast<std::size_t>(dc)] = sum;
      // Destination rows are distinct per accumulation slot, so the
      // scattered stores stay block-disjoint; the auditor verifies it.
      b.writes(out, dc);
    });
    for (std::int64_t blk = 0; blk < n_blocks; ++blk) {
      const std::int64_t t_lo = std::min(b.block_idx() * b.block_dim(), cells);
      const std::int64_t t_n =
          std::min<std::int64_t>(b.block_dim(), cells - t_lo);
      b.reads(part, blk * cells + t_lo, t_n);
    }
    b.reads(dest_slot_of_accum, 0, n_accum);
    const auto m = prim::elems_in_block(b, cells);
    b.work(m * static_cast<std::uint64_t>(n_blocks));
    b.mem_coalesced(m * (static_cast<std::uint64_t>(n_blocks) + 1) *
                    sizeof(QGH));
  });
}

/// Histogram-subtraction trick: for each derived slot k,
///   cur[derived[k]] = parent[parent_slot[k]] - cur[sibling_slot[k]]
/// cell-wise.  Exact in int64, so the derived histogram is bitwise identical
/// to accumulating the derived child directly (the property
/// tests/test_hist_device.cpp asserts).  `parent` is the previous level's
/// histogram buffer; `cur` holds the accumulated siblings and receives the
/// derived rows.
inline void subtract_histograms(device::Device& dev,
                                std::span<const QGH> parent,
                                std::span<QGH> cur,
                                std::span<const std::int32_t> parent_slot,
                                std::span<const std::int32_t> sibling_slot,
                                std::span<const std::int32_t> derived_slot,
                                std::int64_t cells_per_slot) {
  const auto n_derived = static_cast<std::int64_t>(derived_slot.size());
  const std::int64_t n = n_derived * cells_per_slot;
  if (n == 0) return;
  const std::int64_t grid = device::grid_for(n, prim::kBlockDim);
  dev.launch("hist_subtract", grid, prim::kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t idx) {
                 if (idx >= n) return;
                 const std::int64_t k = idx / cells_per_slot;
                 const std::int64_t rest = idx % cells_per_slot;
                 const auto ku = static_cast<std::size_t>(k);
                 const std::int64_t p =
                     static_cast<std::int64_t>(parent_slot[ku]) *
                         cells_per_slot +
                     rest;
                 const std::int64_t s =
                     static_cast<std::int64_t>(sibling_slot[ku]) *
                         cells_per_slot +
                     rest;
                 const std::int64_t d =
                     static_cast<std::int64_t>(derived_slot[ku]) *
                         cells_per_slot +
                     rest;
                 cur[static_cast<std::size_t>(d)] =
                     parent[static_cast<std::size_t>(p)] -
                     cur[static_cast<std::size_t>(s)];
                 b.reads(parent, p);
                 b.reads(cur, s);
                 // Derived rows are distinct from each other and from every
                 // sibling row, so the writes stay block-disjoint.
                 b.writes(cur, d);
               });
               b.reads(parent_slot, 0, n_derived);
               b.reads(sibling_slot, 0, n_derived);
               b.reads(derived_slot, 0, n_derived);
               const auto m = prim::elems_in_block(b, n);
               b.work(m);
               b.mem_coalesced(m * 3 * sizeof(QGH));
             });
}

/// Per-slot split command for the position-update kernel, packed into one
/// record so the per-level upload is a single transfer.  attr < 0 marks a
/// slot that does not split this level.
struct HistSplitCmd {
  std::int32_t attr = -1;
  std::int32_t bin = -1;  // last bin on the left (high-value) side
  std::int32_t left_id = -1;
  std::int32_t right_id = -1;
  std::uint8_t default_left = 0;
};

/// Moves every instance of a splitting node to its child: binary-search the
/// instance's CSR row for the split attribute; present instances compare
/// their bin index against the split bin, absent ones follow the default
/// direction.  Mirrors the exact trainer's instance->node map contract, so
/// SmartGD and check_leaf_map work unchanged on the histogram path.
inline void update_positions(device::Device& dev,
                             std::span<const std::int64_t> row_offsets,
                             std::span<const std::int32_t> entry_attr,
                             std::span<const std::uint16_t> entry_bin,
                             std::span<const std::int32_t> slot_of_node,
                             std::span<const HistSplitCmd> cmds,
                             std::span<std::int32_t> node_of) {
  const auto n_inst = static_cast<std::int64_t>(node_of.size());
  dev.launch(
      "hist_update_positions", device::grid_for(n_inst, prim::kBlockDim),
      prim::kBlockDim, [&](device::BlockCtx& b) {
        std::uint64_t probes = 0;
        b.for_each_thread([&](std::int64_t i) {
          if (i >= n_inst) return;
          const auto u = static_cast<std::size_t>(i);
          const std::int32_t slot =
              slot_of_node[static_cast<std::size_t>(node_of[u])];
          if (slot < 0) return;
          const auto su = static_cast<std::size_t>(slot);
          if (cmds[su].attr < 0) return;
          // Binary search the row for the split attribute.
          const std::int32_t want = cmds[su].attr;
          std::int64_t lo = row_offsets[u], hi = row_offsets[u + 1];
          int found_bin = -1;
          while (lo < hi) {
            const std::int64_t mid = (lo + hi) / 2;
            const auto mu = static_cast<std::size_t>(mid);
            if (entry_attr[mu] < want) {
              lo = mid + 1;
            } else if (entry_attr[mu] > want) {
              hi = mid;
            } else {
              found_bin = entry_bin[mu];
              break;
            }
            ++probes;
          }
          const bool go_left = found_bin >= 0 ? found_bin <= cmds[su].bin
                                              : cmds[su].default_left != 0;
          node_of[u] = go_left ? cmds[su].left_id : cmds[su].right_id;
        });
        b.reads_tile(row_offsets, n_inst + 1);
        b.reads_tile(node_of, n_inst);
        b.writes_tile(node_of, n_inst);
        b.reads(slot_of_node, 0,
                static_cast<std::int64_t>(slot_of_node.size()));
        b.reads(cmds, 0, static_cast<std::int64_t>(cmds.size()));
        b.work(probes + prim::elems_in_block(b, n_inst));
        b.mem_irregular(probes);
        b.mem_coalesced(prim::elems_in_block(b, n_inst) * 12);
      });
}

}  // namespace gbdt::hist
