// Device prefix sums (Blelloch-style three-phase blocked scan).
//
//   phase 1: each block scans its 256-element tile locally and emits its sum
//   phase 2: a single block scans the per-block sums
//   phase 3: each block adds its incoming offset to the tile
//
// The association order is fixed by the tile decomposition, so results are
// bit-identical across runs and host worker counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "device/device_context.h"
#include "device/workspace_arena.h"
#include "primitives/transform.h"

namespace gbdt::prim {

namespace detail {

template <typename InBuf, typename OutBuf>
void scan_impl(device::Device& dev, const InBuf& in, OutBuf& out,
               bool inclusive, std::string_view name,
               device::WorkspaceArena* arena = nullptr) {
  using T = buffer_element_t<OutBuf>;
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  if (n == 0) return;
  const std::int64_t grid = device::grid_for(n, kBlockDim);
  // Per-block sums: checked out of the arena when the caller has one (the
  // trainers' per-level loops), otherwise a one-shot device allocation.
  device::DeviceBuffer<T> owned_sums;
  device::ArenaBuffer<T> pooled_sums;
  if (arena != nullptr) {
    pooled_sums = arena->alloc<T>(static_cast<std::size_t>(grid));
  } else {
    owned_sums = dev.alloc<T>(static_cast<std::size_t>(grid));
  }
  auto src = as_span(in);
  auto dst = as_span(out);
  auto sums = arena != nullptr ? pooled_sums.span() : owned_sums.span();

  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    const std::int64_t lo = b.block_idx() * b.block_dim();
    const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
    T acc{};
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (inclusive) {
        acc += src[u];
        dst[u] = acc;
      } else {
        dst[u] = acc;
        acc += src[u];
      }
    }
    sums[static_cast<std::size_t>(b.block_idx())] = acc;
    b.reads(src, lo, hi - lo);
    b.writes(dst, lo, hi - lo);
    b.writes(sums, b.block_idx());
    const std::uint64_t m = elems_in_block(b, n);
    b.work(m);
    b.mem_coalesced(m * 2 * sizeof(T) + sizeof(T));
  });

  dev.launch("scan_block_sums", 1, kBlockDim, [&](device::BlockCtx& b) {
    T acc{};
    for (std::int64_t g = 0; g < grid; ++g) {
      const auto u = static_cast<std::size_t>(g);
      const T v = sums[u];
      sums[u] = acc;  // exclusive scan of the block sums
      acc += v;
    }
    b.reads(sums, 0, grid);
    b.writes(sums, 0, grid);
    b.work(static_cast<std::uint64_t>(grid));
    b.mem_coalesced(static_cast<std::uint64_t>(grid) * 2 * sizeof(T));
  });

  dev.launch("scan_add_offsets", grid, kBlockDim, [&](device::BlockCtx& b) {
    const T offset = sums[static_cast<std::size_t>(b.block_idx())];
    b.for_each_thread([&](std::int64_t i) {
      if (i < n) dst[static_cast<std::size_t>(i)] += offset;
    });
    b.reads(sums, b.block_idx());
    b.reads_tile(dst, n);
    b.writes_tile(dst, n);
    b.mem_coalesced(elems_in_block(b, n) * 2 * sizeof(T) + sizeof(T));
  });
}

}  // namespace detail

/// out[i] = in[0] + ... + in[i].
template <typename InBuf, typename OutBuf>
void inclusive_scan(device::Device& dev, const InBuf& in, OutBuf& out,
                    std::string_view name = "inclusive_scan",
                    device::WorkspaceArena* arena = nullptr) {
  detail::scan_impl(dev, in, out, /*inclusive=*/true, name, arena);
}

/// out[i] = in[0] + ... + in[i-1]; out[0] = 0.
template <typename InBuf, typename OutBuf>
void exclusive_scan(device::Device& dev, const InBuf& in, OutBuf& out,
                    std::string_view name = "exclusive_scan",
                    device::WorkspaceArena* arena = nullptr) {
  detail::scan_impl(dev, in, out, /*inclusive=*/false, name, arena);
}

}  // namespace gbdt::prim
