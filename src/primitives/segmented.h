// Segmented device primitives: SetKey, segmented prefix sum, segmented
// argmax reduction.
//
// Segments are contiguous element ranges described by an offsets array of
// n_seg + 1 entries (CSR convention).  In GBDT training one segment is "the
// sorted value list of attribute a inside tree node v", so the segment count
// is (#attributes x #nodes) and grows exponentially with tree depth — which
// is why the paper's Customized SetKey formula (segments handled per thread
// block adapt to the segment count) matters: with one block per segment the
// per-block scheduling overhead dominates for high-dimensional datasets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "device/device_context.h"
#include "primitives/transform.h"

namespace gbdt::prim {

/// The paper's Customized SetKey formula (Section III-B):
///   segs_per_block = 1 + #segments / (#SM * C),  C = 1000.
[[nodiscard]] inline std::int64_t auto_segs_per_block(std::int64_t n_segments,
                                                      int num_sms,
                                                      std::int64_t c = 1000) {
  return 1 + n_segments / (static_cast<std::int64_t>(num_sms) * c);
}

/// Writes keys[e] = segment index of element e, with each block handling
/// `segs_per_block` consecutive segments.  segs_per_block == 1 is the naive
/// one-block-per-segment scheme the paper improves on.
///
/// `stream` defaults to the legacy synchronous default stream; the multi-GPU
/// histogram path runs it on a dedicated compute stream so the key build
/// overlaps the histogram allreduce (the kernel reads only the offsets
/// table, never the histogram payload).  The body captures by value so a
/// deferred (schedule-fuzzed) async launch outlives this call.
template <typename OffBuf, typename KeyBuf>
void set_keys(device::Device& dev, const OffBuf& offsets, KeyBuf& keys,
              std::int64_t segs_per_block,
              int stream = device::kDefaultStream) {
  const std::int64_t n_seg = static_cast<std::int64_t>(offsets.size()) - 1;
  if (n_seg <= 0) return;
  segs_per_block = std::max<std::int64_t>(1, segs_per_block);
  const std::int64_t grid = (n_seg + segs_per_block - 1) / segs_per_block;
  auto off = as_span(offsets);
  auto k = as_span(keys);
  const auto body = [off, k, n_seg, segs_per_block](device::BlockCtx& b) {
    const std::int64_t s_lo = b.block_idx() * segs_per_block;
    const std::int64_t s_hi = std::min(s_lo + segs_per_block, n_seg);
    std::uint64_t written = 0;
    for (std::int64_t s = s_lo; s < s_hi; ++s) {
      const std::int64_t lo = off[static_cast<std::size_t>(s)];
      const std::int64_t hi = off[static_cast<std::size_t>(s + 1)];
      for (std::int64_t e = lo; e < hi; ++e) {
        k[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(s);
      }
      written += static_cast<std::uint64_t>(hi - lo);
    }
    if (s_hi > s_lo) {
      // Consecutive segments give each block one contiguous element range.
      b.reads(off, s_lo, s_hi - s_lo + 1);
      b.writes(k, off[static_cast<std::size_t>(s_lo)],
               off[static_cast<std::size_t>(s_hi)] -
                   off[static_cast<std::size_t>(s_lo)]);
    }
    b.work(written);
    b.mem_coalesced(written * sizeof(std::int32_t) +
                    static_cast<std::uint64_t>(s_hi - s_lo) * sizeof(std::int64_t));
  };
  if (stream == device::kDefaultStream) {
    dev.launch("set_keys", grid, kBlockDim, body);
  } else {
    dev.launch_async("stream_set_keys", stream, grid, kBlockDim, body);
  }
}

/// Inclusive prefix sum restarting wherever the key changes.  Keys must be
/// non-decreasing (they are segment ids).  Three-phase blocked algorithm with
/// cross-block carry propagation, so big segments still count as parallel
/// streaming work.
template <typename ValBuf, typename KeyBuf, typename OutBuf>
void segmented_inclusive_scan_by_key(device::Device& dev, const ValBuf& values,
                                     const KeyBuf& keys, OutBuf& out,
                                     std::string_view name = "seg_scan") {
  using T = buffer_element_t<OutBuf>;
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  if (n == 0) return;
  const std::int64_t grid = device::grid_for(n, kBlockDim);
  auto v = as_span(values);
  auto k = as_span(keys);
  auto o = as_span(out);

  // Per-block carry metadata.
  auto run_sums = dev.alloc<T>(static_cast<std::size_t>(grid));   // sum of trailing run
  auto carries = dev.alloc<T>(static_cast<std::size_t>(grid));    // incoming carry
  auto rs = run_sums.span();
  auto cr = carries.span();

  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    const std::int64_t lo = b.block_idx() * b.block_dim();
    const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
    T acc{};
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (i > lo && k[u] != k[u - 1]) acc = T{};
      acc += v[u];
      o[u] = acc;
    }
    rs[static_cast<std::size_t>(b.block_idx())] = acc;
    b.reads(v, lo, hi - lo);
    b.reads(k, lo, hi - lo);
    b.writes(o, lo, hi - lo);
    b.writes(rs, b.block_idx());
    const std::uint64_t m = elems_in_block(b, n);
    b.work(m);
    b.mem_coalesced(m * (2 * sizeof(T) + sizeof(std::int32_t)) + sizeof(T));
  });

  dev.launch("seg_scan_carries", 1, kBlockDim, [&](device::BlockCtx& b) {
    // Sequential walk over blocks: a block receives a carry when its first
    // key equals the previous block's last key; the carry keeps flowing while
    // blocks are covered by a single segment.
    T carry{};
    for (std::int64_t g = 0; g < grid; ++g) {
      const std::int64_t lo = g * kBlockDim;
      const std::int64_t hi = std::min<std::int64_t>(lo + kBlockDim, n);
      const bool joins_prev =
          g > 0 && k[static_cast<std::size_t>(lo)] ==
                       k[static_cast<std::size_t>(lo - 1)];
      const T incoming = joins_prev ? carry : T{};
      cr[static_cast<std::size_t>(g)] = incoming;
      const bool single_key = k[static_cast<std::size_t>(lo)] ==
                              k[static_cast<std::size_t>(hi - 1)];
      carry = rs[static_cast<std::size_t>(g)] + (single_key ? incoming : T{});
    }
    b.reads(k, 0, n);
    b.reads(rs, 0, grid);
    b.writes(cr, 0, grid);
    b.work(static_cast<std::uint64_t>(grid));
    b.mem_coalesced(static_cast<std::uint64_t>(grid) *
                    (2 * sizeof(T) + 2 * sizeof(std::int32_t)));
  });

  dev.launch("seg_scan_fixup", grid, kBlockDim, [&](device::BlockCtx& b) {
    const T incoming = cr[static_cast<std::size_t>(b.block_idx())];
    if (incoming == T{}) return;  // nothing to add (also skips most blocks)
    const std::int64_t lo = b.block_idx() * b.block_dim();
    const std::int64_t hi = std::min<std::int64_t>(lo + b.block_dim(), n);
    const std::int32_t lead = k[static_cast<std::size_t>(lo)];
    std::uint64_t touched = 0;
    for (std::int64_t i = lo; i < hi && k[static_cast<std::size_t>(i)] == lead;
         ++i) {
      o[static_cast<std::size_t>(i)] += incoming;
      ++touched;
    }
    b.reads(cr, b.block_idx());
    b.reads(k, lo, hi - lo);
    b.reads(o, lo, static_cast<std::int64_t>(touched));
    b.writes(o, lo, static_cast<std::int64_t>(touched));
    b.work(touched);
    b.mem_coalesced(touched * 2 * sizeof(T));
  });
}

/// Best (maximum) value and its element index for each segment; ties resolve
/// to the lowest index.  Each block processes `segs_per_block` consecutive
/// segments (the SetKey-style workload assignment for reductions).
template <typename ValBuf, typename OffBuf, typename BestValBuf,
          typename BestIdxBuf>
void segmented_arg_max(device::Device& dev, const ValBuf& values,
                       const OffBuf& offsets, BestValBuf& best_values,
                       BestIdxBuf& best_indices, std::int64_t segs_per_block,
                       std::string_view name = "seg_arg_max") {
  using T = buffer_element_t<BestValBuf>;
  const std::int64_t n_seg = static_cast<std::int64_t>(offsets.size()) - 1;
  if (n_seg <= 0) return;
  segs_per_block = std::max<std::int64_t>(1, segs_per_block);
  const std::int64_t grid = (n_seg + segs_per_block - 1) / segs_per_block;
  auto v = as_span(values);
  auto off = as_span(offsets);
  auto bv = as_span(best_values);
  auto bi = as_span(best_indices);
  dev.launch(name, grid, kBlockDim, [&](device::BlockCtx& b) {
    const std::int64_t s_lo = b.block_idx() * segs_per_block;
    const std::int64_t s_hi = std::min(s_lo + segs_per_block, n_seg);
    std::uint64_t scanned = 0;
    for (std::int64_t s = s_lo; s < s_hi; ++s) {
      const std::int64_t lo = off[static_cast<std::size_t>(s)];
      const std::int64_t hi = off[static_cast<std::size_t>(s + 1)];
      T best{};
      std::int64_t best_i = -1;
      for (std::int64_t e = lo; e < hi; ++e) {
        const T val = v[static_cast<std::size_t>(e)];
        if (best_i < 0 || val > best) {
          best = val;
          best_i = e;
        }
      }
      bv[static_cast<std::size_t>(s)] = best;
      bi[static_cast<std::size_t>(s)] = best_i;
      scanned += static_cast<std::uint64_t>(hi - lo);
    }
    if (s_hi > s_lo) {
      b.reads(off, s_lo, s_hi - s_lo + 1);
      b.reads(v, off[static_cast<std::size_t>(s_lo)],
              off[static_cast<std::size_t>(s_hi)] -
                  off[static_cast<std::size_t>(s_lo)]);
      b.writes(bv, s_lo, s_hi - s_lo);
      b.writes(bi, s_lo, s_hi - s_lo);
    }
    b.work(scanned);
    b.mem_coalesced(scanned * sizeof(T) +
                    static_cast<std::uint64_t>(s_hi - s_lo) *
                        (sizeof(T) + 2 * sizeof(std::int64_t)));
  });
}

}  // namespace gbdt::prim
