#include "rle/rle.h"

#include <algorithm>

#include "primitives/scan.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"

namespace gbdt::rle {

using prim::kBlockDim;

namespace {

/// Dual-storage scratch: pooled when an arena is available, owned otherwise.
template <typename T>
struct Scratch {
  device::DeviceBuffer<T> owned;
  device::ArenaBuffer<T> pooled;
  bool from_arena = false;

  Scratch(device::Device& dev, device::WorkspaceArena* arena, std::size_t n)
      : from_arena(arena != nullptr) {
    if (from_arena) {
      pooled = arena->alloc<T>(n);
    } else {
      owned = dev.alloc<T>(n);
    }
  }
  [[nodiscard]] std::span<T> span() {
    return from_arena ? pooled.span() : owned.span();
  }
};

}  // namespace

DeviceRle compress(device::Device& dev, std::span<const float> values,
                   std::span<const std::int64_t> elem_seg_offsets,
                   device::WorkspaceArena* arena) {
  DeviceRle out;
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  const std::int64_t n_seg =
      static_cast<std::int64_t>(elem_seg_offsets.size()) - 1;
  out.n_elements = n;
  if (n == 0) {
    out.values = dev.alloc<float>(0);
    out.starts = dev.alloc<std::int64_t>(1);
    out.seg_offsets = dev.alloc<std::int64_t>(
        static_cast<std::size_t>(std::max<std::int64_t>(n_seg, 0)) + 1);
    prim::fill(dev, out.seg_offsets, std::int64_t{0});
    return out;
  }

  // Segment key per element, so run heads are forced at segment starts.
  Scratch<std::int32_t> keys(dev, arena, static_cast<std::size_t>(n));
  auto keys_span = keys.span();
  prim::set_keys(dev, elem_seg_offsets, keys_span,
                 prim::auto_segs_per_block(n_seg, dev.config().num_sms));

  // Head flags -> run index per element (exclusive scan).
  Scratch<std::int64_t> head(dev, arena, static_cast<std::size_t>(n));
  {
    auto v = values;
    auto k = keys.span();
    auto h = head.span();
    dev.launch("rle_flag_heads", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   h[u] = (i == 0 || v[u] != v[u - 1] || k[u] != k[u - 1]) ? 1 : 0;
                 });
                 b.reads_tile(v, n);
                 b.reads_tile(k, n);
                 b.writes_tile(h, n);
                 b.mem_coalesced(prim::elems_in_block(b, n) * 16);
               });
  }
  Scratch<std::int64_t> run_idx(dev, arena, static_cast<std::size_t>(n));
  auto head_span = head.span();
  auto run_idx_span = run_idx.span();
  prim::exclusive_scan(dev, head_span, run_idx_span, "rle_head_scan", arena);
  out.n_runs = run_idx_span[static_cast<std::size_t>(n - 1)] +
               head_span[static_cast<std::size_t>(n - 1)];

  // Scatter run values and element-domain starts.
  out.values = dev.alloc<float>(static_cast<std::size_t>(out.n_runs));
  out.starts = dev.alloc<std::int64_t>(static_cast<std::size_t>(out.n_runs) + 1);
  {
    auto v = values;
    auto h = head.span();
    auto r = run_idx.span();
    auto rv = out.values.span();
    auto rs = out.starts.span();
    dev.launch("rle_emit_runs", device::grid_for(n, kBlockDim), kBlockDim,
               [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t i) {
                   if (i >= n) return;
                   const auto u = static_cast<std::size_t>(i);
                   if (h[u] != 0) {
                     const auto dst = static_cast<std::size_t>(r[u]);
                     rv[dst] = v[u];
                     rs[dst] = i;
                     b.writes(rv, r[u]);
                     b.writes(rs, r[u]);
                   }
                 });
                 b.reads_tile(v, n);
                 b.reads_tile(h, n);
                 b.reads_tile(r, n);
                 const auto m = prim::elems_in_block(b, n);
                 b.mem_coalesced(m * 20);
                 b.mem_irregular(m / 4 + 1);  // head-density-dependent writes
               });
    out.starts[static_cast<std::size_t>(out.n_runs)] = n;
  }

  // Segment offsets in the run domain: the element at a segment start is
  // always a run head, so its run index is the segment's first run.
  out.seg_offsets =
      dev.alloc<std::int64_t>(static_cast<std::size_t>(n_seg) + 1);
  {
    auto eoff = elem_seg_offsets;
    auto r = run_idx.span();
    auto soff = out.seg_offsets.span();
    const std::int64_t runs = out.n_runs;
    dev.launch("rle_seg_offsets", device::grid_for(n_seg + 1, kBlockDim),
               kBlockDim, [&](device::BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t s) {
                   if (s > n_seg) return;
                   const auto e = eoff[static_cast<std::size_t>(s)];
                   soff[static_cast<std::size_t>(s)] =
                       e >= n ? runs : r[static_cast<std::size_t>(e)];
                   if (e < n) b.reads(r, e);
                   b.writes(soff, s);
                 });
                 b.reads_tile(eoff, n_seg + 1);
                 const auto m = prim::elems_in_block(b, n_seg + 1);
                 b.mem_coalesced(m * 16);
                 b.mem_irregular(m);  // offset-directed lookups
               });
  }
  return out;
}

void decompress(device::Device& dev, const DeviceRle& rle,
                device::DeviceBuffer<float>& out) {
  const std::int64_t n_runs = rle.n_runs;
  if (n_runs == 0) return;
  auto rv = rle.values.span();
  auto rs = rle.starts.span();
  auto o = out.span();
  dev.launch("rle_decompress", device::grid_for(n_runs, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               std::uint64_t written = 0;
               b.for_each_thread([&](std::int64_t r) {
                 if (r >= n_runs) return;
                 const auto u = static_cast<std::size_t>(r);
                 const float v = rv[u];
                 for (std::int64_t e = rs[u]; e < rs[u + 1]; ++e) {
                   o[static_cast<std::size_t>(e)] = v;
                 }
                 b.writes(o, rs[u], rs[u + 1] - rs[u]);
                 written += static_cast<std::uint64_t>(rs[u + 1] - rs[u]);
               });
               b.reads_tile(rv, n_runs);
               b.reads_tile(rs, n_runs + 1);
               b.work(written);
               b.mem_coalesced(written * sizeof(float) +
                               prim::elems_in_block(b, n_runs) * 20);
             });
}

}  // namespace gbdt::rle
