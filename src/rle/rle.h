// Run-Length Encoding of segmented, sorted attribute values (paper Section
// III-C, Figure 4).
//
// The element domain is the flat array of attribute values grouped into
// (node, attribute) segments and sorted within each segment; because the
// values are sorted, equal values form contiguous runs and compression is a
// single linear pass.  Runs never cross segment boundaries.  Instance ids
// are NOT compressed (each id is unique); they stay aligned with the element
// domain, and `starts` maps runs back onto it.
#pragma once

#include <cstdint>
#include <span>

#include "device/device_context.h"
#include "device/workspace_arena.h"

namespace gbdt::rle {

/// RLE-compressed view of a segmented value array, device-resident.
struct DeviceRle {
  std::int64_t n_runs = 0;
  std::int64_t n_elements = 0;
  /// One value per run.                                  [n_runs]
  device::DeviceBuffer<float> values;
  /// Element-domain start of each run; starts[n_runs] == n_elements.
  device::DeviceBuffer<std::int64_t> starts;
  /// Segment boundaries in the *run* domain.             [n_seg + 1]
  device::DeviceBuffer<std::int64_t> seg_offsets;

  [[nodiscard]] std::int64_t run_length(std::int64_t r) const {
    return starts[static_cast<std::size_t>(r) + 1] -
           starts[static_cast<std::size_t>(r)];
  }
  /// Compressed bytes (values + starts + seg offsets).
  [[nodiscard]] std::size_t bytes() const {
    return values.bytes() + starts.bytes() + seg_offsets.bytes();
  }
};

/// Compresses sorted segmented values.  elem_seg_offsets has n_seg + 1
/// entries in the element domain.  Head flags + scan + scatter: O(n) device
/// work, as the paper notes ("the attribute values are already sorted and we
/// only need linear time").
/// Spans accept both owned (DeviceBuffer) and pooled (ArenaBuffer) storage;
/// with an `arena` the internal head-flag/run-index scratch is checked out
/// of it instead of hitting the device allocator.
[[nodiscard]] DeviceRle compress(device::Device& dev,
                                 std::span<const float> values,
                                 std::span<const std::int64_t> elem_seg_offsets,
                                 device::WorkspaceArena* arena = nullptr);

/// Expands runs back into the element domain; out must be n_elements long.
void decompress(device::Device& dev, const DeviceRle& rle,
                device::DeviceBuffer<float>& out);

/// The paper's cheap a-priori gate: compress when dimensionality/cardinality
/// exceeds the user constant R (high-dimensional sparse datasets repeat
/// values heavily).
[[nodiscard]] inline bool paper_gate(std::int64_t dimensionality,
                                     std::int64_t cardinality, double r) {
  return cardinality > 0 &&
         static_cast<double>(dimensionality) / static_cast<double>(cardinality) > r;
}

/// Exact compression ratio of an already-built RLE (elements per run).
[[nodiscard]] inline double measured_ratio(const DeviceRle& rle) {
  return rle.n_runs == 0
             ? 1.0
             : static_cast<double>(rle.n_elements) /
                   static_cast<double>(rle.n_runs);
}

}  // namespace gbdt::rle
