// Loss functions: first/second derivatives per instance (paper Equation 1).
//
// Like XGBoost we use the un-doubled derivatives of the squared error
// (g = yhat - y, h = 1); the paper's g = 2(yhat - y), h = 2 differs only by a
// constant factor that cancels in the gain formula and in -G/(H + lambda)
// up to a rescaling of lambda.
#pragma once

#include <cmath>
#include <memory>
#include <span>

#include "core/param.h"

namespace gbdt {

struct GradPair {
  double g = 0.0;
  double h = 0.0;
};

/// User-definable loss interface (the paper: "our algorithm supports user
/// defined loss functions").
class Loss {
 public:
  virtual ~Loss() = default;
  /// Derivatives of l(y, yhat) with respect to yhat.
  [[nodiscard]] virtual GradPair gradient(float y, float yhat) const = 0;
  /// Converts a raw model score into a prediction (identity for regression,
  /// sigmoid for logistic).
  [[nodiscard]] virtual double transform(double score) const { return score; }
  [[nodiscard]] virtual const char* name() const = 0;
};

class SquaredErrorLoss final : public Loss {
 public:
  [[nodiscard]] GradPair gradient(float y, float yhat) const override {
    return {static_cast<double>(yhat) - static_cast<double>(y), 1.0};
  }
  [[nodiscard]] const char* name() const override { return "squared_error"; }
};

class LogisticLoss final : public Loss {
 public:
  [[nodiscard]] GradPair gradient(float y, float yhat) const override {
    const double p = 1.0 / (1.0 + std::exp(-static_cast<double>(yhat)));
    return {p - static_cast<double>(y), std::max(p * (1.0 - p), 1e-16)};
  }
  [[nodiscard]] double transform(double score) const override {
    return 1.0 / (1.0 + std::exp(-score));
  }
  [[nodiscard]] const char* name() const override { return "logistic"; }
};

[[nodiscard]] std::unique_ptr<Loss> make_loss(LossKind kind);

/// Split gain of paper Equation 2 (without the constant 1/2, which does not
/// change the argmax; XGBoost omits it the same way).
[[nodiscard]] inline double split_gain(double gl, double hl, double gr,
                                       double hr, double lambda) {
  const double parent = (gl + gr) * (gl + gr) / (hl + hr + lambda);
  return gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent;
}

/// Optimal leaf weight -G / (H + lambda).
[[nodiscard]] inline double leaf_weight(double g, double h, double lambda) {
  return -g / (h + lambda);
}

}  // namespace gbdt
