#include "core/cv.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "core/metrics.h"
#include "core/predictor.h"
#include "primitives/transform.h"

namespace gbdt {

CvResult cross_validate(device::Device& dev, const data::Dataset& ds,
                        const GBDTParam& param, int k_folds, unsigned seed,
                        int early_stopping_rounds) {
  if (k_folds < 2) throw std::invalid_argument("need >= 2 folds");
  if (ds.n_instances() < k_folds) {
    throw std::invalid_argument("fewer instances than folds");
  }
  const bool classification = param.loss == LossKind::kLogistic;

  // Shuffled fold assignment.
  std::vector<std::int64_t> order(static_cast<std::size_t>(ds.n_instances()));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), std::mt19937(seed));

  CvResult result;
  result.metric_name = classification ? "error" : "rmse";
  for (int fold = 0; fold < k_folds; ++fold) {
    data::Dataset train_set(ds.n_attributes());
    data::Dataset held_out(ds.n_attributes());
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::int64_t i = order[pos];
      auto& target = static_cast<int>(pos) % k_folds == fold ? held_out
                                                             : train_set;
      target.add_instance(ds.instance(i),
                          ds.labels()[static_cast<std::size_t>(i)]);
    }
    GBDTModel model;
    if (early_stopping_rounds > 0) {
      auto [m, report, history] = GBDTModel::train_with_validation(
          dev, train_set, held_out, param, early_stopping_rounds);
      model = std::move(m);
      result.fold_best_iteration.push_back(history.best_iteration);
    } else {
      auto [m, report] = GBDTModel::train(dev, train_set, param);
      model = std::move(m);
    }
    // Score held-out rows with the device-resident predictor: the fold's
    // forest and rows are each uploaded exactly once.
    const DeviceForest forest(
        dev, ForestSoA::flatten(model.trees(), model.base_score()));
    const DeviceRows rows(dev, held_out);
    auto d_out =
        dev.alloc<double>(static_cast<std::size_t>(held_out.n_instances()));
    prim::fill(dev, d_out, model.base_score());
    predict_resident(dev, forest, rows, d_out, 0, forest.n_trees());
    const auto raw = dev.to_host(d_out);
    double metric = 0.0;
    if (classification) {
      metric = error_rate(model.transform_scores(raw), held_out.labels());
    } else {
      metric = rmse(raw, held_out.labels());
    }
    result.fold_metric.push_back(metric);
  }

  result.mean = std::accumulate(result.fold_metric.begin(),
                                result.fold_metric.end(), 0.0) /
                static_cast<double>(k_folds);
  double var = 0.0;
  for (double m : result.fold_metric) {
    var += (m - result.mean) * (m - result.mean);
  }
  result.stddev = std::sqrt(var / static_cast<double>(k_folds));
  return result;
}

}  // namespace gbdt
