#include "core/loss.h"

#include <stdexcept>

namespace gbdt {

std::unique_ptr<Loss> make_loss(LossKind kind) {
  switch (kind) {
    case LossKind::kSquaredError:
      return std::make_unique<SquaredErrorLoss>();
    case LossKind::kLogistic:
      return std::make_unique<LogisticLoss>();
  }
  throw std::invalid_argument("unknown loss kind");
}

}  // namespace gbdt
