// K-fold cross-validation over GPU-GBDT models.
#pragma once

#include <vector>

#include "core/gbdt.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

struct CvResult {
  std::string metric_name;            // "rmse" or "error"
  std::vector<double> fold_metric;    // held-out metric per fold
  /// Best boosting round per fold (only filled when early stopping ran;
  /// -1 when a fold never improved).
  std::vector<int> fold_best_iteration;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Trains k models, each holding out one contiguous-shuffled fold, and
/// reports the held-out metric (rmse for regression, error rate for the
/// logistic loss).  Deterministic for a given seed.
///
/// When early_stopping_rounds > 0 each fold trains against its held-out
/// fold as the validation split (honoring param.eval_freq), the fold's
/// forest is truncated to its best iteration, and fold_best_iteration
/// records where each fold stopped.
[[nodiscard]] CvResult cross_validate(device::Device& dev,
                                      const data::Dataset& ds,
                                      const GBDTParam& param, int k_folds,
                                      unsigned seed = 42,
                                      int early_stopping_rounds = 0);

}  // namespace gbdt
