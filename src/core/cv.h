// K-fold cross-validation over GPU-GBDT models.
#pragma once

#include <vector>

#include "core/gbdt.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

struct CvResult {
  std::string metric_name;            // "rmse" or "error"
  std::vector<double> fold_metric;    // held-out metric per fold
  double mean = 0.0;
  double stddev = 0.0;
};

/// Trains k models, each holding out one contiguous-shuffled fold, and
/// reports the held-out metric (rmse for regression, error rate for the
/// logistic loss).  Deterministic for a given seed.
[[nodiscard]] CvResult cross_validate(device::Device& dev,
                                      const data::Dataset& ds,
                                      const GBDTParam& param, int k_folds,
                                      unsigned seed = 42);

}  // namespace gbdt
