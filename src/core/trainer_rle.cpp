// RLE-path find-split and node-split phases (paper Section III-C).
//
// Candidate split points are RLE elements (runs), not individual attribute
// values: the per-run aggregated derivatives g-breve / h-breve (Figure 5)
// feed the same segmented-scan + gain machinery, the duplicated-split-point
// problem disappears by construction, and nodes are split either by the
// Directly-Split-RLE technique (Figure 7: pre-allocate two children per run,
// compact zero-length runs by prefix sum) or by the decompress - partition -
// recompress fallback (Figure 6).
#include <span>
#include <vector>

#include "core/trainer_detail.h"
#include "obs/trace.h"
#include "primitives/fused_split.h"
#include "primitives/partition.h"
#include "primitives/scan.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"
#include "rle/rle.h"
#include "testing/invariants.h"

namespace gbdt::detail {

using device::BlockCtx;
using device::Device;
using device::DeviceBuffer;
using prim::elems_in_block;
using prim::kBlockDim;

namespace {

/// Per-run aggregated first/second derivatives (paper Figure 5): the
/// gradients of all instances sharing the run's attribute value are added.
void aggregate_run_gradients(TrainState& st, std::span<GHPair> out) {
  const std::int64_t n_runs = st.n_runs;
  auto starts = st.run_starts.span();
  auto inst = st.inst.span();
  auto g = st.grad.span();
  auto h = st.hess.span();
  st.dev.launch("rle_aggregate_grad", device::grid_for(n_runs, kBlockDim),
                kBlockDim, [&](BlockCtx& b) {
                  std::uint64_t touched = 0;
                  b.for_each_thread([&](std::int64_t r) {
                    if (r >= n_runs) return;
                    const auto u = static_cast<std::size_t>(r);
                    GHPair sum;
                    b.reads(inst, starts[u], starts[u + 1] - starts[u]);
                    for (std::int64_t e = starts[u]; e < starts[u + 1]; ++e) {
                      const auto x = static_cast<std::size_t>(
                          inst[static_cast<std::size_t>(e)]);
                      sum += GHPair{g[x], h[x]};
                      ++touched;
                    }
                    out[u] = sum;
                  });
                  b.reads_tile(starts, n_runs + 1);
                  b.writes_tile(out, n_runs);
                  b.work(touched);
                  b.mem_coalesced(touched * 4 +
                                  elems_in_block(b, n_runs) * 32);
                  b.mem_irregular(touched * 2);  // grad/hess gathers
                });
}

}  // namespace

std::vector<BestSplit> find_splits_rle(TrainState& st) {
  auto& dev = st.dev;
  const std::int64_t n_runs = st.n_runs;
  const std::int64_t n_seg = st.n_seg();
  const std::int64_t n_attr = st.n_attr;
  const double lambda = st.param.lambda;
  std::vector<BestSplit> out(st.active.size());
  if (n_runs == 0) return out;

  const bool fused = prim::fused_split_enabled();

  st.run_keys = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(n_runs));
  {
    obs::ScopedSpan span("set_key");
    prim::set_keys(dev, st.run_seg_offsets, st.run_keys,
                   st.segs_per_block(n_seg));
  }

  // Per-run aggregated derivatives + segmented prefix sum + present totals.
  // Fused mode folds the Figure-5 aggregation into the scan's first phase
  // (no `rgh` array) and emits the totals as a scan side product.
  auto ghl = st.arena.alloc<GHPair>(static_cast<std::size_t>(n_runs));
  auto seg_tot = st.arena.alloc<GHPair>(static_cast<std::size_t>(n_seg));
  if (fused) {
    obs::ScopedSpan prefix_span("gain_prefix_sum");
    auto starts = st.run_starts.span();
    auto inst = st.inst.span();
    auto g = st.grad.span();
    auto h = st.hess.span();
    prim::fused_gather_scan_totals(
        dev, st.arena, st.run_keys, ghl, seg_tot,
        [starts, inst, g, h](BlockCtx& b, std::int64_t r) {
          const auto u = static_cast<std::size_t>(r);
          GHPair sum;
          b.reads(starts, r, 2);
          b.reads(inst, starts[u], starts[u + 1] - starts[u]);
          std::uint64_t len = 0;
          for (std::int64_t e = starts[u]; e < starts[u + 1]; ++e) {
            const auto x =
                static_cast<std::size_t>(inst[static_cast<std::size_t>(e)]);
            sum += GHPair{g[x], h[x]};
            ++len;
          }
          b.work(len);
          b.mem_coalesced(len * 4 + 16);  // inst stream + run starts
          b.mem_irregular(len * 2);       // grad/hess gathers
          return sum;
        },
        "fused_rle_aggregate_seg_scan");
  } else {
    obs::ScopedSpan prefix_span("gain_prefix_sum");
    auto rgh = st.arena.alloc<GHPair>(static_cast<std::size_t>(n_runs));
    aggregate_run_gradients(st, rgh.span());
    prim::segmented_inclusive_scan_by_key(dev, rgh, st.run_keys, ghl,
                                          "rle_seg_scan_gh");
    rgh.free();

    // Present totals per segment (value of the scan at the last run).
    auto roff = st.run_seg_offsets.span();
    auto scan = ghl.span();
    auto tot = seg_tot.span();
    dev.launch("rle_seg_present_totals", device::grid_for(n_seg, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t s) {
                   if (s >= n_seg) return;
                   const auto u = static_cast<std::size_t>(s);
                   const std::int64_t hi = roff[u + 1];
                   const bool empty = roff[u] == hi;
                   if (!empty) b.reads(scan, hi - 1);
                   tot[u] = empty ? GHPair{}
                                  : scan[static_cast<std::size_t>(hi - 1)];
                 });
                 b.reads_tile(roff, n_seg + 1);
                 b.writes_tile(tot, n_seg);
                 const auto m = elems_in_block(b, n_seg);
                 b.mem_coalesced(m * 32);
                 b.mem_irregular(m);
               });
  }

  auto tables = upload_slot_tables(st);

  // Gain per run: no duplicate suppression needed — adjacent runs inside a
  // segment always carry distinct values.  Fused mode evaluates gains inside
  // the per-segment argmax walk and keeps only the winners.
  auto best_seg_val = st.arena.alloc<double>(static_cast<std::size_t>(n_seg));
  auto best_seg_idx =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_seg));
  device::ArenaBuffer<std::uint8_t> best_seg_dir;
  device::ArenaBuffer<double> gains;
  device::ArenaBuffer<std::uint8_t> dirs;
  if (fused) {
    best_seg_dir = st.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n_seg));
    obs::ScopedSpan span("compute_gains");
    auto starts = st.run_starts.span();
    auto scan = ghl.span();
    auto tot = seg_tot.span();
    auto stats = tables.stats.span();
    const auto fm = st.feature_mask;
    prim::fused_gain_argmax(
        dev, st.run_seg_offsets, best_seg_val, best_seg_idx, best_seg_dir,
        st.segs_per_block(n_seg),
        [starts, scan, tot, stats, fm, n_attr, lambda](
            BlockCtx& b, std::int64_t s, std::int64_t r, std::int64_t run_lo,
            std::int64_t run_hi) {
          const auto u = static_cast<std::size_t>(r);
          const auto seg = static_cast<std::size_t>(s);
          b.reads(scan, r);
          b.reads(starts, r + 1);
          b.mem_coalesced(24);  // (g, h) prefix + next-run start, streamed
          b.flop(16);
          if (r == run_lo) {
            // Segment-invariant loads: totals, packed slot stats, and the
            // segment's element bounds are fetched once per segment and held
            // in registers across the walk.
            b.reads(tot, s);
            b.reads(stats, s / n_attr);
            b.reads(starts, run_lo);
            b.reads(starts, run_hi);
            if (!fm.empty()) b.reads(fm, s % n_attr);
            b.mem_coalesced(16);
            b.mem_irregular(1);
          }
          // Attributes outside this tree's feature bag yield no splits
          // (mask, not compaction: the run layout is untouched).
          if (!fm.empty() && fm[static_cast<std::size_t>(s % n_attr)] == 0) {
            return prim::GainDir{};
          }
          const std::int64_t elem_lo =
              starts[static_cast<std::size_t>(run_lo)];
          const std::int64_t elem_hi =
              starts[static_cast<std::size_t>(run_hi)];
          const auto slot = static_cast<std::size_t>(
              static_cast<std::int64_t>(seg) / n_attr);
          const double node_g = stats[slot].g;
          const double node_h = stats[slot].h;
          const std::int64_t cnt = stats[slot].cnt;
          const std::int64_t seg_len = elem_hi - elem_lo;
          const std::int64_t miss = cnt - seg_len;
          const double miss_g = node_g - tot[seg].g;
          const double miss_h = node_h - tot[seg].h;
          const std::int64_t pos = starts[u + 1] - elem_lo;
          const double glp = scan[u].g;
          const double hlp = scan[u].h;

          double gain_r = 0.0;
          if (pos > 0 && cnt - pos > 0) {
            gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp, lambda);
          }
          // With no missing instances the default direction is irrelevant;
          // evaluating only one keeps it deterministic across paths.
          double gain_l = 0.0;
          if (miss > 0 && seg_len - pos > 0) {
            gain_l = split_gain(glp + miss_g, hlp + miss_h,
                                node_g - glp - miss_g, node_h - hlp - miss_h,
                                lambda);
          }
          if (gain_l > gain_r) return prim::GainDir{gain_l, 1};
          return prim::GainDir{gain_r, 0};
        },
        "fused_rle_gain_argmax");
  } else {
    gains = st.arena.alloc<double>(static_cast<std::size_t>(n_runs));
    dirs = st.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n_runs));
    obs::ScopedSpan span("compute_gains");
    auto k = st.run_keys.span();
    auto roff = st.run_seg_offsets.span();
    auto starts = st.run_starts.span();
    auto scan = ghl.span();
    auto tot = seg_tot.span();
    auto stats = tables.stats.span();
    auto gn = gains.span();
    auto dr = dirs.span();
    const auto fm = st.feature_mask;
    dev.launch("rle_compute_gains", device::grid_for(n_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t r) {
                   if (r >= n_runs) return;
                   const auto u = static_cast<std::size_t>(r);
                   const auto seg = static_cast<std::size_t>(k[u]);
                   // Attributes outside this tree's feature bag yield no
                   // splits (mask, not compaction).
                   if (!fm.empty() &&
                       fm[seg % static_cast<std::size_t>(n_attr)] == 0) {
                     gn[u] = 0.0;
                     dr[u] = 0;
                     return;
                   }
                   const std::int64_t run_lo = roff[seg];
                   const std::int64_t run_hi = roff[seg + 1];
                   const std::int64_t elem_lo =
                       starts[static_cast<std::size_t>(run_lo)];
                   const std::int64_t elem_hi =
                       starts[static_cast<std::size_t>(run_hi)];
                   const auto slot = static_cast<std::size_t>(
                       static_cast<std::int64_t>(seg) / n_attr);
                   const double node_g = stats[slot].g;
                   const double node_h = stats[slot].h;
                   const std::int64_t cnt = stats[slot].cnt;
                   const std::int64_t seg_len = elem_hi - elem_lo;
                   const std::int64_t miss = cnt - seg_len;
                   const double miss_g = node_g - tot[seg].g;
                   const double miss_h = node_h - tot[seg].h;
                   const std::int64_t pos = starts[u + 1] - elem_lo;
                   const double glp = scan[u].g;
                   const double hlp = scan[u].h;

                   double gain_r = 0.0;
                   if (pos > 0 && cnt - pos > 0) {
                     gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp,
                                         lambda);
                   }
                   // With no missing instances the default direction is
                   // irrelevant; evaluating only one keeps it deterministic
                   // across the sparse/RLE/CPU paths.
                   double gain_l = 0.0;
                   if (miss > 0 && seg_len - pos > 0) {
                     gain_l = split_gain(glp + miss_g, hlp + miss_h,
                                         node_g - glp - miss_g,
                                         node_h - hlp - miss_h, lambda);
                   }
                   if (gain_l > gain_r) {
                     gn[u] = gain_l;
                     dr[u] = 1;
                   } else {
                     gn[u] = gain_r;
                     dr[u] = 0;
                   }
                 });
                 b.reads_tile(k, n_runs);
                 b.reads_tile(scan, n_runs);
                 b.writes_tile(gn, n_runs);
                 b.writes_tile(dr, n_runs);
                 if (!fm.empty()) {
                   b.reads(fm, 0, static_cast<std::int64_t>(fm.size()));
                 }
                 const auto m = elems_in_block(b, n_runs);
                 b.mem_coalesced(m * 49);
                 b.mem_irregular(m);  // seg-table lookups
                 b.flop(m * 16);
               });
  }

  auto d_node_offs = device_node_offsets(st, st.n_active(), n_attr);
  auto best_node_val = st.arena.alloc<double>(st.active.size());
  auto best_node_idx = st.arena.alloc<std::int64_t>(st.active.size());
  {
    obs::ScopedSpan span("setkey_argmax");
    if (!fused) {
      prim::segmented_arg_max(dev, gains, st.run_seg_offsets, best_seg_val,
                              best_seg_idx, st.segs_per_block(n_seg),
                              "rle_seg_best_gain");
    }
    prim::segmented_arg_max(dev, best_seg_val, d_node_offs, best_node_val,
                            best_node_idx, 1, "rle_node_best_gain");
  }

  for (std::size_t s = 0; s < st.active.size(); ++s) {
    BestSplit& b = out[s];
    const std::int64_t seg = best_node_idx[s];
    if (seg < 0) continue;
    const std::int64_t pos = best_seg_idx[static_cast<std::size_t>(seg)];
    if (pos < 0) continue;
    const double gain = best_node_val[s];
    if (!(gain > 0.0)) continue;

    const ActiveNode& node = st.active[s];
    const auto useg = static_cast<std::size_t>(seg);
    const auto upos = static_cast<std::size_t>(pos);
    b.valid = true;
    b.gain = gain;
    b.seg = seg;
    b.pos = pos;
    b.attr = static_cast<std::int32_t>(seg % n_attr);
    b.split_value = st.run_values[upos];
    b.default_left = fused ? best_seg_dir[useg] != 0 : dirs[upos] != 0;

    const std::int64_t run_lo = st.run_seg_offsets[useg];
    const std::int64_t run_hi = st.run_seg_offsets[useg + 1];
    const std::int64_t elem_lo =
        st.run_starts[static_cast<std::size_t>(run_lo)];
    const std::int64_t elem_hi =
        st.run_starts[static_cast<std::size_t>(run_hi)];
    const std::int64_t present_left = st.run_starts[upos + 1] - elem_lo;
    const std::int64_t seg_len = elem_hi - elem_lo;
    const std::int64_t miss = node.count - seg_len;
    double left_g = ghl[upos].g;
    double left_h = ghl[upos].h;
    std::int64_t left_cnt = present_left;
    if (b.default_left) {
      left_g += node.sum_g - seg_tot[useg].g;
      left_h += node.sum_h - seg_tot[useg].h;
      left_cnt += miss;
    }
    b.left.sum_g = left_g;
    b.left.sum_h = left_h;
    b.left.count = left_cnt;
    b.right.sum_g = node.sum_g - left_g;
    b.right.sum_h = node.sum_h - left_h;
    b.right.count = node.count - left_cnt;
  }
  return out;
}

namespace {

/// Exact side assignment through the runs of the winning segments: the
/// sorted prefix of runs up to the split position goes left.
void assign_exact_side_rle(TrainState& st, std::span<const SplitCmd> cmd) {
  auto& dev = st.dev;
  const std::int64_t n_runs = st.n_runs;
  const std::int64_t n_attr = st.n_attr;
  {
    auto k = st.run_keys.span();
    auto starts = st.run_starts.span();
    auto inst = st.inst.span();
    auto node_of = st.node_of.span();
    dev.launch("rle_assign_exact_side", device::grid_for(n_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 std::uint64_t writes = 0;
                 b.for_each_thread([&](std::int64_t r) {
                   if (r >= n_runs) return;
                   const auto u = static_cast<std::size_t>(r);
                   const std::int64_t seg = k[u];
                   const auto slot = static_cast<std::size_t>(seg / n_attr);
                   if (cmd[slot].chosen_seg != seg) return;
                   const std::int32_t target = r <= cmd[slot].best_pos
                                                   ? cmd[slot].left_id
                                                   : cmd[slot].right_id;
                   b.reads(inst, starts[u], starts[u + 1] - starts[u]);
                   for (std::int64_t e = starts[u]; e < starts[u + 1]; ++e) {
                     node_of[static_cast<std::size_t>(
                         inst[static_cast<std::size_t>(e)])] = target;
                     // An instance appears in exactly one run of the chosen
                     // segment and nodes own disjoint instance sets, so the
                     // scattered stores are block-disjoint; the auditor
                     // verifies it.
                     b.writes(node_of, inst[static_cast<std::size_t>(e)]);
                     ++writes;
                   }
                 });
                 b.reads_tile(k, n_runs);
                 b.reads_tile(starts, n_runs + 1);
                 b.work(writes);
                 b.mem_coalesced(elems_in_block(b, n_runs) * 24 + writes * 4);
                 b.mem_irregular(writes);
               });
  }
}

/// Child-slot tables of one level, checked out of the workspace arena.
struct ChildSlotTables {
  device::ArenaBuffer<std::int32_t> left_slot;  // per active slot, -1 = leaf
  device::ArenaBuffer<std::int32_t> right_slot;
  device::ArenaBuffer<std::int32_t> parent_slot;  // per next-level slot
};

ChildSlotTables build_child_slot_tables(TrainState& st,
                                        const LevelPlan& plan) {
  const auto n_slots = st.active.size();
  const auto n_new_slots = plan.next_active.size();
  std::vector<std::int32_t> left_slot(n_slots, -1), right_slot(n_slots, -1);
  std::vector<std::int32_t> parent_slot(n_new_slots, -1);
  for (std::size_t s = 0; s < n_slots; ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    left_slot[s] = plan.next_slot_of_tree[static_cast<std::size_t>(e.left_id)];
    right_slot[s] =
        plan.next_slot_of_tree[static_cast<std::size_t>(e.right_id)];
    parent_slot[static_cast<std::size_t>(left_slot[s])] =
        static_cast<std::int32_t>(s);
    parent_slot[static_cast<std::size_t>(right_slot[s])] =
        static_cast<std::int32_t>(s);
  }
  ChildSlotTables t;
  t.left_slot = upload_pooled(st.dev, st.arena, left_slot);
  t.right_slot = upload_pooled(st.dev, st.arena, right_slot);
  t.parent_slot = upload_pooled(st.dev, st.arena, parent_slot);
  return t;
}

/// Per-element partition ids and the order-preserving partition of the
/// (uncompressed) instance ids.  Returns the new element-domain segment
/// offsets; st.inst is replaced.  Must run after the exact-side assignment
/// and after any consumer of the *old* element domain (e.g. the child-length
/// counting of Directly-Split-RLE).
/// When `slots` is non-null (Directly-Split-RLE), the same pass also counts
/// each run's left/right child lengths (paper Figure 7 middle row) into
/// len_l/len_r — the counting must see the *old* element domain, and fusing
/// it here avoids a second irregular sweep over the instance ids.
device::ArenaBuffer<std::int64_t> partition_instances_rle(
    TrainState& st, const LevelPlan& plan,
    device::ArenaBuffer<std::int64_t>& scatter, const ChildSlotTables* slots,
    device::ArenaBuffer<std::int64_t>* len_l,
    device::ArenaBuffer<std::int64_t>* len_r) {
  auto& dev = st.dev;
  const std::int64_t n_runs = st.n_runs;
  const std::int64_t n = st.n_elems;
  const std::int64_t n_attr = st.n_attr;

  // Partition ids in the element domain (attribute comes from the run).
  const auto n_new_slots = static_cast<std::int64_t>(plan.next_active.size());
  const std::int64_t n_parts = n_new_slots * n_attr;
  auto d_next_slot = upload_pooled(dev, st.arena, plan.next_slot_of_tree);
  auto part_ids = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(n));
  {
    auto k = st.run_keys.span();
    auto starts = st.run_starts.span();
    auto inst = st.inst.span();
    auto node_of = st.node_of.span();
    auto nsl = d_next_slot.span();
    auto p = part_ids.span();
    const bool count_children = slots != nullptr;
    auto ls = count_children ? slots->left_slot.span()
                             : std::span<const std::int32_t>{};
    auto rs = count_children ? slots->right_slot.span()
                             : std::span<const std::int32_t>{};
    auto ll = count_children ? len_l->span() : std::span<std::int64_t>{};
    auto lr = count_children ? len_r->span() : std::span<std::int64_t>{};
    dev.launch("rle_compute_part_ids", device::grid_for(n_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 std::uint64_t touched = 0;
                 b.for_each_thread([&](std::int64_t r) {
                   if (r >= n_runs) return;
                   const auto u = static_cast<std::size_t>(r);
                   const auto old_slot = static_cast<std::size_t>(k[u] / n_attr);
                   const std::int32_t attr =
                       static_cast<std::int32_t>(k[u] % n_attr);
                   std::int64_t cl = 0, cr = 0;
                   b.reads(inst, starts[u], starts[u + 1] - starts[u]);
                   b.writes(p, starts[u], starts[u + 1] - starts[u]);
                   for (std::int64_t e = starts[u]; e < starts[u + 1]; ++e) {
                     const auto eu = static_cast<std::size_t>(e);
                     const std::int32_t ns =
                         nsl[static_cast<std::size_t>(node_of[static_cast<std::size_t>(inst[eu])])];
                     p[eu] = ns < 0 ? -1
                                    : static_cast<std::int32_t>(
                                          ns * n_attr + attr);
                     if (count_children) {
                       cl += ns == ls[old_slot];
                       cr += ns == rs[old_slot];
                     }
                     ++touched;
                   }
                   if (count_children) {
                     ll[u] = cl;
                     lr[u] = cr;
                     b.writes(ll, r);
                     b.writes(lr, r);
                   }
                 });
                 b.reads_tile(k, n_runs);
                 b.reads_tile(starts, n_runs + 1);
                 b.work(touched);
                 b.mem_coalesced(touched * 8 + elems_in_block(b, n_runs) * 24);
                 b.mem_irregular(touched);
               });
  }

  const auto pplan = prim::plan_partition(
      n, n_parts, st.param.partition_counter_budget,
      st.param.use_custom_idxcomp_workload);
  auto new_offsets =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_parts) + 1);
  prim::histogram_partition(dev, part_ids.span(), n_parts, scatter.span(),
                            new_offsets.span(), pplan, &st.arena);
  const std::int64_t new_n = new_offsets[static_cast<std::size_t>(n_parts)];

  auto new_inst = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(new_n));
  {
    auto inst = st.inst.span();
    auto sc = scatter.span();
    auto ni = new_inst.span();
    dev.launch("rle_scatter_inst", device::grid_for(n, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= n) return;
                   const auto u = static_cast<std::size_t>(e);
                   if (sc[u] >= 0) {
                     ni[static_cast<std::size_t>(sc[u])] = inst[u];
                     // Scatter targets are unique by construction of the
                     // order-preserving partition; the auditor verifies it.
                     b.writes(ni, sc[u]);
                   }
                 });
                 b.reads_tile(inst, n);
                 b.reads_tile(sc, n);
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 12);
                 b.mem_irregular(m / 4 + 1);
               });
  }
  st.inst = std::move(new_inst);
  st.n_elems = new_n;
  return new_offsets;
}

/// Directly-Split-RLE (paper Figure 7): every run of a splitting node
/// pre-allocates a left and a right child run with the precomputed child
/// lengths; zero-length runs are removed by prefix-sum compaction.
void direct_split_runs(TrainState& st, const ChildSlotTables& slots,
                       const device::ArenaBuffer<std::int64_t>& len_l,
                       const device::ArenaBuffer<std::int64_t>& len_r,
                       std::int64_t n_new_slots,
                       device::ArenaBuffer<std::int64_t>& new_elem_offsets) {
  auto& dev = st.dev;
  const std::int64_t n_runs = st.n_runs;
  const std::int64_t n_attr = st.n_attr;
  const std::int64_t n_new_seg = n_new_slots * n_attr;
  const auto& d_left_slot = slots.left_slot;
  const auto& d_right_slot = slots.right_slot;
  const auto& d_parent_slot = slots.parent_slot;

  // Candidate layout: for each new segment, one candidate slot per run of
  // the parent segment.
  auto cand_counts =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_seg));
  {
    auto roff = st.run_seg_offsets.span();
    auto ps = d_parent_slot.span();
    auto cc = cand_counts.span();
    dev.launch("rle_cand_counts", device::grid_for(n_new_seg, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t nseg) {
                   if (nseg >= n_new_seg) return;
                   const auto u = static_cast<std::size_t>(nseg);
                   const std::int32_t parent =
                       ps[static_cast<std::size_t>(nseg / n_attr)];
                   const auto pseg = static_cast<std::size_t>(
                       static_cast<std::int64_t>(parent) * n_attr +
                       nseg % n_attr);
                   b.reads(ps, nseg / n_attr);
                   b.reads(roff, static_cast<std::int64_t>(pseg), 2);
                   cc[u] = roff[pseg + 1] - roff[pseg];
                 });
                 b.writes_tile(cc, n_new_seg);
                 const auto m = elems_in_block(b, n_new_seg);
                 b.mem_coalesced(m * 8);
                 b.mem_irregular(m);
               });
  }
  auto cand_base =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_seg));
  prim::exclusive_scan(dev, cand_counts, cand_base, "rle_cand_base_scan",
                       &st.arena);
  const std::int64_t total_cand =
      n_new_seg == 0 ? 0
                     : cand_base[static_cast<std::size_t>(n_new_seg - 1)] +
                           cand_counts[static_cast<std::size_t>(n_new_seg - 1)];

  // Pre-allocate the two child runs of every run (Figure 7 middle row).
  auto cand_len =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(total_cand));
  auto cand_val = st.arena.alloc<float>(static_cast<std::size_t>(total_cand));
  prim::fill(dev, cand_len, std::int64_t{0});
  {
    auto k = st.run_keys.span();
    auto roff = st.run_seg_offsets.span();
    auto rv = st.run_values.span();
    auto ls = d_left_slot.span();
    auto rs = d_right_slot.span();
    auto ll = len_l.span();
    auto lr = len_r.span();
    auto cb = cand_base.span();
    auto cl = cand_len.span();
    auto cv = cand_val.span();
    dev.launch("rle_emit_candidates", device::grid_for(n_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t r) {
                   if (r >= n_runs) return;
                   const auto u = static_cast<std::size_t>(r);
                   const std::int64_t seg = k[u];
                   const auto slot = static_cast<std::size_t>(seg / n_attr);
                   if (ls[slot] < 0) return;  // leaf: runs dropped
                   const std::int64_t attr = seg % n_attr;
                   const std::int64_t r_local =
                       r - roff[static_cast<std::size_t>(seg)];
                   const auto lseg = static_cast<std::size_t>(
                       static_cast<std::int64_t>(ls[slot]) * n_attr + attr);
                   const auto rseg = static_cast<std::size_t>(
                       static_cast<std::int64_t>(rs[slot]) * n_attr + attr);
                   const auto lpos =
                       static_cast<std::size_t>(cb[lseg] + r_local);
                   const auto rpos =
                       static_cast<std::size_t>(cb[rseg] + r_local);
                   cl[lpos] = ll[u];
                   cv[lpos] = rv[u];
                   cl[rpos] = lr[u];
                   cv[rpos] = rv[u];
                   // Each run owns candidate slot r_local of each child
                   // segment, so the scattered candidate writes are
                   // block-disjoint; the auditor verifies it.
                   b.writes(cl, static_cast<std::int64_t>(lpos));
                   b.writes(cv, static_cast<std::int64_t>(lpos));
                   b.writes(cl, static_cast<std::int64_t>(rpos));
                   b.writes(cv, static_cast<std::int64_t>(rpos));
                 });
                 b.reads_tile(k, n_runs);
                 b.reads_tile(rv, n_runs);
                 b.reads_tile(ll, n_runs);
                 b.reads_tile(lr, n_runs);
                 const auto m = elems_in_block(b, n_runs);
                 b.mem_coalesced(m * 36);
                 b.mem_irregular(m * 2);  // the two candidate writes
               });
  }

  // Remove zero-length runs with a prefix sum (Figure 7 bottom row).
  auto flags =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(total_cand));
  {
    auto cl = cand_len.span();
    auto f = flags.span();
    dev.launch("rle_flag_nonzero", device::grid_for(total_cand, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t c) {
                   if (c < total_cand) {
                     const auto u = static_cast<std::size_t>(c);
                     f[u] = cl[u] > 0 ? 1 : 0;
                   }
                 });
                 b.reads_tile(cl, total_cand);
                 b.writes_tile(f, total_cand);
                 b.mem_coalesced(elems_in_block(b, total_cand) * 16);
               });
  }
  auto new_idx =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(total_cand));
  prim::exclusive_scan(dev, flags, new_idx, "rle_compact_scan", &st.arena);
  const std::int64_t n_new_runs =
      total_cand == 0
          ? 0
          : new_idx[static_cast<std::size_t>(total_cand - 1)] +
                flags[static_cast<std::size_t>(total_cand - 1)];

  auto new_val = st.arena.alloc<float>(static_cast<std::size_t>(n_new_runs));
  auto new_len =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_runs));
  {
    auto cl = cand_len.span();
    auto cv = cand_val.span();
    auto f = flags.span();
    auto ni = new_idx.span();
    auto nv = new_val.span();
    auto nl = new_len.span();
    dev.launch("rle_compact_runs", device::grid_for(total_cand, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t c) {
                   if (c >= total_cand) return;
                   const auto u = static_cast<std::size_t>(c);
                   if (f[u] != 0) {
                     const auto dst = static_cast<std::size_t>(ni[u]);
                     nv[dst] = cv[u];
                     nl[dst] = cl[u];
                     // Compaction indices are a strictly increasing scan of
                     // the flags, so each destination has one writer; the
                     // auditor verifies it.
                     b.writes(nv, ni[u]);
                     b.writes(nl, ni[u]);
                   }
                 });
                 b.reads_tile(cl, total_cand);
                 b.reads_tile(cv, total_cand);
                 b.reads_tile(f, total_cand);
                 b.reads_tile(ni, total_cand);
                 b.mem_coalesced(elems_in_block(b, total_cand) * 40);
               });
  }

  // New run starts: exclusive scan of the surviving lengths.
  auto new_starts =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_runs) + 1);
  if (n_new_runs > 0) {
    auto starts_body =
        st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_runs));
    prim::exclusive_scan(dev, new_len, starts_body, "rle_new_starts_scan",
                         &st.arena);
    auto src = starts_body.span();
    auto dst = new_starts.span();
    dev.launch("rle_new_starts_copy", device::grid_for(n_new_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t r) {
                   if (r < n_new_runs) {
                     dst[static_cast<std::size_t>(r)] =
                         src[static_cast<std::size_t>(r)];
                   }
                 });
                 b.reads_tile(src, n_new_runs);
                 b.writes_tile(dst, n_new_runs);
                 b.mem_coalesced(elems_in_block(b, n_new_runs) * 16);
               });
    new_starts[static_cast<std::size_t>(n_new_runs)] =
        new_starts[static_cast<std::size_t>(n_new_runs - 1)] +
        new_len[static_cast<std::size_t>(n_new_runs - 1)];
  } else {
    new_starts[0] = 0;
  }

  // New segment offsets in the run domain.
  auto new_seg_off =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_new_seg) + 1);
  {
    auto cb = cand_base.span();
    auto ni = new_idx.span();
    auto so = new_seg_off.span();
    dev.launch("rle_new_seg_offsets", device::grid_for(n_new_seg + 1, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t s) {
                   if (s > n_new_seg) return;
                   const auto u = static_cast<std::size_t>(s);
                   if (s == n_new_seg) {
                     so[u] = n_new_runs;
                   } else {
                     const std::int64_t base = cb[u];
                     b.reads(cb, s);
                     if (base < total_cand) b.reads(ni, base);
                     so[u] = base >= total_cand
                                 ? n_new_runs
                                 : ni[static_cast<std::size_t>(base)];
                   }
                   b.writes(so, s);
                 });
                 const auto m = elems_in_block(b, n_new_seg + 1);
                 b.mem_coalesced(m * 16);
                 b.mem_irregular(m);
               });
  }

  st.run_values = std::move(new_val);
  st.run_starts = std::move(new_starts);
  st.run_seg_offsets = std::move(new_seg_off);
  st.n_runs = n_new_runs;
  st.seg_offsets = std::move(new_elem_offsets);
}

/// Decompress -> partition -> recompress fallback (paper Figure 6).  The
/// repeated (de)compression every level is the cost Directly-Split-RLE
/// avoids; Figure 9 quantifies the difference.
void decompress_split_runs(TrainState& st,
                           device::ArenaBuffer<std::int64_t>& scatter,
                           device::ArenaBuffer<std::int64_t>& new_elem_offsets,
                           std::int64_t old_n_elems) {
  auto& dev = st.dev;
  const std::int64_t n_runs = st.n_runs;

  // Decompress the runs into the (old) element domain.
  auto old_values =
      st.arena.alloc<float>(static_cast<std::size_t>(old_n_elems));
  {
    auto rv = st.run_values.span();
    auto rs = st.run_starts.span();
    auto o = old_values.span();
    dev.launch("rle_split_decompress", device::grid_for(n_runs, kBlockDim),
               kBlockDim, [&](BlockCtx& b) {
                 std::uint64_t written = 0;
                 b.for_each_thread([&](std::int64_t r) {
                   if (r >= n_runs) return;
                   const auto u = static_cast<std::size_t>(r);
                   for (std::int64_t e = rs[u]; e < rs[u + 1]; ++e) {
                     o[static_cast<std::size_t>(e)] = rv[u];
                   }
                   b.writes(o, rs[u], rs[u + 1] - rs[u]);
                   written += static_cast<std::uint64_t>(rs[u + 1] - rs[u]);
                 });
                 b.reads_tile(rv, n_runs);
                 b.reads_tile(rs, n_runs + 1);
                 b.work(written);
                 b.mem_coalesced(written * 4 + elems_in_block(b, n_runs) * 20);
               });
  }

  // Partition the decompressed values with the scatter already computed for
  // the instance ids (same element order).
  const std::int64_t new_n = st.n_elems;  // updated by partition_instances_rle
  auto new_values = st.arena.alloc<float>(static_cast<std::size_t>(new_n));
  {
    auto v = old_values.span();
    auto sc = scatter.span();
    auto nv = new_values.span();
    dev.launch("rle_split_scatter_values",
               device::grid_for(old_n_elems, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= old_n_elems) return;
                   const auto u = static_cast<std::size_t>(e);
                   if (sc[u] >= 0) {
                     nv[static_cast<std::size_t>(sc[u])] = v[u];
                     // Scatter targets are unique by construction of the
                     // order-preserving partition; the auditor verifies it.
                     b.writes(nv, sc[u]);
                   }
                 });
                 b.reads_tile(v, old_n_elems);
                 b.reads_tile(sc, old_n_elems);
                 const auto m = elems_in_block(b, old_n_elems);
                 b.mem_coalesced(m * 12);
                 b.mem_irregular(m / 4 + 1);
               });
  }

  // Recompress per new segment.  The compressor's outputs are freshly sized
  // device buffers; the arena adopts them so next level's checkouts reuse
  // the storage instead of growing the device heap.
  auto compressed = rle::compress(dev, new_values.span(),
                                  new_elem_offsets.span(), &st.arena);
  st.n_runs = compressed.n_runs;
  st.run_values = st.arena.adopt(std::move(compressed.values));
  st.run_starts = st.arena.adopt(std::move(compressed.starts));
  st.run_seg_offsets = st.arena.adopt(std::move(compressed.seg_offsets));
  st.seg_offsets = std::move(new_elem_offsets);
}

}  // namespace

void apply_splits_rle(TrainState& st, const LevelPlan& plan) {
  const std::int64_t old_n_elems = st.n_elems;

  assign_default_children(st, plan);

  auto d_cmd = upload_split_cmds(st, plan);

  {
    obs::ScopedSpan span("mark_sides");
    assign_exact_side_rle(st, d_cmd.span());
  }

  // Directly-Split-RLE needs the child lengths per run, counted on the old
  // element domain; the partition pass below counts them on the fly.
  ChildSlotTables slots;
  device::ArenaBuffer<std::int64_t> len_l, len_r;
  const bool direct = st.param.use_direct_rle_split;
  if (direct) {
    slots = build_child_slot_tables(st, plan);
    len_l = st.arena.alloc<std::int64_t>(static_cast<std::size_t>(st.n_runs));
    len_r = st.arena.alloc<std::int64_t>(static_cast<std::size_t>(st.n_runs));
  }

  auto scatter =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(old_n_elems));
  device::ArenaBuffer<std::int64_t> new_elem_offsets;
  {
    obs::ScopedSpan span("partition");
    new_elem_offsets = partition_instances_rle(
        st, plan, scatter, direct ? &slots : nullptr,
        direct ? &len_l : nullptr, direct ? &len_r : nullptr);
  }

  if (st.param.use_direct_rle_split) {
    obs::ScopedSpan span("rle_direct_split");
    direct_split_runs(st, slots, len_l, len_r,
                      static_cast<std::int64_t>(plan.next_active.size()),
                      new_elem_offsets);
  } else {
    obs::ScopedSpan span("rle_decompress_split");
    decompress_split_runs(st, scatter, new_elem_offsets, old_n_elems);
  }
  st.run_keys.free();

  testing::check_rle_layout(
      st, static_cast<std::int64_t>(plan.next_active.size()) * st.n_attr,
      "apply_splits_rle");
}

}  // namespace gbdt::detail
