#include "core/predictor.h"

#include <cstdint>

#include "primitives/transform.h"

namespace gbdt {

using device::BlockCtx;
using prim::kBlockDim;

ForestSoA ForestSoA::flatten(const std::vector<Tree>& trees,
                             double base_score) {
  ForestSoA f;
  f.base_score = base_score;
  f.tree_off.push_back(0);
  for (const auto& t : trees) {
    for (const auto& nd : t.nodes()) {
      f.left.push_back(nd.left);
      f.right.push_back(nd.right);
      f.attr.push_back(nd.attr);
      f.split.push_back(nd.split_value);
      f.def_left.push_back(nd.default_left ? 1 : 0);
      f.weight.push_back(nd.weight);
    }
    f.tree_off.push_back(static_cast<std::int64_t>(f.left.size()));
  }
  return f;
}

double ForestSoA::leaf_weight(std::span<const data::Entry> row,
                              std::int64_t t) const {
  const std::int64_t base = tree_off[static_cast<std::size_t>(t)];
  std::int64_t id = base;
  while (left[static_cast<std::size_t>(id)] >= 0) {
    const auto nu = static_cast<std::size_t>(id);
    const std::int32_t want = attr[nu];
    std::int64_t lo = 0, hi = static_cast<std::int64_t>(row.size());
    const float* found = nullptr;
    while (lo < hi) {
      const std::int64_t mid = (lo + hi) / 2;
      const auto mu = static_cast<std::size_t>(mid);
      if (row[mu].attr < want) {
        lo = mid + 1;
      } else if (row[mu].attr > want) {
        hi = mid;
      } else {
        found = &row[mu].value;
        break;
      }
    }
    const bool go_left = found != nullptr ? *found >= split[nu] : def_left[nu] != 0;
    id = base + (go_left ? left[nu] : right[nu]);
  }
  return weight[static_cast<std::size_t>(id)];
}

DeviceForest::DeviceForest(device::Device& dev, const ForestSoA& host)
    : n_trees_(host.n_trees()),
      base_score_(host.base_score),
      d_tree_off_(dev.to_device<std::int64_t>(host.tree_off)),
      d_left_(dev.to_device<std::int32_t>(host.left)),
      d_right_(dev.to_device<std::int32_t>(host.right)),
      d_attr_(dev.to_device<std::int32_t>(host.attr)),
      d_split_(dev.to_device<float>(host.split)),
      d_def_left_(dev.to_device<std::uint8_t>(host.def_left)),
      d_weight_(dev.to_device<double>(host.weight)) {}

DeviceRows::DeviceRows(device::Device& dev, const data::Dataset& ds)
    : n_rows_(ds.n_instances()) {
  std::vector<std::int32_t> attrs(static_cast<std::size_t>(ds.n_entries()));
  std::vector<float> vals(static_cast<std::size_t>(ds.n_entries()));
  for (std::size_t k = 0; k < attrs.size(); ++k) {
    attrs[k] = ds.entries()[k].attr;
    vals[k] = ds.entries()[k].value;
  }
  d_offsets_ = dev.to_device<std::int64_t>(ds.row_offsets());
  d_attrs_ = dev.to_device<std::int32_t>(attrs);
  d_values_ = dev.to_device<float>(vals);
}

void predict_resident(device::Device& dev, const DeviceForest& forest,
                      const DeviceRows& rows,
                      device::DeviceBuffer<double>& inout,
                      std::int64_t tree_lo, std::int64_t tree_hi,
                      const char* name) {
  const std::int64_t n = rows.n_rows();
  const std::int64_t n_range = tree_hi - tree_lo;
  if (n <= 0 || n_range <= 0) return;

  const std::int64_t total = n * n_range;
  auto ro = rows.offsets();
  auto ra = rows.attrs();
  auto rv = rows.values();
  auto toff = forest.tree_off();
  auto L = forest.left();
  auto R = forest.right();
  auto A = forest.attr();
  auto S = forest.split();
  auto D = forest.def_left();
  auto W = forest.weight();
  auto out = inout.span();
  dev.launch(name, device::grid_for(total, kBlockDim), kBlockDim,
             [&](BlockCtx& b) {
               std::uint64_t steps = 0;
               b.for_each_thread([&](std::int64_t x) {
                 if (x >= total) return;
                 const std::int64_t i = x % n;             // instance
                 const std::int64_t t = tree_lo + x / n;   // tree
                 const auto iu = static_cast<std::size_t>(i);
                 const std::int64_t row_lo = ro[iu];
                 const std::int64_t row_hi = ro[iu + 1];
                 const std::int64_t base = toff[static_cast<std::size_t>(t)];
                 std::int64_t id = base;
                 while (L[static_cast<std::size_t>(id)] >= 0) {
                   const auto nu = static_cast<std::size_t>(id);
                   const std::int32_t want = A[nu];
                   std::int64_t lo = row_lo, hi = row_hi;
                   const float* found = nullptr;
                   while (lo < hi) {
                     const std::int64_t mid = (lo + hi) / 2;
                     const auto mu = static_cast<std::size_t>(mid);
                     if (ra[mu] < want) {
                       lo = mid + 1;
                     } else if (ra[mu] > want) {
                       hi = mid;
                     } else {
                       found = &rv[mu];
                       break;
                     }
                     ++steps;
                   }
                   const bool go_left =
                       found != nullptr ? *found >= S[nu] : D[nu] != 0;
                   id = base + (go_left ? L[nu] : R[nu]);
                   steps += 3;
                 }
                 // One thread per (instance, tree): partial sums accumulate
                 // with a global atomic, as in the paper's prediction kernel.
                 out[iu] += W[static_cast<std::size_t>(id)];
               });
               b.work(steps);
               b.mem_irregular(steps);
               b.atomic(prim::elems_in_block(b, total));
             });
}

std::vector<double> predict_on_device(device::Device& dev,
                                      const std::vector<Tree>& trees,
                                      double base_score,
                                      const data::Dataset& ds) {
  const DeviceForest forest(dev, ForestSoA::flatten(trees, base_score));
  const DeviceRows rows(dev, ds);

  auto d_out = dev.alloc<double>(static_cast<std::size_t>(ds.n_instances()));
  prim::fill(dev, d_out, base_score);
  predict_resident(dev, forest, rows, d_out, 0, forest.n_trees());
  return dev.to_host(d_out);
}

double RowPredictor::score(std::span<const data::Entry> row) const {
  return partial(row, 0, soa_.n_trees(), soa_.base_score);
}

double RowPredictor::partial(std::span<const data::Entry> row,
                             std::int64_t tree_lo, std::int64_t tree_hi,
                             double seed) const {
  double s = seed;
  for (std::int64_t t = tree_lo; t < tree_hi; ++t) {
    s += soa_.leaf_weight(row, t);
  }
  return s;
}

}  // namespace gbdt
