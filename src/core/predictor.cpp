#include "core/predictor.h"

#include <cstdint>

#include "primitives/transform.h"

namespace gbdt {

using device::BlockCtx;
using prim::kBlockDim;

std::vector<double> predict_on_device(device::Device& dev,
                                      const std::vector<Tree>& trees,
                                      double base_score,
                                      const data::Dataset& ds) {
  const std::int64_t n = ds.n_instances();
  const auto n_trees = static_cast<std::int64_t>(trees.size());

  // Upload the CSR rows once.
  std::vector<std::int32_t> attrs(static_cast<std::size_t>(ds.n_entries()));
  std::vector<float> vals(static_cast<std::size_t>(ds.n_entries()));
  for (std::size_t k = 0; k < attrs.size(); ++k) {
    attrs[k] = ds.entries()[k].attr;
    vals[k] = ds.entries()[k].value;
  }
  auto d_off = dev.to_device<std::int64_t>(ds.row_offsets());
  auto d_attr = dev.to_device<std::int32_t>(attrs);
  auto d_val = dev.to_device<float>(vals);

  // Upload all trees as one flat SoA with per-tree node offsets.
  std::vector<std::int64_t> tree_off{0};
  std::vector<std::int32_t> left, right, attr;
  std::vector<float> split;
  std::vector<std::uint8_t> def_left;
  std::vector<double> weight;
  for (const auto& t : trees) {
    for (const auto& nd : t.nodes()) {
      left.push_back(nd.left);
      right.push_back(nd.right);
      attr.push_back(nd.attr);
      split.push_back(nd.split_value);
      def_left.push_back(nd.default_left ? 1 : 0);
      weight.push_back(nd.weight);
    }
    tree_off.push_back(static_cast<std::int64_t>(left.size()));
  }
  auto d_toff = dev.to_device<std::int64_t>(tree_off);
  auto d_left = dev.to_device<std::int32_t>(left);
  auto d_right = dev.to_device<std::int32_t>(right);
  auto d_tattr = dev.to_device<std::int32_t>(attr);
  auto d_split = dev.to_device<float>(split);
  auto d_def = dev.to_device<std::uint8_t>(def_left);
  auto d_weight = dev.to_device<double>(weight);

  auto d_out = dev.alloc<double>(static_cast<std::size_t>(n));
  prim::fill(dev, d_out, base_score);

  const std::int64_t total = n * n_trees;
  auto ro = d_off.span();
  auto ra = d_attr.span();
  auto rv = d_val.span();
  auto toff = d_toff.span();
  auto L = d_left.span();
  auto R = d_right.span();
  auto A = d_tattr.span();
  auto S = d_split.span();
  auto D = d_def.span();
  auto W = d_weight.span();
  auto out = d_out.span();
  dev.launch("predict_batch", device::grid_for(total, kBlockDim), kBlockDim,
             [&](BlockCtx& b) {
               std::uint64_t steps = 0;
               b.for_each_thread([&](std::int64_t x) {
                 if (x >= total) return;
                 const std::int64_t i = x % n;       // instance
                 const std::int64_t t = x / n;       // tree
                 const auto iu = static_cast<std::size_t>(i);
                 const std::int64_t row_lo = ro[iu];
                 const std::int64_t row_hi = ro[iu + 1];
                 const std::int64_t base = toff[static_cast<std::size_t>(t)];
                 std::int64_t id = base;
                 while (L[static_cast<std::size_t>(id)] >= 0) {
                   const auto nu = static_cast<std::size_t>(id);
                   const std::int32_t want = A[nu];
                   std::int64_t lo = row_lo, hi = row_hi;
                   const float* found = nullptr;
                   while (lo < hi) {
                     const std::int64_t mid = (lo + hi) / 2;
                     const auto mu = static_cast<std::size_t>(mid);
                     if (ra[mu] < want) {
                       lo = mid + 1;
                     } else if (ra[mu] > want) {
                       hi = mid;
                     } else {
                       found = &rv[mu];
                       break;
                     }
                     ++steps;
                   }
                   const bool go_left =
                       found != nullptr ? *found >= S[nu] : D[nu] != 0;
                   id = base + (go_left ? L[nu] : R[nu]);
                   steps += 3;
                 }
                 // One thread per (instance, tree): partial sums accumulate
                 // with a global atomic, as in the paper's prediction kernel.
                 out[iu] += W[static_cast<std::size_t>(id)];
               });
               b.work(steps);
               b.mem_irregular(steps);
               b.atomic(prim::elems_in_block(b, total));
             });

  return dev.to_host(d_out);
}

}  // namespace gbdt
