// Device-side histogram trainer: the quantized-histogram training method
// every production GPU GBDT system uses (XGBoost-GPU, LightGBM, ThunderGBM),
// built on the same simulated device, workspace arena and fused find-split
// machinery as the paper's exact trainer.
//
// Typical use:
//   device::Device dev(device::DeviceConfig::titan_x_pascal());
//   GBDTParam p;
//   p.n_bins = 64;
//   GpuHistTrainer trainer(dev, p);
//   const TrainReport report = trainer.train(dataset);
//
// Splits are approximate (bin boundaries instead of exact feature values),
// so the trainer is validated by quality equivalence against the exact
// reference (see testing/oracle.h's hist_vs_exact leg), not bitwise — but
// the training itself is fully deterministic: gradients are quantized to
// int64 fixed point, making histogram accumulation exact and the
// histogram-subtraction trick bitwise-identical to direct accumulation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "device/device_context.h"
#include "primitives/histogram.h"

namespace gbdt {

/// Device-resident quantized feature matrix: per-attribute quantile cuts plus
/// the CSR entry stream rewritten as (attribute, bin-index) pairs.  Built
/// once per training run; every tree and level reads bins, never raw floats.
struct BinnedMatrix {
  std::vector<hist::BinCuts> cuts;                   // per attribute
  device::DeviceBuffer<std::int64_t> row_offsets;    // [n_inst + 1]
  device::DeviceBuffer<std::int32_t> entry_attr;     // per CSR entry
  device::DeviceBuffer<std::uint16_t> entry_bin;
  std::int64_t n_inst = 0;
  std::int64_t n_attr = 0;
  int n_bins = 0;  // bin budget; cuts[a].bin_low.size() may be smaller
};

/// Quantizes the dataset: builds per-attribute quantile cuts (hist::build_cuts)
/// and uploads the bin-index entry stream (PCI-e accounted).
[[nodiscard]] BinnedMatrix build_binned_matrix(device::Device& dev,
                                               const data::Dataset& ds,
                                               int n_bins);

/// Histogram-method trainer on the simulated device.  Returns the same
/// TrainReport as GpuGbdtTrainer (used_rle/rle_ratio stay at their
/// defaults — the histogram path has no RLE stage).
class GpuHistTrainer {
 public:
  GpuHistTrainer(device::Device& dev, GBDTParam param);

  [[nodiscard]] TrainReport train(const data::Dataset& ds);

  [[nodiscard]] const GBDTParam& param() const { return param_; }

 private:
  device::Device& dev_;
  GBDTParam param_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt
