// Device-side histogram trainer: the quantized-histogram training method
// every production GPU GBDT system uses (XGBoost-GPU, LightGBM, ThunderGBM),
// built on the same simulated device, workspace arena and fused find-split
// machinery as the paper's exact trainer.
//
// Typical use:
//   device::Device dev(device::DeviceConfig::titan_x_pascal());
//   GBDTParam p;
//   p.n_bins = 64;
//   GpuHistTrainer trainer(dev, p);
//   const TrainReport report = trainer.train(dataset);
//
// Splits are approximate (bin boundaries instead of exact feature values),
// so the trainer is validated by quality equivalence against the exact
// reference (see testing/oracle.h's hist_vs_exact leg), not bitwise — but
// the training itself is fully deterministic: gradients are quantized to
// int64 fixed point, making histogram accumulation exact and the
// histogram-subtraction trick bitwise-identical to direct accumulation.
//
// The per-tree/per-level machinery lives in HistGrower, a stepwise "grower"
// the single-device trainer drives front to back and the multi-GPU trainer
// drives in lockstep across K row shards — pausing between steps to
// allreduce |g| maxima, quantized root sums, and the accumulated histogram
// slots (histograms, not split candidates), after which every shard reaches
// bitwise-identical split decisions with no further communication.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/trainer.h"
#include "core/trainer_detail.h"
#include "data/dataset.h"
#include "device/device_context.h"
#include "primitives/histogram.h"

namespace gbdt {

/// Device-resident quantized feature matrix: per-attribute quantile cuts plus
/// the CSR entry stream rewritten as (attribute, bin-index) pairs.  Built
/// once per training run; every tree and level reads bins, never raw floats.
struct BinnedMatrix {
  std::vector<hist::BinCuts> cuts;                   // per attribute
  device::DeviceBuffer<std::int64_t> row_offsets;    // [n_inst + 1]
  device::DeviceBuffer<std::int32_t> entry_attr;     // per CSR entry
  device::DeviceBuffer<std::uint16_t> entry_bin;
  std::int64_t n_inst = 0;
  std::int64_t n_attr = 0;
  int n_bins = 0;  // bin budget; cuts[a].bin_low.size() may be smaller
};

/// Host-side per-attribute quantile cuts of `ds` (the shared first step of
/// both build_binned_matrix overloads; the multi-GPU row shards build cuts
/// from the *full* dataset so their bin boundaries agree).
[[nodiscard]] std::vector<hist::BinCuts> build_hist_cuts(
    const data::Dataset& ds, int n_bins);

/// Quantizes the dataset: builds per-attribute quantile cuts (hist::build_cuts)
/// and uploads the bin-index entry stream (PCI-e accounted).
[[nodiscard]] BinnedMatrix build_binned_matrix(device::Device& dev,
                                               const data::Dataset& ds,
                                               int n_bins);

/// Same, against caller-supplied cuts (multi-GPU shards pass the global
/// dataset's cuts and a row-sliced `ds`).
[[nodiscard]] BinnedMatrix build_binned_matrix(
    device::Device& dev, const data::Dataset& ds, int n_bins,
    const std::vector<hist::BinCuts>& cuts);

/// Stepwise histogram tree grower over one device (one row shard in the
/// multi-GPU path).  The caller owns phase spans/timing scopes and sequences
/// the steps; with `distributed` unset the sequence and kernel order are
/// exactly the pre-refactor single-device trainer's.  `distributed` growers
/// skip the single-device self-checks (subtraction verify, instance counts,
/// leaf map — they assume the full row set) and the process-wide counters.
///
/// Per tree:   local_abs_max -> [max-allreduce] -> quantize ->
///             [sum-allreduce] -> begin_tree
/// Per level:  plan_level -> build_level -> [histogram allreduce over
///             accumulated_slots, overlapping run_set_keys on a side
///             stream] -> subtract_level -> find_level -> decide_level
///             (one shard; identical inputs everywhere) -> apply_level ->
///             advance_level
class HistGrower {
 public:
  HistGrower(device::Device& dev, const GBDTParam& param,
             detail::TrainState& st, const BinnedMatrix& binned,
             bool distributed);

  struct AbsMax {
    double g = 0.0;
    double h = 0.0;
  };
  struct LevelDecision {
    std::vector<hist::HistSplitCmd> cmds;
    std::vector<detail::ActiveNode> next_active;
    std::vector<hist::QGH> next_slotq;
    std::vector<std::int32_t> next_pair_parent;
    // (tree node, expected instance count) for the invariant check.
    std::vector<std::pair<std::int32_t, std::int64_t>> expected_counts;
  };

  // ---- per tree -----------------------------------------------------------
  /// Largest |gradient| / |hessian| over this shard's rows.
  [[nodiscard]] AbsMax local_abs_max();
  /// Fixes the quantization scales from the (globally reduced) maxima and
  /// `global_n` rows, quantizes this shard's gradients, and returns the
  /// shard-local quantized root sums.
  [[nodiscard]] hist::QGH quantize(double max_abs_g, double max_abs_h,
                                   std::int64_t global_n);
  /// Resets the per-tree state around the (globally reduced) root stats.
  void begin_tree(Tree& tree, const hist::QGH& global_root);

  // ---- per level ----------------------------------------------------------
  /// Allocates this level's histograms and picks the accumulate/derive split.
  void plan_level();
  /// Builds the accumulated slots' histograms over this shard's rows.
  void build_level();
  /// Spans of the accumulated (directly built) histogram slots — the
  /// payloads the multi-GPU trainer allreduces before subtract_level.
  [[nodiscard]] std::vector<std::span<hist::QGH>> accumulated_slots();
  /// Derives the larger siblings by parent - sibling subtraction (bitwise
  /// in int64, also across shards once the accumulated slots are global).
  void subtract_level();
  [[nodiscard]] bool has_derived() const;
  /// Single-device bitwise self-check of the subtraction trick (invariants
  /// mode only; distributed growers skip — the fuzz oracle's bitwise
  /// mgpu_hist_vs_single leg subsumes it).
  void maybe_verify_subtraction();
  /// Uploads the segment-offset table and checks the key buffer out of the
  /// arena (must precede any comm enqueue: it rides the default stream).
  void prepare_offsets();
  /// set_keys over the prepared offsets; `stream` lets the multi-GPU path
  /// overlap it with the histogram allreduce.
  void run_set_keys(int stream = device::kDefaultStream);
  /// Fused scan + gain/argmax + host winner assembly over the (merged)
  /// histograms.  Deterministic in its inputs, so shards agree bitwise.
  void find_level();
  /// Host-side split decisions; mutates the shared tree.  The multi-GPU
  /// trainer runs it on one shard and distributes the (identical) result.
  [[nodiscard]] LevelDecision decide_level();
  /// update_positions over this shard's rows for the decided splits.
  void apply_level(const LevelDecision& d);
  /// Instance-count invariant (single-device only; counts are global).
  void maybe_check_counts(const LevelDecision& d);
  /// Rolls slot state forward to the decided children.
  void advance_level(const LevelDecision& d);

  // ---- per tree, end ------------------------------------------------------
  /// Finalizes the still-active nodes as leaves and clears the level state.
  void finish_tree();
  /// Leaf-map invariant over `ds` (single-device only).
  void maybe_check_leaf_map(const data::Dataset& ds);

  [[nodiscard]] detail::TrainState& state() { return st_; }
  [[nodiscard]] const std::vector<detail::BestSplit>& best() const {
    return best_;
  }

 private:
  struct AccumPlan {
    std::vector<std::int32_t> accum_of_node;  // tree-node id -> accum index
    std::vector<std::int32_t> dest_slot;      // accum index -> level slot
    std::vector<std::int32_t> der_parent;     // per derived: parent slot
    std::vector<std::int32_t> der_sibling;    // per derived: sibling slot
    std::vector<std::int32_t> der_derived;    // per derived: slot to fill
  };
  void make_accum_plan();

  device::Device& dev_;
  const GBDTParam& param_;
  detail::TrainState& st_;
  const BinnedMatrix& binned_;
  const bool distributed_;
  const int n_bins_;
  const std::int64_t cps_;  // cells per node slot = n_attr * n_bins

  device::DeviceBuffer<double> abs_scratch_;
  device::DeviceBuffer<std::int64_t> qg_;
  device::DeviceBuffer<std::int64_t> qh_;
  hist::GradQuant quant_g_;
  hist::GradQuant quant_h_;

  std::vector<hist::QGH> slotq_;  // per-slot quantized node stats (global)
  device::ArenaBuffer<hist::QGH> hist_prev_;
  device::ArenaBuffer<hist::QGH> hist_cur_;
  std::vector<std::int32_t> pair_parent_slot_;
  AccumPlan accum_;
  device::ArenaBuffer<std::int64_t> seg_offsets_;
  std::vector<detail::BestSplit> best_;
  std::vector<hist::QGH> child_q_;
  std::vector<hist::QGH> level_scan_;     // host copies for winner assembly
};

/// Histogram-method trainer on the simulated device.  Returns the same
/// TrainReport as GpuGbdtTrainer (used_rle/rle_ratio stay at their
/// defaults — the histogram path has no RLE stage).
class GpuHistTrainer {
 public:
  GpuHistTrainer(device::Device& dev, GBDTParam param);

  [[nodiscard]] TrainReport train(const data::Dataset& ds);

  [[nodiscard]] const GBDTParam& param() const { return param_; }

 private:
  device::Device& dev_;
  GBDTParam param_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt
