#include "core/autotune.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "device/cost_model.h"
#include "device/kernel_stats.h"
#include "primitives/partition.h"
#include "primitives/segmented.h"

namespace gbdt::autotune {

namespace {

/// Only move off the paper's defaults for a predicted win beyond the
/// uniform-segment modeling slack.
constexpr double kMinWin = 0.03;

std::int64_t nodes_at_level(int level, std::int64_t n_instances) {
  const std::int64_t full =
      level >= 62 ? n_instances : std::int64_t{1} << level;
  return std::min(full, std::max<std::int64_t>(n_instances, 1));
}

/// Modeled seconds of one set_keys launch, mirroring the kernel's own
/// accounting (prim::set_keys) under a uniform-segment assumption.
double set_keys_seconds(const device::CostModel& cm, std::int64_t n_seg,
                        std::int64_t n_elems, std::int64_t segs_per_block) {
  if (n_seg <= 0 || n_elems <= 0) return 0.0;
  segs_per_block = std::max<std::int64_t>(1, segs_per_block);
  device::KernelStats s;
  s.thread_work = static_cast<std::uint64_t>(n_elems);
  s.blocks = static_cast<std::uint64_t>((n_seg + segs_per_block - 1) /
                                        segs_per_block);
  s.max_block_work = static_cast<std::uint64_t>(
      (n_elems * segs_per_block + n_seg - 1) / n_seg);
  s.coalesced_bytes =
      static_cast<std::uint64_t>(n_elems) * sizeof(std::int32_t) +
      static_cast<std::uint64_t>(n_seg) * sizeof(std::int64_t);
  return cm.kernel_seconds(s);
}

/// Sum of one tree's set_keys launches (one per level; segment count doubles
/// with depth, elements stay put).
double tree_set_keys_seconds(const device::CostModel& cm,
                             const ProblemShape& shape,
                             const GBDTParam& param, bool custom,
                             std::int64_t c) {
  double total = 0.0;
  for (int l = 0; l < param.depth; ++l) {
    const std::int64_t nodes = nodes_at_level(l, shape.n_instances);
    const std::int64_t n_seg = nodes * shape.n_attributes;
    const std::int64_t elems =
        param.use_hist_trainer ? n_seg * param.n_bins : shape.n_entries;
    const std::int64_t spb =
        custom ? prim::auto_segs_per_block(n_seg, cm.config().num_sms, c) : 1;
    total += set_keys_seconds(cm, n_seg, elems, spb);
  }
  return total;
}

/// Modeled seconds of the deepest level's order-preserving partition under
/// the given workload policy (the pass count is the real plan's).
double partition_seconds(const device::CostModel& cm,
                         const ProblemShape& shape, const GBDTParam& param,
                         bool customized) {
  const std::int64_t nodes =
      nodes_at_level(param.depth - 1, shape.n_instances);
  const std::int64_t n_parts = std::max<std::int64_t>(2 * nodes, 1);
  const std::int64_t moved =
      param.use_hist_trainer ? shape.n_instances : shape.n_entries;
  if (moved <= 0) return 0.0;
  const prim::PartitionPlan plan = prim::plan_partition(
      moved, n_parts, param.partition_counter_budget, customized);
  device::KernelStats s;
  s.thread_work = static_cast<std::uint64_t>(moved);
  // part id read + scatter index write, plus zero/scan of the counters.
  s.coalesced_bytes =
      static_cast<std::uint64_t>(moved) *
          (sizeof(std::int32_t) + sizeof(std::int64_t)) +
      2 * static_cast<std::uint64_t>(plan.counter_bytes);
  s.blocks = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, plan.n_threads / 256));
  s.max_block_work = static_cast<std::uint64_t>(256 * plan.workload);
  return static_cast<double>(plan.passes) * cm.kernel_seconds(s);
}

}  // namespace

ProblemShape problem_shape(const data::Dataset& ds) {
  return {ds.n_instances(), ds.n_attributes(), ds.n_entries()};
}

TuningReport tune(const device::DeviceConfig& cfg, const ProblemShape& shape,
                  const GBDTParam& param) {
  const device::CostModel cm(cfg);
  TuningReport t;

  // ---- SetKey constant C ---------------------------------------------------
  t.candidates.push_back(
      {0, false,
       tree_set_keys_seconds(cm, shape, param, /*custom=*/false, 0)});
  for (const std::int64_t c : {std::int64_t{1}, std::int64_t{10},
                               std::int64_t{100}, std::int64_t{250},
                               std::int64_t{500}, std::int64_t{1000},
                               std::int64_t{2000}, std::int64_t{4000}}) {
    t.candidates.push_back(
        {c, true, tree_set_keys_seconds(cm, shape, param, /*custom=*/true, c)});
  }
  const auto is_default = [](const SetKeyCandidate& c) {
    return c.use_custom_setkey && c.setkey_c == 1000;
  };
  const auto def = std::find_if(t.candidates.begin(), t.candidates.end(),
                                is_default);
  const auto best = std::min_element(
      t.candidates.begin(), t.candidates.end(),
      [](const SetKeyCandidate& a, const SetKeyCandidate& b) {
        return a.find_split_seconds < b.find_split_seconds;
      });
  t.baseline_find_split_seconds = def->find_split_seconds;
  if (best->find_split_seconds <
      def->find_split_seconds * (1.0 - kMinWin)) {
    t.setkey_c = best->use_custom_setkey ? best->setkey_c : param.setkey_c;
    t.use_custom_setkey = best->use_custom_setkey;
    t.tuned_find_split_seconds = best->find_split_seconds;
  } else {
    t.setkey_c = 1000;
    t.use_custom_setkey = true;
    t.tuned_find_split_seconds = def->find_split_seconds;
  }

  // ---- IdxComp workload policy --------------------------------------------
  t.partition_custom_seconds =
      partition_seconds(cm, shape, param, /*customized=*/true);
  t.partition_naive_seconds =
      partition_seconds(cm, shape, param, /*customized=*/false);
  t.use_custom_idxcomp_workload =
      t.partition_custom_seconds <=
      t.partition_naive_seconds * (1.0 + kMinWin);

  // ---- out-of-core chunk size ---------------------------------------------
  {
    // CSC shard per entry: 4 B value + 8 B instance id.
    const double data_bytes = static_cast<double>(shape.n_entries) * 12.0;
    const double link_bw = cfg.pcie_bandwidth_gbps * 1e9;
    const double per_chunk =
        cfg.pcie_latency_us * 1e-6 + cfg.kernel_launch_us * 1e-6;
    double best_secs = 0.0;
    std::size_t best_chunk = 0;
    for (const std::size_t mib : {16u, 32u, 64u, 128u, 256u}) {
      const std::size_t chunk = std::size_t{mib} << 20;
      const double n_chunks =
          std::max(1.0, std::ceil(data_bytes / static_cast<double>(chunk)));
      // Pipelined stream: total wire time + pipeline fill + per-chunk costs.
      const double secs = data_bytes / link_bw +
                          static_cast<double>(chunk) / link_bw +
                          n_chunks * per_chunk;
      t.ooc_candidates.emplace_back(chunk, secs);
      if (best_chunk == 0 || secs < best_secs) {
        best_secs = secs;
        best_chunk = chunk;
      }
    }
    const std::size_t def_chunk = std::size_t{64} << 20;
    double def_secs = best_secs;
    for (const auto& [chunk, secs] : t.ooc_candidates) {
      if (chunk == def_chunk) def_secs = secs;
    }
    t.ooc_chunk_bytes =
        best_secs < def_secs * (1.0 - kMinWin) ? best_chunk : def_chunk;
  }

  // ---- fused find-split ----------------------------------------------------
  // Fusion removes the scan-totals round trip (write + read of 16 B per
  // element per level); it can only win, so the knob stays on — the saving
  // is reported for the profile.
  {
    double saving = 0.0;
    const double bw = cfg.mem_bandwidth_gbps * 1e9;
    for (int l = 0; l < param.depth; ++l) {
      const std::int64_t nodes = nodes_at_level(l, shape.n_instances);
      const std::int64_t elems =
          param.use_hist_trainer ? nodes * shape.n_attributes * param.n_bins
                                 : shape.n_entries;
      saving += 2.0 * static_cast<double>(elems) * 16.0 / bw;
    }
    t.fused_saving_seconds = saving;
    t.fused_find = true;
  }
  return t;
}

void apply(const TuningReport& t, GBDTParam& p) {
  p.setkey_c = t.setkey_c;
  p.use_custom_setkey = t.use_custom_setkey;
  p.use_custom_idxcomp_workload = t.use_custom_idxcomp_workload;
}

bool autotune_forced() {
  const char* v = std::getenv("GBDT_AUTOTUNE");
  if (v == nullptr) return false;
  const std::string_view s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true" || s == "TRUE";
}

}  // namespace gbdt::autotune
