#include "core/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace gbdt {

double rmse(std::span<const double> pred, std::span<const float> label) {
  assert(pred.size() == label.size());
  if (pred.empty()) return 0.0;
  double se = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - static_cast<double>(label[i]);
    se += d * d;
  }
  return std::sqrt(se / static_cast<double>(pred.size()));
}

double error_rate(std::span<const double> pred, std::span<const float> label) {
  assert(pred.size() == label.size());
  if (pred.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const bool positive = pred[i] >= 0.5;
    wrong += positive != (label[i] >= 0.5f);
  }
  return static_cast<double>(wrong) / static_cast<double>(pred.size());
}

double ndcg_at_k(std::span<const double> pred, std::span<const float> label,
                 std::span<const std::int64_t> query_offsets, int k) {
  assert(pred.size() == label.size());
  assert(query_offsets.size() >= 2);
  assert(k >= 1);
  const std::size_t n_queries = query_offsets.size() - 1;
  double sum = 0.0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::int64_t lo = query_offsets[q];
    const std::int64_t hi = query_offsets[q + 1];
    const std::int64_t m = hi - lo;
    std::vector<std::int64_t> order(static_cast<std::size_t>(m));
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(),
              [&](std::int64_t a, std::int64_t b) {
                const auto au = static_cast<std::size_t>(a);
                const auto bu = static_cast<std::size_t>(b);
                if (pred[au] != pred[bu]) return pred[au] > pred[bu];
                return a < b;
              });
    const std::int64_t cutoff = std::min<std::int64_t>(m, k);
    double dcg = 0.0;
    for (std::int64_t r = 0; r < cutoff; ++r) {
      const auto doc = static_cast<std::size_t>(order[static_cast<std::size_t>(r)]);
      dcg += (std::exp2(static_cast<double>(label[doc])) - 1.0) /
             std::log2(static_cast<double>(r) + 2.0);
    }
    std::vector<double> gains(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      gains[static_cast<std::size_t>(i)] =
          std::exp2(static_cast<double>(label[static_cast<std::size_t>(lo + i)])) - 1.0;
    }
    std::sort(gains.begin(), gains.end(), std::greater<>());
    double idcg = 0.0;
    for (std::int64_t r = 0; r < cutoff; ++r) {
      idcg += gains[static_cast<std::size_t>(r)] /
              std::log2(static_cast<double>(r) + 2.0);
    }
    // A query with no graded documents imposes no ordering constraint: any
    // ranking of it is ideal.
    sum += idcg > 0.0 ? dcg / idcg : 1.0;
  }
  return sum / static_cast<double>(n_queries);
}

double auc(std::span<const double> pred, std::span<const float> label) {
  assert(pred.size() == label.size());
  const std::size_t n = pred.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pred[a] < pred[b];
  });
  // Mann-Whitney U: sum of positive ranks, with tied scores sharing the
  // average rank of their run.
  double pos_rank_sum = 0.0;
  std::size_t n_pos = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && pred[order[j]] == pred[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));  // 1-based
    for (std::size_t t = i; t < j; ++t) {
      if (label[order[t]] >= 0.5f) {
        pos_rank_sum += avg_rank;
        ++n_pos;
      }
    }
    i = j;
  }
  const std::size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = pos_rank_sum -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace gbdt
