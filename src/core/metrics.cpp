#include "core/metrics.h"

#include <cassert>
#include <cmath>

namespace gbdt {

double rmse(std::span<const double> pred, std::span<const float> label) {
  assert(pred.size() == label.size());
  if (pred.empty()) return 0.0;
  double se = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - static_cast<double>(label[i]);
    se += d * d;
  }
  return std::sqrt(se / static_cast<double>(pred.size()));
}

double error_rate(std::span<const double> pred, std::span<const float> label) {
  assert(pred.size() == label.size());
  if (pred.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const bool positive = pred[i] >= 0.5;
    wrong += positive != (label[i] >= 0.5f);
  }
  return static_cast<double>(wrong) / static_cast<double>(pred.size());
}

}  // namespace gbdt
