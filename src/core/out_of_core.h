// Out-of-core GBDT training: datasets whose attribute lists do not fit the
// device train by streaming column chunks over PCI-e each level.
//
// This addresses the paper's motivating constraint head-on ("GPUs have
// relatively small memory ... we should make full use of the GPU memory to
// efficiently handle large datasets, and reduce data transferring between
// CPUs and GPUs"):
//
//  * only the per-instance state (gradients, predictions, instance->node
//    map) is resident on the device — O(n_instances);
//  * the root-sorted attribute lists stay on the host and are streamed in
//    column chunks once per level; enumeration uses position lookups
//    against the resident instance->node map, so the lists are never
//    partitioned and never reshipped in a different order.  Chunk uploads
//    ride a dedicated copy stream that double-buffers one chunk ahead of
//    the compute stream (event-ordered, race-checked), so PCI-e time hides
//    under enumeration; GBDT_SYNC_STREAMS=1 routes both streams through
//    the default stream for a bitwise-identical serial schedule;
//  * per-(node, attribute) running statistics live in a small device table
//    (#nodes x #chunk-attributes), the streaming analogue of node
//    interleaving.
//
// The price is PCI-e traffic proportional to (#entries x depth x trees) —
// exactly the traffic the paper's RLE compression attacks, which
// `stream_compressed` applies: chunks whose value arrays compress well ship
// as RLE runs.  Trees are equivalent to the in-core exact trainer
// (identical splits up to floating-point tie-breaks).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

struct OutOfCoreReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  std::vector<double> train_scores;
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Fraction of busy device seconds hidden by upload/compute overlap
  /// (0 when GBDT_SYNC_STREAMS routes everything through the default
  /// stream).
  double overlap_ratio = 0.0;
  /// Total bytes streamed over PCI-e for column chunks.
  std::uint64_t streamed_bytes = 0;
  /// Device bytes the in-core trainer would have needed for its lists.
  std::size_t in_core_bytes = 0;
  std::size_t peak_device_bytes = 0;
  int n_chunks = 0;
};

class OutOfCoreTrainer {
 public:
  /// chunk_bytes bounds the device footprint of one streamed column chunk;
  /// stream_compressed ships RLE-compressed value arrays when a chunk's
  /// values compress (the paper's PCI-e traffic argument).
  OutOfCoreTrainer(device::Device& dev, GBDTParam param,
                   std::size_t chunk_bytes = std::size_t{64} << 20,
                   bool stream_compressed = true);

  [[nodiscard]] OutOfCoreReport train(const data::Dataset& ds);

 private:
  device::Device& dev_;
  GBDTParam param_;
  std::size_t chunk_bytes_;
  bool stream_compressed_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt
