// Cost-model-guided autotuning of the trainer's performance knobs.
//
// The paper fixes its tuning constants globally (Customized SetKey C = 1000,
// IdxComp counter budget 2^30, 64 MiB out-of-core chunks) and reports they
// work well on its four datasets.  The simulated device makes the better
// experiment cheap: every kernel's modeled time is an analytical function of
// counted work (device/cost_model.h), so the tuner can *predict* each
// candidate configuration's find-split seconds from the dataset shape alone
// — no trial training runs — and pick the argmin before training starts.
//
// Search space (one pass, all closed-form):
//   * SetKey segs-per-block constant C over {1, 10, 100, 250, 500, 1000,
//     2000, 4000} plus the formula disabled (one block per segment).  The
//     synthesized KernelStats mirror prim::set_keys' accounting exactly
//     under a uniform-segment assumption.
//   * Customized IdxComp workload on/off, costed through the real
//     prim::plan_partition pass structure (the naive fixed workload pays a
//     multi-pass penalty when the counters blow the budget).
//   * Out-of-core chunk size over {16, 32, 64, 128, 256} MiB (pipeline-fill
//     vs per-chunk-overhead trade-off).
//   * Fused find-split on/off (the fusion only removes intermediate
//     traffic, so the model always confirms it on).
//
// The default (paper) configuration is only abandoned when a candidate
// predicts at least a 3% win — the uniform-segment assumption is not worth
// betting on for less — so `--autotune` can never lose to the paper's fixed
// C = 1000 by more than model noise, and bench_smoke gates exactly that.
//
// The chosen knobs are applied onto the GBDTParam the trainers copy into
// TrainState, so every downstream segs_per_block / plan_partition call sees
// the tuned values; the full candidate sweep is kept in the report for the
// CLI `--profile` tuning block and EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/param.h"
#include "data/dataset.h"
#include "device/device_config.h"

namespace gbdt::autotune {

/// One evaluated SetKey configuration.
struct SetKeyCandidate {
  std::int64_t setkey_c = 0;  // meaningful when use_custom_setkey
  bool use_custom_setkey = true;
  /// Predicted modeled seconds of all set_keys launches of one tree.
  double find_split_seconds = 0.0;
};

/// Everything the tuner decided plus the evidence it decided on.
struct TuningReport {
  // ---- chosen configuration ----------------------------------------------
  std::int64_t setkey_c = 1000;
  bool use_custom_setkey = true;
  bool use_custom_idxcomp_workload = true;
  std::size_t ooc_chunk_bytes = std::size_t{64} << 20;
  bool fused_find = true;

  // ---- predictions --------------------------------------------------------
  /// Paper default (C = 1000, custom formula on), for the acceptance gate.
  double baseline_find_split_seconds = 0.0;
  /// The chosen SetKey configuration (<= baseline by construction).
  double tuned_find_split_seconds = 0.0;
  double partition_custom_seconds = 0.0;
  double partition_naive_seconds = 0.0;
  /// Intermediate traffic the fused find-split avoids per tree.
  double fused_saving_seconds = 0.0;

  // ---- full sweeps (for --profile and EXPERIMENTS.md) ---------------------
  std::vector<SetKeyCandidate> candidates;
  std::vector<std::pair<std::size_t, double>> ooc_candidates;
};

/// The dataset statistics the predictions depend on.
struct ProblemShape {
  std::int64_t n_instances = 0;
  std::int64_t n_attributes = 0;
  std::int64_t n_entries = 0;
};

[[nodiscard]] ProblemShape problem_shape(const data::Dataset& ds);

/// Evaluates the whole search space against the analytical cost model.
/// Pure: no device is touched, no training happens.
[[nodiscard]] TuningReport tune(const device::DeviceConfig& cfg,
                                const ProblemShape& shape,
                                const GBDTParam& param);

/// Writes the chosen knobs into `p` (which the trainers then cache in
/// TrainState).  The out-of-core chunk size is advisory — it is consumed by
/// the out-of-core driver's options, not by GBDTParam.
void apply(const TuningReport& t, GBDTParam& p);

/// True when GBDT_AUTOTUNE=1: tune even when param.autotune is unset.
[[nodiscard]] bool autotune_forced();

}  // namespace gbdt::autotune
