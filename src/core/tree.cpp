#include "core/tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gbdt {

std::pair<std::int32_t, std::int32_t> Tree::split(std::int32_t id,
                                                  std::int32_t attr,
                                                  float split_value,
                                                  bool default_left,
                                                  double gain) {
  const auto l = static_cast<std::int32_t>(nodes_.size());
  const auto r = l + 1;
  nodes_.emplace_back();
  nodes_.emplace_back();
  auto& n = nodes_[static_cast<std::size_t>(id)];
  n.left = l;
  n.right = r;
  n.attr = attr;
  n.split_value = split_value;
  n.default_left = default_left;
  n.gain = gain;
  return {l, r};
}

int Tree::depth() const {
  // Iterative depth via per-node levels (children always appear after their
  // parent, so one forward pass suffices).
  std::vector<int> level(nodes_.size(), 0);
  int d = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (!n.is_leaf()) {
      level[static_cast<std::size_t>(n.left)] = level[i] + 1;
      level[static_cast<std::size_t>(n.right)] = level[i] + 1;
    }
    d = std::max(d, level[i]);
  }
  return d;
}

std::int32_t Tree::n_leaves() const {
  std::int32_t c = 0;
  for (const auto& n : nodes_) c += n.is_leaf();
  return c;
}

namespace {

/// Binary search for `attr` in a sorted attribute array; returns the value
/// pointer or nullptr when missing.
const float* find_attr(const std::int32_t* attrs, const float* values,
                       std::int64_t n, std::int32_t attr) {
  const auto* end = attrs + n;
  const auto* it = std::lower_bound(attrs, end, attr);
  return (it != end && *it == attr) ? values + (it - attrs) : nullptr;
}

}  // namespace

std::int32_t Tree::leaf_for(const std::int32_t* attrs, const float* values,
                            std::int64_t n) const {
  std::int32_t id = 0;
  while (!nodes_[static_cast<std::size_t>(id)].is_leaf()) {
    const auto& nd = nodes_[static_cast<std::size_t>(id)];
    const float* v = find_attr(attrs, values, n, nd.attr);
    const bool go_left = v != nullptr ? *v >= nd.split_value : nd.default_left;
    id = go_left ? nd.left : nd.right;
  }
  return id;
}

double Tree::predict(const std::int32_t* attrs, const float* values,
                     std::int64_t n) const {
  return nodes_[static_cast<std::size_t>(leaf_for(attrs, values, n))].weight;
}

std::string Tree::dump() const {
  std::ostringstream out;
  out.precision(9);
  std::vector<int> level(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (!n.is_leaf()) {
      level[static_cast<std::size_t>(n.left)] = level[i] + 1;
      level[static_cast<std::size_t>(n.right)] = level[i] + 1;
    }
  }
  // Pre-order walk for readability.
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const auto id = stack.back();
    stack.pop_back();
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    out << std::string(static_cast<std::size_t>(level[static_cast<std::size_t>(id)]) * 2, ' ');
    if (n.is_leaf()) {
      out << id << ":leaf=" << n.weight << " cover=" << n.n_instances << "\n";
    } else {
      out << id << ":[f" << n.attr << ">=" << n.split_value << "] yes="
          << n.left << " no=" << n.right
          << " missing=" << (n.default_left ? n.left : n.right)
          << " gain=" << n.gain << " cover=" << n.n_instances << "\n";
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  return out.str();
}

bool Tree::same_structure(const Tree& a, const Tree& b, double tol) {
  if (a.n_nodes() != b.n_nodes()) return false;
  for (std::int32_t i = 0; i < a.n_nodes(); ++i) {
    const auto& x = a.node(i);
    const auto& y = b.node(i);
    if (x.left != y.left || x.right != y.right || x.attr != y.attr ||
        x.default_left != y.default_left) {
      return false;
    }
    if (x.is_leaf()) {
      if (std::abs(x.weight - y.weight) > tol) return false;
    } else if (std::abs(static_cast<double>(x.split_value) -
                        static_cast<double>(y.split_value)) > tol) {
      return false;
    }
  }
  return true;
}

void Tree::serialize(std::ostream& out) const {
  out << nodes_.size() << "\n";
  out.precision(17);
  for (const auto& n : nodes_) {
    out << n.left << ' ' << n.right << ' ' << n.attr << ' ';
    out.precision(9);
    out << n.split_value << ' ';
    out.precision(17);
    out << n.default_left << ' ' << n.weight << ' ' << n.gain << ' '
        << n.n_instances << ' ' << n.sum_g << ' ' << n.sum_h << "\n";
  }
}

Tree Tree::deserialize(std::istream& in) {
  std::size_t count = 0;
  if (!(in >> count) || count == 0) {
    throw std::runtime_error("tree deserialize: bad node count");
  }
  Tree t;
  t.nodes_.assign(count, TreeNode{});
  for (auto& n : t.nodes_) {
    if (!(in >> n.left >> n.right >> n.attr >> n.split_value >>
          n.default_left >> n.weight >> n.gain >> n.n_instances >> n.sum_g >>
          n.sum_h)) {
      throw std::runtime_error("tree deserialize: truncated node data");
    }
  }
  return t;
}

}  // namespace gbdt
