// Public facade: a trained GBDT model — train on a simulated device, predict
// on host or device, save/load as text.
#pragma once

#include <string>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/trainer.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

/// How to rank features (XGBoost-compatible notions).
enum class ImportanceKind {
  kGain,        // total split gain contributed by the feature
  kCover,       // total instances routed through the feature's splits
  kSplitCount,  // number of splits using the feature
};

/// Validation metric trace from train_with_validation.  With the default
/// eval_freq = 1 every trained tree is scored; larger eval_freq scores every
/// eval_freq-th tree (plus the last), and eval_iteration records which.
struct ValidationHistory {
  std::string metric_name;            // "rmse", "error", or "ndcg@k"
  std::vector<double> metric;         // one entry per evaluated round
  std::vector<int> eval_iteration;    // tree index of each evaluated round
  int best_iteration = -1;            // tree index with the best metric
  bool stopped_early = false;
};

class GBDTModel {
 public:
  GBDTModel() = default;
  GBDTModel(GBDTParam param, std::vector<Tree> trees, double base_score,
            std::int64_t n_attributes = 0)
      : param_(std::move(param)),
        trees_(std::move(trees)),
        base_score_(base_score),
        n_attributes_(n_attributes) {}

  /// Trains with GPU-GBDT on `dev` and returns the model plus the report.
  [[nodiscard]] static std::pair<GBDTModel, TrainReport> train(
      device::Device& dev, const data::Dataset& ds, const GBDTParam& param);

  /// Trains while tracking a validation metric (rmse for regression, error
  /// rate for logistic loss, NDCG@k for the ranking objective — the
  /// validation set then needs query offsets).  param.eval_freq controls how
  /// often the metric is scored.  When early_stopping_rounds > 0, boosting
  /// stops once the metric has not improved for that many consecutive
  /// evaluations and the forest is truncated to the best iteration.
  [[nodiscard]] static std::tuple<GBDTModel, TrainReport, ValidationHistory>
  train_with_validation(device::Device& dev, const data::Dataset& train_set,
                        const data::Dataset& validation,
                        const GBDTParam& param,
                        int early_stopping_rounds = 0);

  [[nodiscard]] const std::vector<Tree>& trees() const { return trees_; }
  [[nodiscard]] const GBDTParam& param() const { return param_; }
  [[nodiscard]] double base_score() const { return base_score_; }

  /// Raw score of one sparse instance (attrs sorted ascending).
  [[nodiscard]] double predict_one(std::span<const data::Entry> x) const;

  /// Raw scores on the host, one per instance.
  [[nodiscard]] std::vector<double> predict(const data::Dataset& ds) const;

  /// Raw scores computed with the device prediction kernel (paper III-D).
  [[nodiscard]] std::vector<double> predict_device(
      device::Device& dev, const data::Dataset& ds) const;

  /// Applies the loss transform (e.g. sigmoid) to raw scores.
  [[nodiscard]] std::vector<double> transform_scores(
      std::span<const double> raw) const;

  /// Importance score per attribute (length n_attributes()); scores sum to
  /// 1 when any splits exist.
  [[nodiscard]] std::vector<double> feature_importance(
      ImportanceKind kind = ImportanceKind::kGain) const;

  [[nodiscard]] std::int64_t n_attributes() const { return n_attributes_; }

  void save(const std::string& path) const;
  [[nodiscard]] static GBDTModel load(const std::string& path);

 private:
  GBDTParam param_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;
  std::int64_t n_attributes_ = 0;
};

}  // namespace gbdt
