// Device-side histogram trainer (see core/trainer_hist.h).
//
// Per tree: gradients are quantized to int64 fixed point (hist::GradQuant),
// then each level runs
//
//   hist_build      per-(node, attribute) gradient histograms over the
//                   bin-index matrix, privatized per block and merged
//                   deterministically — and only for the *smaller* sibling
//                   of each pair;
//   hist_subtract   the larger sibling's histogram derived as
//                   parent - sibling (exact in int64, so bitwise identical
//                   to accumulating it directly — self-checked under
//                   GBDT_CHECK_INVARIANTS);
//   hist_find_split the PR 5 fused scan + gain/argmax machinery over bins
//                   instead of sorted values: segment s = slot * n_attr +
//                   attr holds exactly n_bins cells, so the histogram buffer
//                   itself is the segment layout;
//   hist_split_node instances of splitting nodes binary-search their CSR row
//                   for the split attribute and compare bin indices.
//
// All per-level scratch comes from the TrainState workspace arena; the only
// steady-state device allocations are the persistent per-instance buffers.
#include "core/trainer_hist.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer_detail.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/fused_split.h"
#include "primitives/reduce.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"
#include "testing/invariants.h"

namespace gbdt {

using detail::ActiveNode;
using detail::TrainState;
using device::Device;

namespace {

/// Scoped accumulation of modeled device seconds into a phase counter.
class PhaseScope {
 public:
  PhaseScope(Device& dev, double& sink)
      : dev_(dev), sink_(sink), start_(dev.elapsed_seconds()) {}
  ~PhaseScope() { sink_ += dev_.elapsed_seconds() - start_; }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Device& dev_;
  double& sink_;
  double start_;
};

void finalize_leaf(TrainState& st, const ActiveNode& node) {
  auto& tn = st.tree->node(node.tree_node);
  tn.weight =
      st.param.eta * leaf_weight(node.sum_g, node.sum_h, st.param.lambda);
  tn.n_instances = node.count;
  tn.sum_g = node.sum_g;
  tn.sum_h = node.sum_h;
}

/// One level's accumulation plan: which nodes get their histogram built
/// directly (the smaller sibling of each pair, or every slot on the first
/// level) and which are derived by subtraction.
struct AccumPlan {
  std::vector<std::int32_t> accum_of_node;  // tree-node id -> accum index
  std::vector<std::int32_t> dest_slot;      // accum index -> level slot
  std::vector<std::int32_t> der_parent;     // per derived: parent slot (prev level)
  std::vector<std::int32_t> der_sibling;    // per derived: accumulated sibling slot
  std::vector<std::int32_t> der_derived;    // per derived: slot to fill
};

AccumPlan make_accum_plan(const TrainState& st,
                          const std::vector<std::int32_t>& pair_parent_slot) {
  AccumPlan plan;
  plan.accum_of_node.assign(
      static_cast<std::size_t>(st.current_tree_nodes()), -1);
  if (pair_parent_slot.empty()) {
    // First level (or no parent histograms): accumulate every slot.
    for (std::size_t s = 0; s < st.active.size(); ++s) {
      plan.accum_of_node[static_cast<std::size_t>(st.active[s].tree_node)] =
          static_cast<std::int32_t>(plan.dest_slot.size());
      plan.dest_slot.push_back(static_cast<std::int32_t>(s));
    }
    return plan;
  }
  // Deeper levels: active nodes arrive in sibling pairs (slots 2k, 2k+1);
  // accumulate the smaller child, derive the other from the parent.
  for (std::size_t k = 0; k < pair_parent_slot.size(); ++k) {
    const std::size_t l = 2 * k;
    const std::size_t r = 2 * k + 1;
    const std::size_t small =
        st.active[l].count <= st.active[r].count ? l : r;
    const std::size_t big = small == l ? r : l;
    plan.accum_of_node[static_cast<std::size_t>(st.active[small].tree_node)] =
        static_cast<std::int32_t>(plan.dest_slot.size());
    plan.dest_slot.push_back(static_cast<std::int32_t>(small));
    plan.der_parent.push_back(pair_parent_slot[k]);
    plan.der_sibling.push_back(static_cast<std::int32_t>(small));
    plan.der_derived.push_back(static_cast<std::int32_t>(big));
  }
  return plan;
}

/// Bitwise self-check of the subtraction trick: re-accumulates every derived
/// slot directly and compares cell-by-cell.  Runs only under
/// GBDT_CHECK_INVARIANTS; with break_hist_subtraction armed it corrupts one
/// derived cell first, so the check must throw.
void verify_subtraction(TrainState& st, const BinnedMatrix& binned,
                        const device::DeviceBuffer<std::int64_t>& qg,
                        const device::DeviceBuffer<std::int64_t>& qh,
                        device::ArenaBuffer<hist::QGH>& hist_cur,
                        const AccumPlan& plan, int n_bins) {
  const std::int64_t cps = st.n_attr * n_bins;
  if (testing::fault_injection().break_hist_subtraction) {
    // Test-only corruption, injected host-side (not a modeled access).
    hist_cur[static_cast<std::size_t>(plan.der_derived[0]) *
             static_cast<std::size_t>(cps)]
        .g += 1;
  }
  const std::size_t n_derived = plan.der_derived.size();
  std::vector<std::int32_t> chk_accum(
      static_cast<std::size_t>(st.current_tree_nodes()), -1);
  std::vector<std::int32_t> chk_dest(n_derived);
  for (std::size_t k = 0; k < n_derived; ++k) {
    chk_accum[static_cast<std::size_t>(
        st.active[static_cast<std::size_t>(plan.der_derived[k])].tree_node)] =
        static_cast<std::int32_t>(k);
    chk_dest[k] = static_cast<std::int32_t>(k);
  }
  auto d_accum = detail::upload_pooled(st.dev, st.arena, chk_accum);
  auto d_dest = detail::upload_pooled(st.dev, st.arena, chk_dest);
  auto direct = st.arena.alloc<hist::QGH>(n_derived * static_cast<std::size_t>(cps));
  hist::build_histograms(st.dev, st.arena, binned.row_offsets.span(),
                         binned.entry_attr.span(), binned.entry_bin.span(),
                         qg.span(), qh.span(), st.node_of.span(),
                         d_accum.span(), d_dest.span(), st.n_attr, n_bins,
                         direct.span());
  for (std::size_t k = 0; k < n_derived; ++k) {
    const auto slot = static_cast<std::size_t>(plan.der_derived[k]);
    for (std::int64_t c = 0; c < cps; ++c) {
      const auto cu = static_cast<std::size_t>(c);
      const hist::QGH sub = hist_cur[slot * static_cast<std::size_t>(cps) + cu];
      const hist::QGH acc = direct[k * static_cast<std::size_t>(cps) + cu];
      if (!(sub == acc)) {
        throw testing::InvariantViolation(
            "hist_subtract: derived histogram differs from direct "
            "accumulation (slot " +
            std::to_string(slot) + ", attr " + std::to_string(c / n_bins) +
            ", bin " + std::to_string(c % n_bins) + ")");
      }
    }
  }
}

}  // namespace

BinnedMatrix build_binned_matrix(Device& dev, const data::Dataset& ds,
                                 int n_bins) {
  BinnedMatrix m;
  m.n_inst = ds.n_instances();
  m.n_attr = ds.n_attributes();
  m.n_bins = n_bins;
  // Per-attribute value columns (present entries only), then quantile cuts.
  std::vector<std::vector<float>> columns(static_cast<std::size_t>(m.n_attr));
  for (const data::Entry& e : ds.entries()) {
    columns[static_cast<std::size_t>(e.attr)].push_back(e.value);
  }
  m.cuts.reserve(columns.size());
  for (auto& col : columns) {
    m.cuts.push_back(hist::build_cuts(std::move(col), n_bins));
  }
  // Rewrite the entry stream as (attr, bin) pairs and upload.
  const auto& entries = ds.entries();
  std::vector<std::int32_t> attr(entries.size());
  std::vector<std::uint16_t> bin(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    attr[k] = entries[k].attr;
    bin[k] = static_cast<std::uint16_t>(
        m.cuts[static_cast<std::size_t>(entries[k].attr)].bin_of(
            entries[k].value));
  }
  m.row_offsets = dev.to_device<std::int64_t>(ds.row_offsets());
  m.entry_attr = dev.to_device<std::int32_t>(attr);
  m.entry_bin = dev.to_device<std::uint16_t>(bin);
  return m;
}

GpuHistTrainer::GpuHistTrainer(Device& dev, GBDTParam param)
    : dev_(dev), param_(std::move(param)), loss_(make_loss(param_.loss)) {
  if (param_.depth < 1) throw std::invalid_argument("depth must be >= 1");
  if (param_.n_trees < 1) throw std::invalid_argument("n_trees must be >= 1");
  if (param_.gamma < 0) throw std::invalid_argument("gamma must be >= 0");
  if (param_.lambda < 0) throw std::invalid_argument("lambda must be >= 0");
  if (param_.n_bins < 1 || param_.n_bins > 4096) {
    throw std::invalid_argument("n_bins must be in [1, 4096]");
  }
}

TrainReport GpuHistTrainer::train(const data::Dataset& ds) {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::ScopedSpan train_span("train");
  static obs::Counter& trees_trained =
      obs::Registry::global().counter("gbdt_trees_trained_total");
  static obs::Counter& levels_grown =
      obs::Registry::global().counter("gbdt_levels_grown_total");
  static obs::Counter& subtractions =
      obs::Registry::global().counter("gbdt_hist_subtractions_total");
  TrainReport report;
  report.base_score = param_.base_score;

  TrainState st(dev_, param_, *loss_);
  st.n_inst = ds.n_instances();
  st.n_attr = ds.n_attributes();
  if (st.n_inst == 0) throw std::invalid_argument("empty dataset");

  const int n_bins = param_.n_bins;
  const std::int64_t cps = st.n_attr * n_bins;  // cells per node slot
  {
    // Feasibility: the widest level's current + parent histograms must fit
    // comfortably (same guard shape as the CPU baseline).
    const double widest = std::ldexp(
        1.0, std::min(param_.depth - 1, 24));
    const double hist_bytes =
        2.0 * widest * static_cast<double>(cps) * sizeof(hist::QGH);
    if (hist_bytes >
        static_cast<double>(dev_.config().global_mem_bytes) / 4.0) {
      throw std::invalid_argument(
          "hist trainer: per-level histograms would exceed a quarter of "
          "device memory; reduce depth or n_bins");
    }
  }

  dev_.allocator().reset_peak();

  // ---- quantize the features (counted as transfer) ------------------------
  BinnedMatrix binned;
  {
    PhaseScope phase(dev_, report.modeled.transfer);
    obs::ScopedSpan span("hist_quantize");
    binned = build_binned_matrix(dev_, ds, n_bins);
  }

  // ---- persistent per-instance state --------------------------------------
  objective::RoundDriver round_driver(dev_, param_, ds);
  auto d_labels = dev_.to_device<float>(ds.labels());
  st.grad = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.hess = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.y_pred = dev_.alloc<float>(static_cast<std::size_t>(st.n_inst));
  st.node_of = dev_.alloc<std::int32_t>(static_cast<std::size_t>(st.n_inst));
  prim::fill(dev_, st.y_pred, static_cast<float>(param_.base_score));
  auto abs_scratch = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  auto qg = dev_.alloc<std::int64_t>(static_cast<std::size_t>(st.n_inst));
  auto qh = dev_.alloc<std::int64_t>(static_cast<std::size_t>(st.n_inst));

  // ---- boosting loop -------------------------------------------------------
  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));
  for (int t = 0; t < param_.n_trees; ++t) {
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      if (t > 0) detail::update_predictions_smart(st, report.trees.back());
      round_driver.begin_round(st, d_labels, t);
    }

    // Quantize this tree's gradients so histogram accumulation is exact
    // integer arithmetic (counted with the gradient phase).
    hist::GradQuant quant_g;
    hist::GradQuant quant_h;
    hist::QGH rootq;
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      prim::transform(
          dev_, st.grad, abs_scratch, [](double v) { return std::abs(v); },
          "hist_abs");
      quant_g = hist::make_grad_quant(
          prim::arg_max<double>(dev_, abs_scratch, "hist_max_abs").value,
          st.n_inst);
      prim::transform(
          dev_, st.hess, abs_scratch, [](double v) { return std::abs(v); },
          "hist_abs");
      quant_h = hist::make_grad_quant(
          prim::arg_max<double>(dev_, abs_scratch, "hist_max_abs").value,
          st.n_inst);
      const double sg = quant_g.scale;
      const double sh = quant_h.scale;
      prim::transform(
          dev_, st.grad, qg, [sg](double v) { return std::llround(v * sg); },
          "hist_quantize_g");
      prim::transform(
          dev_, st.hess, qh, [sh](double v) { return std::llround(v * sh); },
          "hist_quantize_h");
      rootq = hist::QGH{
          prim::reduce_sum<std::int64_t>(dev_, qg, "hist_root_sum_g"),
          prim::reduce_sum<std::int64_t>(dev_, qh, "hist_root_sum_h"),
          st.n_inst};
    }
    prim::fill(dev_, st.node_of, std::int32_t{0});

    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    st.tree = &tree;

    ActiveNode root;
    root.tree_node = 0;
    root.sum_g = static_cast<double>(rootq.g) * quant_g.inv;
    root.sum_h = static_cast<double>(rootq.h) * quant_h.inv;
    root.count = st.n_inst;
    st.active.assign(1, root);
    std::vector<hist::QGH> slotq{rootq};  // per-slot quantized node stats

    device::ArenaBuffer<hist::QGH> hist_prev;
    // pair_parent_slot[k]: previous-level slot of the parent of the sibling
    // pair occupying current slots (2k, 2k + 1).
    std::vector<std::int32_t> pair_parent_slot;

    for (int level = 0; level < param_.depth && !st.active.empty(); ++level) {
      levels_grown.inc();
      const std::int64_t n_slots = st.n_active();
      const std::int64_t n_seg = st.n_seg();
      auto hist_cur = st.arena.alloc<hist::QGH>(
          static_cast<std::size_t>(n_slots * cps));

      const AccumPlan accum = make_accum_plan(st, pair_parent_slot);
      {
        PhaseScope phase(dev_, report.modeled.find_split);
        obs::ScopedSpan span("hist_build");
        auto d_accum =
            detail::upload_pooled(dev_, st.arena, accum.accum_of_node);
        auto d_dest = detail::upload_pooled(dev_, st.arena, accum.dest_slot);
        hist::build_histograms(dev_, st.arena, binned.row_offsets.span(),
                               binned.entry_attr.span(),
                               binned.entry_bin.span(), qg.span(), qh.span(),
                               st.node_of.span(), d_accum.span(),
                               d_dest.span(), st.n_attr, n_bins,
                               hist_cur.span());
      }
      if (!accum.der_derived.empty()) {
        {
          PhaseScope phase(dev_, report.modeled.find_split);
          obs::ScopedSpan span("hist_subtract");
          auto d_parent =
              detail::upload_pooled(dev_, st.arena, accum.der_parent);
          auto d_sibling =
              detail::upload_pooled(dev_, st.arena, accum.der_sibling);
          auto d_derived =
              detail::upload_pooled(dev_, st.arena, accum.der_derived);
          hist::subtract_histograms(dev_, hist_prev.span(), hist_cur.span(),
                                    d_parent.span(), d_sibling.span(),
                                    d_derived.span(), cps);
          subtractions.inc(accum.der_derived.size());
        }
        if (testing::invariants_enabled()) {
          verify_subtraction(st, binned, qg, qh, hist_cur, accum, n_bins);
        }
      }

      // ---- find the best bin boundary per node over the histograms --------
      std::vector<detail::BestSplit> best(static_cast<std::size_t>(n_slots));
      std::vector<hist::QGH> child_q(static_cast<std::size_t>(2 * n_slots));
      {
        PhaseScope phase(dev_, report.modeled.find_split);
        obs::ScopedSpan span("hist_find_split");
        auto seg_offsets = detail::device_node_offsets(st, n_seg, n_bins);
        st.keys = st.arena.alloc<std::int32_t>(
            static_cast<std::size_t>(n_slots * cps));
        prim::set_keys(dev_, seg_offsets, st.keys, st.segs_per_block(n_seg));
        auto scan = st.arena.alloc<hist::QGH>(
            static_cast<std::size_t>(n_slots * cps));
        auto seg_tot =
            st.arena.alloc<hist::QGH>(static_cast<std::size_t>(n_seg));
        auto hc = hist_cur.span();
        prim::fused_gather_scan_totals(
            dev_, st.arena, st.keys, scan, seg_tot,
            [hc](device::BlockCtx& b, std::int64_t i) {
              b.reads(hc, i);
              b.mem_coalesced(sizeof(hist::QGH));
              return hc[static_cast<std::size_t>(i)];
            },
            "hist_scan");
        auto d_slotq = detail::upload_pooled(dev_, st.arena, slotq);
        auto best_seg_val =
            st.arena.alloc<double>(static_cast<std::size_t>(n_seg));
        auto best_seg_idx =
            st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_seg));
        auto best_seg_dir =
            st.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n_seg));
        const double inv_g = quant_g.inv;
        const double inv_h = quant_h.inv;
        const double lambda = param_.lambda;
        const std::int64_t n_attr = st.n_attr;
        auto sc = scan.span();
        auto tot = seg_tot.span();
        auto sq = d_slotq.span();
        const auto fm = st.feature_mask;
        prim::fused_gain_argmax(
            dev_, seg_offsets, best_seg_val, best_seg_idx, best_seg_dir,
            st.segs_per_block(n_seg),
            [hc, sc, tot, sq, fm, n_attr, inv_g, inv_h, lambda](
                device::BlockCtx& b, std::int64_t s, std::int64_t e,
                std::int64_t seg_lo, std::int64_t /*seg_hi*/) {
              const auto u = static_cast<std::size_t>(e);
              b.reads(hc, e);
              b.reads(sc, e);
              b.mem_coalesced(2 * sizeof(hist::QGH));
              if (e == seg_lo) {
                // Segment-invariant loads, once per segment.
                b.reads(tot, s);
                b.reads(sq, s / n_attr);
                if (!fm.empty()) b.reads(fm, s % n_attr);
                b.mem_irregular(1);
              }
              // Attributes outside this tree's feature bag yield no splits
              // (mask, not compaction: the segment layout is untouched).
              if (!fm.empty() && fm[static_cast<std::size_t>(s % n_attr)] == 0) {
                return prim::GainDir{};
              }
              // Empty bins carry no boundary (mirrors the CPU baseline's
              // skip); a zero-gain suppressed cell loses to any real split.
              if (hc[u].cnt == 0) return prim::GainDir{};
              const hist::QGH node = sq[static_cast<std::size_t>(s / n_attr)];
              const hist::QGH pres = tot[static_cast<std::size_t>(s)];
              const hist::QGH left = sc[u];
              const std::int64_t miss = node.cnt - pres.cnt;
              b.flop(24);
              double gain_r = 0.0;  // missing values to the right child
              if (left.cnt > 0 && node.cnt - left.cnt > 0) {
                gain_r = split_gain(
                    static_cast<double>(left.g) * inv_g,
                    static_cast<double>(left.h) * inv_h,
                    static_cast<double>(node.g - left.g) * inv_g,
                    static_cast<double>(node.h - left.h) * inv_h, lambda);
              }
              double gain_l = 0.0;  // missing values folded into the left
              if (miss > 0 && pres.cnt - left.cnt > 0) {
                const std::int64_t lg = left.g + (node.g - pres.g);
                const std::int64_t lh = left.h + (node.h - pres.h);
                gain_l = split_gain(static_cast<double>(lg) * inv_g,
                                    static_cast<double>(lh) * inv_h,
                                    static_cast<double>(node.g - lg) * inv_g,
                                    static_cast<double>(node.h - lh) * inv_h,
                                    lambda);
              }
              if (gain_l > gain_r) return prim::GainDir{gain_l, 1};
              return prim::GainDir{gain_r, 0};
            },
            "hist_gain_argmax");
        auto node_offs = detail::device_node_offsets(st, n_slots, st.n_attr);
        auto best_node_val =
            st.arena.alloc<double>(static_cast<std::size_t>(n_slots));
        auto best_node_idx =
            st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_slots));
        prim::segmented_arg_max(dev_, best_seg_val, node_offs, best_node_val,
                                best_node_idx, 1, "hist_node_best");

        // Winner assembly: the scalar buffer reads below are host glue over
        // the simulated device (same idiom as the exact trainer).
        for (std::int64_t s = 0; s < n_slots; ++s) {
          const auto su = static_cast<std::size_t>(s);
          const std::int64_t seg = best_node_idx[su];
          if (seg < 0) continue;
          const std::int64_t cell =
              best_seg_idx[static_cast<std::size_t>(seg)];
          if (cell < 0) continue;
          const double gain = best_node_val[su];
          if (!(gain > 0.0)) continue;
          const auto attr = static_cast<std::int32_t>(seg % st.n_attr);
          const std::int64_t bin = cell - seg * n_bins;
          const bool dir = best_seg_dir[static_cast<std::size_t>(seg)] != 0;
          hist::QGH lq = scan[static_cast<std::size_t>(cell)];
          const hist::QGH pres = seg_tot[static_cast<std::size_t>(seg)];
          const hist::QGH node = slotq[su];
          if (dir) lq += node - pres;  // missing values go left
          const hist::QGH rq = node - lq;
          auto& bs = best[su];
          bs.valid = true;
          bs.gain = gain;
          bs.attr = attr;
          bs.split_value = binned.cuts[static_cast<std::size_t>(attr)]
                               .bin_low[static_cast<std::size_t>(bin)];
          bs.default_left = dir;
          bs.seg = seg;
          bs.pos = bin;
          bs.left = ActiveNode{-1, static_cast<double>(lq.g) * quant_g.inv,
                               static_cast<double>(lq.h) * quant_h.inv,
                               lq.cnt};
          bs.right = ActiveNode{-1, static_cast<double>(rq.g) * quant_g.inv,
                                static_cast<double>(rq.h) * quant_h.inv,
                                rq.cnt};
          child_q[2 * su] = lq;
          child_q[2 * su + 1] = rq;
        }
      }

      // ---- host-side split decisions (Algorithm 1 lines 14-23) ------------
      std::vector<hist::HistSplitCmd> cmds(static_cast<std::size_t>(n_slots));
      std::vector<ActiveNode> next_active;
      std::vector<hist::QGH> next_slotq;
      std::vector<std::int32_t> next_pair_parent;
      std::vector<std::pair<std::int32_t, std::int64_t>> expected_counts;
      for (std::int64_t s = 0; s < n_slots; ++s) {
        const auto su = static_cast<std::size_t>(s);
        const ActiveNode& node = st.active[su];
        const detail::BestSplit& bs = best[su];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        if (bs.valid && bs.gain > param_.gamma) {
          const auto [l, r] = tree.split(node.tree_node, bs.attr,
                                         bs.split_value, bs.default_left,
                                         bs.gain);
          cmds[su] = hist::HistSplitCmd{
              bs.attr, static_cast<std::int32_t>(bs.pos), l, r,
              static_cast<std::uint8_t>(bs.default_left ? 1 : 0)};
          ActiveNode left = bs.left;
          left.tree_node = l;
          ActiveNode right = bs.right;
          right.tree_node = r;
          next_active.push_back(left);
          next_active.push_back(right);
          next_slotq.push_back(child_q[2 * su]);
          next_slotq.push_back(child_q[2 * su + 1]);
          next_pair_parent.push_back(static_cast<std::int32_t>(s));
          expected_counts.emplace_back(l, left.count);
          expected_counts.emplace_back(r, right.count);
        } else {
          finalize_leaf(st, node);
        }
      }
      if (next_active.empty()) {
        st.active.clear();
        break;
      }

      {
        PhaseScope phase(dev_, report.modeled.split_node);
        obs::ScopedSpan span("hist_split_node");
        std::vector<std::int32_t> slot_of_node(
            static_cast<std::size_t>(tree.n_nodes()), -1);
        for (std::size_t s = 0; s < st.active.size(); ++s) {
          slot_of_node[static_cast<std::size_t>(st.active[s].tree_node)] =
              static_cast<std::int32_t>(s);
        }
        auto d_slot = detail::upload_pooled(dev_, st.arena, slot_of_node);
        auto d_cmds = detail::upload_pooled(dev_, st.arena, cmds);
        hist::update_positions(dev_, binned.row_offsets.span(),
                               binned.entry_attr.span(),
                               binned.entry_bin.span(), d_slot.span(),
                               d_cmds.span(), st.node_of.span());
      }
      if (testing::invariants_enabled()) {
        testing::check_instance_counts(st.node_of.span(), expected_counts,
                                       "hist_split_node");
      }

      hist_prev = std::move(hist_cur);
      pair_parent_slot = std::move(next_pair_parent);
      st.active = std::move(next_active);
      slotq = std::move(next_slotq);
    }

    // Depth limit reached: remaining active nodes become leaves.
    for (const ActiveNode& node : st.active) finalize_leaf(st, node);
    st.active.clear();

    if (testing::invariants_enabled()) {
      testing::check_leaf_map(st.node_of.span(), tree, ds, "hist_leaf_map");
    }
    trees_trained.inc();
  }

  // Fold the last tree into the scores and return them.
  {
    PhaseScope phase(dev_, report.modeled.gradients);
    obs::ScopedSpan span("gradient_compute");
    detail::update_predictions_smart(st, report.trees.back());
  }
  const auto final_pred = dev_.to_host(st.y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());

  report.peak_device_bytes = dev_.allocator().peak();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt
