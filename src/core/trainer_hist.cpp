// Device-side histogram trainer (see core/trainer_hist.h).
//
// Per tree: gradients are quantized to int64 fixed point (hist::GradQuant),
// then each level runs
//
//   hist_build      per-(node, attribute) gradient histograms over the
//                   bin-index matrix, privatized per block and merged
//                   deterministically — and only for the *smaller* sibling
//                   of each pair;
//   hist_subtract   the larger sibling's histogram derived as
//                   parent - sibling (exact in int64, so bitwise identical
//                   to accumulating it directly — self-checked under
//                   GBDT_CHECK_INVARIANTS);
//   hist_find_split the PR 5 fused scan + gain/argmax machinery over bins
//                   instead of sorted values: segment s = slot * n_attr +
//                   attr holds exactly n_bins cells, so the histogram buffer
//                   itself is the segment layout;
//   hist_split_node instances of splitting nodes binary-search their CSR row
//                   for the split attribute and compare bin indices.
//
// All per-level scratch comes from the TrainState workspace arena; the only
// steady-state device allocations are the persistent per-instance buffers.
//
// The steps live in HistGrower so the multi-GPU trainer can drive K growers
// in lockstep, merging histograms between build and subtract; the
// single-device train() below sequences them back-to-back, preserving the
// pre-refactor kernel order and span structure exactly.
#include "core/trainer_hist.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer_detail.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/fused_split.h"
#include "primitives/reduce.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"
#include "testing/invariants.h"

namespace gbdt {

using detail::ActiveNode;
using detail::TrainState;
using device::Device;

namespace {

/// Scoped accumulation of modeled device seconds into a phase counter.
class PhaseScope {
 public:
  PhaseScope(Device& dev, double& sink)
      : dev_(dev), sink_(sink), start_(dev.elapsed_seconds()) {}
  ~PhaseScope() { sink_ += dev_.elapsed_seconds() - start_; }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Device& dev_;
  double& sink_;
  double start_;
};

void finalize_leaf(TrainState& st, const ActiveNode& node) {
  auto& tn = st.tree->node(node.tree_node);
  tn.weight =
      st.param.eta * leaf_weight(node.sum_g, node.sum_h, st.param.lambda);
  tn.n_instances = node.count;
  tn.sum_g = node.sum_g;
  tn.sum_h = node.sum_h;
}

}  // namespace

std::vector<hist::BinCuts> build_hist_cuts(const data::Dataset& ds,
                                           int n_bins) {
  // Per-attribute value columns (present entries only), then quantile cuts.
  std::vector<std::vector<float>> columns(
      static_cast<std::size_t>(ds.n_attributes()));
  for (const data::Entry& e : ds.entries()) {
    columns[static_cast<std::size_t>(e.attr)].push_back(e.value);
  }
  std::vector<hist::BinCuts> cuts;
  cuts.reserve(columns.size());
  for (auto& col : columns) {
    cuts.push_back(hist::build_cuts(std::move(col), n_bins));
  }
  return cuts;
}

BinnedMatrix build_binned_matrix(Device& dev, const data::Dataset& ds,
                                 int n_bins,
                                 const std::vector<hist::BinCuts>& cuts) {
  BinnedMatrix m;
  m.n_inst = ds.n_instances();
  m.n_attr = ds.n_attributes();
  m.n_bins = n_bins;
  m.cuts = cuts;
  // Rewrite the entry stream as (attr, bin) pairs and upload.
  const auto& entries = ds.entries();
  std::vector<std::int32_t> attr(entries.size());
  std::vector<std::uint16_t> bin(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    attr[k] = entries[k].attr;
    bin[k] = static_cast<std::uint16_t>(
        m.cuts[static_cast<std::size_t>(entries[k].attr)].bin_of(
            entries[k].value));
  }
  m.row_offsets = dev.to_device<std::int64_t>(ds.row_offsets());
  m.entry_attr = dev.to_device<std::int32_t>(attr);
  m.entry_bin = dev.to_device<std::uint16_t>(bin);
  return m;
}

BinnedMatrix build_binned_matrix(Device& dev, const data::Dataset& ds,
                                 int n_bins) {
  return build_binned_matrix(dev, ds, n_bins, build_hist_cuts(ds, n_bins));
}

// ---------------------------------------------------------------------------
// HistGrower
// ---------------------------------------------------------------------------

HistGrower::HistGrower(Device& dev, const GBDTParam& param, TrainState& st,
                       const BinnedMatrix& binned, bool distributed)
    : dev_(dev), param_(param), st_(st), binned_(binned),
      distributed_(distributed), n_bins_(param.n_bins),
      cps_(st.n_attr * param.n_bins),
      abs_scratch_(dev.alloc<double>(static_cast<std::size_t>(st.n_inst))),
      qg_(dev.alloc<std::int64_t>(static_cast<std::size_t>(st.n_inst))),
      qh_(dev.alloc<std::int64_t>(static_cast<std::size_t>(st.n_inst))) {}

HistGrower::AbsMax HistGrower::local_abs_max() {
  AbsMax m;
  prim::transform(
      dev_, st_.grad, abs_scratch_, [](double v) { return std::abs(v); },
      "hist_abs");
  m.g = prim::arg_max<double>(dev_, abs_scratch_, "hist_max_abs").value;
  prim::transform(
      dev_, st_.hess, abs_scratch_, [](double v) { return std::abs(v); },
      "hist_abs");
  m.h = prim::arg_max<double>(dev_, abs_scratch_, "hist_max_abs").value;
  return m;
}

hist::QGH HistGrower::quantize(double max_abs_g, double max_abs_h,
                               std::int64_t global_n) {
  quant_g_ = hist::make_grad_quant(max_abs_g, global_n);
  quant_h_ = hist::make_grad_quant(max_abs_h, global_n);
  const double sg = quant_g_.scale;
  const double sh = quant_h_.scale;
  prim::transform(
      dev_, st_.grad, qg_, [sg](double v) { return std::llround(v * sg); },
      "hist_quantize_g");
  prim::transform(
      dev_, st_.hess, qh_, [sh](double v) { return std::llround(v * sh); },
      "hist_quantize_h");
  return hist::QGH{
      prim::reduce_sum<std::int64_t>(dev_, qg_, "hist_root_sum_g"),
      prim::reduce_sum<std::int64_t>(dev_, qh_, "hist_root_sum_h"),
      st_.n_inst};
}

void HistGrower::begin_tree(Tree& tree, const hist::QGH& global_root) {
  prim::fill(dev_, st_.node_of, std::int32_t{0});
  st_.tree = &tree;
  ActiveNode root;
  root.tree_node = 0;
  root.sum_g = static_cast<double>(global_root.g) * quant_g_.inv;
  root.sum_h = static_cast<double>(global_root.h) * quant_h_.inv;
  root.count = global_root.cnt;
  st_.active.assign(1, root);
  slotq_.assign(1, global_root);
  hist_prev_ = device::ArenaBuffer<hist::QGH>{};
  pair_parent_slot_.clear();
}

void HistGrower::make_accum_plan() {
  AccumPlan& plan = accum_;
  plan.accum_of_node.assign(
      static_cast<std::size_t>(st_.current_tree_nodes()), -1);
  plan.dest_slot.clear();
  plan.der_parent.clear();
  plan.der_sibling.clear();
  plan.der_derived.clear();
  if (pair_parent_slot_.empty()) {
    // First level (or no parent histograms): accumulate every slot.
    for (std::size_t s = 0; s < st_.active.size(); ++s) {
      plan.accum_of_node[static_cast<std::size_t>(st_.active[s].tree_node)] =
          static_cast<std::int32_t>(plan.dest_slot.size());
      plan.dest_slot.push_back(static_cast<std::int32_t>(s));
    }
    return;
  }
  // Deeper levels: active nodes arrive in sibling pairs (slots 2k, 2k+1);
  // accumulate the smaller child, derive the other from the parent.  Counts
  // are global in the multi-GPU path, so every shard picks the same sibling.
  for (std::size_t k = 0; k < pair_parent_slot_.size(); ++k) {
    const std::size_t l = 2 * k;
    const std::size_t r = 2 * k + 1;
    const std::size_t small =
        st_.active[l].count <= st_.active[r].count ? l : r;
    const std::size_t big = small == l ? r : l;
    plan.accum_of_node[static_cast<std::size_t>(st_.active[small].tree_node)] =
        static_cast<std::int32_t>(plan.dest_slot.size());
    plan.dest_slot.push_back(static_cast<std::int32_t>(small));
    plan.der_parent.push_back(pair_parent_slot_[k]);
    plan.der_sibling.push_back(static_cast<std::int32_t>(small));
    plan.der_derived.push_back(static_cast<std::int32_t>(big));
  }
}

void HistGrower::plan_level() {
  if (!distributed_) {
    static obs::Counter& levels_grown =
        obs::Registry::global().counter("gbdt_levels_grown_total");
    levels_grown.inc();
  }
  hist_cur_ = st_.arena.alloc<hist::QGH>(
      static_cast<std::size_t>(st_.n_active() * cps_));
  make_accum_plan();
}

void HistGrower::build_level() {
  auto d_accum = detail::upload_pooled(dev_, st_.arena, accum_.accum_of_node);
  auto d_dest = detail::upload_pooled(dev_, st_.arena, accum_.dest_slot);
  hist::build_histograms(dev_, st_.arena, binned_.row_offsets.span(),
                         binned_.entry_attr.span(), binned_.entry_bin.span(),
                         qg_.span(), qh_.span(), st_.node_of.span(),
                         d_accum.span(), d_dest.span(), st_.n_attr, n_bins_,
                         hist_cur_.span());
}

std::vector<std::span<hist::QGH>> HistGrower::accumulated_slots() {
  std::vector<std::span<hist::QGH>> out;
  out.reserve(accum_.dest_slot.size());
  auto hc = hist_cur_.span();
  for (const std::int32_t slot : accum_.dest_slot) {
    out.push_back(hc.subspan(
        static_cast<std::size_t>(slot) * static_cast<std::size_t>(cps_),
        static_cast<std::size_t>(cps_)));
  }
  return out;
}

bool HistGrower::has_derived() const { return !accum_.der_derived.empty(); }

void HistGrower::subtract_level() {
  if (!distributed_) {
    static obs::Counter& subtractions =
        obs::Registry::global().counter("gbdt_hist_subtractions_total");
    subtractions.inc(accum_.der_derived.size());
  }
  auto d_parent = detail::upload_pooled(dev_, st_.arena, accum_.der_parent);
  auto d_sibling = detail::upload_pooled(dev_, st_.arena, accum_.der_sibling);
  auto d_derived = detail::upload_pooled(dev_, st_.arena, accum_.der_derived);
  hist::subtract_histograms(dev_, hist_prev_.span(), hist_cur_.span(),
                            d_parent.span(), d_sibling.span(),
                            d_derived.span(), cps_);
}

/// Bitwise self-check of the subtraction trick: re-accumulates every derived
/// slot directly and compares cell-by-cell.  Runs only under
/// GBDT_CHECK_INVARIANTS on single-device growers (distributed shards hold
/// globally merged histograms a local re-accumulation cannot reproduce; the
/// fuzz oracle's bitwise mgpu_hist_vs_single leg covers that path); with
/// break_hist_subtraction armed it corrupts one derived cell first, so the
/// check must throw.
void HistGrower::maybe_verify_subtraction() {
  if (distributed_ || !testing::invariants_enabled()) return;
  if (accum_.der_derived.empty()) return;
  if (testing::fault_injection().break_hist_subtraction) {
    // Test-only corruption, injected host-side (not a modeled access).
    hist_cur_[static_cast<std::size_t>(accum_.der_derived[0]) *
              static_cast<std::size_t>(cps_)]
        .g += 1;
  }
  const std::size_t n_derived = accum_.der_derived.size();
  std::vector<std::int32_t> chk_accum(
      static_cast<std::size_t>(st_.current_tree_nodes()), -1);
  std::vector<std::int32_t> chk_dest(n_derived);
  for (std::size_t k = 0; k < n_derived; ++k) {
    chk_accum[static_cast<std::size_t>(
        st_.active[static_cast<std::size_t>(accum_.der_derived[k])]
            .tree_node)] = static_cast<std::int32_t>(k);
    chk_dest[k] = static_cast<std::int32_t>(k);
  }
  auto d_accum = detail::upload_pooled(st_.dev, st_.arena, chk_accum);
  auto d_dest = detail::upload_pooled(st_.dev, st_.arena, chk_dest);
  auto direct =
      st_.arena.alloc<hist::QGH>(n_derived * static_cast<std::size_t>(cps_));
  hist::build_histograms(st_.dev, st_.arena, binned_.row_offsets.span(),
                         binned_.entry_attr.span(), binned_.entry_bin.span(),
                         qg_.span(), qh_.span(), st_.node_of.span(),
                         d_accum.span(), d_dest.span(), st_.n_attr, n_bins_,
                         direct.span());
  for (std::size_t k = 0; k < n_derived; ++k) {
    const auto slot = static_cast<std::size_t>(accum_.der_derived[k]);
    for (std::int64_t c = 0; c < cps_; ++c) {
      const auto cu = static_cast<std::size_t>(c);
      const hist::QGH sub =
          hist_cur_[slot * static_cast<std::size_t>(cps_) + cu];
      const hist::QGH acc = direct[k * static_cast<std::size_t>(cps_) + cu];
      if (!(sub == acc)) {
        throw testing::InvariantViolation(
            "hist_subtract: derived histogram differs from direct "
            "accumulation (slot " +
            std::to_string(slot) + ", attr " + std::to_string(c / n_bins_) +
            ", bin " + std::to_string(c % n_bins_) + ")");
      }
    }
  }
}

void HistGrower::prepare_offsets() {
  seg_offsets_ = detail::device_node_offsets(st_, st_.n_seg(), n_bins_);
  st_.keys = st_.arena.alloc<std::int32_t>(
      static_cast<std::size_t>(st_.n_active() * cps_));
}

void HistGrower::run_set_keys(int stream) {
  prim::set_keys(dev_, seg_offsets_, st_.keys,
                 st_.segs_per_block(st_.n_seg()), stream);
}

void HistGrower::find_level() {
  const std::int64_t n_slots = st_.n_active();
  const std::int64_t n_seg = st_.n_seg();
  best_.assign(static_cast<std::size_t>(n_slots), detail::BestSplit{});
  child_q_.assign(static_cast<std::size_t>(2 * n_slots), hist::QGH{});
  auto scan =
      st_.arena.alloc<hist::QGH>(static_cast<std::size_t>(n_slots * cps_));
  auto seg_tot = st_.arena.alloc<hist::QGH>(static_cast<std::size_t>(n_seg));
  auto hc = hist_cur_.span();
  prim::fused_gather_scan_totals(
      dev_, st_.arena, st_.keys, scan, seg_tot,
      [hc](device::BlockCtx& b, std::int64_t i) {
        b.reads(hc, i);
        b.mem_coalesced(sizeof(hist::QGH));
        return hc[static_cast<std::size_t>(i)];
      },
      "hist_scan");
  auto d_slotq = detail::upload_pooled(dev_, st_.arena, slotq_);
  auto best_seg_val = st_.arena.alloc<double>(static_cast<std::size_t>(n_seg));
  auto best_seg_idx =
      st_.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_seg));
  auto best_seg_dir =
      st_.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n_seg));
  const double inv_g = quant_g_.inv;
  const double inv_h = quant_h_.inv;
  const double lambda = param_.lambda;
  const std::int64_t n_attr = st_.n_attr;
  const int n_bins = n_bins_;
  auto sc = scan.span();
  auto tot = seg_tot.span();
  auto sq = d_slotq.span();
  const auto fm = st_.feature_mask;
  prim::fused_gain_argmax(
      dev_, seg_offsets_, best_seg_val, best_seg_idx, best_seg_dir,
      st_.segs_per_block(n_seg),
      [hc, sc, tot, sq, fm, n_attr, inv_g, inv_h, lambda](
          device::BlockCtx& b, std::int64_t s, std::int64_t e,
          std::int64_t seg_lo, std::int64_t /*seg_hi*/) {
        const auto u = static_cast<std::size_t>(e);
        b.reads(hc, e);
        b.reads(sc, e);
        b.mem_coalesced(2 * sizeof(hist::QGH));
        if (e == seg_lo) {
          // Segment-invariant loads, once per segment.
          b.reads(tot, s);
          b.reads(sq, s / n_attr);
          if (!fm.empty()) b.reads(fm, s % n_attr);
          b.mem_irregular(1);
        }
        // Attributes outside this tree's feature bag yield no splits
        // (mask, not compaction: the segment layout is untouched).
        if (!fm.empty() && fm[static_cast<std::size_t>(s % n_attr)] == 0) {
          return prim::GainDir{};
        }
        // Empty bins carry no boundary (mirrors the CPU baseline's
        // skip); a zero-gain suppressed cell loses to any real split.
        if (hc[u].cnt == 0) return prim::GainDir{};
        const hist::QGH node = sq[static_cast<std::size_t>(s / n_attr)];
        const hist::QGH pres = tot[static_cast<std::size_t>(s)];
        const hist::QGH left = sc[u];
        const std::int64_t miss = node.cnt - pres.cnt;
        b.flop(24);
        double gain_r = 0.0;  // missing values to the right child
        if (left.cnt > 0 && node.cnt - left.cnt > 0) {
          gain_r = split_gain(
              static_cast<double>(left.g) * inv_g,
              static_cast<double>(left.h) * inv_h,
              static_cast<double>(node.g - left.g) * inv_g,
              static_cast<double>(node.h - left.h) * inv_h, lambda);
        }
        double gain_l = 0.0;  // missing values folded into the left
        if (miss > 0 && pres.cnt - left.cnt > 0) {
          const std::int64_t lg = left.g + (node.g - pres.g);
          const std::int64_t lh = left.h + (node.h - pres.h);
          gain_l = split_gain(static_cast<double>(lg) * inv_g,
                              static_cast<double>(lh) * inv_h,
                              static_cast<double>(node.g - lg) * inv_g,
                              static_cast<double>(node.h - lh) * inv_h,
                              lambda);
        }
        if (gain_l > gain_r) return prim::GainDir{gain_l, 1};
        return prim::GainDir{gain_r, 0};
      },
      "hist_gain_argmax");
  auto node_offs = detail::device_node_offsets(st_, n_slots, st_.n_attr);
  auto best_node_val =
      st_.arena.alloc<double>(static_cast<std::size_t>(n_slots));
  auto best_node_idx =
      st_.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_slots));
  prim::segmented_arg_max(dev_, best_seg_val, node_offs, best_node_val,
                          best_node_idx, 1, "hist_node_best");

  // Winner assembly: the scalar buffer reads below are host glue over the
  // simulated device (same idiom as the exact trainer).  Inputs are the
  // merged histograms and global slot stats, so every shard computes the
  // same winners bit for bit.
  for (std::int64_t s = 0; s < n_slots; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const std::int64_t seg = best_node_idx[su];
    if (seg < 0) continue;
    const std::int64_t cell = best_seg_idx[static_cast<std::size_t>(seg)];
    if (cell < 0) continue;
    const double gain = best_node_val[su];
    if (!(gain > 0.0)) continue;
    const auto attr = static_cast<std::int32_t>(seg % st_.n_attr);
    const std::int64_t bin = cell - seg * n_bins;
    const bool dir = best_seg_dir[static_cast<std::size_t>(seg)] != 0;
    hist::QGH lq = scan[static_cast<std::size_t>(cell)];
    const hist::QGH pres = seg_tot[static_cast<std::size_t>(seg)];
    const hist::QGH node = slotq_[su];
    if (dir) lq += node - pres;  // missing values go left
    const hist::QGH rq = node - lq;
    auto& bs = best_[su];
    bs.valid = true;
    bs.gain = gain;
    bs.attr = attr;
    bs.split_value = binned_.cuts[static_cast<std::size_t>(attr)]
                         .bin_low[static_cast<std::size_t>(bin)];
    bs.default_left = dir;
    bs.seg = seg;
    bs.pos = bin;
    bs.left = ActiveNode{-1, static_cast<double>(lq.g) * quant_g_.inv,
                         static_cast<double>(lq.h) * quant_h_.inv, lq.cnt};
    bs.right = ActiveNode{-1, static_cast<double>(rq.g) * quant_g_.inv,
                          static_cast<double>(rq.h) * quant_h_.inv, rq.cnt};
    child_q_[2 * su] = lq;
    child_q_[2 * su + 1] = rq;
  }
}

HistGrower::LevelDecision HistGrower::decide_level() {
  // Host-side split decisions (Algorithm 1 lines 14-23).  Mutates the shared
  // tree, so the multi-GPU trainer runs this on exactly one shard.
  const std::int64_t n_slots = st_.n_active();
  Tree& tree = *st_.tree;
  LevelDecision d;
  d.cmds.assign(static_cast<std::size_t>(n_slots), hist::HistSplitCmd{});
  for (std::int64_t s = 0; s < n_slots; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const ActiveNode& node = st_.active[su];
    const detail::BestSplit& bs = best_[su];
    auto& tn = tree.node(node.tree_node);
    tn.n_instances = node.count;
    tn.sum_g = node.sum_g;
    tn.sum_h = node.sum_h;
    if (bs.valid && bs.gain > param_.gamma) {
      const auto [l, r] = tree.split(node.tree_node, bs.attr, bs.split_value,
                                     bs.default_left, bs.gain);
      d.cmds[su] = hist::HistSplitCmd{
          bs.attr, static_cast<std::int32_t>(bs.pos), l, r,
          static_cast<std::uint8_t>(bs.default_left ? 1 : 0)};
      ActiveNode left = bs.left;
      left.tree_node = l;
      ActiveNode right = bs.right;
      right.tree_node = r;
      d.next_active.push_back(left);
      d.next_active.push_back(right);
      d.next_slotq.push_back(child_q_[2 * su]);
      d.next_slotq.push_back(child_q_[2 * su + 1]);
      d.next_pair_parent.push_back(static_cast<std::int32_t>(s));
      d.expected_counts.emplace_back(l, left.count);
      d.expected_counts.emplace_back(r, right.count);
    } else {
      finalize_leaf(st_, node);
    }
  }
  return d;
}

void HistGrower::apply_level(const LevelDecision& d) {
  // Release the offsets table first: with the back-to-back single-device
  // sequence this reproduces the pre-refactor arena lifetimes exactly.
  seg_offsets_ = device::ArenaBuffer<std::int64_t>{};
  std::vector<std::int32_t> slot_of_node(
      static_cast<std::size_t>(st_.tree->n_nodes()), -1);
  for (std::size_t s = 0; s < st_.active.size(); ++s) {
    slot_of_node[static_cast<std::size_t>(st_.active[s].tree_node)] =
        static_cast<std::int32_t>(s);
  }
  auto d_slot = detail::upload_pooled(dev_, st_.arena, slot_of_node);
  auto d_cmds = detail::upload_pooled(dev_, st_.arena, d.cmds);
  hist::update_positions(dev_, binned_.row_offsets.span(),
                         binned_.entry_attr.span(), binned_.entry_bin.span(),
                         d_slot.span(), d_cmds.span(), st_.node_of.span());
}

void HistGrower::maybe_check_counts(const LevelDecision& d) {
  if (distributed_ || !testing::invariants_enabled()) return;
  testing::check_instance_counts(st_.node_of.span(), d.expected_counts,
                                 "hist_split_node");
}

void HistGrower::advance_level(const LevelDecision& d) {
  hist_prev_ = std::move(hist_cur_);
  pair_parent_slot_ = d.next_pair_parent;
  st_.active = d.next_active;
  slotq_ = d.next_slotq;
}

void HistGrower::finish_tree() {
  // Depth limit reached: remaining active nodes become leaves.  In the
  // multi-GPU path only the deciding shard writes the shared tree; the
  // stats are global on every shard, so the values are identical anyway.
  for (const ActiveNode& node : st_.active) finalize_leaf(st_, node);
  st_.active.clear();
  hist_prev_ = device::ArenaBuffer<hist::QGH>{};
  hist_cur_ = device::ArenaBuffer<hist::QGH>{};
  pair_parent_slot_.clear();
}

void HistGrower::maybe_check_leaf_map(const data::Dataset& ds) {
  if (distributed_ || !testing::invariants_enabled()) return;
  testing::check_leaf_map(st_.node_of.span(), *st_.tree, ds, "hist_leaf_map");
}

// ---------------------------------------------------------------------------
// GpuHistTrainer
// ---------------------------------------------------------------------------

GpuHistTrainer::GpuHistTrainer(Device& dev, GBDTParam param)
    : dev_(dev), param_(std::move(param)), loss_(make_loss(param_.loss)) {
  if (param_.depth < 1) throw std::invalid_argument("depth must be >= 1");
  if (param_.n_trees < 1) throw std::invalid_argument("n_trees must be >= 1");
  if (param_.gamma < 0) throw std::invalid_argument("gamma must be >= 0");
  if (param_.lambda < 0) throw std::invalid_argument("lambda must be >= 0");
  if (param_.n_bins < 1 || param_.n_bins > 4096) {
    throw std::invalid_argument("n_bins must be in [1, 4096]");
  }
}

TrainReport GpuHistTrainer::train(const data::Dataset& ds) {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::ScopedSpan train_span("train");
  static obs::Counter& trees_trained =
      obs::Registry::global().counter("gbdt_trees_trained_total");
  TrainReport report;
  report.base_score = param_.base_score;

  if (param_.autotune || autotune::autotune_forced()) {
    report.tuning =
        autotune::tune(dev_.config(), autotune::problem_shape(ds), param_);
    autotune::apply(report.tuning, param_);
    report.tuned = true;
  }

  TrainState st(dev_, param_, *loss_);
  st.n_inst = ds.n_instances();
  st.n_attr = ds.n_attributes();
  if (st.n_inst == 0) throw std::invalid_argument("empty dataset");

  const int n_bins = param_.n_bins;
  const std::int64_t cps = st.n_attr * n_bins;  // cells per node slot
  {
    // Feasibility: the widest level's current + parent histograms must fit
    // comfortably (same guard shape as the CPU baseline).
    const double widest = std::ldexp(
        1.0, std::min(param_.depth - 1, 24));
    const double hist_bytes =
        2.0 * widest * static_cast<double>(cps) * sizeof(hist::QGH);
    if (hist_bytes >
        static_cast<double>(dev_.config().global_mem_bytes) / 4.0) {
      throw std::invalid_argument(
          "hist trainer: per-level histograms would exceed a quarter of "
          "device memory; reduce depth or n_bins");
    }
  }

  dev_.allocator().reset_peak();

  // ---- quantize the features (counted as transfer) ------------------------
  BinnedMatrix binned;
  {
    PhaseScope phase(dev_, report.modeled.transfer);
    obs::ScopedSpan span("hist_quantize");
    binned = build_binned_matrix(dev_, ds, n_bins);
  }

  // ---- persistent per-instance state --------------------------------------
  objective::RoundDriver round_driver(dev_, param_, ds);
  auto d_labels = dev_.to_device<float>(ds.labels());
  st.grad = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.hess = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.y_pred = dev_.alloc<float>(static_cast<std::size_t>(st.n_inst));
  st.node_of = dev_.alloc<std::int32_t>(static_cast<std::size_t>(st.n_inst));
  prim::fill(dev_, st.y_pred, static_cast<float>(param_.base_score));
  HistGrower grower(dev_, param_, st, binned, /*distributed=*/false);

  // ---- boosting loop -------------------------------------------------------
  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));
  for (int t = 0; t < param_.n_trees; ++t) {
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      if (t > 0) detail::update_predictions_smart(st, report.trees.back());
      round_driver.begin_round(st, d_labels, t);
    }

    // Quantize this tree's gradients so histogram accumulation is exact
    // integer arithmetic (counted with the gradient phase).
    hist::QGH rootq;
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      const HistGrower::AbsMax mx = grower.local_abs_max();
      rootq = grower.quantize(mx.g, mx.h, st.n_inst);
    }
    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    grower.begin_tree(tree, rootq);

    for (int level = 0; level < param_.depth && !st.active.empty(); ++level) {
      grower.plan_level();
      {
        PhaseScope phase(dev_, report.modeled.find_split);
        obs::ScopedSpan span("hist_build");
        grower.build_level();
      }
      if (grower.has_derived()) {
        {
          PhaseScope phase(dev_, report.modeled.find_split);
          obs::ScopedSpan span("hist_subtract");
          grower.subtract_level();
        }
        grower.maybe_verify_subtraction();
      }

      // ---- find the best bin boundary per node over the histograms --------
      {
        PhaseScope phase(dev_, report.modeled.find_split);
        obs::ScopedSpan span("hist_find_split");
        grower.prepare_offsets();
        grower.run_set_keys();
        grower.find_level();
      }

      const HistGrower::LevelDecision decision = grower.decide_level();
      if (decision.next_active.empty()) {
        st.active.clear();
        break;
      }

      {
        PhaseScope phase(dev_, report.modeled.split_node);
        obs::ScopedSpan span("hist_split_node");
        grower.apply_level(decision);
      }
      grower.maybe_check_counts(decision);
      grower.advance_level(decision);
    }

    grower.finish_tree();
    grower.maybe_check_leaf_map(ds);
    trees_trained.inc();
  }

  // Fold the last tree into the scores and return them.
  {
    PhaseScope phase(dev_, report.modeled.gradients);
    obs::ScopedSpan span("gradient_compute");
    detail::update_predictions_smart(st, report.trees.back());
  }
  const auto final_pred = dev_.to_host(st.y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());

  report.peak_device_bytes = dev_.allocator().peak();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt
