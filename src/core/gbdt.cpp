#include "core/gbdt.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/metrics.h"
#include "core/predictor.h"
#include "core/trainer_hist.h"
#include "objective/early_stop.h"

namespace gbdt {

std::pair<GBDTModel, TrainReport> GBDTModel::train(device::Device& dev,
                                                   const data::Dataset& ds,
                                                   const GBDTParam& param) {
  TrainReport report;
  if (param.use_hist_trainer) {
    GpuHistTrainer trainer(dev, param);
    report = trainer.train(ds);
  } else {
    GpuGbdtTrainer trainer(dev, param);
    report = trainer.train(ds);
  }
  GBDTModel model(param, report.trees, report.base_score, ds.n_attributes());
  return {std::move(model), std::move(report)};
}

std::tuple<GBDTModel, TrainReport, ValidationHistory>
GBDTModel::train_with_validation(device::Device& dev,
                                 const data::Dataset& train_set,
                                 const data::Dataset& validation,
                                 const GBDTParam& param,
                                 int early_stopping_rounds) {
  const auto loss = make_loss(param.loss);
  const bool ranking = param.objective == ObjectiveKind::kRanking;
  const bool classification = param.loss == LossKind::kLogistic;
  if (ranking && !validation.has_queries()) {
    throw std::invalid_argument(
        "ranking validation needs query groups on the validation set");
  }

  ValidationHistory history;
  history.metric_name = ranking
                            ? "ndcg@" + std::to_string(param.ndcg_k)
                            : classification ? "error" : "rmse";

  // Incremental validation scores, updated after every trained tree (the
  // per-tree update stays cheap even on skipped-evaluation rounds).
  std::vector<double> scores(static_cast<std::size_t>(validation.n_instances()),
                             param.base_score);
  std::vector<std::int32_t> attrs;
  std::vector<float> vals;
  auto metric_now = [&]() {
    if (ranking) {
      // NDCG depends only on the score ordering, so raw scores suffice.
      return ndcg_at_k(scores, validation.labels(),
                       validation.query_offsets(), param.ndcg_k);
    }
    double bad = 0.0;
    for (std::int64_t i = 0; i < validation.n_instances(); ++i) {
      const double pred = loss->transform(scores[static_cast<std::size_t>(i)]);
      const double label = validation.labels()[static_cast<std::size_t>(i)];
      if (classification) {
        bad += (pred >= 0.5) != (label >= 0.5);
      } else {
        bad += (pred - label) * (pred - label);
      }
    }
    const double mean = bad / static_cast<double>(validation.n_instances());
    return classification ? mean : std::sqrt(mean);
  };

  objective::EarlyStopper stopper(early_stopping_rounds, param.eval_freq,
                                  /*higher_is_better=*/ranking);

  GpuGbdtTrainer trainer(dev, param);
  TrainReport report =
      trainer.train(train_set, [&](int t, const std::vector<Tree>& forest) {
        const Tree& tree = forest.back();
        for (std::int64_t i = 0; i < validation.n_instances(); ++i) {
          const auto row = validation.instance(i);
          attrs.resize(row.size());
          vals.resize(row.size());
          for (std::size_t k = 0; k < row.size(); ++k) {
            attrs[k] = row[k].attr;
            vals[k] = row[k].value;
          }
          scores[static_cast<std::size_t>(i)] += tree.predict(
              attrs.data(), vals.data(), static_cast<std::int64_t>(row.size()));
        }
        if (!stopper.should_eval(t, param.n_trees)) return true;
        const double m = metric_now();
        history.metric.push_back(m);
        history.eval_iteration.push_back(t);
        if (stopper.record(t, m)) {
          history.stopped_early = true;
          return false;
        }
        return true;
      });
  history.best_iteration = stopper.best_iteration();

  std::vector<Tree> forest = report.trees;
  if (history.stopped_early && history.best_iteration >= 0) {
    forest.resize(static_cast<std::size_t>(history.best_iteration) + 1);
  }
  GBDTModel model(param, std::move(forest), report.base_score,
                  train_set.n_attributes());
  return {std::move(model), std::move(report), std::move(history)};
}

std::vector<double> GBDTModel::feature_importance(ImportanceKind kind) const {
  std::vector<double> score(static_cast<std::size_t>(n_attributes_), 0.0);
  for (const auto& tree : trees_) {
    for (const auto& n : tree.nodes()) {
      if (n.is_leaf()) continue;
      const auto a = static_cast<std::size_t>(n.attr);
      if (a >= score.size()) continue;
      switch (kind) {
        case ImportanceKind::kGain:
          score[a] += n.gain;
          break;
        case ImportanceKind::kCover:
          score[a] += static_cast<double>(n.n_instances);
          break;
        case ImportanceKind::kSplitCount:
          score[a] += 1.0;
          break;
      }
    }
  }
  const double total = std::accumulate(score.begin(), score.end(), 0.0);
  if (total > 0) {
    for (auto& s : score) s /= total;
  }
  return score;
}

double GBDTModel::predict_one(std::span<const data::Entry> x) const {
  // Split the AoS entries into the parallel arrays Tree::predict expects.
  std::vector<std::int32_t> attrs(x.size());
  std::vector<float> vals(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    attrs[k] = x[k].attr;
    vals[k] = x[k].value;
  }
  double score = base_score_;
  for (const auto& t : trees_) {
    score += t.predict(attrs.data(), vals.data(),
                       static_cast<std::int64_t>(x.size()));
  }
  return score;
}

std::vector<double> GBDTModel::predict(const data::Dataset& ds) const {
  std::vector<double> out(static_cast<std::size_t>(ds.n_instances()));
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    out[static_cast<std::size_t>(i)] = predict_one(ds.instance(i));
  }
  return out;
}

std::vector<double> GBDTModel::predict_device(device::Device& dev,
                                              const data::Dataset& ds) const {
  return predict_on_device(dev, trees_, base_score_, ds);
}

std::vector<double> GBDTModel::transform_scores(
    std::span<const double> raw) const {
  const auto loss = make_loss(param_.loss);
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = loss->transform(raw[i]);
  }
  return out;
}

void GBDTModel::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "gpu-gbdt-model v2\n";
  out.precision(17);
  out << base_score_ << ' ' << static_cast<int>(param_.loss) << ' '
      << n_attributes_ << ' ' << trees_.size() << "\n";
  for (const auto& t : trees_) t.serialize(out);
}

GBDTModel GBDTModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "gpu-gbdt-model" || version != "v2") {
    throw std::runtime_error("not a gpu-gbdt model file: " + path);
  }
  GBDTModel m;
  int loss_kind = 0;
  std::size_t n_trees = 0;
  if (!(in >> m.base_score_ >> loss_kind >> m.n_attributes_ >> n_trees)) {
    throw std::runtime_error("corrupt model header: " + path);
  }
  m.param_.loss = static_cast<LossKind>(loss_kind);
  m.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    m.trees_.push_back(Tree::deserialize(in));
  }
  return m;
}

}  // namespace gbdt
