// GPU-GBDT: the paper's training algorithm on the simulated device.
//
// Typical use:
//   device::Device dev(device::DeviceConfig::titan_x_pascal());
//   GpuGbdtTrainer trainer(dev, GBDTParam{});
//   const TrainReport report = trainer.train(dataset);
//   // report.trees, report.modeled (device seconds), report.train_scores
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/autotune.h"
#include "core/loss.h"
#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

/// Modeled device seconds attributed to the phases the paper discusses
/// ("finding the best split point [is] around 95% of total training time").
struct PhaseTimings {
  double transfer = 0.0;    // PCI-e + initial CSC build / RLE compression
  double gradients = 0.0;   // prediction update + g/h computation
  double find_split = 0.0;  // gain computation + reductions
  double split_node = 0.0;  // node_of update + order-preserving partition

  [[nodiscard]] double total() const {
    return transfer + gradients + find_split + split_node;
  }
};

struct TrainReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  PhaseTimings modeled;
  double wall_seconds = 0.0;
  bool used_rle = false;
  double rle_ratio = 1.0;            // elements per run (1 = uncompressed)
  std::size_t peak_device_bytes = 0;
  /// Final raw training scores (base_score + sum of leaf weights).
  std::vector<double> train_scores;
  /// Set when param.autotune (or GBDT_AUTOTUNE=1) ran the cost-model tuner
  /// before training; `tuning` then holds the chosen knobs and sweeps.
  bool tuned = false;
  autotune::TuningReport tuning;
};

class GpuGbdtTrainer {
 public:
  /// Called after each completed tree with its index and the forest so far;
  /// returning false stops boosting early (used for early stopping).
  using TreeCallback =
      std::function<bool(int tree_index, const std::vector<Tree>& forest)>;

  GpuGbdtTrainer(device::Device& dev, GBDTParam param);

  /// Trains param.n_trees trees of depth param.depth on ds.  The device
  /// timeline keeps accumulating across calls; the report contains the
  /// per-phase attribution of this call only.
  [[nodiscard]] TrainReport train(const data::Dataset& ds);
  [[nodiscard]] TrainReport train(const data::Dataset& ds,
                                  const TreeCallback& on_tree);

  [[nodiscard]] const GBDTParam& param() const { return param_; }

 private:
  device::Device& dev_;
  GBDTParam param_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt
