// Batch prediction on the simulated device (paper Section III-D): instance
// level x tree level parallelism — one logical GPU thread computes the
// partial prediction of one instance under one tree.  Training itself never
// calls this (SmartGD reuses the instance->leaf map); it exists for scoring
// unseen data, as in the paper.
#pragma once

#include <vector>

#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

/// Raw scores (base_score + sum of leaf weights) for every instance of ds.
[[nodiscard]] std::vector<double> predict_on_device(
    device::Device& dev, const std::vector<Tree>& trees, double base_score,
    const data::Dataset& ds);

}  // namespace gbdt
