// Prediction on the simulated device (paper Section III-D) and the serving
// fast paths built on top of it.
//
// The paper's kernel is instance level x tree level parallelism — one
// logical GPU thread computes the partial prediction of one instance under
// one tree.  Training itself never calls this (SmartGD reuses the
// instance->leaf map); it exists for scoring unseen data.
//
// The upload and traversal halves are split so callers that score many
// times against the same forest (cross-validation, the serving layer's
// shard scorer, `gbdt predict`) pay the PCI-e cost once:
//
//   * ForestSoA     — host-side flat structure-of-arrays view of a forest;
//   * DeviceForest  — ForestSoA uploaded once to one device;
//   * DeviceRows    — a dataset's CSR rows uploaded once to one device;
//   * predict_resident — traversal only: accumulates the leaf weights of a
//     tree range into a caller-seeded output buffer (no uploads);
//   * RowPredictor  — host-side single-row scorer over the same ForestSoA,
//     bitwise identical to the device batch path (same traversal, same
//     accumulation order), used by the serving single-row fast path.
//
// predict_on_device keeps its historical signature and behaviour: it is now
// a thin upload-then-traverse wrapper and stays bitwise identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

/// Host-side flat structure-of-arrays view of a forest: per-tree node
/// offsets plus parallel node arrays.  Immutable once built; shared by the
/// device uploader, the host RowPredictor and serving snapshots.
struct ForestSoA {
  std::vector<std::int64_t> tree_off;   // n_trees + 1 node offsets
  std::vector<std::int32_t> left, right, attr;
  std::vector<float> split;
  std::vector<std::uint8_t> def_left;
  std::vector<double> weight;
  double base_score = 0.0;

  [[nodiscard]] static ForestSoA flatten(const std::vector<Tree>& trees,
                                         double base_score);

  [[nodiscard]] std::int64_t n_trees() const {
    return static_cast<std::int64_t>(tree_off.size()) - 1;
  }
  [[nodiscard]] std::int64_t n_nodes() const {
    return static_cast<std::int64_t>(left.size());
  }

  /// Leaf weight of one sparse row (entries sorted by attr ascending) under
  /// tree `t` — the exact comparison sequence of the device kernel.
  [[nodiscard]] double leaf_weight(std::span<const data::Entry> row,
                                   std::int64_t t) const;
};

/// A ForestSoA resident in one device's memory (uploaded at construction).
class DeviceForest {
 public:
  DeviceForest(device::Device& dev, const ForestSoA& host);

  [[nodiscard]] std::int64_t n_trees() const { return n_trees_; }
  [[nodiscard]] double base_score() const { return base_score_; }

  [[nodiscard]] std::span<const std::int64_t> tree_off() const {
    return d_tree_off_.span();
  }
  [[nodiscard]] std::span<const std::int32_t> left() const {
    return d_left_.span();
  }
  [[nodiscard]] std::span<const std::int32_t> right() const {
    return d_right_.span();
  }
  [[nodiscard]] std::span<const std::int32_t> attr() const {
    return d_attr_.span();
  }
  [[nodiscard]] std::span<const float> split() const {
    return d_split_.span();
  }
  [[nodiscard]] std::span<const std::uint8_t> def_left() const {
    return d_def_left_.span();
  }
  [[nodiscard]] std::span<const double> weight() const {
    return d_weight_.span();
  }

 private:
  std::int64_t n_trees_;
  double base_score_;
  device::DeviceBuffer<std::int64_t> d_tree_off_;
  device::DeviceBuffer<std::int32_t> d_left_, d_right_, d_attr_;
  device::DeviceBuffer<float> d_split_;
  device::DeviceBuffer<std::uint8_t> d_def_left_;
  device::DeviceBuffer<double> d_weight_;
};

/// A dataset's CSR rows resident in one device's memory.
class DeviceRows {
 public:
  DeviceRows(device::Device& dev, const data::Dataset& ds);

  [[nodiscard]] std::int64_t n_rows() const { return n_rows_; }
  [[nodiscard]] std::span<const std::int64_t> offsets() const {
    return d_offsets_.span();
  }
  [[nodiscard]] std::span<const std::int32_t> attrs() const {
    return d_attrs_.span();
  }
  [[nodiscard]] std::span<const float> values() const {
    return d_values_.span();
  }

 private:
  std::int64_t n_rows_;
  device::DeviceBuffer<std::int64_t> d_offsets_;
  device::DeviceBuffer<std::int32_t> d_attrs_;
  device::DeviceBuffer<float> d_values_;
};

/// Traversal only: accumulates the leaf weights of trees [tree_lo, tree_hi)
/// of `forest` into `inout` (one cell per row of `rows`), which the caller
/// seeds — with base_score for a full scoring pass, or with the previous
/// shard's partial sums in the serving relay.  Per row, trees accumulate in
/// ascending order, so chaining ranges reproduces the whole-forest sum bit
/// for bit.  `name` labels the kernel in traces (serving passes a
/// `serve_`-prefixed label).
void predict_resident(device::Device& dev, const DeviceForest& forest,
                      const DeviceRows& rows,
                      device::DeviceBuffer<double>& inout,
                      std::int64_t tree_lo, std::int64_t tree_hi,
                      const char* name = "predict_batch");

/// Raw scores (base_score + sum of leaf weights) for every instance of ds.
/// Uploads the forest and the rows, seeds with base_score, traverses, and
/// downloads — one-shot convenience over the resident API.
[[nodiscard]] std::vector<double> predict_on_device(
    device::Device& dev, const std::vector<Tree>& trees, double base_score,
    const data::Dataset& ds);

/// Host-side single-row scorer over a ForestSoA: the serving layer's fast
/// path.  Construction flattens (or adopts) the forest once; score() then
/// walks the flat arrays with the exact comparison and accumulation
/// sequence of the device batch kernel, so single-row scores are bitwise
/// identical to batched ones.
class RowPredictor {
 public:
  explicit RowPredictor(const std::vector<Tree>& trees, double base_score)
      : soa_(ForestSoA::flatten(trees, base_score)) {}
  explicit RowPredictor(ForestSoA soa) : soa_(std::move(soa)) {}

  /// base_score + every tree's leaf weight, accumulated in tree order.
  [[nodiscard]] double score(std::span<const data::Entry> row) const;

  /// Partial sum of trees [tree_lo, tree_hi) accumulated onto `seed` — the
  /// host mirror of one serving shard's relay step.
  [[nodiscard]] double partial(std::span<const data::Entry> row,
                               std::int64_t tree_lo, std::int64_t tree_hi,
                               double seed) const;

  [[nodiscard]] const ForestSoA& soa() const { return soa_; }

 private:
  ForestSoA soa_;
};

}  // namespace gbdt
