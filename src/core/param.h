// Training hyper-parameters and the GPU-GBDT optimization toggles.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gbdt {

enum class LossKind {
  kSquaredError,  // l = (y - yhat)^2, the paper's experimental loss
  kLogistic,      // binary cross-entropy on logits
};

/// Who produces the per-round gradients (src/objective/).
enum class ObjectiveKind {
  kPointwise,  // per-instance Loss derivatives (regression / binary)
  kRanking,    // pairwise LambdaMART gradients over query groups
};

/// Hyper-parameters of Algorithm 1 plus the GPU-specific knobs.  The `use_*`
/// toggles switch the paper's individual optimizations off for the Figure 9
/// ablation study; all default to the paper's configuration.
struct GBDTParam {
  // ---- Algorithm 1 inputs ------------------------------------------------
  int depth = 6;          // d: maximum tree depth (levels 0..d-1 may split)
  int n_trees = 40;       // T
  double lambda = 1.0;    // regularization constant in the gain formula
  double gamma = 0.0;     // minimum gain for a valid split
  double eta = 0.3;       // shrinkage applied to leaf weights
  double base_score = 0.0;
  LossKind loss = LossKind::kSquaredError;

  // ---- objective / sampling layer (src/objective/) -----------------------
  /// Gradient producer.  kRanking needs query groups on the Dataset.
  ObjectiveKind objective = ObjectiveKind::kPointwise;
  /// Cutoff k of the NDCG@k eval metric and the LambdaMART |dNDCG| weights.
  int ndcg_k = 10;
  /// Per-tree row subsampling ratio in (0, 1]; 1.0 = every row visible
  /// (the no-sampling escape hatch: the SamplingPlan compiles out).
  double subsample = 1.0;
  /// Feature bag size per tree: 0 = all features, -1 = floor(sqrt(F)),
  /// n > 0 = exactly n features.
  std::int64_t feature_bag = 0;
  /// Seed of the per-tree sampling draws (splitmix64 sub-streams), shared by
  /// every trainer path so sampled forests are bitwise-reproducible.
  std::uint64_t sampling_seed = 42;
  /// Validation-metric cadence for early stopping: evaluate every
  /// `eval_freq` trees (the last tree is always evaluated).
  int eval_freq = 1;

  // ---- GPU-GBDT technique knobs -----------------------------------------
  /// R: compress with RLE when dimensionality/cardinality exceeds this.
  double rle_threshold_r = 10.0;
  /// C in the Customized SetKey formula segs/block = 1 + #segs/(#SM * C).
  std::int64_t setkey_c = 1000;
  /// Byte budget for the order-preserving partition counters (the paper's
  /// "maximum allowed memory size", e.g. 2^30).
  std::size_t partition_counter_budget = std::size_t{1} << 30;

  // ---- Figure 9 ablation toggles ----------------------------------------
  /// Customized SetKey: adaptive segments-per-block (off = 1 seg per block).
  bool use_custom_setkey = true;
  /// Customized IdxComp Workload: adaptive partition thread workload
  /// (off = fixed workload of 16 from prior work).
  bool use_custom_idxcomp_workload = true;
  /// RLE compression (gated by rle_threshold_r unless force_rle).
  bool use_rle = true;
  /// Compress regardless of the estimated ratio (for tests/ablations).
  bool force_rle = false;
  /// SmartGD: gradients from the instance->leaf map left by training
  /// (off = naive per-tree traversal prediction).
  bool use_smart_gd = true;
  /// Directly split RLE elements (off = decompress, partition, recompress).
  bool use_direct_rle_split = true;

  /// Treat the input as a dense matrix with missing values filled as 0 (the
  /// xgbst-gpu layout).  Used by the dense baseline, not by GPU-GBDT.
  bool dense_layout = false;

  /// Search setkey_c / idxcomp-workload / out-of-core chunking against the
  /// analytical device cost model at train start and apply the winners
  /// (src/core/autotune.h).  GBDT_AUTOTUNE=1 forces it on.
  bool autotune = false;

  // ---- histogram-method knobs -------------------------------------------
  /// Train with the device-side histogram trainer (quantized feature bins +
  /// per-node gradient histograms with the subtraction trick) instead of the
  /// paper's exact sorted-list trainer.  Approximate splits: quality is
  /// equivalent, split points are quantile-bin boundaries.
  bool use_hist_trainer = false;
  /// Maximum quantile buckets per attribute for the histogram method
  /// (both the device trainer and the CPU baseline), in [1, 4096].
  int n_bins = 64;
};

}  // namespace gbdt
