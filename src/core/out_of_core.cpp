#include "core/out_of_core.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/trainer_detail.h"
#include "data/csc_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/reduce.h"
#include "primitives/transform.h"
#include "testing/invariants.h"

namespace gbdt {

using detail::ActiveNode;
using detail::GHPair;
using device::BlockCtx;
using device::DeviceBuffer;
using prim::elems_in_block;
using prim::kBlockDim;

namespace {

/// A host-resident column chunk, optionally pre-compressed with RLE.
struct Chunk {
  std::int64_t attr_lo = 0;
  std::int64_t attr_hi = 0;   // exclusive
  std::int64_t entry_lo = 0;  // into the host CSC arrays
  std::int64_t entry_hi = 0;
  bool compressed = false;
  // RLE form (root order never changes, so this is computed once).
  std::vector<float> run_values;
  std::vector<std::int32_t> run_lens;
  std::vector<std::int64_t> run_starts;  // exclusive scan of run_lens

  [[nodiscard]] std::int64_t n_entries() const { return entry_hi - entry_lo; }
};

/// Per-(column, slot) best-candidate record produced by the streaming walk.
struct ColumnBest {
  double gain = 0.0;
  float split_value = 0.f;
  std::uint8_t default_left = 0;
  double left_g = 0.0;
  double left_h = 0.0;
  std::int64_t left_cnt = 0;
  std::uint8_t valid = 0;
};

struct NodeDecision {
  bool split = false;
  std::int32_t attr = -1;
  float split_value = 0.f;
  bool default_left = false;
  std::int32_t left_id = -1;
  std::int32_t right_id = -1;
};

}  // namespace

OutOfCoreTrainer::OutOfCoreTrainer(device::Device& dev, GBDTParam param,
                                   std::size_t chunk_bytes,
                                   bool stream_compressed)
    : dev_(dev), param_(std::move(param)), chunk_bytes_(chunk_bytes),
      stream_compressed_(stream_compressed), loss_(make_loss(param_.loss)) {
  if (param_.depth < 1 || param_.n_trees < 1) {
    throw std::invalid_argument("bad depth / n_trees");
  }
  if (chunk_bytes_ < (std::size_t{1} << 16)) {
    throw std::invalid_argument("chunk_bytes too small");
  }
}

OutOfCoreReport OutOfCoreTrainer::train(const data::Dataset& ds) {
  obs::ScopedSpan train_span("ooc_train");
  static obs::Counter& chunks_streamed =
      obs::Registry::global().counter("gbdt_ooc_chunks_streamed_total");
  const auto wall_start = std::chrono::steady_clock::now();
  const double modeled_start = dev_.elapsed_seconds();
  const double busy_start = dev_.timeline().total_seconds();
  dev_.allocator().reset_peak();

  OutOfCoreReport report;
  report.base_score = param_.base_score;
  const std::int64_t n_inst = ds.n_instances();
  const std::int64_t n_attr = ds.n_attributes();
  if (n_inst == 0) throw std::invalid_argument("empty dataset");

  // ---- host-resident sorted columns (built once, never partitioned) ------
  const auto csc = data::build_csc_host(ds);
  report.in_core_bytes = csc.bytes();

  // Column chunks bounded by the device budget for streamed lists.
  std::vector<Chunk> chunks;
  {
    const auto max_entries =
        static_cast<std::int64_t>(chunk_bytes_ / 12);  // value+inst+slack
    std::int64_t a = 0;
    while (a < n_attr) {
      Chunk c;
      c.attr_lo = a;
      c.entry_lo = csc.col_offsets[static_cast<std::size_t>(a)];
      std::int64_t b = a + 1;
      while (b < n_attr &&
             csc.col_offsets[static_cast<std::size_t>(b) + 1] - c.entry_lo <=
                 max_entries) {
        ++b;
      }
      c.attr_hi = b;
      c.entry_hi = csc.col_offsets[static_cast<std::size_t>(b)];
      // Pre-compress the chunk's value stream (runs never cross columns).
      if (stream_compressed_) {
        for (std::int64_t e = c.entry_lo; e < c.entry_hi; ++e) {
          const auto u = static_cast<std::size_t>(e);
          const bool head =
              e == c.entry_lo || csc.values[u] != csc.values[u - 1] ||
              std::binary_search(csc.col_offsets.begin(),
                                 csc.col_offsets.end(),
                                 static_cast<std::int64_t>(e));
          if (head) {
            c.run_values.push_back(csc.values[u]);
            c.run_lens.push_back(1);
          } else {
            ++c.run_lens.back();
          }
        }
        const double ratio =
            c.run_values.empty()
                ? 1.0
                : static_cast<double>(c.n_entries()) /
                      static_cast<double>(c.run_values.size());
        c.compressed = ratio >= 1.5;
        if (c.compressed) {
          c.run_starts.resize(c.run_lens.size());
          std::int64_t start = 0;
          for (std::size_t r = 0; r < c.run_lens.size(); ++r) {
            c.run_starts[r] = start;
            start += c.run_lens[r];
          }
        } else {
          c.run_values.clear();
          c.run_values.shrink_to_fit();
          c.run_lens.clear();
          c.run_lens.shrink_to_fit();
        }
      }
      chunks.push_back(std::move(c));
      a = b;
    }
  }
  report.n_chunks = static_cast<int>(chunks.size());

  // ---- double-buffered chunk streaming setup ------------------------------
  // Uploads ride stream_copy one chunk ahead of stream_compute; events order
  // upload->consume (RAW) and enumerate->overwrite (WAR).  With
  // GBDT_SYNC_STREAMS=1 both names alias the default stream: the same
  // enqueue order executes serially, so trees are bitwise identical.
  const bool async_streams = device::stream_async_enabled();
  const int stream_copy =
      async_streams ? dev_.stream() : device::kDefaultStream;
  const int stream_compute =
      async_streams ? dev_.stream() : device::kDefaultStream;

  std::vector<const Chunk*> live;
  for (const Chunk& c : chunks) {
    if (c.n_entries() > 0) live.push_back(&c);
  }
  std::size_t max_entries = 0;
  std::size_t max_runs = 0;
  for (const Chunk* c : live) {
    max_entries =
        std::max(max_entries, static_cast<std::size_t>(c->n_entries()));
    if (c->compressed) max_runs = std::max(max_runs, c->run_values.size());
  }

  // Two reusable landing slots sized for the largest chunk; slot k%2 holds
  // chunk k while slot (k+1)%2 is being filled.
  struct ChunkSlot {
    DeviceBuffer<std::int32_t> inst;
    DeviceBuffer<float> values;
    DeviceBuffer<float> run_values;
    DeviceBuffer<std::int32_t> run_lens;
    DeviceBuffer<std::int64_t> run_starts;
  };
  const std::size_t n_slots_db = std::min<std::size_t>(2, live.size());
  std::vector<ChunkSlot> slots(n_slots_db);
  for (ChunkSlot& sl : slots) {
    sl.inst = dev_.alloc<std::int32_t>(max_entries);
    sl.values = dev_.alloc<float>(max_entries);
    if (max_runs > 0) {
      sl.run_values = dev_.alloc<float>(max_runs);
      sl.run_lens = dev_.alloc<std::int32_t>(max_runs);
      sl.run_starts = dev_.alloc<std::int64_t>(max_runs);
    }
  }

  // ---- resident per-instance state ---------------------------------------
  detail::TrainState st(dev_, param_, *loss_);
  st.n_inst = n_inst;
  st.n_attr = n_attr;
  objective::RoundDriver round_driver(dev_, param_, ds);
  auto d_labels = dev_.to_device<float>(ds.labels());
  st.grad = dev_.alloc<double>(static_cast<std::size_t>(n_inst));
  st.hess = dev_.alloc<double>(static_cast<std::size_t>(n_inst));
  st.y_pred = dev_.alloc<float>(static_cast<std::size_t>(n_inst));
  st.node_of = dev_.alloc<std::int32_t>(static_cast<std::size_t>(n_inst));
  prim::fill(dev_, st.y_pred, static_cast<float>(param_.base_score));

  const double lambda = param_.lambda;
  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));

  for (int t = 0; t < param_.n_trees; ++t) {
    ActiveNode root;
    {
      obs::ScopedSpan span("gradient_compute");
      if (t > 0) detail::update_predictions_smart(st, report.trees.back());
      round_driver.begin_round(st, d_labels, t);
      prim::fill(dev_, st.node_of, std::int32_t{0});
      root.tree_node = 0;
      root.sum_g = prim::reduce_sum<double>(dev_, st.grad, "ooc_root_sum_g");
      root.sum_h = prim::reduce_sum<double>(dev_, st.hess, "ooc_root_sum_h");
      root.count = n_inst;
    }
    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    std::vector<ActiveNode> active{root};

    for (int level = 0; level < param_.depth && !active.empty(); ++level) {
      const auto n_slots = static_cast<std::int64_t>(active.size());
      std::vector<std::int32_t> slot_of(
          static_cast<std::size_t>(tree.n_nodes()), -1);
      std::vector<detail::SlotStat> node_stats(
          static_cast<std::size_t>(n_slots));
      for (std::size_t s = 0; s < active.size(); ++s) {
        slot_of[static_cast<std::size_t>(active[s].tree_node)] =
            static_cast<std::int32_t>(s);
        node_stats[s] = detail::SlotStat{active[s].sum_g, active[s].sum_h,
                                         active[s].count};
      }
      auto d_slot_of = detail::upload_pooled(dev_, st.arena, slot_of);
      // Packed into one record so the per-level table costs a single PCI-e
      // transfer instead of three latency-bound ones.
      auto d_stats = detail::upload_pooled(dev_, st.arena, node_stats);

      struct GlobalBest {
        double gain = 0.0;
        std::int32_t attr = -1;
        float split_value = 0.f;
        bool default_left = false;
        double left_g = 0.0, left_h = 0.0;
        std::int64_t left_cnt = 0;
      };
      std::vector<GlobalBest> best(active.size());

      // ---- stream every chunk through the device once per level ----------
      {
      obs::ScopedSpan find_span("find_split");
      // Upload chunk k into slot k % n_slots_db on stream_copy.  The spans
      // handed to the async copies point into the host CSC / chunk arrays,
      // which outlive the level.
      std::vector<int> up_event(live.size(), -1);
      std::vector<int> last_use_event(n_slots_db, -1);
      auto upload_chunk = [&](std::size_t k) {
        const Chunk& c = *live[k];
        const auto n = static_cast<std::size_t>(c.n_entries());
        ChunkSlot& sl = slots[k % n_slots_db];
        obs::ScopedSpan io_span("chunk_io");
        chunks_streamed.inc();
        if (async_streams && last_use_event[k % n_slots_db] >= 0) {
          // hb: enumerate of the slot's previous chunk -> overwrite (WAR)
          dev_.wait_event(stream_copy, last_use_event[k % n_slots_db]);
        }
        dev_.copy_to_device_async(
            "stream_ooc_upload_inst", stream_copy,
            std::span<const std::int32_t>(csc.inst_ids)
                .subspan(static_cast<std::size_t>(c.entry_lo), n),
            sl.inst);
        if (c.compressed) {
          dev_.copy_to_device_async("stream_ooc_upload_run_values",
                                    stream_copy,
                                    std::span<const float>(c.run_values),
                                    sl.run_values);
          dev_.copy_to_device_async(
              "stream_ooc_upload_run_lens", stream_copy,
              std::span<const std::int32_t>(c.run_lens), sl.run_lens);
          dev_.copy_to_device_async(
              "stream_ooc_upload_run_starts", stream_copy,
              std::span<const std::int64_t>(c.run_starts), sl.run_starts);
          report.streamed_bytes +=
              c.run_values.size() * 16 + static_cast<std::uint64_t>(n) * 4;
        } else {
          dev_.copy_to_device_async(
              "stream_ooc_upload_values", stream_copy,
              std::span<const float>(csc.values)
                  .subspan(static_cast<std::size_t>(c.entry_lo), n),
              sl.values);
          report.streamed_bytes += static_cast<std::uint64_t>(n) * 8;
        }
        if (async_streams) {
          up_event[k] = dev_.record_event(stream_copy);
        }
      };

      if (!live.empty()) upload_chunk(0);
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (k + 1 < live.size()) upload_chunk(k + 1);
        const Chunk& c = *live[k];
        const std::int64_t n = c.n_entries();
        const std::int64_t n_cols = c.attr_hi - c.attr_lo;
        ChunkSlot& sl = slots[k % n_slots_db];
        if (async_streams) {
          // hb: upload(k) on stream_copy -> decompress/enumerate (RAW)
          dev_.wait_event(stream_compute, up_event[k]);
        }
        if (c.compressed) {
          const auto n_runs = static_cast<std::int64_t>(c.run_values.size());
          const auto rv = sl.run_values.span().first(c.run_values.size());
          const auto rl = sl.run_lens.span().first(c.run_lens.size());
          const auto rs = sl.run_starts.span().first(c.run_starts.size());
          const auto out = sl.values.span().first(static_cast<std::size_t>(n));
          dev_.launch_async(
              "stream_ooc_decompress", stream_compute,
              device::grid_for(n_runs, kBlockDim), kBlockDim,
              [rv, rl, rs, out, n_runs](BlockCtx& b) {
                std::uint64_t written = 0;
                b.for_each_thread([&](std::int64_t r) {
                  if (r >= n_runs) return;
                  const auto ru = static_cast<std::size_t>(r);
                  for (std::int32_t j = 0; j < rl[ru]; ++j) {
                    out[static_cast<std::size_t>(rs[ru] + j)] = rv[ru];
                  }
                  b.writes(out, rs[ru], rl[ru]);
                  written += static_cast<std::uint64_t>(rl[ru]);
                });
                b.reads_tile(rv, n_runs);
                b.reads_tile(rl, n_runs);
                b.reads_tile(rs, n_runs);
                b.work(written);
                b.mem_coalesced(written * 4 + elems_in_block(b, n_runs) * 20);
              });
        }

        // Column offsets local to the chunk; uploaded on the compute stream
        // so the copy stream's lookahead is never stalled behind metadata.
        // local_offs outlives the per-chunk sync below.
        std::vector<std::int64_t> local_offs(
            static_cast<std::size_t>(n_cols) + 1);
        for (std::int64_t a2 = 0; a2 <= n_cols; ++a2) {
          local_offs[static_cast<std::size_t>(a2)] =
              csc.col_offsets[static_cast<std::size_t>(c.attr_lo + a2)] -
              c.entry_lo;
        }
        auto d_offs = st.arena.alloc<std::int64_t>(local_offs.size());
        dev_.copy_to_device_async("stream_ooc_upload_offs", stream_compute,
                                  std::span<const std::int64_t>(local_offs),
                                  d_offs.backing());

        // Per-(column, slot) winners, checked out per chunk (every entry is
        // written by ooc_enumerate, so the unzeroed checkout is safe).
        auto d_best = st.arena.alloc<ColumnBest>(
            static_cast<std::size_t>(n_cols) * static_cast<std::size_t>(n_slots));

        const auto values = sl.values.span().first(static_cast<std::size_t>(n));
        const auto inst = sl.inst.span().first(static_cast<std::size_t>(n));
        const auto offs = d_offs.span();
        const auto node_of = st.node_of.span();
        const auto so = d_slot_of.span();
        const auto stats = d_stats.span();
        const auto out_best = d_best.span();
        const auto g = st.grad.span();
        const auto h = st.hess.span();

        // One logical block per column: two fused passes (present totals,
        // then candidate enumeration with both missing directions) against
        // per-slot running accumulators — the streaming analogue of node
        // interleaving.  Spans are captured by value: under schedule
        // perturbation the body runs at a later drain point.
        dev_.launch_async(
            "stream_ooc_enumerate", stream_compute, n_cols, kBlockDim,
            [values, inst, offs, node_of, so, stats, out_best, g, h, n_slots,
             lambda](BlockCtx& b) {
          const std::int64_t col = b.block_idx();
          const std::int64_t lo = offs[static_cast<std::size_t>(col)];
          const std::int64_t hi = offs[static_cast<std::size_t>(col) + 1];

          std::vector<GHPair> present(static_cast<std::size_t>(n_slots));
          std::vector<std::int64_t> present_cnt(
              static_cast<std::size_t>(n_slots), 0);
          for (std::int64_t e = lo; e < hi; ++e) {
            const auto iu = static_cast<std::size_t>(
                inst[static_cast<std::size_t>(e)]);
            const std::int32_t slot =
                so[static_cast<std::size_t>(node_of[iu])];
            if (slot < 0) continue;
            present[static_cast<std::size_t>(slot)] += GHPair{g[iu], h[iu]};
            ++present_cnt[static_cast<std::size_t>(slot)];
          }

          std::vector<GHPair> acc(static_cast<std::size_t>(n_slots));
          std::vector<std::int64_t> acc_cnt(static_cast<std::size_t>(n_slots),
                                            0);
          std::vector<float> last(static_cast<std::size_t>(n_slots), 0.f);
          std::vector<ColumnBest> cb(static_cast<std::size_t>(n_slots));

          auto evaluate = [&](std::int32_t slot) {
            const auto su = static_cast<std::size_t>(slot);
            const double glp = acc[su].g;
            const double hlp = acc[su].h;
            const std::int64_t pos = acc_cnt[su];
            const double node_g = stats[su].g;
            const double node_h = stats[su].h;
            const std::int64_t cnt = stats[su].cnt;
            const std::int64_t seg_len = present_cnt[su];
            const std::int64_t miss = cnt - seg_len;
            const double miss_g = node_g - present[su].g;
            const double miss_h = node_h - present[su].h;
            double gain_r = 0.0;
            if (pos > 0 && cnt - pos > 0) {
              gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp,
                                  lambda);
            }
            double gain_l = 0.0;
            if (miss > 0 && seg_len - pos > 0) {
              gain_l = split_gain(glp + miss_g, hlp + miss_h,
                                  node_g - glp - miss_g,
                                  node_h - hlp - miss_h, lambda);
            }
            const bool dl = gain_l > gain_r;
            const double gain = dl ? gain_l : gain_r;
            if (gain > cb[su].gain) {
              cb[su].valid = 1;
              cb[su].gain = gain;
              cb[su].split_value = last[su];
              cb[su].default_left = dl ? 1 : 0;
              cb[su].left_g = glp + (dl ? miss_g : 0.0);
              cb[su].left_h = hlp + (dl ? miss_h : 0.0);
              cb[su].left_cnt = pos + (dl ? miss : 0);
            }
          };

          std::uint64_t touched = 0;
          for (std::int64_t e = lo; e < hi; ++e) {
            const auto iu = static_cast<std::size_t>(
                inst[static_cast<std::size_t>(e)]);
            const std::int32_t slot =
                so[static_cast<std::size_t>(node_of[iu])];
            if (slot < 0) continue;
            const auto su = static_cast<std::size_t>(slot);
            const float v = values[static_cast<std::size_t>(e)];
            if (acc_cnt[su] > 0 && v != last[su]) evaluate(slot);
            acc[su] += GHPair{g[iu], h[iu]};
            ++acc_cnt[su];
            last[su] = v;
            ++touched;
          }
          // Final boundary of every slot (all present left, missing right).
          for (std::int32_t s = 0; s < n_slots; ++s) {
            if (acc_cnt[static_cast<std::size_t>(s)] > 0) evaluate(s);
            out_best[static_cast<std::size_t>(col * n_slots + s)] =
                cb[static_cast<std::size_t>(s)];
          }
          b.reads(offs, col, 2);
          b.reads(values, lo, hi - lo);
          b.reads(inst, lo, hi - lo);
          b.writes(out_best, col * n_slots, n_slots);
          // Two fused passes: stream the chunk twice, gather (g,h) twice.
          b.work(4 * touched);
          b.mem_coalesced(2 * touched * 8);
          b.mem_irregular(2 * 2 * touched);  // node_of + (g,h) per pass
          b.flop(touched * 8);
        });

        if (async_streams) {
          // Recorded after enumerate: the slot may be overwritten (and the
          // arena blocks reused) once this fires.
          last_use_event[k % n_slots_db] = dev_.record_event(stream_compute);
        }
        // Host merge needs the winners; the copy stream keeps prefetching
        // chunk k+1 underneath this sync.
        dev_.sync(stream_compute);

        // Merge the chunk's winners into the per-node best (columns in
        // ascending attribute order; strict > keeps the lowest attribute on
        // ties, like the in-core argmax).
        for (std::int64_t col = 0; col < n_cols; ++col) {
          // Columns outside this tree's feature bag yield no splits (host
          // glue over the simulated device: the mask byte read mirrors the
          // scalar winner reads below).
          if (!st.feature_mask.empty() &&
              st.feature_mask[static_cast<std::size_t>(c.attr_lo + col)] == 0) {
            continue;
          }
          for (std::int64_t s = 0; s < n_slots; ++s) {
            const ColumnBest& cb =
                d_best[static_cast<std::size_t>(col * n_slots + s)];
            if (cb.valid == 0) continue;
            auto& gb = best[static_cast<std::size_t>(s)];
            if (cb.gain > gb.gain) {
              gb.gain = cb.gain;
              gb.attr = static_cast<std::int32_t>(c.attr_lo + col);
              gb.split_value = cb.split_value;
              gb.default_left = cb.default_left != 0;
              gb.left_g = cb.left_g;
              gb.left_h = cb.left_h;
              gb.left_cnt = cb.left_cnt;
            }
          }
        }
      }
      }

      // ---- split decisions + instance->node updates ----------------------
      std::vector<NodeDecision> decisions(active.size());
      std::vector<ActiveNode> next;
      for (std::size_t s = 0; s < active.size(); ++s) {
        const ActiveNode& node = active[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        const GlobalBest& gb = best[s];
        if (gb.attr >= 0 && gb.gain > param_.gamma) {
          const auto [l, r] = tree.split(node.tree_node, gb.attr,
                                         gb.split_value, gb.default_left,
                                         gb.gain);
          decisions[s] = {true, gb.attr, gb.split_value, gb.default_left, l, r};
          ActiveNode left;
          left.tree_node = l;
          left.sum_g = gb.left_g;
          left.sum_h = gb.left_h;
          left.count = gb.left_cnt;
          ActiveNode right;
          right.tree_node = r;
          right.sum_g = node.sum_g - gb.left_g;
          right.sum_h = node.sum_h - gb.left_h;
          right.count = node.count - gb.left_cnt;
          next.push_back(left);
          next.push_back(right);
        } else {
          tn.weight =
              param_.eta * leaf_weight(node.sum_g, node.sum_h, lambda);
        }
      }
      if (next.empty()) {
        active.clear();
        break;
      }

      // Defaults for every instance of a splitting node, then the exact side
      // from the winning column, re-streamed from the host.
      obs::ScopedSpan split_span("split_node");
      {
        std::vector<std::int32_t> default_child(
            static_cast<std::size_t>(tree.n_nodes()), -1);
        for (std::size_t s = 0; s < active.size(); ++s) {
          if (!decisions[s].split) continue;
          default_child[static_cast<std::size_t>(active[s].tree_node)] =
              decisions[s].default_left ? decisions[s].left_id
                                        : decisions[s].right_id;
        }
        auto d_default = detail::upload_pooled(dev_, st.arena, default_child);
        auto node_of = st.node_of.span();
        auto def = d_default.span();
        dev_.launch("ooc_assign_default", device::grid_for(n_inst, kBlockDim),
                    kBlockDim, [&](BlockCtx& b) {
                      b.for_each_thread([&](std::int64_t i) {
                        if (i >= n_inst) return;
                        const auto u = static_cast<std::size_t>(i);
                        const std::int32_t child =
                            def[static_cast<std::size_t>(node_of[u])];
                        if (child >= 0) node_of[u] = child;
                      });
                      b.reads_tile(node_of, n_inst);
                      b.writes_tile(node_of, n_inst);
                      b.reads(def, 0,
                              static_cast<std::int64_t>(def.size()));
                      b.mem_coalesced(elems_in_block(b, n_inst) * 8);
                    });
      }
      for (std::size_t s = 0; s < active.size(); ++s) {
        if (!decisions[s].split) continue;
        const auto& d = decisions[s];
        const std::int64_t lo =
            csc.col_offsets[static_cast<std::size_t>(d.attr)];
        const std::int64_t hi =
            csc.col_offsets[static_cast<std::size_t>(d.attr) + 1];
        const std::int64_t len = hi - lo;
        if (len == 0) continue;
        auto d_v = dev_.to_device<float>(
            std::span<const float>(csc.values)
                .subspan(static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(len)));
        auto d_i = dev_.to_device<std::int32_t>(
            std::span<const std::int32_t>(csc.inst_ids)
                .subspan(static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(len)));
        report.streamed_bytes += static_cast<std::uint64_t>(len) * 8;
        const std::int32_t left_id = d.left_id;
        const std::int32_t right_id = d.right_id;
        const std::int32_t default_id =
            d.default_left ? d.left_id : d.right_id;
        const float split_value = d.split_value;
        auto v = d_v.span();
        auto ii = d_i.span();
        auto node_of = st.node_of.span();
        dev_.launch("ooc_exact_side", device::grid_for(len, kBlockDim),
                    kBlockDim, [&](BlockCtx& b) {
                      b.for_each_thread([&](std::int64_t e) {
                        if (e >= len) return;
                        const auto u = static_cast<std::size_t>(e);
                        auto& slot_ref =
                            node_of[static_cast<std::size_t>(ii[u])];
                        b.reads(node_of, ii[u]);
                        if (slot_ref != default_id &&
                            slot_ref != (d.default_left ? right_id : left_id)) {
                          return;  // instance not in this node
                        }
                        // Instances of other nodes share neither child id.
                        slot_ref = v[u] >= split_value ? left_id : right_id;
                        // An instance appears once per streamed column, so
                        // the scattered node_of updates are block-disjoint;
                        // the auditor verifies it.
                        b.writes(node_of, ii[u]);
                      });
                      b.reads_tile(v, len);
                      b.reads_tile(ii, len);
                      const auto m = elems_in_block(b, len);
                      b.mem_coalesced(m * 8);
                      b.mem_irregular(m);
                    });
      }

      if (testing::invariants_enabled()) {
        std::vector<std::pair<std::int32_t, std::int64_t>> expected;
        expected.reserve(next.size());
        for (const ActiveNode& child : next) {
          expected.emplace_back(child.tree_node, child.count);
        }
        testing::check_instance_counts(st.node_of.span(), expected,
                                       "ooc_level");
      }

      active = std::move(next);
    }
    for (const ActiveNode& node : active) {
      auto& tn = tree.node(node.tree_node);
      tn.weight = param_.eta * leaf_weight(node.sum_g, node.sum_h, lambda);
      tn.n_instances = node.count;
      tn.sum_g = node.sum_g;
      tn.sum_h = node.sum_h;
    }
    active.clear();

    if (testing::invariants_enabled()) {
      testing::check_leaf_map(st.node_of.span(), tree, ds, "ooc_leaf_map");
    }
  }

  obs::ScopedSpan final_span("gradient_compute");
  detail::update_predictions_smart(st, report.trees.back());
  const auto final_pred = dev_.to_host(st.y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());
  report.peak_device_bytes = dev_.allocator().peak();
  report.modeled_seconds = dev_.elapsed_seconds() - modeled_start;
  // Busy seconds are what a single serialized stream would have taken; the
  // gap to the makespan is the PCI-e time hidden under enumeration.
  const double busy_seconds = dev_.timeline().total_seconds() - busy_start;
  report.overlap_ratio =
      busy_seconds > 0.0
          ? std::max(0.0, 1.0 - report.modeled_seconds / busy_seconds)
          : 0.0;
  obs::Registry::global()
      .gauge("gbdt_device_overlap_ratio")
      .set(report.overlap_ratio);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt
