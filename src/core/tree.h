// Decision tree structure shared by GPU-GBDT and the CPU baselines.
//
// Split convention (attribute lists are sorted descending):
//   x[attr] >= split_value  -> left child  (the "high" side / sorted prefix)
//   x[attr] <  split_value  -> right child
//   attr missing            -> default_left ? left : right (learned)
// split_value is the smallest attribute value on the high side, so the test
// is exact — no midpoints, no epsilon.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gbdt {

struct TreeNode {
  std::int32_t left = -1;   // -1 => leaf
  std::int32_t right = -1;
  std::int32_t attr = -1;
  float split_value = 0.f;
  bool default_left = false;
  double weight = 0.0;      // leaf value (eta already applied)
  double gain = 0.0;        // split gain (internal nodes)
  std::int64_t n_instances = 0;
  double sum_g = 0.0;
  double sum_h = 0.0;

  [[nodiscard]] bool is_leaf() const { return left < 0; }
};

class Tree {
 public:
  Tree() { nodes_.emplace_back(); }

  [[nodiscard]] const TreeNode& node(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] TreeNode& node(std::int32_t id) {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::int32_t n_nodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Turns `id` into an internal node with two fresh children; returns
  /// {left_id, right_id}.
  std::pair<std::int32_t, std::int32_t> split(std::int32_t id,
                                              std::int32_t attr,
                                              float split_value,
                                              bool default_left, double gain);

  [[nodiscard]] int depth() const;
  [[nodiscard]] std::int32_t n_leaves() const;

  /// Prediction for a sparse instance given as parallel (attr, value) arrays
  /// sorted by attr ascending (binary-searched per node).
  [[nodiscard]] double predict(const std::int32_t* attrs, const float* values,
                               std::int64_t n) const;

  /// Leaf id the instance lands in.
  [[nodiscard]] std::int32_t leaf_for(const std::int32_t* attrs,
                                      const float* values,
                                      std::int64_t n) const;

  /// Human-readable dump (one line per node, indented by depth).
  [[nodiscard]] std::string dump() const;

  /// Structural equality within a tolerance on split values / weights; used
  /// to verify the paper's "trees are identical" claim across trainers.
  [[nodiscard]] static bool same_structure(const Tree& a, const Tree& b,
                                           double tol = 1e-9);

  void serialize(std::ostream& out) const;
  [[nodiscard]] static Tree deserialize(std::istream& in);

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace gbdt
