// Sparse-representation find-split and node-split phases (paper Section
// III-B): gather gradients into attribute order, segmented prefix sums,
// per-candidate gain with duplicate suppression and learned missing-value
// direction, SetKey segmented argmax, then the order-preserving histogram
// partition of the attribute lists.
#include <span>
#include <vector>

#include "core/trainer_detail.h"
#include "obs/trace.h"
#include "primitives/fused_split.h"
#include "primitives/partition.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"
#include "testing/invariants.h"

namespace gbdt::detail {

using device::BlockCtx;
using device::Device;
using device::DeviceBuffer;
using prim::elems_in_block;
using prim::kBlockDim;

namespace {

/// Gathers per-instance gradients into element order (irregular: the paper's
/// motivation for keeping everything else streaming).
void gather_gradients(TrainState& st, std::span<GHPair> out) {
  const std::int64_t n = st.n_elems;
  // With the dense layout (the xgbst-gpu baseline), the node-interleaved
  // gradient copies exist precisely to make this gather coalesced — that is
  // the lookup-speed advantage the paper observes for xgbst-gpu on susy.
  // The sparse CSC layout pays truly random (g, h) fetches instead.
  const bool interleaved = st.param.dense_layout;
  auto inst = st.inst.span();
  auto g = st.grad.span();
  auto h = st.hess.span();
  st.dev.launch("gather_gradients", device::grid_for(n, kBlockDim), kBlockDim,
                [&](BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    const auto x = static_cast<std::size_t>(inst[u]);
                    out[u] = GHPair{g[x], h[x]};
                    b.reads(g, inst[u]);
                    b.reads(h, inst[u]);
                  });
                  b.reads_tile(inst, n);
                  b.writes_tile(out, n);
                  const auto m = elems_in_block(b, n);
                  b.mem_coalesced(m * 20);
                  b.mem_irregular(interleaved ? m / 4 : m * 2);
                });
}

/// Present-value totals per segment: the segmented scan's value at the last
/// element of the segment (0 for empty segments).
void segment_present_totals(TrainState& st, std::span<const GHPair> scan,
                            std::span<GHPair> tot) {
  const std::int64_t n_seg = st.n_seg();
  auto off = st.seg_offsets.span();
  st.dev.launch("seg_present_totals", device::grid_for(n_seg, kBlockDim),
                kBlockDim, [&](BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t s) {
                    if (s >= n_seg) return;
                    const auto u = static_cast<std::size_t>(s);
                    const std::int64_t hi = off[u + 1];
                    const bool empty = off[u] == hi;
                    tot[u] = empty ? GHPair{}
                                   : scan[static_cast<std::size_t>(hi - 1)];
                    if (!empty) b.reads(scan, hi - 1);
                  });
                  b.reads_tile(off, n_seg + 1);
                  b.writes_tile(tot, n_seg);
                  const auto m = elems_in_block(b, n_seg);
                  b.mem_coalesced(m * 32);
                  b.mem_irregular(m);
                });
}

}  // namespace

std::vector<BestSplit> find_splits_sparse(TrainState& st) {
  auto& dev = st.dev;
  const std::int64_t n = st.n_elems;
  const std::int64_t n_seg = st.n_seg();
  const std::int64_t n_attr = st.n_attr;
  const double lambda = st.param.lambda;
  std::vector<BestSplit> out(st.active.size());
  if (n == 0) return out;

  const bool fused = prim::fused_split_enabled();

  // Segment key per element (Customized SetKey / naive one-block-per-seg).
  // Keys stay materialized even in the fused pipeline: they are cheap to
  // write, the apply phase reuses them, and keeping the scan's key reads
  // identical is what makes fused == unfused bitwise trivial to audit.
  st.keys = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(n));
  {
    obs::ScopedSpan span("set_key");
    prim::set_keys(dev, st.seg_offsets, st.keys, st.segs_per_block(n_seg));
  }

  // g/h in attribute order, then one fused segmented prefix sum (Figure 1).
  // Fused mode pulls each (g, h) pair straight from the gradient arrays in
  // the scan's first phase (no `ghe`) and emits the per-segment present
  // totals as a scan side product (no seg_present_totals pass).
  auto ghl = st.arena.alloc<GHPair>(static_cast<std::size_t>(n));
  auto seg_tot = st.arena.alloc<GHPair>(static_cast<std::size_t>(n_seg));
  {
    obs::ScopedSpan span("gain_prefix_sum");
    if (fused) {
      const bool interleaved = st.param.dense_layout;
      auto inst = st.inst.span();
      auto g = st.grad.span();
      auto h = st.hess.span();
      prim::fused_gather_scan_totals(
          dev, st.arena, st.keys, ghl, seg_tot,
          [inst, g, h, interleaved](BlockCtx& b, std::int64_t i) {
            const auto u = static_cast<std::size_t>(i);
            const auto x = static_cast<std::size_t>(inst[u]);
            b.reads(inst, i);
            b.reads(g, inst[u]);
            b.reads(h, inst[u]);
            b.mem_coalesced(sizeof(std::int32_t));
            // Same per-element cost as the unfused gather's m/4 (dense
            // interleaved layout) vs m*2 (random CSC fetches).
            b.mem_irregular(interleaved ? (i % 4 == 0 ? 1 : 0) : 2);
            return GHPair{g[x], h[x]};
          },
          "fused_gather_seg_scan");
    } else {
      auto ghe = st.arena.alloc<GHPair>(static_cast<std::size_t>(n));
      gather_gradients(st, ghe.span());
      prim::segmented_inclusive_scan_by_key(dev, ghe, st.keys, ghl,
                                            "seg_scan_gh");
      ghe.free();
      segment_present_totals(st, ghl.span(), seg_tot.span());
    }
  }

  auto tables = upload_slot_tables(st);

  // Gain of every candidate split point (paper Equation 2).  Candidates at
  // duplicated values are suppressed so that the same split point cannot
  // carry two different gains; we keep the *last* occurrence, whose inclusive
  // prefix covers every instance with a value >= the split value (this also
  // makes the RLE path agree exactly).  Fused mode evaluates gains inside the
  // per-segment argmax walk and keeps only the winners — the full
  // gains/dirs arrays exist only on the unfused escape hatch.
  auto best_seg_val = st.arena.alloc<double>(static_cast<std::size_t>(n_seg));
  auto best_seg_idx =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_seg));
  device::ArenaBuffer<std::uint8_t> best_seg_dir;
  device::ArenaBuffer<double> gains;
  device::ArenaBuffer<std::uint8_t> dirs;
  if (fused) {
    best_seg_dir = st.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n_seg));
    obs::ScopedSpan span("compute_gains");
    auto v = st.values.span();
    auto scan = ghl.span();
    auto tot = seg_tot.span();
    auto stats = tables.stats.span();
    const auto fm = st.feature_mask;
    prim::fused_gain_argmax(
        dev, st.seg_offsets, best_seg_val, best_seg_idx, best_seg_dir,
        st.segs_per_block(n_seg),
        [v, scan, tot, stats, fm, n_attr, lambda](
            BlockCtx& b, std::int64_t s, std::int64_t e, std::int64_t seg_lo,
            std::int64_t seg_hi) {
          const auto u = static_cast<std::size_t>(e);
          b.reads(v, e);
          b.reads(scan, e);
          b.mem_coalesced(20);  // v + (g, h) inclusive prefix, streamed
          if (e == seg_lo) {
            // Segment-invariant loads: the walk fetches the segment total and
            // the packed slot stats once and keeps them in registers for the
            // rest of the segment — this, not the arithmetic, is the fused
            // kernel's edge over the per-element unfused gains kernel.
            b.reads(tot, s);
            b.reads(stats, s / n_attr);
            if (!fm.empty()) b.reads(fm, s % n_attr);
            b.mem_irregular(1);
          }
          // Attributes outside this tree's feature bag yield no splits
          // (mask, not compaction: the segment layout is untouched).
          if (!fm.empty() && fm[static_cast<std::size_t>(s % n_attr)] == 0) {
            return prim::GainDir{};
          }
          // Duplicate suppression (paper Section III-B step ii): a zero gain
          // loses to any positive candidate, exactly like the zeroed entries
          // of the unfused gains array.
          if (e + 1 < seg_hi) {
            b.reads(v, e + 1);
            b.mem_coalesced(sizeof(float));
            if (v[u + 1] == v[u]) return prim::GainDir{};
          }
          const auto seg = static_cast<std::size_t>(s);
          const auto slot = static_cast<std::size_t>(s / n_attr);
          const double node_g = stats[slot].g;
          const double node_h = stats[slot].h;
          const std::int64_t cnt = stats[slot].cnt;
          b.flop(16);
          const std::int64_t seg_len = seg_hi - seg_lo;
          const std::int64_t miss = cnt - seg_len;
          const double miss_g = node_g - tot[seg].g;
          const double miss_h = node_h - tot[seg].h;
          const std::int64_t pos = e - seg_lo + 1;  // left presents
          const double glp = scan[u].g;
          const double hlp = scan[u].h;

          // Missing values default right.
          double gain_r = 0.0;
          if (pos > 0 && cnt - pos > 0) {
            gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp, lambda);
          }
          // Missing values default left.
          // With no missing instances the default direction is irrelevant;
          // evaluating only one keeps it deterministic across the
          // sparse/RLE/CPU paths.
          double gain_l = 0.0;
          if (miss > 0 && seg_len - pos > 0) {
            gain_l = split_gain(glp + miss_g, hlp + miss_h,
                                node_g - glp - miss_g, node_h - hlp - miss_h,
                                lambda);
          }
          if (gain_l > gain_r) return prim::GainDir{gain_l, 1};
          return prim::GainDir{gain_r, 0};
        },
        "fused_gain_argmax");
  } else {
    gains = st.arena.alloc<double>(static_cast<std::size_t>(n));
    dirs = st.arena.alloc<std::uint8_t>(static_cast<std::size_t>(n));
    obs::ScopedSpan span("compute_gains");
    auto v = st.values.span();
    auto k = st.keys.span();
    auto off = st.seg_offsets.span();
    auto scan = ghl.span();
    auto tot = seg_tot.span();
    auto stats = tables.stats.span();
    auto gn = gains.span();
    auto dr = dirs.span();
    const auto fm = st.feature_mask;
    dev.launch("compute_gains", device::grid_for(n, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= n) return;
                   const auto u = static_cast<std::size_t>(e);
                   const auto seg = static_cast<std::size_t>(k[u]);
                   const std::int64_t seg_lo = off[seg];
                   const std::int64_t seg_hi = off[seg + 1];
                   // Attributes outside this tree's feature bag yield no
                   // splits (mask, not compaction).
                   if (!fm.empty() &&
                       fm[seg % static_cast<std::size_t>(n_attr)] == 0) {
                     gn[u] = 0.0;
                     dr[u] = 0;
                     return;
                   }
                   // Duplicate suppression (paper Section III-B step ii).
                   if (e + 1 < seg_hi && v[u + 1] == v[u]) {
                     gn[u] = 0.0;
                     dr[u] = 0;
                     return;
                   }
                   const auto slot = static_cast<std::size_t>(
                       static_cast<std::int64_t>(seg) / n_attr);
                   const double node_g = stats[slot].g;
                   const double node_h = stats[slot].h;
                   const std::int64_t cnt = stats[slot].cnt;
                   const std::int64_t seg_len = seg_hi - seg_lo;
                   const std::int64_t miss = cnt - seg_len;
                   const double miss_g = node_g - tot[seg].g;
                   const double miss_h = node_h - tot[seg].h;
                   const std::int64_t pos = e - seg_lo + 1;  // left presents
                   const double glp = scan[u].g;
                   const double hlp = scan[u].h;

                   // Missing values default right.
                   double gain_r = 0.0;
                   if (pos > 0 && cnt - pos > 0) {
                     gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp,
                                         lambda);
                   }
                   // Missing values default left.
                   // With no missing instances the default direction is
                   // irrelevant; evaluating only one keeps it deterministic
                   // across the sparse/RLE/CPU paths.
                   double gain_l = 0.0;
                   if (miss > 0 && seg_len - pos > 0) {
                     gain_l = split_gain(glp + miss_g, hlp + miss_h,
                                         node_g - glp - miss_g,
                                         node_h - hlp - miss_h, lambda);
                   }
                   if (gain_l > gain_r) {
                     gn[u] = gain_l;
                     dr[u] = 1;
                   } else {
                     gn[u] = gain_r;
                     dr[u] = 0;
                   }
                 });
                 b.reads_tile(v, n);
                 b.reads_tile(k, n);
                 b.reads_tile(scan, n);
                 b.writes_tile(gn, n);
                 b.writes_tile(dr, n);
                 if (!fm.empty()) {
                   b.reads(fm, 0, static_cast<std::int64_t>(fm.size()));
                 }
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 41);  // v, v+1, keys, gl, hl, gains, dir
                 b.mem_irregular(m / 2);   // seg/slot table lookups
                 b.flop(m * 16);
               });
  }

  // Best candidate per segment, then best attribute per node (paper step iii:
  // segmented reduction + reduction).  The fused pipeline already produced
  // the per-segment winners above.
  auto d_node_offs = device_node_offsets(st, st.n_active(), n_attr);
  auto best_node_val = st.arena.alloc<double>(st.active.size());
  auto best_node_idx = st.arena.alloc<std::int64_t>(st.active.size());
  {
    obs::ScopedSpan span("setkey_argmax");
    if (!fused) {
      prim::segmented_arg_max(dev, gains, st.seg_offsets, best_seg_val,
                              best_seg_idx, st.segs_per_block(n_seg),
                              "seg_best_gain");
    }
    prim::segmented_arg_max(dev, best_seg_val, d_node_offs, best_node_val,
                            best_node_idx, 1, "node_best_gain");
  }

  // Assemble per-node results on the host (tiny: one entry per active node;
  // the scalar buffer reads below are host glue over the simulated device).
  for (std::size_t s = 0; s < st.active.size(); ++s) {
    BestSplit& b = out[s];
    const std::int64_t seg = best_node_idx[s];
    if (seg < 0) continue;
    const std::int64_t pos = best_seg_idx[static_cast<std::size_t>(seg)];
    if (pos < 0) continue;
    const double gain = best_node_val[s];
    if (!(gain > 0.0)) continue;

    const ActiveNode& node = st.active[s];
    const auto useg = static_cast<std::size_t>(seg);
    const auto upos = static_cast<std::size_t>(pos);
    b.valid = true;
    b.gain = gain;
    b.seg = seg;
    b.pos = pos;
    b.attr = static_cast<std::int32_t>(seg % n_attr);
    b.split_value = st.values[upos];
    b.default_left = fused ? best_seg_dir[useg] != 0 : dirs[upos] != 0;

    const std::int64_t seg_lo = st.seg_offsets[useg];
    const std::int64_t seg_hi = st.seg_offsets[useg + 1];
    const std::int64_t present_left = pos - seg_lo + 1;
    const std::int64_t seg_len = seg_hi - seg_lo;
    const std::int64_t miss = node.count - seg_len;
    double left_g = ghl[upos].g;
    double left_h = ghl[upos].h;
    std::int64_t left_cnt = present_left;
    if (b.default_left) {
      left_g += node.sum_g - seg_tot[useg].g;
      left_h += node.sum_h - seg_tot[useg].h;
      left_cnt += miss;
    }
    b.left.sum_g = left_g;
    b.left.sum_h = left_h;
    b.left.count = left_cnt;
    b.right.sum_g = node.sum_g - left_g;
    b.right.sum_h = node.sum_h - left_h;
    b.right.count = node.count - left_cnt;
  }
  return out;
}

void apply_mark_sides_sparse(TrainState& st, const LevelPlan& plan) {
  obs::ScopedSpan span("mark_sides");
  auto& dev = st.dev;
  const std::int64_t n = st.n_elems;
  const std::int64_t n_attr = st.n_attr;

  assign_default_children(st, plan);

  // Per-slot split commands for the element-side exact assignment, packed
  // into one per-level upload.
  auto d_cmd = upload_split_cmds(st, plan);

  // Exact side for instances present on the winning attribute: the sorted
  // prefix up to the split position goes left (high values), the rest right.
  {
    auto k = st.keys.span();
    auto inst = st.inst.span();
    auto node_of = st.node_of.span();
    auto cmd = d_cmd.span();
    dev.launch("assign_exact_side", device::grid_for(n, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 std::uint64_t writes = 0;
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= n) return;
                   const auto u = static_cast<std::size_t>(e);
                   const std::int64_t seg = k[u];
                   const auto slot = static_cast<std::size_t>(seg / n_attr);
                   if (cmd[slot].chosen_seg != seg) return;
                   node_of[static_cast<std::size_t>(inst[u])] =
                       e <= cmd[slot].best_pos ? cmd[slot].left_id
                                               : cmd[slot].right_id;
                   // An instance appears once per attribute and only the
                   // winning attribute's segment writes, so these scattered
                   // stores are block-disjoint; the auditor verifies it.
                   b.writes(node_of, inst[u]);
                   ++writes;
                 });
                 b.reads_tile(k, n);
                 b.reads_tile(inst, n);
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 8);
                 b.mem_irregular(writes + m / 8);
               });
  }
}

void apply_partition_sparse(TrainState& st, const LevelPlan& plan) {
  obs::ScopedSpan span("partition");
  auto& dev = st.dev;
  const std::int64_t n = st.n_elems;
  const std::int64_t n_attr = st.n_attr;

  // Partition ids: (next node slot, attribute) per element; -1 drops the
  // elements of nodes that became leaves.
  const auto n_new_slots = static_cast<std::int64_t>(plan.next_active.size());
  const std::int64_t n_parts = n_new_slots * n_attr;
  auto d_next_slot = upload_pooled(dev, st.arena, plan.next_slot_of_tree);
  auto part_ids = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(n));
  {
    auto k = st.keys.span();
    auto inst = st.inst.span();
    auto node_of = st.node_of.span();
    auto ns = d_next_slot.span();
    auto p = part_ids.span();
    dev.launch("compute_part_ids", device::grid_for(n, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= n) return;
                   const auto u = static_cast<std::size_t>(e);
                   const std::int32_t slot =
                       ns[static_cast<std::size_t>(node_of[static_cast<std::size_t>(inst[u])])];
                   p[u] = slot < 0 ? -1
                                   : static_cast<std::int32_t>(
                                         slot * n_attr + k[u] % n_attr);
                   b.reads(node_of, inst[u]);
                 });
                 b.reads_tile(k, n);
                 b.reads_tile(inst, n);
                 b.writes_tile(p, n);
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 12);
                 b.mem_irregular(m);  // node_of[inst[e]]
               });
  }

  // Order-preserving histogram partition (paper Figures 2-3).
  const auto pplan = prim::plan_partition(
      n, n_parts, st.param.partition_counter_budget,
      st.param.use_custom_idxcomp_workload);
  auto scatter = st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n));
  auto new_offsets =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_parts) + 1);
  prim::histogram_partition(dev, part_ids.span(), n_parts, scatter.span(),
                            new_offsets.span(), pplan, &st.arena);
  const std::int64_t new_n =
      new_offsets[static_cast<std::size_t>(n_parts)];

  auto new_values = st.arena.alloc<float>(static_cast<std::size_t>(new_n));
  auto new_inst = st.arena.alloc<std::int32_t>(static_cast<std::size_t>(new_n));
  {
    auto v = st.values.span();
    auto inst = st.inst.span();
    auto sc = scatter.span();
    auto nv = new_values.span();
    auto ni = new_inst.span();
    dev.launch("apply_scatter", device::grid_for(n, kBlockDim), kBlockDim,
               [&](BlockCtx& b) {
                 b.for_each_thread([&](std::int64_t e) {
                   if (e >= n) return;
                   const auto u = static_cast<std::size_t>(e);
                   const std::int64_t dst = sc[u];
                   if (dst >= 0) {
                     nv[static_cast<std::size_t>(dst)] = v[u];
                     ni[static_cast<std::size_t>(dst)] = inst[u];
                     // Scatter targets are unique by construction of the
                     // order-preserving partition; the auditor verifies it.
                     b.writes(nv, dst);
                     b.writes(ni, dst);
                   }
                 });
                 b.reads_tile(v, n);
                 b.reads_tile(inst, n);
                 b.reads_tile(sc, n);
                 const auto m = elems_in_block(b, n);
                 b.mem_coalesced(m * 16);
                 b.mem_irregular(m / 4 + 1);  // scatter fronts
               });
  }

  st.values = std::move(new_values);
  st.inst = std::move(new_inst);
  st.seg_offsets = std::move(new_offsets);
  st.n_elems = new_n;
  st.keys.free();

  testing::maybe_inject_partition_fault(st);
  testing::check_sparse_layout(st, n_parts, "apply_partition_sparse");
}

void apply_splits_sparse(TrainState& st, const LevelPlan& plan) {
  apply_mark_sides_sparse(st, plan);
  apply_partition_sparse(st, plan);
}

}  // namespace gbdt::detail
