// Internal shared state of the GPU-GBDT trainer.  Not part of the public
// API — include core/trainer.h instead.
//
// The trainer keeps two copies of the attribute lists: the *original*
// root-level layout (built once per dataset, reused by every tree, as the
// paper notes for RLE: "the compressed data can be used ... the number of
// times equals to the number of trees"), and the *working* copy that gets
// partitioned as the current tree grows.
//
// Working layout invariants:
//  - the element domain is grouped into (active-node-slot, attribute)
//    segments, slot-major: segment s = slot * n_attr + attr;
//  - values are sorted descending inside each segment;
//  - instances absent from a segment have a missing value for that attribute
//    in that node;
//  - in RLE mode the per-element value array is replaced by runs
//    (run_values / run_starts / run_seg_offsets) while inst stays
//    per-element.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/tree.h"
#include "device/device_context.h"
#include "device/workspace_arena.h"

namespace gbdt::detail {

/// Fused (g, h) pair scanned in one pass, like the float2/double2 loads real
/// GPU GBDT implementations use.  Addition is component-wise, so the fused
/// scan is bit-identical to two separate scans with the same association.
struct GHPair {
  double g = 0.0;
  double h = 0.0;

  GHPair& operator+=(const GHPair& o) {
    g += o.g;
    h += o.h;
    return *this;
  }
  friend GHPair operator+(GHPair a, const GHPair& b) { return a += b; }
  friend bool operator==(const GHPair&, const GHPair&) = default;
};

/// An active (splittable) node of the level currently being processed.
struct ActiveNode {
  std::int32_t tree_node = 0;
  double sum_g = 0.0;
  double sum_h = 0.0;
  std::int64_t count = 0;
};

/// Result of the find-split phase for one active node.
struct BestSplit {
  bool valid = false;          // a split with gain > gamma exists
  double gain = 0.0;
  std::int32_t attr = -1;
  float split_value = 0.f;     // smallest value on the high (left) side
  bool default_left = false;   // direction for missing values
  std::int64_t seg = -1;       // global segment index of the winning attr
  std::int64_t pos = -1;       // element index (sparse) / run index (RLE)
  ActiveNode left;             // stats of the would-be children
  ActiveNode right;
};

/// Host-side plan of one level's node splits (filled by the orchestrator
/// from BestSplit + tree bookkeeping, consumed by apply_splits_*).
struct LevelPlan {
  struct Entry {
    bool split = false;
    std::int64_t chosen_seg = -1;
    std::int64_t best_pos = -1;
    std::int32_t left_id = -1;    // tree node ids of the children
    std::int32_t right_id = -1;
    bool default_left = false;
  };
  std::vector<Entry> per_slot;             // indexed by active slot
  std::vector<ActiveNode> next_active;     // children, in slot order
  /// next_slot_of_tree[tree_node] = slot in next_active, or -1.
  std::vector<std::int32_t> next_slot_of_tree;
};

struct TrainState {
  TrainState(device::Device& d, const GBDTParam& p, const Loss& l)
      : dev(d), param(p), loss(l), arena(d.allocator()) {}

  device::Device& dev;
  const GBDTParam& param;
  const Loss& loss;

  /// Per-training-run scratch pool: every per-level/per-tree temporary is
  /// checked out of here, so steady-state levels perform ~zero real device
  /// allocations (the pool grows to the high-water mark and stays).
  device::WorkspaceArena arena;

  std::int64_t n_inst = 0;
  std::int64_t n_attr = 0;

  // ---- original (root-level) layout, built once -------------------------
  device::DeviceBuffer<float> orig_values;           // empty in RLE mode
  device::DeviceBuffer<std::int32_t> orig_inst;
  device::DeviceBuffer<std::int64_t> orig_seg_offsets;  // [n_attr + 1]
  bool rle = false;
  device::DeviceBuffer<float> orig_run_values;
  device::DeviceBuffer<std::int64_t> orig_run_starts;
  device::DeviceBuffer<std::int64_t> orig_run_seg_offsets;
  std::int64_t orig_n_runs = 0;
  double rle_ratio = 1.0;

  // ---- working copy, re-initialised per tree (arena-pooled) -------------
  device::ArenaBuffer<float> values;
  device::ArenaBuffer<std::int32_t> inst;
  device::ArenaBuffer<std::int64_t> seg_offsets;    // [n_seg + 1]
  std::int64_t n_elems = 0;
  device::ArenaBuffer<float> run_values;
  device::ArenaBuffer<std::int64_t> run_starts;     // [n_runs + 1]
  device::ArenaBuffer<std::int64_t> run_seg_offsets;
  std::int64_t n_runs = 0;

  // Element->segment (or run->segment) keys, written by the find phase and
  // reused by the apply phase of the same level.
  device::ArenaBuffer<std::int32_t> keys;
  device::ArenaBuffer<std::int32_t> run_keys;

  // ---- per-instance state ------------------------------------------------
  device::DeviceBuffer<double> grad;
  device::DeviceBuffer<double> hess;
  device::DeviceBuffer<float> y_pred;
  device::DeviceBuffer<std::int32_t> node_of;  // tree node id per instance

  // ---- objective/sampling layer (src/objective/) -------------------------
  /// Current tree's feature bag (shard-local attribute ids in the multi-GPU
  /// path), installed by objective::RoundDriver::begin_round.  Empty = all
  /// attributes visible; the gain kernels then take the exact pre-sampling
  /// code path, so the disabled configuration stays bitwise-identical.
  std::span<const std::uint8_t> feature_mask;

  // ---- naive-gradient mode (SmartGD off) ---------------------------------
  device::DeviceBuffer<std::int64_t> csr_offsets;
  device::DeviceBuffer<std::int32_t> csr_attrs;
  device::DeviceBuffer<float> csr_values;

  // ---- per-level host state ----------------------------------------------
  std::vector<ActiveNode> active;
  Tree* tree = nullptr;

  [[nodiscard]] std::int64_t n_active() const {
    return static_cast<std::int64_t>(active.size());
  }
  [[nodiscard]] std::int64_t n_seg() const { return n_active() * n_attr; }
  [[nodiscard]] std::int64_t segs_per_block(std::int64_t n_segments) const;
  [[nodiscard]] std::int64_t current_tree_nodes() const {
    return tree->n_nodes();
  }
};

/// Per-slot statistics packed into one record so the per-level upload is a
/// single PCI-e transfer (latency-dominated at this size: one 10us transfer
/// instead of three).
struct SlotStat {
  double g = 0.0;
  double h = 0.0;
  std::int64_t cnt = 0;
};

/// Per-slot lookup table uploaded to the device once per level
/// (arena-pooled: re-uploading each level reuses the same block).
struct SlotTables {
  device::ArenaBuffer<SlotStat> stats;
};

[[nodiscard]] SlotTables upload_slot_tables(TrainState& st);

/// Fills off[s] = s * stride for s in [0, n_slots] on the device.  The table
/// is tiny and latency-bound, so one kernel launch (~1us) beats the PCI-e
/// upload (~10us latency) the trainers used to pay every level.
[[nodiscard]] device::ArenaBuffer<std::int64_t> device_node_offsets(
    TrainState& st, std::int64_t n_slots, std::int64_t stride);

/// Per-slot split command for the exact-side kernels, packed into one record
/// so mark_sides pays a single latency-bound per-level upload instead of
/// four.  Non-splitting slots keep chosen_seg = -1 (matches no segment).
struct SplitCmd {
  std::int64_t chosen_seg = -1;
  std::int64_t best_pos = -1;
  std::int32_t left_id = -1;
  std::int32_t right_id = -1;
};

[[nodiscard]] device::ArenaBuffer<SplitCmd> upload_split_cmds(
    TrainState& st, const LevelPlan& plan);

/// Sparse (uncompressed) path.  apply_splits_sparse = mark_sides +
/// partition; the halves are exposed separately because the multi-GPU
/// trainer synchronises the instance->node map between them.
[[nodiscard]] std::vector<BestSplit> find_splits_sparse(TrainState& st);
void apply_mark_sides_sparse(TrainState& st, const LevelPlan& plan);
void apply_partition_sparse(TrainState& st, const LevelPlan& plan);
void apply_splits_sparse(TrainState& st, const LevelPlan& plan);

/// Per-instance gradient/prediction kernels (shared with the multi-GPU
/// trainer, which runs them replicated on every shard).
void compute_gradients(TrainState& st,
                       const device::DeviceBuffer<float>& labels);
void update_predictions_smart(TrainState& st, const Tree& tree);

/// Restores the working attribute-list layout from the root-level
/// originals (start of every tree).
void reset_working_layout(TrainState& st);

/// RLE path.
[[nodiscard]] std::vector<BestSplit> find_splits_rle(TrainState& st);
void apply_splits_rle(TrainState& st, const LevelPlan& plan);

/// Shared by both paths: updates node_of for every instance of a splitting
/// node to the default child, then lets the path-specific element/run kernel
/// overwrite the exact side for present instances.
void assign_default_children(TrainState& st, const LevelPlan& plan);

/// Uploads a small host vector as a device buffer (per-level lookup tables;
/// PCI-e accounted).
template <typename T>
[[nodiscard]] device::DeviceBuffer<T> upload(device::Device& dev,
                                             const std::vector<T>& host) {
  return dev.to_device<T>(host);
}

/// Arena-pooled upload: checks a block out of the arena and copies the host
/// vector into it (PCI-e accounted), so per-level lookup tables stop hitting
/// the device allocator after the first level.
template <typename T>
[[nodiscard]] device::ArenaBuffer<T> upload_pooled(
    device::Device& dev, device::WorkspaceArena& arena,
    const std::vector<T>& host) {
  auto buf = arena.alloc<T>(host.size());
  dev.copy_to_device<T>(host, buf.backing());
  return buf;
}

}  // namespace gbdt::detail
