#include "core/multiclass.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gbdt {

std::pair<MulticlassModel, double> MulticlassModel::train(
    device::Device& dev, const data::Dataset& ds, int n_classes,
    GBDTParam param) {
  if (n_classes < 2) throw std::invalid_argument("need >= 2 classes");
  for (float y : ds.labels()) {
    if (y < 0 || y >= static_cast<float>(n_classes) ||
        y != std::floor(y)) {
      throw std::invalid_argument("labels must be integers in [0, classes)");
    }
  }
  param.loss = LossKind::kLogistic;

  MulticlassModel model;
  double modeled = 0.0;
  for (int k = 0; k < n_classes; ++k) {
    // Re-label: class k vs rest.
    data::Dataset binary(ds.n_attributes());
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      const bool is_k =
          ds.labels()[static_cast<std::size_t>(i)] == static_cast<float>(k);
      binary.add_instance(ds.instance(i), is_k ? 1.f : 0.f);
    }
    auto [m, report] = GBDTModel::train(dev, binary, param);
    modeled += report.modeled.total();
    model.per_class_.push_back(std::move(m));
  }
  return {std::move(model), modeled};
}

std::vector<std::vector<double>> MulticlassModel::predict_proba(
    const data::Dataset& ds) const {
  const auto n = static_cast<std::size_t>(ds.n_instances());
  std::vector<std::vector<double>> proba(
      n, std::vector<double>(per_class_.size(), 0.0));
  for (std::size_t k = 0; k < per_class_.size(); ++k) {
    const auto raw = per_class_[k].predict(ds);
    const auto p = per_class_[k].transform_scores(raw);
    for (std::size_t i = 0; i < n; ++i) proba[i][k] = p[i];
  }
  // Normalise the independent sigmoid outputs into a distribution.
  for (auto& row : proba) {
    double total = 0.0;
    for (double v : row) total += v;
    if (total > 0) {
      for (double& v : row) v /= total;
    }
  }
  return proba;
}

std::vector<int> MulticlassModel::predict_class(
    const data::Dataset& ds) const {
  const auto proba = predict_proba(ds);
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) {
    out[i] = static_cast<int>(
        std::max_element(proba[i].begin(), proba[i].end()) -
        proba[i].begin());
  }
  return out;
}

double MulticlassModel::error_rate(const data::Dataset& ds) const {
  const auto pred = predict_class(ds);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    wrong += static_cast<float>(pred[i]) != ds.labels()[i];
  }
  return pred.empty() ? 0.0
                      : static_cast<double>(wrong) /
                            static_cast<double>(pred.size());
}

void MulticlassModel::save(const std::string& path_prefix) const {
  for (std::size_t k = 0; k < per_class_.size(); ++k) {
    per_class_[k].save(path_prefix + ".class" + std::to_string(k));
  }
}

MulticlassModel MulticlassModel::load(const std::string& path_prefix,
                                      int n_classes) {
  MulticlassModel m;
  for (int k = 0; k < n_classes; ++k) {
    m.per_class_.push_back(
        GBDTModel::load(path_prefix + ".class" + std::to_string(k)));
  }
  return m;
}

}  // namespace gbdt
