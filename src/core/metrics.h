// Evaluation metrics used in the paper's experiments, plus the ranking /
// classification metrics of the objective layer (NDCG@k, AUC).
#pragma once

#include <cstdint>
#include <span>

namespace gbdt {

/// Root mean squared error between predictions and labels.
[[nodiscard]] double rmse(std::span<const double> pred,
                          std::span<const float> label);

/// Binary classification error rate with a 0.5 threshold on predictions.
[[nodiscard]] double error_rate(std::span<const double> pred,
                                std::span<const float> label);

/// Mean NDCG@k over query groups delimited by `query_offsets` (size
/// n_queries + 1, covering [0, n)).  Documents are ranked by score
/// descending, ties broken by the lower index (deterministic); gains are
/// 2^label - 1.  A query whose ideal DCG is zero (all labels zero)
/// contributes a perfect 1.0.
[[nodiscard]] double ndcg_at_k(std::span<const double> pred,
                               std::span<const float> label,
                               std::span<const std::int64_t> query_offsets,
                               int k);

/// Area under the ROC curve of scores against binary labels (label >= 0.5 is
/// positive), with the standard average-rank treatment of tied scores.
/// Degenerate inputs (all-positive or all-negative labels) return 0.5.
[[nodiscard]] double auc(std::span<const double> pred,
                         std::span<const float> label);

}  // namespace gbdt
