// Evaluation metrics used in the paper's experiments.
#pragma once

#include <span>

namespace gbdt {

/// Root mean squared error between predictions and labels.
[[nodiscard]] double rmse(std::span<const double> pred,
                          std::span<const float> label);

/// Binary classification error rate with a 0.5 threshold on predictions.
[[nodiscard]] double error_rate(std::span<const double> pred,
                                std::span<const float> label);

}  // namespace gbdt
