// Multiclass classification via one-vs-rest: K independent binary logistic
// GPU-GBDT models, predicting the class with the highest probability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/gbdt.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt {

class MulticlassModel {
 public:
  MulticlassModel() = default;

  /// Trains one binary logistic model per class; labels must be integers in
  /// [0, n_classes).  Returns the model and the summed modeled seconds.
  [[nodiscard]] static std::pair<MulticlassModel, double> train(
      device::Device& dev, const data::Dataset& ds, int n_classes,
      GBDTParam param);

  [[nodiscard]] int n_classes() const {
    return static_cast<int>(per_class_.size());
  }

  /// Per-class probabilities, row-major [instance][class] (softmax-free:
  /// independent sigmoids, normalised).
  [[nodiscard]] std::vector<std::vector<double>> predict_proba(
      const data::Dataset& ds) const;

  /// argmax class per instance.
  [[nodiscard]] std::vector<int> predict_class(const data::Dataset& ds) const;

  /// Fraction of instances whose argmax class differs from the label.
  [[nodiscard]] double error_rate(const data::Dataset& ds) const;

  void save(const std::string& path_prefix) const;
  [[nodiscard]] static MulticlassModel load(const std::string& path_prefix,
                                            int n_classes);

 private:
  std::vector<GBDTModel> per_class_;
};

}  // namespace gbdt
