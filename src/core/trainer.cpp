#include "core/trainer.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/trainer_detail.h"
#include "data/csc_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objective/objective.h"
#include "primitives/reduce.h"
#include "primitives/segmented.h"
#include "primitives/transform.h"
#include "rle/rle.h"
#include "testing/invariants.h"

namespace gbdt {

using detail::ActiveNode;
using detail::BestSplit;
using detail::LevelPlan;
using detail::TrainState;
using device::Device;
using device::DeviceBuffer;
using prim::kBlockDim;

namespace detail {

std::int64_t TrainState::segs_per_block(std::int64_t n_segments) const {
  return param.use_custom_setkey
             ? prim::auto_segs_per_block(n_segments, dev.config().num_sms,
                                         param.setkey_c)
             : 1;
}

SlotTables upload_slot_tables(TrainState& st) {
  std::vector<SlotStat> stats(st.active.size());
  for (std::size_t s = 0; s < st.active.size(); ++s) {
    stats[s] = SlotStat{st.active[s].sum_g, st.active[s].sum_h,
                        st.active[s].count};
  }
  SlotTables t;
  t.stats = upload_pooled(st.dev, st.arena, stats);
  return t;
}

device::ArenaBuffer<SplitCmd> upload_split_cmds(TrainState& st,
                                                const LevelPlan& plan) {
  std::vector<SplitCmd> cmds(st.active.size());
  for (std::size_t s = 0; s < cmds.size(); ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    cmds[s] = SplitCmd{e.chosen_seg, e.best_pos, e.left_id, e.right_id};
  }
  return upload_pooled(st.dev, st.arena, cmds);
}

device::ArenaBuffer<std::int64_t> device_node_offsets(TrainState& st,
                                                      std::int64_t n_slots,
                                                      std::int64_t stride) {
  auto offs =
      st.arena.alloc<std::int64_t>(static_cast<std::size_t>(n_slots) + 1);
  auto o = offs.span();
  const std::int64_t n = n_slots + 1;
  st.dev.launch("node_seg_offsets", device::grid_for(n, kBlockDim), kBlockDim,
                [&](device::BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t s) {
                    if (s >= n) return;
                    o[static_cast<std::size_t>(s)] = s * stride;
                  });
                  b.writes_tile(o, n);
                  const auto m = prim::elems_in_block(b, n);
                  b.mem_coalesced(m * sizeof(std::int64_t));
                  b.work(m);
                });
  return offs;
}

void assign_default_children(TrainState& st, const LevelPlan& plan) {
  // Per-tree-node tables: does this node split, and where do its instances
  // go by default.  Sized by the current tree (< 2^(depth+1) nodes).
  std::vector<std::int32_t> default_child(
      static_cast<std::size_t>(st.tree->n_nodes()), -1);
  for (std::size_t s = 0; s < plan.per_slot.size(); ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    const auto tn = static_cast<std::size_t>(st.active[s].tree_node);
    default_child[tn] = e.default_left ? e.left_id : e.right_id;
  }
  auto d_default = upload_pooled(st.dev, st.arena, default_child);

  const std::int64_t n = st.n_inst;
  auto node_of = st.node_of.span();
  auto def = d_default.span();
  st.dev.launch("assign_default_child", device::grid_for(n, kBlockDim),
                kBlockDim, [&](device::BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    const std::int32_t child =
                        def[static_cast<std::size_t>(node_of[u])];
                    if (child >= 0) node_of[u] = child;
                  });
                  b.reads_tile(node_of, n);
                  b.writes_tile(node_of, n);
                  b.reads(def, 0, static_cast<std::int64_t>(def.size()));
                  const auto m = prim::elems_in_block(b, n);
                  b.mem_coalesced(m * 2 * sizeof(std::int32_t));
                  b.mem_irregular(m / 8 + 1);  // small table lookups, cached
                });
}

void compute_gradients(TrainState& st, const DeviceBuffer<float>& labels) {
  const std::int64_t n = st.n_inst;
  auto y = labels.span();
  auto p = st.y_pred.span();
  auto g = st.grad.span();
  auto h = st.hess.span();
  const Loss& loss = st.loss;
  st.dev.launch("compute_gradients", device::grid_for(n, kBlockDim), kBlockDim,
                [&](device::BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    const GradPair gp = loss.gradient(y[u], p[u]);
                    g[u] = gp.g;
                    h[u] = gp.h;
                  });
                  b.reads_tile(y, n);
                  b.reads_tile(p, n);
                  b.writes_tile(g, n);
                  b.writes_tile(h, n);
                  b.mem_coalesced(prim::elems_in_block(b, n) * 24);
                  b.flop(prim::elems_in_block(b, n) * 4);
                });
}

/// SmartGD prediction update: one gather through the instance->leaf map the
/// tree construction left behind — no tree traversal (paper Section III-B).
void update_predictions_smart(TrainState& st, const Tree& tree) {
  std::vector<double> weights(static_cast<std::size_t>(tree.n_nodes()), 0.0);
  for (std::int32_t i = 0; i < tree.n_nodes(); ++i) {
    weights[static_cast<std::size_t>(i)] = tree.node(i).weight;
  }
  auto d_w = upload_pooled(st.dev, st.arena, weights);
  const std::int64_t n = st.n_inst;
  auto p = st.y_pred.span();
  auto node_of = st.node_of.span();
  auto w = d_w.span();
  st.dev.launch("smartgd_update", device::grid_for(n, kBlockDim), kBlockDim,
                [&](device::BlockCtx& b) {
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    p[u] = static_cast<float>(
                        p[u] + w[static_cast<std::size_t>(node_of[u])]);
                  });
                  b.reads_tile(p, n);
                  b.reads_tile(node_of, n);
                  b.reads(w, 0, static_cast<std::int64_t>(w.size()));
                  b.writes_tile(p, n);
                  const auto m = prim::elems_in_block(b, n);
                  b.mem_coalesced(m * 12);
                  b.mem_irregular(m / 8 + 1);  // leaf-weight table, cached
                });
}

template <typename SrcBuf, typename DstBuf>
void device_copy(Device& dev, const SrcBuf& src, DstBuf& dst, std::int64_t n) {
  using T = prim::buffer_element_t<DstBuf>;
  auto s = prim::as_span(src);
  auto d = prim::as_span(dst);
  dev.launch("tree_reset_copy", device::grid_for(n, kBlockDim), kBlockDim,
             [&](device::BlockCtx& b) {
               b.for_each_thread([&](std::int64_t i) {
                 if (i < n) {
                   d[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i)];
                 }
               });
               b.reads_tile(s, n);
               b.writes_tile(d, n);
               b.mem_coalesced(prim::elems_in_block(b, n) * 2 * sizeof(T));
             });
}

/// Re-initialises the working layout from the root-level originals.  The
/// working buffers shrink level by level (leaves drop out), so every tree
/// checks its fresh original-sized copies out of the arena — after the first
/// tree the pool already holds blocks of the right size classes and the
/// device allocator is never touched again.
void reset_working_layout(TrainState& st) {
  auto& dev = st.dev;
  if (st.rle) {
    st.n_runs = st.orig_n_runs;
    st.run_values = st.arena.alloc<float>(static_cast<std::size_t>(st.n_runs));
    st.run_starts =
        st.arena.alloc<std::int64_t>(static_cast<std::size_t>(st.n_runs) + 1);
    st.run_seg_offsets =
        st.arena.alloc<std::int64_t>(st.orig_run_seg_offsets.size());
    device_copy(dev, st.orig_run_values, st.run_values, st.n_runs);
    device_copy(dev, st.orig_run_starts, st.run_starts, st.n_runs + 1);
    device_copy(dev, st.orig_run_seg_offsets, st.run_seg_offsets,
                static_cast<std::int64_t>(st.orig_run_seg_offsets.size()));
  } else {
    st.values = st.arena.alloc<float>(st.orig_values.size());
    device_copy(dev, st.orig_values, st.values,
                static_cast<std::int64_t>(st.orig_values.size()));
  }
  st.n_elems = static_cast<std::int64_t>(st.orig_inst.size());
  st.inst = st.arena.alloc<std::int32_t>(st.orig_inst.size());
  st.seg_offsets = st.arena.alloc<std::int64_t>(st.orig_seg_offsets.size());
  device_copy(dev, st.orig_inst, st.inst, st.n_elems);
  device_copy(dev, st.orig_seg_offsets, st.seg_offsets,
              static_cast<std::int64_t>(st.orig_seg_offsets.size()));
  prim::fill(dev, st.node_of, std::int32_t{0});
}

}  // namespace detail

namespace {

/// Scoped accumulation of modeled device seconds into a phase counter.
class PhaseScope {
 public:
  PhaseScope(Device& dev, double& sink)
      : dev_(dev), sink_(sink), start_(dev.elapsed_seconds()) {}
  ~PhaseScope() { sink_ += dev_.elapsed_seconds() - start_; }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Device& dev_;
  double& sink_;
  double start_;
};

/// Naive prediction update (SmartGD disabled): every instance traverses the
/// freshly trained tree, binary-searching its CSR row at each internal node.
/// Branch-divergent and irregular — the cost SmartGD removes.
void update_predictions_naive(TrainState& st, const Tree& tree) {
  struct NodeSoA {
    std::vector<std::int32_t> left, right, attr;
    std::vector<float> split;
    std::vector<std::uint8_t> def_left;
    std::vector<double> weight;
  } soa;
  const auto n_nodes = static_cast<std::size_t>(tree.n_nodes());
  soa.left.resize(n_nodes);
  soa.right.resize(n_nodes);
  soa.attr.resize(n_nodes);
  soa.split.resize(n_nodes);
  soa.def_left.resize(n_nodes);
  soa.weight.resize(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto& nd = tree.node(static_cast<std::int32_t>(i));
    soa.left[i] = nd.left;
    soa.right[i] = nd.right;
    soa.attr[i] = nd.attr;
    soa.split[i] = nd.split_value;
    soa.def_left[i] = nd.default_left ? 1 : 0;
    soa.weight[i] = nd.weight;
  }
  auto d_left = detail::upload_pooled(st.dev, st.arena, soa.left);
  auto d_right = detail::upload_pooled(st.dev, st.arena, soa.right);
  auto d_attr = detail::upload_pooled(st.dev, st.arena, soa.attr);
  auto d_split = detail::upload_pooled(st.dev, st.arena, soa.split);
  auto d_def = detail::upload_pooled(st.dev, st.arena, soa.def_left);
  auto d_weight = detail::upload_pooled(st.dev, st.arena, soa.weight);

  const std::int64_t n = st.n_inst;
  auto p = st.y_pred.span();
  auto ro = st.csr_offsets.span();
  auto ra = st.csr_attrs.span();
  auto rv = st.csr_values.span();
  auto L = d_left.span();
  auto R = d_right.span();
  auto A = d_attr.span();
  auto S = d_split.span();
  auto D = d_def.span();
  auto W = d_weight.span();
  st.dev.launch("naive_traverse_update", device::grid_for(n, kBlockDim),
                kBlockDim, [&](device::BlockCtx& b) {
                  std::uint64_t steps = 0;
                  b.for_each_thread([&](std::int64_t i) {
                    if (i >= n) return;
                    const auto u = static_cast<std::size_t>(i);
                    const std::int64_t row_lo = ro[u];
                    const std::int64_t row_hi = ro[u + 1];
                    std::int32_t id = 0;
                    while (L[static_cast<std::size_t>(id)] >= 0) {
                      const auto nu = static_cast<std::size_t>(id);
                      // Binary search the CSR row for the split attribute.
                      const std::int32_t want = A[nu];
                      std::int64_t lo = row_lo, hi = row_hi;
                      const float* found = nullptr;
                      while (lo < hi) {
                        const std::int64_t mid = (lo + hi) / 2;
                        const auto mu = static_cast<std::size_t>(mid);
                        if (ra[mu] < want) {
                          lo = mid + 1;
                        } else if (ra[mu] > want) {
                          hi = mid;
                        } else {
                          found = &rv[mu];
                          break;
                        }
                        ++steps;
                      }
                      const bool go_left =
                          found != nullptr ? *found >= S[nu] : D[nu] != 0;
                      id = go_left ? L[nu] : R[static_cast<std::size_t>(id)];
                      steps += 4;  // divergent node reads
                    }
                    p[u] = static_cast<float>(
                        p[u] + W[static_cast<std::size_t>(id)]);
                  });
                  b.reads_tile(p, n);
                  b.writes_tile(p, n);
                  b.reads_tile(ro, n + 1);
                  // Every instance of a warp follows its own root-to-leaf
                  // path: the lanes diverge at every node and the scattered
                  // loads serialise — the cost SmartGD removes entirely
                  // (paper Section III-B).
                  b.work(steps * 4);
                  b.mem_irregular(steps * 2);
                  b.mem_coalesced(prim::elems_in_block(b, n) * 24);
                });
}

void finalize_leaf(TrainState& st, const ActiveNode& node) {
  auto& tn = st.tree->node(node.tree_node);
  tn.weight =
      st.param.eta * leaf_weight(node.sum_g, node.sum_h, st.param.lambda);
  tn.n_instances = node.count;
  tn.sum_g = node.sum_g;
  tn.sum_h = node.sum_h;
}

/// Models xgbst-gpu's node interleaving: one gradient/hessian copy per node
/// being split this level (paper Section II-D).  The caller keeps the
/// returned buffers alive for the whole level, so the copies inflate peak
/// device memory alongside the level's working set (and a
/// DeviceOutOfMemory fires here on oversized data).
[[nodiscard]] std::vector<device::ArenaBuffer<double>> dense_node_interleaving(
    TrainState& st) {
  std::vector<device::ArenaBuffer<double>> copies;
  copies.reserve(st.active.size() * 2);
  for (std::size_t k = 0; k < st.active.size(); ++k) {
    copies.push_back(
        st.arena.alloc<double>(static_cast<std::size_t>(st.n_inst)));
    copies.push_back(
        st.arena.alloc<double>(static_cast<std::size_t>(st.n_inst)));
    detail::device_copy(st.dev, st.grad, copies[2 * k], st.n_inst);
    detail::device_copy(st.dev, st.hess, copies[2 * k + 1], st.n_inst);
  }
  return copies;
}

}  // namespace

GpuGbdtTrainer::GpuGbdtTrainer(Device& dev, GBDTParam param)
    : dev_(dev), param_(std::move(param)), loss_(make_loss(param_.loss)) {
  if (param_.depth < 1) throw std::invalid_argument("depth must be >= 1");
  if (param_.n_trees < 1) throw std::invalid_argument("n_trees must be >= 1");
  if (param_.gamma < 0) throw std::invalid_argument("gamma must be >= 0");
  if (param_.lambda < 0) throw std::invalid_argument("lambda must be >= 0");
}

TrainReport GpuGbdtTrainer::train(const data::Dataset& ds) {
  return train(ds, TreeCallback{});
}

TrainReport GpuGbdtTrainer::train(const data::Dataset& ds,
                                  const TreeCallback& on_tree) {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::ScopedSpan train_span("train");
  static obs::Counter& trees_trained =
      obs::Registry::global().counter("gbdt_trees_trained_total");
  static obs::Counter& levels_grown =
      obs::Registry::global().counter("gbdt_levels_grown_total");
  TrainReport report;
  report.base_score = param_.base_score;

  if (param_.autotune || autotune::autotune_forced()) {
    report.tuning =
        autotune::tune(dev_.config(), autotune::problem_shape(ds), param_);
    autotune::apply(report.tuning, param_);
    report.tuned = true;
  }

  TrainState st(dev_, param_, *loss_);
  st.n_inst = ds.n_instances();
  st.n_attr = ds.n_attributes();
  if (st.n_inst == 0) throw std::invalid_argument("empty dataset");

  dev_.allocator().reset_peak();

  // ---- build the original root-level layout (counted as transfer) --------
  {
    PhaseScope phase(dev_, report.modeled.transfer);
    obs::ScopedSpan span("csc_build");
    auto csc = data::build_csc_device(dev_, ds);
    st.orig_values = std::move(csc.values);
    st.orig_inst = std::move(csc.inst_ids);
    st.orig_seg_offsets = std::move(csc.col_offsets);

    const bool gate =
        param_.force_rle ||
        rle::paper_gate(st.n_attr, st.n_inst, param_.rle_threshold_r);
    if (param_.use_rle && gate) {
      obs::ScopedSpan rle_span("rle_compress");
      auto compressed = rle::compress(dev_, st.orig_values.span(),
                                      st.orig_seg_offsets.span(), &st.arena);
      if (testing::invariants_enabled()) {
        testing::check_rle_roundtrip(dev_, compressed, st.orig_values,
                                     "root_rle_build");
      }
      st.rle = true;
      report.used_rle = true;
      st.orig_n_runs = compressed.n_runs;
      st.rle_ratio = rle::measured_ratio(compressed);
      report.rle_ratio = st.rle_ratio;
      st.orig_run_values = std::move(compressed.values);
      st.orig_run_starts = std::move(compressed.starts);
      st.orig_run_seg_offsets = std::move(compressed.seg_offsets);
      st.orig_values.free();  // per-element values are no longer needed
    }
  }

  // ---- persistent per-instance state -------------------------------------
  objective::RoundDriver round_driver(dev_, param_, ds);
  auto d_labels = dev_.to_device<float>(ds.labels());
  st.grad = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.hess = dev_.alloc<double>(static_cast<std::size_t>(st.n_inst));
  st.y_pred = dev_.alloc<float>(static_cast<std::size_t>(st.n_inst));
  st.node_of = dev_.alloc<std::int32_t>(static_cast<std::size_t>(st.n_inst));
  prim::fill(dev_, st.y_pred, static_cast<float>(param_.base_score));

  if (!param_.use_smart_gd) {
    // The naive path needs random access to instance rows: upload the CSR.
    PhaseScope phase(dev_, report.modeled.transfer);
    std::vector<std::int32_t> attrs(static_cast<std::size_t>(ds.n_entries()));
    std::vector<float> vals(static_cast<std::size_t>(ds.n_entries()));
    for (std::size_t k = 0; k < attrs.size(); ++k) {
      attrs[k] = ds.entries()[k].attr;
      vals[k] = ds.entries()[k].value;
    }
    st.csr_offsets = dev_.to_device<std::int64_t>(ds.row_offsets());
    st.csr_attrs = dev_.to_device<std::int32_t>(attrs);
    st.csr_values = dev_.to_device<float>(vals);
  }

  // ---- boosting loop ------------------------------------------------------
  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));
  for (int t = 0; t < param_.n_trees; ++t) {
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      if (t > 0) {
        if (param_.use_smart_gd) {
          update_predictions_smart(st, report.trees.back());
        } else {
          update_predictions_naive(st, report.trees.back());
        }
      }
      round_driver.begin_round(st, d_labels, t);
    }

    {
      PhaseScope phase(dev_, report.modeled.split_node);
      obs::ScopedSpan span("reset_layout");
      reset_working_layout(st);
    }

    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    st.tree = &tree;

    ActiveNode root;
    root.tree_node = 0;
    {
      PhaseScope phase(dev_, report.modeled.gradients);
      obs::ScopedSpan span("gradient_compute");
      root.sum_g = prim::reduce_sum<double>(dev_, st.grad, "root_sum_g");
      root.sum_h = prim::reduce_sum<double>(dev_, st.hess, "root_sum_h");
    }
    root.count = st.n_inst;
    st.active.assign(1, root);

    for (int level = 0; level < param_.depth && !st.active.empty(); ++level) {
      std::vector<device::ArenaBuffer<double>> interleaved;
      if (param_.dense_layout) interleaved = dense_node_interleaving(st);

      levels_grown.inc();
      std::vector<BestSplit> best;
      {
        PhaseScope phase(dev_, report.modeled.find_split);
        obs::ScopedSpan span("find_split");
        best = st.rle ? detail::find_splits_rle(st)
                      : detail::find_splits_sparse(st);
      }

      // Host-side split decisions (Algorithm 1 lines 14-23).
      LevelPlan plan;
      plan.per_slot.resize(st.active.size());
      for (std::size_t s = 0; s < st.active.size(); ++s) {
        const ActiveNode& node = st.active[s];
        const BestSplit& b = best[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        if (b.valid && b.gain > param_.gamma) {
          const auto [l, r] =
              tree.split(node.tree_node, b.attr, b.split_value,
                         b.default_left, b.gain);
          auto& e = plan.per_slot[s];
          e.split = true;
          e.chosen_seg = b.seg;
          e.best_pos = b.pos;
          e.left_id = l;
          e.right_id = r;
          e.default_left = b.default_left;
          ActiveNode left = b.left;
          left.tree_node = l;
          ActiveNode right = b.right;
          right.tree_node = r;
          plan.next_active.push_back(left);
          plan.next_active.push_back(right);
        } else {
          finalize_leaf(st, node);
        }
      }
      if (plan.next_active.empty()) {
        st.active.clear();
        break;
      }
      plan.next_slot_of_tree.assign(static_cast<std::size_t>(tree.n_nodes()),
                                    -1);
      for (std::size_t k = 0; k < plan.next_active.size(); ++k) {
        plan.next_slot_of_tree[static_cast<std::size_t>(
            plan.next_active[k].tree_node)] = static_cast<std::int32_t>(k);
      }

      {
        PhaseScope phase(dev_, report.modeled.split_node);
        obs::ScopedSpan span("split_node");
        if (st.rle) {
          detail::apply_splits_rle(st, plan);
        } else {
          detail::apply_splits_sparse(st, plan);
        }
      }
      testing::check_level_conservation(
          st, plan, st.rle ? "apply_splits_rle" : "apply_splits_sparse");
      st.active = std::move(plan.next_active);
    }

    // Depth limit reached: remaining active nodes become leaves.
    for (const ActiveNode& node : st.active) finalize_leaf(st, node);
    st.active.clear();

    if (testing::invariants_enabled()) {
      testing::check_leaf_map(st.node_of.span(), tree, ds, "smartgd_leaf_map");
    }

    trees_trained.inc();
    if (on_tree && !on_tree(t, report.trees)) break;
  }

  // Fold the last tree into the scores and return them.
  {
    PhaseScope phase(dev_, report.modeled.gradients);
    obs::ScopedSpan span("gradient_compute");
    if (param_.use_smart_gd) {
      update_predictions_smart(st, report.trees.back());
    } else {
      update_predictions_naive(st, report.trees.back());
    }
  }
  const auto final_pred = dev_.to_host(st.y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());

  report.peak_device_bytes = dev_.allocator().peak();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt
