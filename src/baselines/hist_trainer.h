// Histogram-based (approximate) GBDT trainer — the contrast in the paper's
// related work: "LightGBM is an alternative implementation of GBDTs, but it
// only supports finding the best split points approximately", and XGBoost's
// own approximate/hist method works the same way.
//
// Attribute values are quantised into at most `n_bins` quantile buckets up
// front; each level builds per-(node, attribute) gradient histograms with
// one pass over the data and picks split points at bin boundaries.  No
// sorted attribute lists, no order-preserving partition — only the
// instance->node map moves.  Faster per level than exact search, but split
// thresholds are limited to the bin grid, so the trees (and the training
// RMSE) differ from the exact trainers.
//
// Histograms are dense over (node, attribute, bin), so the method is only
// practical for low/medium dimensionality — the constructor rejects shapes
// whose histograms would not fit the device (one more reason the paper's
// exact CSC approach wins on news20-like data).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/loss.h"
#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"

namespace gbdt::baseline {

struct HistTrainReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  std::vector<double> train_scores;
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;
  int n_bins = 0;
};

class HistGbdtTrainer {
 public:
  HistGbdtTrainer(device::Device& dev, GBDTParam param, int n_bins = 64);

  [[nodiscard]] HistTrainReport train(const data::Dataset& ds);

 private:
  device::Device& dev_;
  GBDTParam param_;
  int n_bins_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt::baseline
