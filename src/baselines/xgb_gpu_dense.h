// The "xgbst-gpu" baseline: XGBoost's GPU exact tree method, which uses a
// dense data representation plus node-interleaved gradient copies (paper
// Section II-D).  Two consequences the paper reports, both reproduced here:
//
//  1. Memory: the dense layout needs O(n x d) device memory regardless of
//     sparsity, plus one g/h copy per concurrently-split node, so it runs
//     out of the 12 GB of the Titan X on most of the eight datasets.  The
//     footprint check uses the *real* dataset sizes (passed as
//     paper_cardinality/paper_dimension) against the device capacity, since
//     the synthetic analogs are scaled down.
//
//  2. Accuracy: missing values are stored as 0, so on sparse data the trees
//     (and the RMSE) deviate from the sparse-representation trainers.
#pragma once

#include <cstdint>
#include <string>

#include "core/param.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "device/device_config.h"

namespace gbdt::baseline {

struct DenseGpuOutcome {
  bool ran = false;
  bool oom = false;
  std::size_t required_bytes = 0;
  std::size_t budget_bytes = 0;
  std::string note;
  TrainReport report;  // valid only when ran
};

/// Device bytes the dense GPU trainer needs: value matrix + sorted-position
/// matrix + instance ids (12 B per dense cell, double-buffered for the
/// radix partition) plus the node-interleaved g/h copies at the widest level.
[[nodiscard]] std::size_t dense_gpu_footprint_bytes(std::int64_t cardinality,
                                                    std::int64_t dimension,
                                                    int depth);

/// Fills every (instance, attribute) cell explicitly, missing -> 0.
[[nodiscard]] data::Dataset densify(const data::Dataset& ds);

/// Runs the dense baseline on a device with `cfg`'s memory budget.  When
/// paper_cardinality/paper_dimension are non-zero they are used for the
/// footprint gate (the behaviourally-run analog stays small).
[[nodiscard]] DenseGpuOutcome train_xgb_gpu_dense(
    const device::DeviceConfig& cfg, const data::Dataset& ds, GBDTParam param,
    std::int64_t paper_cardinality = 0, std::int64_t paper_dimension = 0);

}  // namespace gbdt::baseline
