#include "baselines/blocked.h"

#include <algorithm>
#include <vector>

namespace gbdt::baseline {

double blocked_sum(std::span<const double> v) {
  const auto n = static_cast<std::int64_t>(v.size());
  if (n == 0) return 0.0;
  const std::int64_t tiles = (n + kTile - 1) / kTile;
  double total = 0.0;
  for (std::int64_t g = 0; g < tiles; ++g) {
    const std::int64_t lo = g * kTile;
    const std::int64_t hi = std::min(lo + kTile, n);
    double acc = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) acc += v[static_cast<std::size_t>(i)];
    total += acc;
  }
  return total;
}

void blocked_seg_scan(std::span<const double> v,
                      std::span<const std::int32_t> keys,
                      std::span<double> out) {
  const auto n = static_cast<std::int64_t>(v.size());
  if (n == 0) return;
  const std::int64_t tiles = (n + kTile - 1) / kTile;
  std::vector<double> rs(static_cast<std::size_t>(tiles));

  // Phase 1: local scans.
  for (std::int64_t g = 0; g < tiles; ++g) {
    const std::int64_t lo = g * kTile;
    const std::int64_t hi = std::min(lo + kTile, n);
    double acc = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (i > lo && keys[u] != keys[u - 1]) acc = 0.0;
      acc += v[u];
      out[u] = acc;
    }
    rs[static_cast<std::size_t>(g)] = acc;
  }

  // Phase 2: carry chain.
  std::vector<double> cr(static_cast<std::size_t>(tiles));
  double carry = 0.0;
  for (std::int64_t g = 0; g < tiles; ++g) {
    const std::int64_t lo = g * kTile;
    const std::int64_t hi = std::min(lo + kTile, n);
    const bool joins_prev =
        g > 0 && keys[static_cast<std::size_t>(lo)] ==
                     keys[static_cast<std::size_t>(lo - 1)];
    const double incoming = joins_prev ? carry : 0.0;
    cr[static_cast<std::size_t>(g)] = incoming;
    const bool single_key = keys[static_cast<std::size_t>(lo)] ==
                            keys[static_cast<std::size_t>(hi - 1)];
    carry = rs[static_cast<std::size_t>(g)] + (single_key ? incoming : 0.0);
  }

  // Phase 3: leading-run fixup.
  for (std::int64_t g = 0; g < tiles; ++g) {
    const double incoming = cr[static_cast<std::size_t>(g)];
    if (incoming == 0.0) continue;
    const std::int64_t lo = g * kTile;
    const std::int64_t hi = std::min(lo + kTile, n);
    const std::int32_t lead = keys[static_cast<std::size_t>(lo)];
    for (std::int64_t i = lo;
         i < hi && keys[static_cast<std::size_t>(i)] == lead; ++i) {
      out[static_cast<std::size_t>(i)] += incoming;
    }
  }
}

}  // namespace gbdt::baseline
