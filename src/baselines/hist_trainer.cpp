#include "baselines/hist_trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/trainer_detail.h"
#include "primitives/histogram.h"
#include "primitives/reduce.h"
#include "primitives/transform.h"

namespace gbdt::baseline {

using detail::ActiveNode;
using detail::GHPair;
using device::BlockCtx;
using device::DeviceBuffer;
using hist::BinCuts;
using hist::build_cuts;
using prim::elems_in_block;
using prim::kBlockDim;

namespace {

struct SplitDecision {
  bool valid = false;
  double gain = 0.0;
  std::int32_t attr = -1;
  int bin = -1;            // last bin on the left (high) side
  float split_value = 0.f;
  bool default_left = false;
  ActiveNode left, right;
};

}  // namespace

HistGbdtTrainer::HistGbdtTrainer(device::Device& dev, GBDTParam param,
                                 int n_bins)
    : dev_(dev), param_(std::move(param)), n_bins_(n_bins),
      loss_(make_loss(param_.loss)) {
  if (n_bins_ < 1 || n_bins_ > 4096) {
    throw std::invalid_argument("n_bins must be in [1, 4096]");
  }
  if (param_.depth < 1 || param_.n_trees < 1) {
    throw std::invalid_argument("bad depth / n_trees");
  }
}

HistTrainReport HistGbdtTrainer::train(const data::Dataset& ds) {
  const auto wall_start = std::chrono::steady_clock::now();
  const double modeled_start = dev_.elapsed_seconds();
  HistTrainReport report;
  report.base_score = param_.base_score;
  report.n_bins = n_bins_;

  const std::int64_t n_inst = ds.n_instances();
  const std::int64_t n_attr = ds.n_attributes();
  if (n_inst == 0) throw std::invalid_argument("empty dataset");
  const std::size_t widest = std::size_t{1}
                             << static_cast<std::size_t>(
                                    std::min(param_.depth - 1, 24));
  const std::size_t hist_bytes = widest * static_cast<std::size_t>(n_attr) *
                                 static_cast<std::size_t>(n_bins_) *
                                 (sizeof(GHPair) + sizeof(std::int32_t));
  if (hist_bytes > dev_.config().global_mem_bytes / 4) {
    throw std::invalid_argument(
        "histogram method infeasible: per-level histograms need " +
        std::to_string(hist_bytes >> 20) +
        " MiB (dense over nodes x attributes x bins)");
  }

  // ---- quantise: per-attribute quantile cuts, per-entry bin ids -----------
  std::vector<BinCuts> cuts(static_cast<std::size_t>(n_attr));
  {
    std::vector<std::vector<float>> columns(static_cast<std::size_t>(n_attr));
    for (const auto& e : ds.entries()) {
      columns[static_cast<std::size_t>(e.attr)].push_back(e.value);
    }
    for (std::int64_t a = 0; a < n_attr; ++a) {
      cuts[static_cast<std::size_t>(a)] =
          build_cuts(std::move(columns[static_cast<std::size_t>(a)]), n_bins_);
    }
  }
  std::vector<std::int32_t> h_attr(static_cast<std::size_t>(ds.n_entries()));
  std::vector<std::uint16_t> h_bin(static_cast<std::size_t>(ds.n_entries()));
  {
    std::size_t k = 0;
    for (std::int64_t i = 0; i < n_inst; ++i) {
      for (const auto& e : ds.instance(i)) {
        h_attr[k] = e.attr;
        h_bin[k] = static_cast<std::uint16_t>(
            cuts[static_cast<std::size_t>(e.attr)].bin_of(e.value));
        ++k;
      }
    }
  }
  auto d_row = dev_.to_device<std::int64_t>(ds.row_offsets());
  auto d_attr = dev_.to_device<std::int32_t>(h_attr);
  auto d_bin = dev_.to_device<std::uint16_t>(h_bin);
  auto d_labels = dev_.to_device<float>(ds.labels());

  // Per-instance state (reuses the exact trainer's gradient kernels through
  // a minimally-populated TrainState).
  detail::TrainState st(dev_, param_, *loss_);
  st.n_inst = n_inst;
  st.n_attr = n_attr;
  st.grad = dev_.alloc<double>(static_cast<std::size_t>(n_inst));
  st.hess = dev_.alloc<double>(static_cast<std::size_t>(n_inst));
  st.y_pred = dev_.alloc<float>(static_cast<std::size_t>(n_inst));
  st.node_of = dev_.alloc<std::int32_t>(static_cast<std::size_t>(n_inst));
  prim::fill(dev_, st.y_pred, static_cast<float>(param_.base_score));

  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));
  const double lambda = param_.lambda;
  const std::int64_t bins = n_bins_;

  for (int t = 0; t < param_.n_trees; ++t) {
    if (t > 0) detail::update_predictions_smart(st, report.trees.back());
    detail::compute_gradients(st, d_labels);
    prim::fill(dev_, st.node_of, std::int32_t{0});

    report.trees.emplace_back();
    Tree& tree = report.trees.back();

    ActiveNode root;
    root.tree_node = 0;
    root.sum_g = prim::reduce_sum<double>(dev_, st.grad, "hist_root_sum_g");
    root.sum_h = prim::reduce_sum<double>(dev_, st.hess, "hist_root_sum_h");
    root.count = n_inst;
    std::vector<ActiveNode> active{root};

    for (int level = 0; level < param_.depth && !active.empty(); ++level) {
      const auto n_slots = static_cast<std::int64_t>(active.size());

      // slot lookup per tree node.
      std::vector<std::int32_t> slot_of(static_cast<std::size_t>(tree.n_nodes()),
                                        -1);
      for (std::size_t s = 0; s < active.size(); ++s) {
        slot_of[static_cast<std::size_t>(active[s].tree_node)] =
            static_cast<std::int32_t>(s);
      }
      auto d_slot_of = detail::upload(dev_, slot_of);

      // ---- one-pass histogram build (the hist method's whole find phase).
      const auto hist_cells = static_cast<std::size_t>(n_slots) *
                              static_cast<std::size_t>(n_attr) *
                              static_cast<std::size_t>(bins);
      auto hist = dev_.alloc<GHPair>(hist_cells);
      auto hist_cnt = dev_.alloc<std::int32_t>(hist_cells);
      prim::fill(dev_, hist_cnt, std::int32_t{0});
      {
        auto row = d_row.span();
        auto ea = d_attr.span();
        auto eb = d_bin.span();
        auto g = st.grad.span();
        auto h = st.hess.span();
        auto node_of = st.node_of.span();
        auto so = d_slot_of.span();
        auto hs = hist.span();
        auto hc = hist_cnt.span();
        dev_.launch("hist_build", device::grid_for(n_inst, kBlockDim),
                    kBlockDim, [&](BlockCtx& b) {
                      std::uint64_t touched = 0;
                      b.for_each_thread([&](std::int64_t i) {
                        if (i >= n_inst) return;
                        const auto u = static_cast<std::size_t>(i);
                        const std::int32_t slot =
                            so[static_cast<std::size_t>(node_of[u])];
                        if (slot < 0) return;
                        const GHPair gh{g[u], h[u]};
                        for (std::int64_t e = row[u]; e < row[u + 1]; ++e) {
                          const auto eu = static_cast<std::size_t>(e);
                          const auto cell = static_cast<std::size_t>(
                              (static_cast<std::int64_t>(slot) * n_attr +
                               ea[eu]) * bins + eb[eu]);
                          hs[cell] += gh;
                          ++hc[cell];
                          ++touched;
                        }
                      });
                      b.work(touched);
                      b.mem_coalesced(touched * 6 +
                                      elems_in_block(b, n_inst) * 24);
                      b.atomic(touched);  // histogram cells are shared
                    });
      }

      // ---- pick the best bin boundary per node (host walk; charged as a
      //      device reduction over the histogram cells).
      dev_.launch("hist_find_best",
                  device::grid_for(static_cast<std::int64_t>(hist_cells),
                                   kBlockDim),
                  kBlockDim, [&](BlockCtx& b) {
                    const auto m = elems_in_block(
                        b, static_cast<std::int64_t>(hist_cells));
                    b.work(m);
                    b.mem_coalesced(m * (sizeof(GHPair) + 4));
                  });
      std::vector<SplitDecision> best(active.size());
      for (std::int64_t s = 0; s < n_slots; ++s) {
        const ActiveNode& node = active[static_cast<std::size_t>(s)];
        for (std::int64_t a = 0; a < n_attr; ++a) {
          const auto base =
              static_cast<std::size_t>((s * n_attr + a) * bins);
          GHPair present{};
          std::int64_t present_cnt = 0;
          const auto& abins = cuts[static_cast<std::size_t>(a)].bin_low;
          const auto n_abins = static_cast<std::int64_t>(abins.size());
          for (std::int64_t bb = 0; bb < n_abins; ++bb) {
            present += hist[base + static_cast<std::size_t>(bb)];
            present_cnt += hist_cnt[base + static_cast<std::size_t>(bb)];
          }
          const std::int64_t miss = node.count - present_cnt;
          const double miss_g = node.sum_g - present.g;
          const double miss_h = node.sum_h - present.h;

          GHPair left{};
          std::int64_t left_cnt = 0;
          for (std::int64_t bb = 0; bb + 1 < n_abins || (miss > 0 && bb < n_abins);
               ++bb) {
            if (bb >= n_abins) break;
            const auto cell = base + static_cast<std::size_t>(bb);
            left += hist[cell];
            left_cnt += hist_cnt[cell];
            if (hist_cnt[cell] == 0) continue;  // empty bin: same boundary

            double gain_r = 0.0;
            if (left_cnt > 0 && node.count - left_cnt > 0) {
              gain_r = split_gain(left.g, left.h, node.sum_g - left.g,
                                  node.sum_h - left.h, lambda);
            }
            double gain_l = 0.0;
            if (miss > 0 && present_cnt - left_cnt > 0) {
              gain_l = split_gain(left.g + miss_g, left.h + miss_h,
                                  node.sum_g - left.g - miss_g,
                                  node.sum_h - left.h - miss_h, lambda);
            }
            const bool go_left_default = gain_l > gain_r;
            const double gain = go_left_default ? gain_l : gain_r;
            auto& bd = best[static_cast<std::size_t>(s)];
            if (gain > bd.gain) {
              bd.valid = true;
              bd.gain = gain;
              bd.attr = static_cast<std::int32_t>(a);
              bd.bin = static_cast<int>(bb);
              bd.split_value = abins[static_cast<std::size_t>(bb)];
              bd.default_left = go_left_default;
              bd.left.sum_g = left.g + (go_left_default ? miss_g : 0.0);
              bd.left.sum_h = left.h + (go_left_default ? miss_h : 0.0);
              bd.left.count = left_cnt + (go_left_default ? miss : 0);
              bd.right.sum_g = node.sum_g - bd.left.sum_g;
              bd.right.sum_h = node.sum_h - bd.left.sum_h;
              bd.right.count = node.count - bd.left.count;
            }
          }
        }
      }

      // ---- apply: only the instance->node map moves (no partition).
      std::vector<ActiveNode> next;
      std::vector<std::int32_t> sp_attr(active.size(), -1);
      std::vector<std::int32_t> sp_bin(active.size(), -1);
      std::vector<std::int32_t> sp_left(active.size(), -1);
      std::vector<std::int32_t> sp_right(active.size(), -1);
      std::vector<std::uint8_t> sp_defl(active.size(), 0);
      bool any_split = false;
      for (std::size_t s = 0; s < active.size(); ++s) {
        const ActiveNode& node = active[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        const SplitDecision& bdec = best[s];
        if (bdec.valid && bdec.gain > param_.gamma) {
          const auto [l, r] = tree.split(node.tree_node, bdec.attr,
                                         bdec.split_value, bdec.default_left,
                                         bdec.gain);
          sp_attr[s] = bdec.attr;
          sp_bin[s] = bdec.bin;
          sp_left[s] = l;
          sp_right[s] = r;
          sp_defl[s] = bdec.default_left ? 1 : 0;
          ActiveNode left = bdec.left;
          left.tree_node = l;
          ActiveNode right = bdec.right;
          right.tree_node = r;
          next.push_back(left);
          next.push_back(right);
          any_split = true;
        } else {
          tn.weight =
              param_.eta * leaf_weight(node.sum_g, node.sum_h, lambda);
        }
      }
      if (!any_split) {
        active.clear();
        break;
      }
      auto d_sattr = detail::upload(dev_, sp_attr);
      auto d_sbin = detail::upload(dev_, sp_bin);
      auto d_sleft = detail::upload(dev_, sp_left);
      auto d_sright = detail::upload(dev_, sp_right);
      auto d_sdefl = detail::upload(dev_, sp_defl);
      {
        auto row = d_row.span();
        auto ea = d_attr.span();
        auto eb = d_bin.span();
        auto node_of = st.node_of.span();
        auto so = d_slot_of.span();
        auto sa = d_sattr.span();
        auto sb = d_sbin.span();
        auto sl = d_sleft.span();
        auto sr = d_sright.span();
        auto sd = d_sdefl.span();
        dev_.launch("hist_update_positions",
                    device::grid_for(n_inst, kBlockDim), kBlockDim,
                    [&](BlockCtx& b) {
                      std::uint64_t probes = 0;
                      b.for_each_thread([&](std::int64_t i) {
                        if (i >= n_inst) return;
                        const auto u = static_cast<std::size_t>(i);
                        const std::int32_t slot =
                            so[static_cast<std::size_t>(node_of[u])];
                        if (slot < 0 ||
                            sa[static_cast<std::size_t>(slot)] < 0) {
                          return;
                        }
                        const auto su = static_cast<std::size_t>(slot);
                        // Binary search the row for the split attribute.
                        const std::int32_t want = sa[su];
                        std::int64_t lo = row[u], hi = row[u + 1];
                        int found_bin = -1;
                        while (lo < hi) {
                          const std::int64_t mid = (lo + hi) / 2;
                          const auto mu = static_cast<std::size_t>(mid);
                          if (ea[mu] < want) {
                            lo = mid + 1;
                          } else if (ea[mu] > want) {
                            hi = mid;
                          } else {
                            found_bin = eb[mu];
                            break;
                          }
                          ++probes;
                        }
                        const bool go_left = found_bin >= 0
                                                 ? found_bin <= sb[su]
                                                 : sd[su] != 0;
                        node_of[u] = go_left ? sl[su] : sr[su];
                      });
                      b.work(probes + elems_in_block(b, n_inst));
                      b.mem_irregular(probes);
                      b.mem_coalesced(elems_in_block(b, n_inst) * 12);
                    });
      }
      active = std::move(next);
    }
    for (const ActiveNode& node : active) {
      auto& tn = tree.node(node.tree_node);
      tn.weight = param_.eta * leaf_weight(node.sum_g, node.sum_h, lambda);
      tn.n_instances = node.count;
      tn.sum_g = node.sum_g;
      tn.sum_h = node.sum_h;
    }
    active.clear();
  }

  detail::update_predictions_smart(st, report.trees.back());
  const auto final_pred = dev_.to_host(st.y_pred);
  report.train_scores.assign(final_pred.begin(), final_pred.end());
  report.modeled_seconds = dev_.elapsed_seconds() - modeled_start;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt::baseline
