#include "baselines/xgb_gpu_dense.h"

#include <vector>

#include "device/device_memory.h"

namespace gbdt::baseline {

std::size_t dense_gpu_footprint_bytes(std::int64_t cardinality,
                                      std::int64_t dimension, int depth) {
  const auto cells = static_cast<std::size_t>(cardinality) *
                     static_cast<std::size_t>(dimension);
  // value (4 B) + sorted position (4 B) + instance id (4 B), double-buffered
  // for the partition passes.
  const std::size_t dense = cells * 12 * 2;
  // Node interleaving: one (g, h) copy per node of the widest level.
  const std::size_t widest =
      std::size_t{1} << static_cast<std::size_t>(std::min(depth - 1, 20));
  const std::size_t interleave =
      static_cast<std::size_t>(cardinality) * 16 * widest;
  return dense + interleave;
}

data::Dataset densify(const data::Dataset& ds) {
  data::Dataset out(ds.n_attributes());
  std::vector<data::Entry> row(static_cast<std::size_t>(ds.n_attributes()));
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    for (std::int64_t a = 0; a < ds.n_attributes(); ++a) {
      row[static_cast<std::size_t>(a)] = {static_cast<std::int32_t>(a), 0.f};
    }
    for (const auto& e : ds.instance(i)) {
      row[static_cast<std::size_t>(e.attr)].value = e.value;
    }
    out.add_instance(row, ds.labels()[static_cast<std::size_t>(i)]);
  }
  return out;
}

DenseGpuOutcome train_xgb_gpu_dense(const device::DeviceConfig& cfg,
                                    const data::Dataset& ds, GBDTParam param,
                                    std::int64_t paper_cardinality,
                                    std::int64_t paper_dimension) {
  DenseGpuOutcome out;
  out.budget_bytes = cfg.global_mem_bytes;
  const std::int64_t card =
      paper_cardinality > 0 ? paper_cardinality : ds.n_instances();
  const std::int64_t dim =
      paper_dimension > 0 ? paper_dimension : ds.n_attributes();
  out.required_bytes = dense_gpu_footprint_bytes(card, dim, param.depth);
  if (out.required_bytes > out.budget_bytes) {
    out.oom = true;
    out.note = "dense representation needs " +
               std::to_string(out.required_bytes >> 20) + " MiB, device has " +
               std::to_string(out.budget_bytes >> 20) + " MiB";
    return out;
  }

  param.dense_layout = true;
  param.use_rle = false;  // the plugin supports only the dense layout
  param.force_rle = false;
  device::Device dev(cfg);
  try {
    const auto dense = densify(ds);
    GpuGbdtTrainer trainer(dev, param);
    out.report = trainer.train(dense);
    out.ran = true;
    out.note = "ok (missing values treated as 0)";
  } catch (const device::DeviceOutOfMemory& e) {
    out.oom = true;
    out.note = e.what();
  }
  return out;
}

}  // namespace gbdt::baseline
