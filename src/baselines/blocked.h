// Host mirrors of the device's blocked floating-point reductions.
//
// The paper reports that GPU-GBDT and CPU XGBoost construct *identical*
// trees.  To reproduce that bit-for-bit, the CPU baseline must accumulate
// gradients in the same association order as the device kernels (256-element
// tiles, per-tile partial sums, sequential combination).  These helpers
// replicate primitives/reduce.h and primitives/segmented.h exactly.
#pragma once

#include <cstdint>
#include <span>

namespace gbdt::baseline {

inline constexpr std::int64_t kTile = 256;  // == prim::kBlockDim

/// Mirrors prim::reduce_sum<double>: per-tile sums, then a sequential sum of
/// the tile partials.
[[nodiscard]] double blocked_sum(std::span<const double> v);

/// Mirrors prim::segmented_inclusive_scan_by_key<double>: per-tile local
/// scans resetting at key changes, a sequential carry chain over tiles, and
/// a leading-run fixup.  Keys must be non-decreasing.
void blocked_seg_scan(std::span<const double> v,
                      std::span<const std::int32_t> keys,
                      std::span<double> out);

}  // namespace gbdt::baseline
