// XGBoost-style exact-greedy CPU trainer: the paper's "xgbst-1" (sequential)
// and "xgbst-40" (multi-threaded) baselines.
//
// The algorithm is the same exact greedy split enumeration over sorted
// attribute lists that XGBoost's exact tree method uses, with node-level and
// attribute-level parallelism (paper Section II-D).  Execution here is
// serial and instrumented; the thread count enters through the analytic CPU
// cost model (see cpu_model.h) — this host has one core, so Table II's
// thread-scaling column cannot be measured directly (DESIGN.md section 2).
//
// The floating-point accumulation order deliberately mirrors the device
// kernels (baselines/blocked.h), so this trainer produces *identical* trees
// to GPU-GBDT — the property the paper verifies ("we have compared the trees
// constructed by GPU-GBDT and the CPU-based XGBoost, and found that the
// trees are identical").
#pragma once

#include <memory>
#include <vector>

#include "baselines/cpu_model.h"
#include "core/loss.h"
#include "core/param.h"
#include "core/tree.h"
#include "data/dataset.h"

namespace gbdt::baseline {

struct CpuTrainReport {
  std::vector<Tree> trees;
  double base_score = 0.0;
  std::vector<double> train_scores;
  double wall_seconds = 0.0;

  CpuCounters total;
  CpuCounters find_split;   // the phase the paper attributes ~75% of time to
  CpuCounters split_node;
  CpuCounters gradients;

  /// Modeled seconds at a given thread count ("xgbst-1" = 1, "xgbst-40" = 40).
  [[nodiscard]] double modeled_seconds(const device::CpuConfig& cfg,
                                       int threads) const {
    return cpu_modeled_seconds(cfg, total, threads);
  }
  /// Fraction of modeled single-thread time spent finding splits.
  [[nodiscard]] double find_split_fraction(const device::CpuConfig& cfg) const;
};

class XgbExactTrainer {
 public:
  explicit XgbExactTrainer(GBDTParam param);

  [[nodiscard]] CpuTrainReport train(const data::Dataset& ds);

  [[nodiscard]] const GBDTParam& param() const { return param_; }

 private:
  GBDTParam param_;
  std::unique_ptr<Loss> loss_;
};

}  // namespace gbdt::baseline
