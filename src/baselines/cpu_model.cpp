#include "baselines/cpu_model.h"

#include <algorithm>

namespace gbdt::baseline {

double cpu_modeled_seconds(const device::CpuConfig& cfg, const CpuCounters& c,
                           int threads) {
  threads = std::max(1, threads);
  const double throughput =
      cfg.clock_ghz * 1e9 * cfg.ipc * cfg.parallel_speedup(threads);
  const double compute = static_cast<double>(c.work) / throughput;

  const double bw = std::min(cfg.mem_bandwidth_gbps,
                             threads * cfg.per_thread_bandwidth_gbps) *
                    1e9;
  const double memory =
      (static_cast<double>(c.stream_bytes) +
       static_cast<double>(c.irregular) * cfg.irregular_transaction_bytes *
           cfg.irregular_penalty) /
      bw;
  return std::max(compute, memory);
}

}  // namespace gbdt::baseline
