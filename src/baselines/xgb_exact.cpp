#include "baselines/xgb_exact.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "baselines/blocked.h"
#include "data/csc_matrix.h"

namespace gbdt::baseline {

namespace {

struct ActiveNode {
  std::int32_t tree_node = 0;
  double sum_g = 0.0;
  double sum_h = 0.0;
  std::int64_t count = 0;
};

struct BestSplit {
  bool valid = false;
  double gain = 0.0;
  std::int32_t attr = -1;
  float split_value = 0.f;
  bool default_left = false;
  std::int64_t seg = -1;
  std::int64_t pos = -1;
  ActiveNode left, right;
};

struct State {
  State(const GBDTParam& p, const Loss& l) : param(p), loss(l) {}

  const GBDTParam& param;
  const Loss& loss;
  std::int64_t n_inst = 0;
  std::int64_t n_attr = 0;

  // Original root-level attribute lists (reused by every tree).
  std::vector<float> orig_values;
  std::vector<std::int32_t> orig_inst;
  std::vector<std::int64_t> orig_offsets;

  // Working copy partitioned as the tree grows.
  std::vector<float> values;
  std::vector<std::int32_t> inst;
  std::vector<std::int64_t> seg_offsets;

  std::vector<double> grad, hess;
  std::vector<float> y_pred;
  std::vector<std::int32_t> node_of;

  std::vector<ActiveNode> active;
  Tree* tree = nullptr;

  CpuTrainReport* report = nullptr;

  [[nodiscard]] std::int64_t n_seg() const {
    return static_cast<std::int64_t>(active.size()) * n_attr;
  }
  [[nodiscard]] std::int64_t n_elems() const {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Finds the best split of every active node: exact greedy enumeration over
/// the sorted attribute lists with the device's accumulation order.
std::vector<BestSplit> find_splits(State& st) {
  const std::int64_t n = st.n_elems();
  const std::int64_t n_seg = st.n_seg();
  const std::int64_t n_attr = st.n_attr;
  const double lambda = st.param.lambda;
  std::vector<BestSplit> out(st.active.size());
  CpuCounters& c = st.report->find_split;
  if (n == 0) return out;

  // Segment keys (the CPU analogue of SetKey's output).
  std::vector<std::int32_t> keys(static_cast<std::size_t>(n));
  for (std::int64_t s = 0; s < n_seg; ++s) {
    for (std::int64_t e = st.seg_offsets[static_cast<std::size_t>(s)];
         e < st.seg_offsets[static_cast<std::size_t>(s) + 1]; ++e) {
      keys[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(s);
    }
  }
  // Gather gradients into attribute order (random access by instance id).
  std::vector<double> ge(static_cast<std::size_t>(n));
  std::vector<double> he(static_cast<std::size_t>(n));
  for (std::int64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::size_t>(e);
    const auto x = static_cast<std::size_t>(st.inst[u]);
    ge[u] = st.grad[x];
    he[u] = st.hess[x];
  }
  // Prefix sums per segment, in the device's blocked association order.
  std::vector<double> gl(static_cast<std::size_t>(n));
  std::vector<double> hl(static_cast<std::size_t>(n));
  blocked_seg_scan(ge, keys, gl);
  blocked_seg_scan(he, keys, hl);

  // Present totals per segment.
  std::vector<double> seg_g(static_cast<std::size_t>(n_seg), 0.0);
  std::vector<double> seg_h(static_cast<std::size_t>(n_seg), 0.0);
  for (std::int64_t s = 0; s < n_seg; ++s) {
    const std::int64_t hi = st.seg_offsets[static_cast<std::size_t>(s) + 1];
    if (st.seg_offsets[static_cast<std::size_t>(s)] != hi) {
      seg_g[static_cast<std::size_t>(s)] = gl[static_cast<std::size_t>(hi - 1)];
      seg_h[static_cast<std::size_t>(s)] = hl[static_cast<std::size_t>(hi - 1)];
    }
  }
  // Gains per candidate with duplicate suppression and both missing-value
  // directions — identical expressions to the device kernel.
  std::vector<double> gains(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> dirs(static_cast<std::size_t>(n));
  for (std::int64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::size_t>(e);
    const auto seg = static_cast<std::size_t>(keys[u]);
    const std::int64_t seg_lo = st.seg_offsets[seg];
    const std::int64_t seg_hi = st.seg_offsets[seg + 1];
    if (e + 1 < seg_hi && st.values[u + 1] == st.values[u]) {
      gains[u] = 0.0;
      dirs[u] = 0;
      continue;
    }
    const auto slot =
        static_cast<std::size_t>(static_cast<std::int64_t>(seg) / n_attr);
    const double node_g = st.active[slot].sum_g;
    const double node_h = st.active[slot].sum_h;
    const std::int64_t cnt = st.active[slot].count;
    const std::int64_t seg_len = seg_hi - seg_lo;
    const std::int64_t miss = cnt - seg_len;
    const double miss_g = node_g - seg_g[seg];
    const double miss_h = node_h - seg_h[seg];
    const std::int64_t pos = e - seg_lo + 1;
    const double glp = gl[u];
    const double hlp = hl[u];

    double gain_r = 0.0;
    if (pos > 0 && cnt - pos > 0) {
      gain_r = split_gain(glp, hlp, node_g - glp, node_h - hlp, lambda);
    }
    double gain_l = 0.0;
    if (miss > 0 && seg_len - pos > 0) {
      gain_l = split_gain(glp + miss_g, hlp + miss_h, node_g - glp - miss_g,
                          node_h - hlp - miss_h, lambda);
    }
    if (gain_l > gain_r) {
      gains[u] = gain_l;
      dirs[u] = 1;
    } else {
      gains[u] = gain_r;
      dirs[u] = 0;
    }
  }
  // Best candidate per segment, then per node (ties -> lowest index, exactly
  // like the device reductions).
  std::vector<double> best_seg_val(static_cast<std::size_t>(n_seg));
  std::vector<std::int64_t> best_seg_idx(static_cast<std::size_t>(n_seg));
  for (std::int64_t s = 0; s < n_seg; ++s) {
    double best = 0.0;
    std::int64_t best_i = -1;
    for (std::int64_t e = st.seg_offsets[static_cast<std::size_t>(s)];
         e < st.seg_offsets[static_cast<std::size_t>(s) + 1]; ++e) {
      const double val = gains[static_cast<std::size_t>(e)];
      if (best_i < 0 || val > best) {
        best = val;
        best_i = e;
      }
    }
    best_seg_val[static_cast<std::size_t>(s)] = best_i < 0 ? 0.0 : best;
    best_seg_idx[static_cast<std::size_t>(s)] = best_i;
  }
  for (std::size_t slot = 0; slot < st.active.size(); ++slot) {
    double best = 0.0;
    std::int64_t best_s = -1;
    for (std::int64_t s = static_cast<std::int64_t>(slot) * n_attr;
         s < static_cast<std::int64_t>(slot + 1) * n_attr; ++s) {
      const double val = best_seg_val[static_cast<std::size_t>(s)];
      if (best_s < 0 || val > best) {
        best = val;
        best_s = s;
      }
    }
    BestSplit& b = out[slot];
    if (best_s < 0) continue;
    const std::int64_t pos = best_seg_idx[static_cast<std::size_t>(best_s)];
    if (pos < 0) continue;
    if (!(best > 0.0)) continue;

    const ActiveNode& node = st.active[slot];
    const auto useg = static_cast<std::size_t>(best_s);
    const auto upos = static_cast<std::size_t>(pos);
    b.valid = true;
    b.gain = best;
    b.seg = best_s;
    b.pos = pos;
    b.attr = static_cast<std::int32_t>(best_s % n_attr);
    b.split_value = st.values[upos];
    b.default_left = dirs[upos] != 0;

    const std::int64_t seg_lo = st.seg_offsets[useg];
    const std::int64_t seg_hi = st.seg_offsets[useg + 1];
    const std::int64_t present_left = pos - seg_lo + 1;
    const std::int64_t seg_len = seg_hi - seg_lo;
    const std::int64_t miss = node.count - seg_len;
    double left_g = gl[upos];
    double left_h = hl[upos];
    std::int64_t left_cnt = present_left;
    if (b.default_left) {
      left_g += node.sum_g - seg_g[useg];
      left_h += node.sum_h - seg_h[useg];
      left_cnt += miss;
    }
    b.left.sum_g = left_g;
    b.left.sum_h = left_h;
    b.left.count = left_cnt;
    b.right.sum_g = node.sum_g - left_g;
    b.right.sum_h = node.sum_h - left_h;
    b.right.count = node.count - left_cnt;
  }
  // What XGBoost's exact method actually executes is one fused enumeration
  // per column and level, run TWICE (forward and backward, for the two
  // missing-value default directions): walk the sorted column, fetch the
  // instance's (g, h) pair (one cache miss — the pair is contiguous), look
  // up the instance's node position, maintain per-node running sums,
  // evaluate the gain inline and track the best.  The mirrored multi-pass
  // computation above exists only to guarantee trees bit-identical to the
  // device trainer; the counters model the two fused passes.
  c.work += static_cast<std::uint64_t>(2 * n) * 8;  // sums + gain + compare
  c.stream_bytes += static_cast<std::uint64_t>(2 * n) * 8;  // value + inst
  c.irregular += static_cast<std::uint64_t>(2 * n);         // (g, h) fetch

  // Per-(node, column) bookkeeping: the exact method visits every column of
  // every node each level — loop setup, column block metadata, the node
  // statistics it accumulates into, and the per-(node, column) best-split
  // slot are all scattered accesses.  This is what makes CPU XGBoost
  // expensive on high-dimensional data (news20/log1p in the paper), and
  // what the GPU amortises with SetKey's many-segments-per-block
  // assignment.
  c.work += static_cast<std::uint64_t>(n_seg) * 64;
  c.irregular += static_cast<std::uint64_t>(n_seg) * 6;
  return out;
}

struct LevelPlan {
  struct Entry {
    bool split = false;
    std::int64_t chosen_seg = -1;
    std::int64_t best_pos = -1;
    std::int32_t left_id = -1;
    std::int32_t right_id = -1;
    bool default_left = false;
  };
  std::vector<Entry> per_slot;
  std::vector<ActiveNode> next_active;
  std::vector<std::int32_t> next_slot_of_tree;
};

void apply_splits(State& st, const LevelPlan& plan) {
  const std::int64_t n = st.n_elems();
  const std::int64_t n_attr = st.n_attr;
  CpuCounters& c = st.report->split_node;

  // Default-child assignment for every instance of a splitting node.
  std::vector<std::int32_t> default_child(
      static_cast<std::size_t>(st.tree->n_nodes()), -1);
  for (std::size_t s = 0; s < plan.per_slot.size(); ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    default_child[static_cast<std::size_t>(st.active[s].tree_node)] =
        e.default_left ? e.left_id : e.right_id;
  }
  for (std::int64_t i = 0; i < st.n_inst; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const std::int32_t child =
        default_child[static_cast<std::size_t>(st.node_of[u])];
    if (child >= 0) st.node_of[u] = child;
  }
  c.work += static_cast<std::uint64_t>(st.n_inst);
  c.stream_bytes += static_cast<std::uint64_t>(st.n_inst) * 8;

  // Exact side through the winning segments.
  for (std::size_t s = 0; s < plan.per_slot.size(); ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    const auto seg = static_cast<std::size_t>(e.chosen_seg);
    for (std::int64_t x = st.seg_offsets[seg]; x < st.seg_offsets[seg + 1];
         ++x) {
      const auto u = static_cast<std::size_t>(x);
      st.node_of[static_cast<std::size_t>(st.inst[u])] =
          x <= e.best_pos ? e.left_id : e.right_id;
      c.irregular += 1;
    }
  }
  c.stream_bytes += static_cast<std::uint64_t>(n) * 8;

  // Stable multiway partition by (next slot, attribute) — order-preserving,
  // exactly like the device's histogram partition.
  const auto n_new_slots = static_cast<std::int64_t>(plan.next_active.size());
  const std::int64_t n_parts = n_new_slots * n_attr;
  std::vector<std::int32_t> part(static_cast<std::size_t>(n));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n_parts) + 1, 0);
  std::int64_t seg_cursor = 0;
  for (std::int64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::size_t>(e);
    while (e >= st.seg_offsets[static_cast<std::size_t>(seg_cursor) + 1]) {
      ++seg_cursor;
    }
    const std::int32_t ns = plan.next_slot_of_tree[static_cast<std::size_t>(
        st.node_of[static_cast<std::size_t>(st.inst[u])])];
    part[u] = ns < 0 ? -1
                     : static_cast<std::int32_t>(ns * n_attr +
                                                 seg_cursor % n_attr);
    if (part[u] >= 0) ++counts[static_cast<std::size_t>(part[u]) + 1];
  }
  for (std::int64_t p = 1; p <= n_parts; ++p) {
    counts[static_cast<std::size_t>(p)] += counts[static_cast<std::size_t>(p) - 1];
  }
  std::vector<std::int64_t> new_offsets(counts.begin(), counts.end());
  std::vector<std::int64_t> cursor(counts.begin(), counts.end() - 1);
  const std::int64_t new_n = counts[static_cast<std::size_t>(n_parts)];
  std::vector<float> new_values(static_cast<std::size_t>(new_n));
  std::vector<std::int32_t> new_inst(static_cast<std::size_t>(new_n));
  for (std::int64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::size_t>(e);
    if (part[u] < 0) continue;
    const auto dst =
        static_cast<std::size_t>(cursor[static_cast<std::size_t>(part[u])]++);
    new_values[dst] = st.values[u];
    new_inst[dst] = st.inst[u];
  }
  // XGBoost's column blocks are immutable: "splitting" only rewrites the
  // per-instance position array (the default pass above plus the winning
  // columns' walks), so no per-element partition traffic is charged here.
  // The mirrored physical partition below exists only to keep the element
  // layout bit-identical to the device trainer.
  c.work += static_cast<std::uint64_t>(st.n_inst) * 4;
  c.stream_bytes += static_cast<std::uint64_t>(st.n_inst) * 8;

  st.values = std::move(new_values);
  st.inst = std::move(new_inst);
  st.seg_offsets = std::move(new_offsets);
}

void finalize_leaf(State& st, const ActiveNode& node) {
  auto& tn = st.tree->node(node.tree_node);
  tn.weight =
      st.param.eta * leaf_weight(node.sum_g, node.sum_h, st.param.lambda);
  tn.n_instances = node.count;
  tn.sum_g = node.sum_g;
  tn.sum_h = node.sum_h;
}

void update_predictions(State& st, const Tree& tree) {
  for (std::int64_t i = 0; i < st.n_inst; ++i) {
    const auto u = static_cast<std::size_t>(i);
    st.y_pred[u] = static_cast<float>(
        st.y_pred[u] +
        tree.node(st.node_of[u]).weight);
  }
  auto& c = st.report->gradients;
  c.work += static_cast<std::uint64_t>(st.n_inst);
  c.stream_bytes += static_cast<std::uint64_t>(st.n_inst) * 12;
  c.irregular += static_cast<std::uint64_t>(st.n_inst) / 8 + 1;
}

}  // namespace

double CpuTrainReport::find_split_fraction(
    const device::CpuConfig& cfg) const {
  const double whole = cpu_modeled_seconds(cfg, total, 1);
  return whole <= 0.0 ? 0.0 : cpu_modeled_seconds(cfg, find_split, 1) / whole;
}

XgbExactTrainer::XgbExactTrainer(GBDTParam param)
    : param_(std::move(param)), loss_(make_loss(param_.loss)) {
  if (param_.depth < 1) throw std::invalid_argument("depth must be >= 1");
  if (param_.n_trees < 1) throw std::invalid_argument("n_trees must be >= 1");
}

CpuTrainReport XgbExactTrainer::train(const data::Dataset& ds) {
  const auto wall_start = std::chrono::steady_clock::now();
  CpuTrainReport report;
  report.base_score = param_.base_score;

  State st(param_, *loss_);
  st.report = &report;
  st.n_inst = ds.n_instances();
  st.n_attr = ds.n_attributes();
  if (st.n_inst == 0) throw std::invalid_argument("empty dataset");

  {
    auto csc = data::build_csc_host(ds);
    st.orig_values = std::move(csc.values);
    st.orig_inst = std::move(csc.inst_ids);
    st.orig_offsets = std::move(csc.col_offsets);
  }

  st.grad.resize(static_cast<std::size_t>(st.n_inst));
  st.hess.resize(static_cast<std::size_t>(st.n_inst));
  st.y_pred.assign(static_cast<std::size_t>(st.n_inst),
                   static_cast<float>(param_.base_score));
  st.node_of.assign(static_cast<std::size_t>(st.n_inst), 0);

  report.trees.reserve(static_cast<std::size_t>(param_.n_trees));
  for (int t = 0; t < param_.n_trees; ++t) {
    if (t > 0) update_predictions(st, report.trees.back());
    for (std::int64_t i = 0; i < st.n_inst; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const GradPair gp =
          loss_->gradient(ds.labels()[u], st.y_pred[u]);
      st.grad[u] = gp.g;
      st.hess[u] = gp.h;
    }
    report.gradients.work += static_cast<std::uint64_t>(st.n_inst);
    report.gradients.stream_bytes += static_cast<std::uint64_t>(st.n_inst) * 24;

    // Fresh working copy.
    st.values = st.orig_values;
    st.inst = st.orig_inst;
    st.seg_offsets = st.orig_offsets;
    std::fill(st.node_of.begin(), st.node_of.end(), 0);
    // Position-array reset (XGBoost keeps the sorted blocks immutable and
    // resets per-instance positions instead of copying the columns).
    report.split_node.stream_bytes +=
        static_cast<std::uint64_t>(st.n_inst) * 4;

    report.trees.emplace_back();
    Tree& tree = report.trees.back();
    st.tree = &tree;

    ActiveNode root;
    root.tree_node = 0;
    root.sum_g = blocked_sum(st.grad);
    root.sum_h = blocked_sum(st.hess);
    root.count = st.n_inst;
    report.gradients.work += static_cast<std::uint64_t>(2 * st.n_inst);
    report.gradients.stream_bytes +=
        static_cast<std::uint64_t>(st.n_inst) * 16;
    st.active.assign(1, root);

    for (int level = 0; level < param_.depth && !st.active.empty(); ++level) {
      const auto best = find_splits(st);

      LevelPlan plan;
      plan.per_slot.resize(st.active.size());
      for (std::size_t s = 0; s < st.active.size(); ++s) {
        const ActiveNode& node = st.active[s];
        const BestSplit& b = best[s];
        auto& tn = tree.node(node.tree_node);
        tn.n_instances = node.count;
        tn.sum_g = node.sum_g;
        tn.sum_h = node.sum_h;
        if (b.valid && b.gain > param_.gamma) {
          const auto [l, r] = tree.split(node.tree_node, b.attr,
                                         b.split_value, b.default_left,
                                         b.gain);
          auto& e = plan.per_slot[s];
          e.split = true;
          e.chosen_seg = b.seg;
          e.best_pos = b.pos;
          e.left_id = l;
          e.right_id = r;
          e.default_left = b.default_left;
          ActiveNode left = b.left;
          left.tree_node = l;
          ActiveNode right = b.right;
          right.tree_node = r;
          plan.next_active.push_back(left);
          plan.next_active.push_back(right);
        } else {
          finalize_leaf(st, node);
        }
      }
      if (plan.next_active.empty()) {
        st.active.clear();
        break;
      }
      plan.next_slot_of_tree.assign(static_cast<std::size_t>(tree.n_nodes()),
                                    -1);
      for (std::size_t k = 0; k < plan.next_active.size(); ++k) {
        plan.next_slot_of_tree[static_cast<std::size_t>(
            plan.next_active[k].tree_node)] = static_cast<std::int32_t>(k);
      }
      apply_splits(st, plan);
      st.active = std::move(plan.next_active);
    }
    for (const ActiveNode& node : st.active) finalize_leaf(st, node);
    st.active.clear();
  }

  update_predictions(st, report.trees.back());
  report.train_scores.assign(st.y_pred.begin(), st.y_pred.end());

  report.total = report.find_split;
  report.total += report.split_node;
  report.total += report.gradients;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace gbdt::baseline
