// Operation counting and the analytic cost model for the CPU baselines.
//
// The baseline trainer counts the same quantities the simulated device
// counts (parallel work items, streaming bytes, irregular transactions), and
// this model converts them into modeled seconds for a given thread count —
// the "xgbst-1" and "xgbst-40" columns of the paper's Table II.
#pragma once

#include <cstdint>

#include "device/device_config.h"

namespace gbdt::baseline {

struct CpuCounters {
  std::uint64_t work = 0;          // per-element work items
  std::uint64_t stream_bytes = 0;  // sequential memory traffic
  std::uint64_t irregular = 0;     // random-access transactions

  CpuCounters& operator+=(const CpuCounters& o) {
    work += o.work;
    stream_bytes += o.stream_bytes;
    irregular += o.irregular;
    return *this;
  }
};

/// Modeled seconds to execute `c` with `threads` threads on `cfg`:
///   max(compute, memory)
///   compute = work / (clock * ipc * parallel_speedup(threads))
///   memory  = bytes / min(aggregate_bw, threads * per_thread_bw)
[[nodiscard]] double cpu_modeled_seconds(const device::CpuConfig& cfg,
                                         const CpuCounters& c, int threads);

}  // namespace gbdt::baseline
