// The simulated device: allocator + kernel launcher + modeled timeline.
//
// Usage mirrors CUDA host code:
//
//   Device dev(DeviceConfig::titan_x_pascal());
//   auto buf = dev.to_device<float>(host_values);          // PCI-e modeled
//   dev.launch("scale", grid_for(n, 256), 256, [&](BlockCtx& b) {
//     b.for_each_thread([&](std::int64_t i) {
//       if (i < n) buf[i] *= 2.f;
//     });
//     b.mem_coalesced(2 * elems_in_block * sizeof(float));
//   });
//   auto out = dev.to_host(buf);
//
// Kernel bodies run on the host (optionally across a host thread pool, one
// logical block at a time) and *count* their work; the CostModel converts
// counts into modeled device seconds accumulated on the timeline.
//
// Streams and events (CUDA-style, see DESIGN.md §5h): `stream()` creates a
// new FIFO stream; `launch_async`/`copy_to_device_async`/`copy_to_host_async`
// enqueue work on it; `record_event`/`wait_event` add cross-stream ordering
// edges; `sync(stream)`/`sync()` block the host.  Each stream carries its
// own modeled clock — an op starts at max(stream clock, host clock) — so
// independent streams overlap in modeled time (`overlap_ratio()`), while
// `elapsed_seconds()` becomes the makespan across streams.  The default
// stream (0, all the legacy entry points) keeps blocking legacy semantics:
// a default-stream op starts after every stream's clock and propagates its
// completion to all of them, so fully synchronous programs behave exactly
// as before.  Every operation feeds the happens-before race detector
// (analysis/hb_race.h) when GBDT_RACE_DETECT is armed, and
// `set_schedule_fuzz(seed)` defers async ops into per-stream queues drained
// in a seeded random-but-legal interleaving, so schedule-sensitive bugs
// surface as data differences.  GBDT_SYNC_STREAMS=1 (or
// set_stream_async_enabled(false)) is the escape hatch: clients that
// consult stream_async_enabled() fall back to the default stream.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/access_audit.h"
#include "analysis/hb_race.h"
#include "device/cost_model.h"
#include "device/device_config.h"
#include "device/device_memory.h"
#include "device/kernel_stats.h"
#include "device/thread_pool.h"
#include "obs/trace.h"

namespace gbdt::device {

/// Stream id of the legacy synchronous path.
inline constexpr int kDefaultStream = 0;

namespace detail {
inline std::atomic<int>& stream_async_state() {
  // -1: unresolved (consult the environment), 0: sync, 1: async.
  static std::atomic<int> state{-1};
  return state;
}
}  // namespace detail

/// Whether stream-aware clients should actually use concurrent streams.
/// GBDT_SYNC_STREAMS=1 ("1"/"on"/"true") disables them — the escape hatch
/// that routes every op through the default stream, restoring the fully
/// synchronous schedule; set_stream_async_enabled overrides the
/// environment (tests, the fuzz harness).
[[nodiscard]] inline bool stream_async_enabled() {
  int s = detail::stream_async_state().load(std::memory_order_relaxed);
  if (s < 0) {
    const char* v = std::getenv("GBDT_SYNC_STREAMS");
    const std::string e = v == nullptr ? "" : v;
    const bool sync = e == "1" || e == "on" || e == "true" || e == "ON" ||
                      e == "TRUE";
    s = sync ? 0 : 1;
    detail::stream_async_state().store(s, std::memory_order_relaxed);
  }
  return s != 0;
}
inline void set_stream_async_enabled(bool enabled) {
  detail::stream_async_state().store(enabled ? 1 : 0,
                                     std::memory_order_relaxed);
}

/// Number of blocks needed to cover n items with block_dim threads.
[[nodiscard]] constexpr std::int64_t grid_for(std::int64_t n, int block_dim) {
  return n <= 0 ? 1 : (n + block_dim - 1) / block_dim;
}

/// Per-block execution context handed to kernel bodies.
class BlockCtx {
 public:
  BlockCtx(std::int64_t block_idx, int block_dim, std::int64_t grid_dim,
           analysis::LaunchAuditor* audit = nullptr,
           analysis::LaunchFootprint* race = nullptr)
      : block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        audit_(audit),
        race_(race) {
    stats_.blocks = 1;
  }

  [[nodiscard]] std::int64_t block_idx() const { return block_idx_; }
  [[nodiscard]] int block_dim() const { return block_dim_; }
  [[nodiscard]] std::int64_t grid_dim() const { return grid_dim_; }

  /// Global index of this block's thread `tid` (the usual CUDA formula).
  [[nodiscard]] std::int64_t global_index(int tid) const {
    return block_idx_ * block_dim_ + tid;
  }

  /// Runs f(global_index) for each logical thread of the block and counts one
  /// work unit per thread.
  template <typename F>
  void for_each_thread(F&& f) {
    for (int t = 0; t < block_dim_; ++t) f(global_index(t));
    stats_.thread_work += static_cast<std::uint64_t>(block_dim_);
  }

  /// Extra compute work units (e.g. per-thread loops over several items).
  void work(std::uint64_t n) { stats_.thread_work += n; }
  /// Streaming (coalesced) global-memory traffic in bytes.
  void mem_coalesced(std::uint64_t bytes) { stats_.coalesced_bytes += bytes; }
  /// Irregular (random) global-memory transactions.
  void mem_irregular(std::uint64_t n) { stats_.irregular_accesses += n; }
  /// Global atomic operations.
  void atomic(std::uint64_t n) { stats_.atomic_ops += n; }
  /// Floating point operations.
  void flop(std::uint64_t n) { stats_.flops += n; }

  // ---- Access declarations (see src/analysis/access_audit.h and
  // src/analysis/hb_race.h) ------------------------------------------------
  //
  // Kernel bodies declare the element intervals this block touches of each
  // buffer/span; the declarations feed the per-launch access auditor and/or
  // the cross-launch happens-before race detector when either is armed,
  // otherwise they are null-pointer checks.  `s` is anything with
  // data()/size() (DeviceBuffer, std::span, std::vector).

  /// Declares that this block reads s[lo, lo+count).
  template <typename S>
  void reads(const S& s, std::int64_t lo, std::int64_t count = 1) {
    if (audit_ != nullptr) {
      audit_->record(block_idx_, s.data(), sizeof(*s.data()), s.size(), lo,
                     count, /*is_write=*/false);
    }
    if (race_ != nullptr) {
      race_->record(s.data(), sizeof(*s.data()), s.size(), lo, count,
                    /*is_write=*/false);
    }
  }

  /// Declares that this block writes s[lo, lo+count).
  template <typename S>
  void writes(const S& s, std::int64_t lo, std::int64_t count = 1) {
    if (audit_ != nullptr) {
      audit_->record(block_idx_, s.data(), sizeof(*s.data()), s.size(), lo,
                     count, /*is_write=*/true);
    }
    if (race_ != nullptr) {
      race_->record(s.data(), sizeof(*s.data()), s.size(), lo, count,
                    /*is_write=*/true);
    }
  }

  /// Declares this block's contiguous tile of a 1:1 n-element kernel:
  /// elements [block_idx*block_dim, min((block_idx+1)*block_dim, n)).
  template <typename S>
  void reads_tile(const S& s, std::int64_t n) {
    if (audit_ != nullptr || race_ != nullptr) {
      reads(s, tile_lo(n), tile_count(n));
    }
  }
  template <typename S>
  void writes_tile(const S& s, std::int64_t n) {
    if (audit_ != nullptr || race_ != nullptr) {
      writes(s, tile_lo(n), tile_count(n));
    }
  }

  [[nodiscard]] const KernelStats& stats() const { return stats_; }
  [[nodiscard]] KernelStats take_stats() {
    stats_.max_block_work = stats_.thread_work;
    return stats_;
  }

 private:
  [[nodiscard]] std::int64_t tile_lo(std::int64_t n) const {
    return std::min(block_idx_ * block_dim_, n);
  }
  [[nodiscard]] std::int64_t tile_count(std::int64_t n) const {
    return std::min<std::int64_t>(block_dim_, n - tile_lo(n));
  }

  std::int64_t block_idx_;
  int block_dim_;
  std::int64_t grid_dim_;
  analysis::LaunchAuditor* audit_;
  analysis::LaunchFootprint* race_;
  KernelStats stats_;
};

/// Aggregate record of one kernel name over the device lifetime.
struct KernelRecord {
  std::uint64_t launches = 0;
  double seconds = 0.0;
  KernelStats stats;
};

/// Aggregate record of one labeled async transfer over the device lifetime.
struct TransferRecord {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// One stream's modeled clock and busy time.
struct StreamStats {
  double clock = 0.0;         // modeled completion time of the last op
  double busy_seconds = 0.0;  // sum of this stream's op durations
  std::uint64_t ops = 0;
};

/// Modeled time accumulated by a Device.
///
/// kernel_seconds/transfer_seconds stay the *busy* sums (what a single
/// serialized stream would take); makespan_seconds is the end of the latest
/// op across all stream clocks.  For purely default-stream histories the
/// two coincide.
struct Timeline {
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  double makespan_seconds = 0.0;
  // Advanced by sync() and by default-stream ops (legacy blocking): later
  // enqueues on any stream start here.
  double host_clock = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::map<std::string, KernelRecord, std::less<>> kernels;
  /// Labeled async transfers only (the default-stream copy helpers stay
  /// anonymous, as before).
  std::map<std::string, TransferRecord, std::less<>> stream_transfers;
  std::vector<StreamStats> streams;  // indexed by stream id

  [[nodiscard]] double total_seconds() const {
    return kernel_seconds + transfer_seconds;
  }
};

class Device {
 public:
  /// host_workers: host threads executing blocks (1 = deterministic serial
  /// execution; modeled time never depends on this).
  explicit Device(DeviceConfig cfg, unsigned host_workers = 1)
      : cost_(std::move(cfg)),
        allocator_(cost_.config().global_mem_bytes),
        pool_(host_workers),
        queues_(1) {
    allocator_.set_race_detector(&hb_);
  }

  [[nodiscard]] const DeviceConfig& config() const { return cost_.config(); }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] DeviceAllocator& allocator() { return allocator_; }
  [[nodiscard]] const DeviceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] const Timeline& timeline() const { return timeline_; }

  /// Modeled wall time: the makespan across stream clocks.  Identical to
  /// timeline().total_seconds() for purely default-stream histories.
  [[nodiscard]] double elapsed_seconds() const {
    return timeline_.makespan_seconds;
  }

  /// Fraction of busy seconds hidden by cross-stream overlap:
  /// 1 - makespan / (kernel_seconds + transfer_seconds).  0 for fully
  /// serialized histories.
  [[nodiscard]] double overlap_ratio() const {
    const double busy = timeline_.total_seconds();
    if (busy <= 0.0) return 0.0;
    return std::max(0.0, 1.0 - timeline_.makespan_seconds / busy);
  }

  void reset_timeline() { timeline_ = Timeline{}; }

  /// Allocates an uninitialised device buffer of n elements of T.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t n) {
    return DeviceBuffer<T>(allocator_, n);
  }

  // ---- streams and events ------------------------------------------------

  /// Creates a new stream (FIFO with respect to itself, concurrent with
  /// every other stream).  Stream 0 is the default stream and always
  /// exists.
  [[nodiscard]] int stream() {
    const int s = next_stream_++;
    queues_.resize(static_cast<std::size_t>(next_stream_));
    return s;
  }

  /// Records an event after the work currently enqueued on `stream`;
  /// returns its id for wait_event.
  [[nodiscard]] int record_event(int stream) {
    check_stream(stream);
    const int e = static_cast<int>(events_.size());
    events_.push_back(EventState{});
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      exec_record_event(stream, e);
    } else {
      queues_[static_cast<std::size_t>(stream)].push_back(
          PendingOp{stream, e, PendingOp::Kind::kRecordEvent, {}});
    }
    return e;
  }

  /// Makes all work enqueued on `stream` after this call wait for the
  /// event.  The event must have been recorded (in program order) first.
  void wait_event(int stream, int event) {
    check_stream(stream);
    if (event < 0 || static_cast<std::size_t>(event) >= events_.size()) {
      throw std::logic_error("wait_event: unknown event id");
    }
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      exec_wait_event(stream, event);
    } else {
      queues_[static_cast<std::size_t>(stream)].push_back(
          PendingOp{stream, event, PendingOp::Kind::kWaitEvent, {}});
    }
  }

  /// Blocks the host until `stream` has drained; work enqueued on any
  /// stream afterwards is ordered (and modeled) after it.
  void sync(int stream) {
    check_stream(stream);
    if (defer_) drain_all();
    timeline_.host_clock = std::max(timeline_.host_clock,
                                    stream_stats(stream).clock);
    if (analysis::race_detect_enabled()) hb_.sync_stream(stream);
  }

  /// Blocks the host until every stream has drained.
  void sync() {
    if (defer_) drain_all();
    for (const StreamStats& s : timeline_.streams) {
      timeline_.host_clock = std::max(timeline_.host_clock, s.clock);
    }
    if (analysis::race_detect_enabled()) hb_.sync_all();
  }

  /// Schedule-perturbation mode (the `gbdt_fuzz --race` harness): async ops
  /// enqueue into per-stream queues and are drained at sync points in a
  /// seeded random-but-legal interleaving (any stream head whose event
  /// waits are satisfied may run next).  Modeled clocks and happens-before
  /// state depend only on the op DAG, so they are schedule-invariant; data
  /// produced by *racy* programs is not — which is exactly what the fuzzer
  /// detects.  Spans passed to deferred async ops must stay valid until the
  /// next sync.
  void set_schedule_fuzz(std::uint64_t seed) {
    drain_all();
    defer_ = true;
    fuzz_rng_ = seed;
  }
  void clear_schedule_fuzz() {
    drain_all();
    defer_ = false;
  }

  // ---- kernel launches ---------------------------------------------------

  /// Launches a kernel on the default stream: body(BlockCtx&) is invoked
  /// once per block.  When the access auditor is armed the launch verifies
  /// the block-disjoint access contract at kernel end (throws
  /// analysis::AuditViolation); when the race detector is armed the
  /// declared footprint feeds the happens-before check (throws
  /// analysis::RaceViolation).
  template <typename Body>
  void launch(std::string_view name, std::int64_t grid_dim, int block_dim,
              Body&& body) {
    launch_async(name, kDefaultStream, grid_dim, block_dim,
                 std::forward<Body>(body));
  }

  /// Launches a kernel on `stream`.  The body must capture the spans it
  /// touches by value: in schedule-perturbation mode it runs at a later
  /// drain point.
  template <typename Body>
  void launch_async(std::string_view name, int stream, std::int64_t grid_dim,
                    int block_dim, Body&& body) {
    check_stream(stream);
    if (grid_dim <= 0) grid_dim = 1;
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      auto& b = body;
      exec_kernel(stream, name, grid_dim, block_dim, b);
      return;
    }
    queues_[static_cast<std::size_t>(stream)].push_back(PendingOp{
        stream, -1, PendingOp::Kind::kWork,
        [this, stream, n = std::string(name), grid_dim, block_dim,
         b = std::decay_t<Body>(std::forward<Body>(body))]() mutable {
          exec_kernel(stream, n, grid_dim, block_dim, b);
        }});
  }

  // ---- PCI-e modeled transfers -------------------------------------------

  /// Allocates a device buffer and copies host data into it.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> to_device(std::span<const T> host) {
    DeviceBuffer<T> buf(allocator_, host.size());
    copy_to_device(host, buf);
    return buf;
  }
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> to_device(const std::vector<T>& host) {
    return to_device(std::span<const T>(host));
  }

  template <typename T>
  void copy_to_device(std::span<const T> host, DeviceBuffer<T>& buf) {
    if (defer_) drain_all();
    exec_copy_to_device(kDefaultStream, "h2d", host, buf);
  }

  template <typename T>
  [[nodiscard]] std::vector<T> to_host(const DeviceBuffer<T>& buf) {
    if (defer_) drain_all();
    std::vector<T> out(buf.size());
    exec_copy_to_host(kDefaultStream, "d2h", buf, std::span<T>(out));
    return out;
  }

  /// Copies host[0, host.size()) into buf[0, host.size()) on `stream`.
  /// Both `host`'s storage and `buf` must stay alive until the stream is
  /// synced.
  template <typename T>
  void copy_to_device_async(std::string_view name, int stream,
                            std::span<const T> host, DeviceBuffer<T>& buf) {
    check_stream(stream);
    if (host.size() > buf.size()) {
      throw std::invalid_argument("copy_to_device_async: host span larger "
                                  "than device buffer");
    }
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      exec_copy_to_device(stream, name, host, buf);
      return;
    }
    queues_[static_cast<std::size_t>(stream)].push_back(PendingOp{
        stream, -1, PendingOp::Kind::kWork,
        [this, stream, n = std::string(name), host, bufp = &buf]() {
          exec_copy_to_device(stream, n, host, *bufp);
        }});
  }

  /// Copies buf[0, out.size()) into `out` on `stream`; same lifetime rules.
  template <typename T>
  void copy_to_host_async(std::string_view name, int stream,
                          const DeviceBuffer<T>& buf, std::span<T> out) {
    check_stream(stream);
    if (out.size() > buf.size()) {
      throw std::invalid_argument("copy_to_host_async: host span larger "
                                  "than device buffer");
    }
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      exec_copy_to_host(stream, name, buf, out);
      return;
    }
    queues_[static_cast<std::size_t>(stream)].push_back(PendingOp{
        stream, -1, PendingOp::Kind::kWork,
        [this, stream, n = std::string(name), bufp = &buf, out]() {
          exec_copy_to_host(stream, n, *bufp, out);
        }});
  }

  // ---- modeled peer (inter-device) transfers ------------------------------

  /// Models one inter-device transfer leg of `seconds` on `stream`.  Device
  /// memory is host-visible in the simulation, so the wire carries no bits:
  /// the caller moves the data itself and passes the modeled leg time it
  /// computed from the interconnect (latency + bytes / bandwidth — PCI-e
  /// switch or NVLink, see multigpu/allreduce.h).  `footprint` declares the
  /// element intervals the leg reads (sender side) and/or writes (receiver
  /// side) so the happens-before detector orders it against kernels and
  /// copies touching the same spans; build it with
  /// analysis::LaunchFootprint::record + take.
  void peer_transfer_async(std::string_view name, int stream, double seconds,
                           std::uint64_t bytes,
                           analysis::LaunchFootprint::Map footprint = {}) {
    check_stream(stream);
    if (!defer_ || stream == kDefaultStream) {
      if (defer_) drain_all();
      exec_peer_transfer(stream, name, seconds, bytes, footprint);
      return;
    }
    queues_[static_cast<std::size_t>(stream)].push_back(PendingOp{
        stream, -1, PendingOp::Kind::kWork,
        [this, stream, n = std::string(name), seconds, bytes,
         f = std::move(footprint)]() mutable {
          exec_peer_transfer(stream, n, seconds, bytes, f);
        }});
  }

 private:
  struct EventState {
    bool fired = false;
    double time = 0.0;
  };
  struct PendingOp {
    int stream;
    int event;  // kRecordEvent / kWaitEvent only
    enum class Kind { kWork, kRecordEvent, kWaitEvent } kind;
    std::function<void()> run;  // kWork only
  };

  void check_stream(int stream) const {
    if (stream < 0 || stream >= next_stream_) {
      throw std::logic_error("unknown stream id " + std::to_string(stream));
    }
  }

  [[nodiscard]] StreamStats& stream_stats(int stream) {
    auto& v = timeline_.streams;
    if (v.size() <= static_cast<std::size_t>(stream)) {
      v.resize(static_cast<std::size_t>(stream) + 1);
    }
    return v[static_cast<std::size_t>(stream)];
  }

  /// Advances the stream clock by one op of `secs` and folds the result
  /// into the makespan.  Default-stream ops join every clock before and
  /// propagate to every clock after (legacy blocking semantics).
  void note_op_time(int stream, double secs) {
    StreamStats& st = stream_stats(stream);
    double start = std::max(st.clock, timeline_.host_clock);
    if (stream == kDefaultStream) {
      for (const StreamStats& o : timeline_.streams) {
        start = std::max(start, o.clock);
      }
    }
    const double end = start + secs;
    st.clock = end;
    st.busy_seconds += secs;
    ++st.ops;
    if (stream == kDefaultStream) {
      for (StreamStats& o : timeline_.streams) {
        o.clock = std::max(o.clock, end);
      }
      // Streams whose first op comes later (their stats are materialized
      // lazily) still start after this op: the host clock carries the
      // barrier, mirroring the detector's host_vc join.
      timeline_.host_clock = std::max(timeline_.host_clock, end);
    }
    timeline_.makespan_seconds = std::max(timeline_.makespan_seconds, end);
  }

  template <typename Body>
  void exec_kernel(int stream, std::string_view name, std::int64_t grid_dim,
                   int block_dim, Body& body) {
    analysis::LaunchAuditor* audit =
        analysis::audit_enabled() ? &auditor_ : nullptr;
    analysis::LaunchFootprint fp;
    analysis::LaunchFootprint* race =
        analysis::race_detect_enabled() ? &fp : nullptr;
    if (audit != nullptr) audit->begin(name);
    KernelStats total;
    try {
      if (pool_.worker_count() <= 1 || grid_dim == 1) {
        for (std::int64_t blk = 0; blk < grid_dim; ++blk) {
          BlockCtx ctx(blk, block_dim, grid_dim, audit, race);
          body(ctx);
          total += ctx.take_stats();
        }
      } else {
        std::mutex merge_mu;
        // Chunk blocks so pool dispatch overhead stays small.
        const std::uint64_t chunks =
            std::min<std::uint64_t>(grid_dim, 4ull * pool_.worker_count());
        const std::int64_t per_chunk = (grid_dim + chunks - 1) / chunks;
        pool_.run_chunks(chunks, [&](std::uint64_t c) {
          KernelStats local;
          const std::int64_t lo = static_cast<std::int64_t>(c) * per_chunk;
          const std::int64_t hi =
              std::min<std::int64_t>(lo + per_chunk, grid_dim);
          for (std::int64_t blk = lo; blk < hi; ++blk) {
            BlockCtx ctx(blk, block_dim, grid_dim, audit, race);
            body(ctx);
            local += ctx.take_stats();
          }
          std::lock_guard lk(merge_mu);
          total += local;
        });
      }
      if (audit != nullptr) audit->finish();  // throws on contract violation
    } catch (...) {
      if (audit != nullptr) audit->abandon();
      throw;
    }
    if (race != nullptr) hb_.on_op(stream, name, "kernel", fp.take());
    record_kernel(stream, name, total);
  }

  template <typename T>
  void exec_copy_to_device(int stream, std::string_view name,
                           std::span<const T> host, DeviceBuffer<T>& buf) {
    if (analysis::race_detect_enabled()) {
      analysis::LaunchFootprint fp;
      fp.record(buf.data(), sizeof(T), buf.size(), 0,
                static_cast<std::int64_t>(host.size()), /*is_write=*/true);
      hb_.on_op(stream, name, "copy", fp.take());
    }
    std::copy(host.begin(), host.end(), buf.data());
    record_transfer(stream, name, host.size_bytes(), /*to_device=*/true);
  }

  template <typename T>
  void exec_copy_to_host(int stream, std::string_view name,
                         const DeviceBuffer<T>& buf, std::span<T> out) {
    if (analysis::race_detect_enabled()) {
      analysis::LaunchFootprint fp;
      fp.record(buf.data(), sizeof(T), buf.size(), 0,
                static_cast<std::int64_t>(out.size()), /*is_write=*/false);
      hb_.on_op(stream, name, "copy", fp.take());
    }
    std::copy_n(buf.data(), out.size(), out.begin());
    record_transfer(stream, name, out.size_bytes(), /*to_device=*/false);
  }

  void exec_peer_transfer(int stream, std::string_view name, double secs,
                          std::uint64_t bytes,
                          analysis::LaunchFootprint::Map& footprint) {
    if (analysis::race_detect_enabled()) {
      hb_.on_op(stream, name, "peer", std::move(footprint));
    }
    timeline_.transfer_seconds += secs;
    ++timeline_.transfers;
    // Peer bytes are neither H2D nor D2H: bytes_to_device/host stay PCI-e
    // only; per-label aggregation lands in stream_transfers like any other
    // labeled async transfer.
    if (stream != kDefaultStream) {
      auto it = timeline_.stream_transfers.find(name);
      if (it == timeline_.stream_transfers.end()) {
        it = timeline_.stream_transfers
                 .emplace(std::string(name), TransferRecord{})
                 .first;
      }
      ++it->second.count;
      it->second.bytes += bytes;
      it->second.seconds += secs;
    }
    note_op_time(stream, secs);
    obs::on_transfer(bytes, secs);
  }

  void exec_record_event(int stream, int e) {
    EventState& ev = events_[static_cast<std::size_t>(e)];
    ev.fired = true;
    ev.time = stream_stats(stream).clock;
    if (analysis::race_detect_enabled()) hb_.record_event(stream, e);
  }

  void exec_wait_event(int stream, int e) {
    const EventState& ev = events_[static_cast<std::size_t>(e)];
    if (!ev.fired) {
      throw std::logic_error("wait_event before the event was recorded");
    }
    StreamStats& st = stream_stats(stream);
    st.clock = std::max(st.clock, ev.time);
    if (analysis::race_detect_enabled()) hb_.wait_event(stream, e);
  }

  /// Runs every pending deferred op, repeatedly picking a seeded-random
  /// *ready* stream head: the queues are FIFO per stream and a wait_event
  /// head is only ready once its event has fired — so every drain order is
  /// a legal schedule.
  void drain_all() {
    while (true) {
      ready_.clear();
      bool pending = false;
      for (std::size_t s = 0; s < queues_.size(); ++s) {
        if (queues_[s].empty()) continue;
        pending = true;
        const PendingOp& head = queues_[s].front();
        if (head.kind == PendingOp::Kind::kWaitEvent &&
            !events_[static_cast<std::size_t>(head.event)].fired) {
          continue;
        }
        ready_.push_back(s);
      }
      if (!pending) return;
      if (ready_.empty()) {
        throw std::logic_error(
            "stream deadlock: every pending op waits on an unrecorded event");
      }
      // SplitMix64 step; seeded by set_schedule_fuzz for replayability.
      fuzz_rng_ += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = fuzz_rng_;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      const std::size_t s = ready_[z % ready_.size()];
      PendingOp op = std::move(queues_[s].front());
      queues_[s].pop_front();
      switch (op.kind) {
        case PendingOp::Kind::kWork:
          op.run();
          break;
        case PendingOp::Kind::kRecordEvent:
          exec_record_event(op.stream, op.event);
          break;
        case PendingOp::Kind::kWaitEvent:
          exec_wait_event(op.stream, op.event);
          break;
      }
    }
  }

  void record_kernel(int stream, std::string_view name, const KernelStats& s) {
    const double secs = cost_.kernel_seconds(s);
    timeline_.kernel_seconds += secs;
    ++timeline_.launches;
    auto it = timeline_.kernels.find(name);
    if (it == timeline_.kernels.end()) {
      it = timeline_.kernels.emplace(std::string(name), KernelRecord{}).first;
    }
    ++it->second.launches;
    it->second.seconds += secs;
    it->second.stats += s;
    note_op_time(stream, secs);
    // Per-kernel-label stats roll up into the enclosing trace span (a single
    // relaxed load when no ObsSession is active).
    obs::on_kernel(name, s, secs);
  }

  void record_transfer(int stream, std::string_view name, std::uint64_t bytes,
                       bool to_device) {
    const double secs = cost_.transfer_seconds(bytes);
    timeline_.transfer_seconds += secs;
    ++timeline_.transfers;
    (to_device ? timeline_.bytes_to_device : timeline_.bytes_to_host) += bytes;
    if (stream != kDefaultStream) {
      auto it = timeline_.stream_transfers.find(name);
      if (it == timeline_.stream_transfers.end()) {
        it = timeline_.stream_transfers
                 .emplace(std::string(name), TransferRecord{})
                 .first;
      }
      ++it->second.count;
      it->second.bytes += bytes;
      it->second.seconds += secs;
    }
    note_op_time(stream, secs);
    obs::on_transfer(bytes, secs);
  }

  CostModel cost_;
  DeviceAllocator allocator_;
  ThreadPool pool_;
  Timeline timeline_;
  // Per-device shadow maps: multi-GPU setups audit each shard independently.
  analysis::LaunchAuditor auditor_;
  analysis::HbRaceDetector hb_;
  int next_stream_ = 1;
  std::vector<EventState> events_;
  // Schedule-perturbation state (set_schedule_fuzz).
  bool defer_ = false;
  std::uint64_t fuzz_rng_ = 0;
  std::vector<std::deque<PendingOp>> queues_;
  std::vector<std::size_t> ready_;
};

}  // namespace gbdt::device
