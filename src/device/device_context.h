// The simulated device: allocator + kernel launcher + modeled timeline.
//
// Usage mirrors CUDA host code:
//
//   Device dev(DeviceConfig::titan_x_pascal());
//   auto buf = dev.to_device<float>(host_values);          // PCI-e modeled
//   dev.launch("scale", grid_for(n, 256), 256, [&](BlockCtx& b) {
//     b.for_each_thread([&](std::int64_t i) {
//       if (i < n) buf[i] *= 2.f;
//     });
//     b.mem_coalesced(2 * elems_in_block * sizeof(float));
//   });
//   auto out = dev.to_host(buf);
//
// Kernel bodies run on the host (optionally across a host thread pool, one
// logical block at a time) and *count* their work; the CostModel converts
// counts into modeled device seconds accumulated on the timeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/access_audit.h"
#include "device/cost_model.h"
#include "device/device_config.h"
#include "device/device_memory.h"
#include "device/kernel_stats.h"
#include "device/thread_pool.h"
#include "obs/trace.h"

namespace gbdt::device {

/// Number of blocks needed to cover n items with block_dim threads.
[[nodiscard]] constexpr std::int64_t grid_for(std::int64_t n, int block_dim) {
  return n <= 0 ? 1 : (n + block_dim - 1) / block_dim;
}

/// Per-block execution context handed to kernel bodies.
class BlockCtx {
 public:
  BlockCtx(std::int64_t block_idx, int block_dim, std::int64_t grid_dim,
           analysis::LaunchAuditor* audit = nullptr)
      : block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        audit_(audit) {
    stats_.blocks = 1;
  }

  [[nodiscard]] std::int64_t block_idx() const { return block_idx_; }
  [[nodiscard]] int block_dim() const { return block_dim_; }
  [[nodiscard]] std::int64_t grid_dim() const { return grid_dim_; }

  /// Global index of this block's thread `tid` (the usual CUDA formula).
  [[nodiscard]] std::int64_t global_index(int tid) const {
    return block_idx_ * block_dim_ + tid;
  }

  /// Runs f(global_index) for each logical thread of the block and counts one
  /// work unit per thread.
  template <typename F>
  void for_each_thread(F&& f) {
    for (int t = 0; t < block_dim_; ++t) f(global_index(t));
    stats_.thread_work += static_cast<std::uint64_t>(block_dim_);
  }

  /// Extra compute work units (e.g. per-thread loops over several items).
  void work(std::uint64_t n) { stats_.thread_work += n; }
  /// Streaming (coalesced) global-memory traffic in bytes.
  void mem_coalesced(std::uint64_t bytes) { stats_.coalesced_bytes += bytes; }
  /// Irregular (random) global-memory transactions.
  void mem_irregular(std::uint64_t n) { stats_.irregular_accesses += n; }
  /// Global atomic operations.
  void atomic(std::uint64_t n) { stats_.atomic_ops += n; }
  /// Floating point operations.
  void flop(std::uint64_t n) { stats_.flops += n; }

  // ---- Access declarations (see src/analysis/access_audit.h) -------------
  //
  // Kernel bodies declare the element intervals this block touches of each
  // buffer/span; when the access auditor is armed the declarations feed the
  // launch's shadow maps, otherwise they are a null-pointer check.  `s` is
  // anything with data()/size() (DeviceBuffer, std::span, std::vector).

  /// Declares that this block reads s[lo, lo+count).
  template <typename S>
  void reads(const S& s, std::int64_t lo, std::int64_t count = 1) {
    if (audit_ != nullptr) {
      audit_->record(block_idx_, s.data(), sizeof(*s.data()), s.size(), lo,
                     count, /*is_write=*/false);
    }
  }

  /// Declares that this block writes s[lo, lo+count).
  template <typename S>
  void writes(const S& s, std::int64_t lo, std::int64_t count = 1) {
    if (audit_ != nullptr) {
      audit_->record(block_idx_, s.data(), sizeof(*s.data()), s.size(), lo,
                     count, /*is_write=*/true);
    }
  }

  /// Declares this block's contiguous tile of a 1:1 n-element kernel:
  /// elements [block_idx*block_dim, min((block_idx+1)*block_dim, n)).
  template <typename S>
  void reads_tile(const S& s, std::int64_t n) {
    if (audit_ != nullptr) reads(s, tile_lo(n), tile_count(n));
  }
  template <typename S>
  void writes_tile(const S& s, std::int64_t n) {
    if (audit_ != nullptr) writes(s, tile_lo(n), tile_count(n));
  }

  [[nodiscard]] const KernelStats& stats() const { return stats_; }
  [[nodiscard]] KernelStats take_stats() {
    stats_.max_block_work = stats_.thread_work;
    return stats_;
  }

 private:
  [[nodiscard]] std::int64_t tile_lo(std::int64_t n) const {
    return std::min(block_idx_ * block_dim_, n);
  }
  [[nodiscard]] std::int64_t tile_count(std::int64_t n) const {
    return std::min<std::int64_t>(block_dim_, n - tile_lo(n));
  }

  std::int64_t block_idx_;
  int block_dim_;
  std::int64_t grid_dim_;
  analysis::LaunchAuditor* audit_;
  KernelStats stats_;
};

/// Aggregate record of one kernel name over the device lifetime.
struct KernelRecord {
  std::uint64_t launches = 0;
  double seconds = 0.0;
  KernelStats stats;
};

/// Modeled time accumulated by a Device.
struct Timeline {
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::map<std::string, KernelRecord, std::less<>> kernels;

  [[nodiscard]] double total_seconds() const {
    return kernel_seconds + transfer_seconds;
  }
};

class Device {
 public:
  /// host_workers: host threads executing blocks (1 = deterministic serial
  /// execution; modeled time never depends on this).
  explicit Device(DeviceConfig cfg, unsigned host_workers = 1)
      : cost_(std::move(cfg)),
        allocator_(cost_.config().global_mem_bytes),
        pool_(host_workers) {}

  [[nodiscard]] const DeviceConfig& config() const { return cost_.config(); }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] DeviceAllocator& allocator() { return allocator_; }
  [[nodiscard]] const DeviceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] const Timeline& timeline() const { return timeline_; }
  [[nodiscard]] double elapsed_seconds() const {
    return timeline_.total_seconds();
  }

  void reset_timeline() { timeline_ = Timeline{}; }

  /// Allocates an uninitialised device buffer of n elements of T.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t n) {
    return DeviceBuffer<T>(allocator_, n);
  }

  /// Launches a kernel: body(BlockCtx&) is invoked once per block.  When the
  /// access auditor is armed the launch verifies the block-disjoint access
  /// contract at kernel end (throws analysis::AuditViolation).
  template <typename Body>
  void launch(std::string_view name, std::int64_t grid_dim, int block_dim,
              Body&& body) {
    if (grid_dim <= 0) grid_dim = 1;
    analysis::LaunchAuditor* audit =
        analysis::audit_enabled() ? &auditor_ : nullptr;
    if (audit != nullptr) audit->begin(name);
    KernelStats total;
    try {
      if (pool_.worker_count() <= 1 || grid_dim == 1) {
        for (std::int64_t blk = 0; blk < grid_dim; ++blk) {
          BlockCtx ctx(blk, block_dim, grid_dim, audit);
          body(ctx);
          total += ctx.take_stats();
        }
      } else {
        std::mutex merge_mu;
        // Chunk blocks so pool dispatch overhead stays small.
        const std::uint64_t chunks =
            std::min<std::uint64_t>(grid_dim, 4ull * pool_.worker_count());
        const std::int64_t per_chunk = (grid_dim + chunks - 1) / chunks;
        pool_.run_chunks(chunks, [&](std::uint64_t c) {
          KernelStats local;
          const std::int64_t lo = static_cast<std::int64_t>(c) * per_chunk;
          const std::int64_t hi =
              std::min<std::int64_t>(lo + per_chunk, grid_dim);
          for (std::int64_t blk = lo; blk < hi; ++blk) {
            BlockCtx ctx(blk, block_dim, grid_dim, audit);
            body(ctx);
            local += ctx.take_stats();
          }
          std::lock_guard lk(merge_mu);
          total += local;
        });
      }
      if (audit != nullptr) audit->finish();  // throws on contract violation
    } catch (...) {
      if (audit != nullptr) audit->abandon();
      throw;
    }
    record_kernel(name, total);
  }

  // ---- PCI-e modeled transfers -------------------------------------------

  /// Allocates a device buffer and copies host data into it.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> to_device(std::span<const T> host) {
    DeviceBuffer<T> buf(allocator_, host.size());
    copy_to_device(host, buf);
    return buf;
  }
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> to_device(const std::vector<T>& host) {
    return to_device(std::span<const T>(host));
  }

  template <typename T>
  void copy_to_device(std::span<const T> host, DeviceBuffer<T>& buf) {
    std::copy(host.begin(), host.end(), buf.data());
    record_transfer(host.size_bytes(), /*to_device=*/true);
  }

  template <typename T>
  [[nodiscard]] std::vector<T> to_host(const DeviceBuffer<T>& buf) {
    std::vector<T> out(buf.span().begin(), buf.span().end());
    record_transfer(buf.bytes(), /*to_device=*/false);
    return out;
  }

 private:
  void record_kernel(std::string_view name, const KernelStats& s) {
    const double secs = cost_.kernel_seconds(s);
    timeline_.kernel_seconds += secs;
    ++timeline_.launches;
    auto it = timeline_.kernels.find(name);
    if (it == timeline_.kernels.end()) {
      it = timeline_.kernels.emplace(std::string(name), KernelRecord{}).first;
    }
    ++it->second.launches;
    it->second.seconds += secs;
    it->second.stats += s;
    // Per-kernel-label stats roll up into the enclosing trace span (a single
    // relaxed load when no ObsSession is active).
    obs::on_kernel(name, s, secs);
  }

  void record_transfer(std::uint64_t bytes, bool to_device) {
    const double secs = cost_.transfer_seconds(bytes);
    timeline_.transfer_seconds += secs;
    ++timeline_.transfers;
    (to_device ? timeline_.bytes_to_device : timeline_.bytes_to_host) += bytes;
    obs::on_transfer(bytes, secs);
  }

  CostModel cost_;
  DeviceAllocator allocator_;
  ThreadPool pool_;
  Timeline timeline_;
  // Per-device shadow maps: multi-GPU setups audit each shard independently.
  analysis::LaunchAuditor auditor_;
};

}  // namespace gbdt::device
