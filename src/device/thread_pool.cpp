#include "device/thread_pool.h"

#include <algorithm>

namespace gbdt::device {

namespace {
thread_local std::int64_t t_current_chunk = -1;

/// RAII setter for the thread-local chunk identity.
struct ChunkScope {
  explicit ChunkScope(std::uint64_t c) {
    t_current_chunk = static_cast<std::int64_t>(c);
  }
  ~ChunkScope() { t_current_chunk = -1; }
};
}  // namespace

std::int64_t ThreadPool::current_chunk() { return t_current_chunk; }

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates, so spawn workers-1 helpers.
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_one_chunk(const std::function<void(std::uint64_t)>& fn,
                               std::uint64_t c) {
  try {
    ChunkScope scope(c);
    fn(c);
    std::lock_guard lk(mu_);
    ++done_chunks_;
    if (done_chunks_ == total_chunks_) cv_done_.notify_all();
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!error_) error_ = std::current_exception();
    // Drain: unclaimed chunks become no-ops so the launch can quiesce.
    // Every *claimed* chunk still reports done exactly once (success or
    // here), so done_chunks_ reaches total_chunks_ without double counting.
    done_chunks_ += total_chunks_ - next_chunk_;
    next_chunk_ = total_chunks_;
    ++done_chunks_;
    if (done_chunks_ == total_chunks_) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::uint64_t chunks,
                            const std::function<void(std::uint64_t)>& fn) {
  if (chunks == 0) return;
  if (threads_.empty()) {
    // Serial: no shared state to unwind, exceptions propagate directly.
    for (std::uint64_t c = 0; c < chunks; ++c) {
      ChunkScope scope(c);
      fn(c);
    }
    return;
  }
  std::uint64_t my_generation = 0;
  {
    std::lock_guard lk(mu_);
    job_ = &fn;
    total_chunks_ = chunks;
    next_chunk_ = 0;
    done_chunks_ = 0;
    error_ = nullptr;
    my_generation = ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread helps drain the chunk queue.
  for (;;) {
    std::uint64_t c = 0;
    {
      std::lock_guard lk(mu_);
      if (next_chunk_ >= total_chunks_) break;
      c = next_chunk_++;
    }
    run_one_chunk(fn, c);
  }
  std::exception_ptr err;
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] {
      return done_chunks_ == total_chunks_ && generation_ == my_generation;
    });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    const std::function<void(std::uint64_t)>* job = nullptr;
    std::uint64_t c = 0;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && next_chunk_ < total_chunks_);
      });
      if (stop_) return;
      job = job_;
      c = next_chunk_++;
    }
    run_one_chunk(*job, c);
  }
}

}  // namespace gbdt::device
