#include "device/cost_model.h"

#include <algorithm>

namespace gbdt::device {

double CostModel::kernel_seconds(const KernelStats& s) const {
  const double launch = cfg_.kernel_launch_us * 1e-6;
  const double schedule = static_cast<double>(s.blocks) *
                          cfg_.block_schedule_ns * 1e-9 / cfg_.num_sms;

  double t_compute =
      static_cast<double>(s.thread_work) / cfg_.compute_throughput();
  // Load-imbalance bound: the kernel cannot finish before its busiest block.
  const double busiest =
      static_cast<double>(s.max_block_work) / cfg_.sm_throughput();
  t_compute = std::max(t_compute, busiest);

  const double bw = cfg_.mem_bandwidth_gbps * 1e9;
  const double streaming = static_cast<double>(s.coalesced_bytes) / bw;
  const double irregular = static_cast<double>(s.irregular_accesses) *
                           cfg_.irregular_transaction_bytes *
                           cfg_.irregular_penalty / bw;
  // Atomics to the same lines serialise; charge a conservative 2 transactions.
  const double atomics = static_cast<double>(s.atomic_ops) * 2.0 *
                         cfg_.irregular_transaction_bytes / bw;
  const double t_memory = streaming + irregular + atomics;

  return launch + schedule + std::max(t_compute, t_memory);
}

double CostModel::transfer_seconds(std::uint64_t bytes) const {
  return cfg_.pcie_latency_us * 1e-6 +
         static_cast<double>(bytes) / (cfg_.pcie_bandwidth_gbps * 1e9);
}

}  // namespace gbdt::device
