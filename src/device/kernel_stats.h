// Counters collected while a simulated kernel executes.
//
// Kernels do real work on the host, but every global-memory touch and every
// logical thread iteration is *counted*; the cost model converts the counts
// into modeled device seconds.  The counters deliberately distinguish
// coalesced streaming traffic from irregular (random) transactions, because
// the paper's optimizations (SmartGD, RLE, order-preserving partitioning) are
// all about converting irregular traffic into streaming traffic or removing
// it entirely.
#pragma once

#include <cstdint>

namespace gbdt::device {

struct KernelStats {
  /// Logical thread iterations (unit of parallel compute work).
  std::uint64_t thread_work = 0;
  /// Bytes moved by coalesced (streaming) global-memory accesses.
  std::uint64_t coalesced_bytes = 0;
  /// Number of irregular (uncoalesced / random) global-memory transactions.
  std::uint64_t irregular_accesses = 0;
  /// Number of global atomic operations.
  std::uint64_t atomic_ops = 0;
  /// Floating point operations (informational; GBDT kernels are memory bound).
  std::uint64_t flops = 0;
  /// Thread blocks executed.
  std::uint64_t blocks = 0;
  /// Largest single-block thread_work, lower-bounds kernel time by one SM.
  std::uint64_t max_block_work = 0;

  KernelStats& operator+=(const KernelStats& o) {
    thread_work += o.thread_work;
    coalesced_bytes += o.coalesced_bytes;
    irregular_accesses += o.irregular_accesses;
    atomic_ops += o.atomic_ops;
    flops += o.flops;
    blocks += o.blocks;
    if (o.max_block_work > max_block_work) max_block_work = o.max_block_work;
    return *this;
  }
};

}  // namespace gbdt::device
