// Capacity-tracked device memory: RAII buffers drawn from a fixed-size pool.
//
// The allocator enforces the simulated board's global-memory capacity; a
// request past the limit throws DeviceOutOfMemory.  This is how the
// repository reproduces the paper's finding that the dense-representation
// XGBoost GPU plugin runs out of memory on most datasets while GPU-GBDT (CSC
// + RLE) does not.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/access_audit.h"
#include "analysis/hb_race.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gbdt::device {

class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t used,
                    std::size_t capacity)
      : std::runtime_error(
            "device out of memory: requested " + std::to_string(requested) +
            " B with " + std::to_string(used) + "/" +
            std::to_string(capacity) + " B in use"),
        requested_(requested),
        used_(used),
        capacity_(capacity) {}

  [[nodiscard]] std::size_t requested() const { return requested_; }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t requested_;
  std::size_t used_;
  std::size_t capacity_;
};

/// Tracks how much of the simulated device memory is in use.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;

  void acquire(std::size_t bytes) {
    if (used_ + bytes > capacity_) {
      throw DeviceOutOfMemory(bytes, used_, capacity_);
    }
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
    ++allocations_;
    // Every fresh device allocation is a global-memory round trip on real
    // hardware; the workspace arena exists to drive this to ~O(1) per level
    // (test_obs asserts it), so the counter is the regression tripwire.
    static obs::Counter& alloc_calls =
        obs::Registry::global().counter("gbdt_device_alloc_calls_total");
    alloc_calls.inc();
    // Feeds per-span high-water marks; one relaxed load when tracing is off.
    obs::note_device_usage(used_);
  }

  /// Returns bytes to the pool.  Releasing more than is in use is an
  /// accounting bug (double release / wrong size); it is counted, reported
  /// to the access auditor when auditing is armed (which aborts — release
  /// runs in destructors, so it cannot throw), and otherwise clamped so
  /// unaudited runs keep their historical behaviour.
  void release(std::size_t bytes) noexcept {
    ++releases_;
    if (bytes > used_) {
      ++over_releases_;
      over_released_bytes_ += bytes - used_;
      analysis::report_over_release(bytes, used_);
      used_ = 0;
    } else {
      used_ -= bytes;
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t allocations() const { return allocations_; }
  [[nodiscard]] std::size_t releases() const { return releases_; }
  [[nodiscard]] std::size_t over_releases() const { return over_releases_; }
  [[nodiscard]] std::size_t over_released_bytes() const {
    return over_released_bytes_;
  }
  [[nodiscard]] std::size_t available() const { return capacity_ - used_; }

  /// Resets the peak-usage watermark (not the current usage).
  void reset_peak() { peak_ = used_; }

  /// Wires the owning Device's happens-before race detector in so buffer
  /// frees drop their shadow access state (address reuse must not inherit
  /// stale last-writer records).
  void set_race_detector(analysis::HbRaceDetector* d) { race_ = d; }
  void note_buffer_free(const void* base) noexcept {
    if (race_ != nullptr && base != nullptr &&
        analysis::race_detect_enabled()) {
      race_->on_free(base);
    }
  }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::size_t allocations_ = 0;
  std::size_t releases_ = 0;
  std::size_t over_releases_ = 0;
  std::size_t over_released_bytes_ = 0;
  analysis::HbRaceDetector* race_ = nullptr;
};

/// RAII array in simulated device memory.
///
/// Host code should move data in and out with the Device's PCI-e copy
/// helpers so the traffic is accounted; kernels receive plain spans.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceAllocator& alloc, std::size_t n) : alloc_(&alloc) {
    alloc_->acquire(n * sizeof(T));
    data_.assign(n, T{});
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : alloc_(o.alloc_), data_(std::move(o.data_)) {
    o.alloc_ = nullptr;
    o.data_.clear();
  }

  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      free();
      alloc_ = o.alloc_;
      data_ = std::move(o.data_);
      o.alloc_ = nullptr;
      o.data_.clear();
    }
    return *this;
  }

  ~DeviceBuffer() { free(); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(T); }

  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  /// Direct element access for test assertions and host-side setup glue.
  /// Bulk data movement must go through Device::copy_to_device /
  /// copy_to_host so PCI-e traffic is modeled.
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void free() {
    if (alloc_ != nullptr) {
      alloc_->note_buffer_free(data_.data());
      alloc_->release(bytes());
      alloc_ = nullptr;
    }
    data_.clear();
    data_.shrink_to_fit();
  }

  /// Shrinks the logical size to n elements, returning memory to the pool.
  void shrink(std::size_t n) {
    if (n >= data_.size()) return;
    const std::size_t freed = (data_.size() - n) * sizeof(T);
    data_.resize(n);
    data_.shrink_to_fit();
    if (alloc_ != nullptr) alloc_->release(freed);
  }

 private:
  DeviceAllocator* alloc_ = nullptr;
  std::vector<T> data_;
};

}  // namespace gbdt::device
