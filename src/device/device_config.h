// Hardware descriptions for the simulated devices.
//
// The simulator executes kernels on the host but converts the *counted* work
// (thread iterations, coalesced bytes, irregular transactions, atomics) into
// modeled seconds using these parameters.  The GPU presets use the public
// specs of the boards the paper evaluates on (Titan X Pascal as the primary
// device, Tesla P100 and K20 for the scaling remark in Section IV); the CPU
// presets describe the paper's 2x Xeon E5-2640v4 workstation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gbdt::device {

/// Parameters of a simulated CUDA-like device.
struct DeviceConfig {
  std::string name;

  /// Number of streaming multiprocessors.
  int num_sms = 28;
  /// CUDA cores per SM.
  int cores_per_sm = 128;
  /// Core clock in GHz.
  double clock_ghz = 1.417;
  /// Sustained instructions-per-cycle per core for the integer/FP mix of the
  /// GBDT kernels (well below peak; split finding is not FMA-dense).
  double ipc = 0.8;

  /// Sustained global-memory bandwidth in GB/s.
  double mem_bandwidth_gbps = 480.0;
  /// Bytes moved per irregular (uncoalesced) transaction.  A random 4-byte
  /// load still fetches a 32-byte sector.
  double irregular_transaction_bytes = 32.0;
  /// Extra multiplier for irregular traffic (TLB/replay pressure).
  double irregular_penalty = 2.0;

  /// Host<->device link bandwidth in GB/s (PCI-e 3.0 x16 effective).
  double pcie_bandwidth_gbps = 12.0;
  /// Fixed cost per host<->device transfer in microseconds.
  double pcie_latency_us = 10.0;

  /// Fixed cost of launching one kernel, in microseconds.  Real CUDA
  /// launches cost ~3-7 us; the default is kept at the low end because the
  /// synthetic dataset analogs are ~10-100x smaller than the paper's
  /// datasets, and fixed per-launch costs would otherwise dominate a regime
  /// they do not dominate at full scale (see EXPERIMENTS.md, calibration).
  double kernel_launch_us = 1.0;
  /// Cost of scheduling one thread block onto an SM, in nanoseconds.  This is
  /// what makes "one block per segment" expensive when there are millions of
  /// segments, and what the paper's Customized SetKey formula amortises.
  double block_schedule_ns = 60.0;

  /// Global memory capacity in bytes.
  std::size_t global_mem_bytes = std::size_t{12} * (1u << 30);

  /// Peak parallel work throughput in (work items)/second.
  [[nodiscard]] double compute_throughput() const {
    return static_cast<double>(num_sms) * cores_per_sm * clock_ghz * 1e9 * ipc;
  }
  /// Work throughput of a single SM, used for the longest-block lower bound.
  [[nodiscard]] double sm_throughput() const {
    return static_cast<double>(cores_per_sm) * clock_ghz * 1e9 * ipc;
  }

  /// NVIDIA Titan X (Pascal): 28 SMs, 3584 cores, 12 GB, 480 GB/s.
  static DeviceConfig titan_x_pascal();
  /// NVIDIA Tesla P100: 56 SMs, 3584 cores, 16 GB, 732 GB/s.
  static DeviceConfig tesla_p100();
  /// NVIDIA Tesla K20: 13 SMs, 2496 cores, 5 GB, 208 GB/s.
  static DeviceConfig tesla_k20();
};

/// Parameters of a simulated CPU used by the baseline cost model.
struct CpuConfig {
  std::string name;
  int cores = 20;
  /// SMT threads available (paper: 40 on the 20-core workstation).
  int threads = 40;
  double clock_ghz = 2.4;
  /// Sustained scalar work per cycle per core for the same kernel mix.
  double ipc = 1.6;
  /// Aggregate memory bandwidth in GB/s (2 sockets x 4ch DDR4-2133).
  double mem_bandwidth_gbps = 120.0;
  /// Bandwidth one thread can draw (GB/s); aggregate bandwidth only becomes
  /// reachable with many threads.
  double per_thread_bandwidth_gbps = 13.0;
  double irregular_transaction_bytes = 64.0;  // full cache line
  double irregular_penalty = 2.0;  // line fetch + TLB/DRAM-row miss share
  /// Parallel efficiency at t threads: Amdahl-like saturation.  Calibrated so
  /// 40 threads on 20 cores yields the 6-11x speedups over 1 thread that
  /// Table II of the paper reports for xgbst-40 vs xgbst-1.
  [[nodiscard]] double parallel_speedup(int t) const;

  /// 2x Intel Xeon E5-2640 v4 (the paper's workstation).
  static CpuConfig dual_xeon_e5_2640v4();
};

}  // namespace gbdt::device
