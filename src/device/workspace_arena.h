// Per-training-run scratch allocator over the simulated device memory.
//
// The trainers used to `dev.alloc` every large temporary (scan outputs,
// gain arrays, partition scratch, ...) fresh on every level of every tree,
// which both churns the DeviceAllocator and hides the real working-set size.
// A WorkspaceArena is acquired once per training run and checked out per
// level: `alloc<T>(n)` hands back a pooled block when one of sufficient
// capacity is free (no DeviceAllocator traffic at all), and only sizes a new
// block — rounded up to the next power-of-two size class — when the pool has
// nothing that fits.  Freed blocks return to the pool instead of the
// allocator, so after the first level of the first tree the steady state
// performs ~zero real device allocations per level (test_obs asserts this
// via the gbdt_device_alloc_calls_total counter).
//
// Unlike DeviceBuffer construction, checking a pooled block out does NOT
// zero it: arena users must fully write a buffer before reading it (all the
// find-split temporaries do; the access auditor verifies the kernels'
// declared footprints independently).
//
// Not thread-safe: one arena belongs to one trainer's host thread.  Kernel
// bodies never allocate.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <typeindex>
#include <utility>
#include <vector>

#include "device/device_memory.h"

namespace gbdt::device {

template <typename T>
class ArenaBuffer;

class WorkspaceArena {
 public:
  explicit WorkspaceArena(DeviceAllocator& alloc) : alloc_(&alloc) {}

  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Checks out a buffer of logical size n (capacity may be larger).  The
  /// contents are unspecified — write before reading.
  template <typename T>
  [[nodiscard]] ArenaBuffer<T> alloc(std::size_t n);

  /// Wraps a foreign DeviceBuffer (e.g. an rle::compress output or an
  /// uploaded copy) so that, once freed, its storage joins the pool.
  template <typename T>
  [[nodiscard]] ArenaBuffer<T> adopt(DeviceBuffer<T>&& buf);

  /// Returns every pooled (currently free) block to the DeviceAllocator.
  void trim() { pools_.clear(); }

  // ---- statistics ---------------------------------------------------------
  /// Real DeviceAllocator acquisitions performed on behalf of checkouts.
  [[nodiscard]] std::size_t device_allocs() const { return device_allocs_; }
  /// Total alloc<T>() calls.
  [[nodiscard]] std::size_t checkouts() const { return checkouts_; }
  /// Checkouts satisfied from the pool without touching the allocator.
  [[nodiscard]] std::size_t reuse_hits() const { return reuse_hits_; }
  /// Bytes currently checked out to live ArenaBuffers.
  [[nodiscard]] std::size_t checked_out_bytes() const {
    return checked_out_bytes_;
  }
  /// High-water mark of checked-out bytes over the arena's life.
  [[nodiscard]] std::size_t peak_checked_out_bytes() const {
    return peak_checked_out_bytes_;
  }

 private:
  template <typename T>
  friend class ArenaBuffer;

  struct PoolBase {
    virtual ~PoolBase() = default;
  };
  template <typename T>
  struct Pool final : PoolBase {
    std::vector<DeviceBuffer<T>> blocks;  // free blocks, unordered
  };

  template <typename T>
  Pool<T>& pool() {
    const std::type_index key(typeid(T));
    for (auto& [k, p] : pools_) {
      if (k == key) return static_cast<Pool<T>&>(*p);
    }
    pools_.emplace_back(key, std::make_unique<Pool<T>>());
    return static_cast<Pool<T>&>(*pools_.back().second);
  }

  /// Parks a block back in the pool (no DeviceAllocator release).
  template <typename T>
  void give_back(DeviceBuffer<T>&& b, std::size_t logical_bytes) {
    checked_out_bytes_ -= logical_bytes;
    pool<T>().blocks.push_back(std::move(b));
  }

  [[nodiscard]] static std::size_t size_class(std::size_t n) {
    std::size_t c = 64;
    while (c < n) c *= 2;
    return c;
  }

  void note_checkout(std::size_t logical_bytes) {
    ++checkouts_;
    checked_out_bytes_ += logical_bytes;
    if (checked_out_bytes_ > peak_checked_out_bytes_) {
      peak_checked_out_bytes_ = checked_out_bytes_;
    }
  }

  DeviceAllocator* alloc_;
  std::vector<std::pair<std::type_index, std::unique_ptr<PoolBase>>> pools_;
  std::size_t device_allocs_ = 0;
  std::size_t checkouts_ = 0;
  std::size_t reuse_hits_ = 0;
  std::size_t checked_out_bytes_ = 0;
  std::size_t peak_checked_out_bytes_ = 0;
};

/// A checked-out arena block: DeviceBuffer semantics (spans, indexing,
/// move-only RAII) over the first `size()` elements of a pooled block whose
/// capacity may be a larger size class.  Destruction parks the block back in
/// the arena instead of releasing device memory.
template <typename T>
class ArenaBuffer {
 public:
  using value_type = T;

  ArenaBuffer() = default;

  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  ArenaBuffer(ArenaBuffer&& o) noexcept
      : arena_(o.arena_), buf_(std::move(o.buf_)), n_(o.n_) {
    o.arena_ = nullptr;
    o.n_ = 0;
  }

  ArenaBuffer& operator=(ArenaBuffer&& o) noexcept {
    if (this != &o) {
      free();
      arena_ = o.arena_;
      buf_ = std::move(o.buf_);
      n_ = o.n_;
      o.arena_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }

  ~ArenaBuffer() { free(); }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] std::size_t bytes() const { return n_ * sizeof(T); }

  [[nodiscard]] std::span<T> span() { return {buf_.data(), n_}; }
  [[nodiscard]] std::span<const T> span() const { return {buf_.data(), n_}; }
  [[nodiscard]] T* data() { return buf_.data(); }
  [[nodiscard]] const T* data() const { return buf_.data(); }

  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }

  /// The backing block, for Device::copy_to_device-style upload helpers.
  /// Its size is the block capacity, not the logical size.
  [[nodiscard]] DeviceBuffer<T>& backing() { return buf_; }

  /// Returns the block to the arena (the arena keeps the device memory).
  void free() {
    if (arena_ != nullptr) {
      arena_->give_back<T>(std::move(buf_), bytes());
      arena_ = nullptr;
    }
    n_ = 0;
  }

 private:
  friend class WorkspaceArena;
  ArenaBuffer(WorkspaceArena& arena, DeviceBuffer<T>&& buf, std::size_t n)
      : arena_(&arena), buf_(std::move(buf)), n_(n) {}

  WorkspaceArena* arena_ = nullptr;
  DeviceBuffer<T> buf_;
  std::size_t n_ = 0;
};

template <typename T>
ArenaBuffer<T> WorkspaceArena::alloc(std::size_t n) {
  note_checkout(n * sizeof(T));
  auto& blocks = pool<T>().blocks;
  // Best fit: the smallest free block with capacity >= n.
  std::size_t best = blocks.size();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].size() >= n &&
        (best == blocks.size() || blocks[i].size() < blocks[best].size())) {
      best = i;
    }
  }
  if (best < blocks.size()) {
    ++reuse_hits_;
    DeviceBuffer<T> b = std::move(blocks[best]);
    blocks[best] = std::move(blocks.back());
    blocks.pop_back();
    return ArenaBuffer<T>(*this, std::move(b), n);
  }
  ++device_allocs_;
  return ArenaBuffer<T>(*this, DeviceBuffer<T>(*alloc_, size_class(n)), n);
}

template <typename T>
ArenaBuffer<T> WorkspaceArena::adopt(DeviceBuffer<T>&& buf) {
  const std::size_t n = buf.size();
  note_checkout(n * sizeof(T));
  ++reuse_hits_;  // no allocator traffic happens on this path either
  return ArenaBuffer<T>(*this, std::move(buf), n);
}

}  // namespace gbdt::device
