// Minimal host thread pool used to execute simulated thread blocks.
//
// The pool parallelises the *host-side* execution of kernels when the host
// has spare cores; modeled device time is independent of how many host
// workers run the blocks.  Kernel bodies must only write to disjoint outputs
// per block (all primitives in this repository are written that way), so the
// static block partitioning below is race-free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gbdt::device {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads; 0 means hardware concurrency.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size()) + 1;  // + calling thread
  }

  /// Runs fn(chunk_index) for chunk_index in [0, chunks) across the workers
  /// and the calling thread; returns when all chunks finished.
  void run_chunks(std::uint64_t chunks,
                  const std::function<void(std::uint64_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::uint64_t)>* job_ = nullptr;
  std::uint64_t total_chunks_ = 0;
  std::uint64_t next_chunk_ = 0;
  std::uint64_t done_chunks_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace gbdt::device
