// Minimal host thread pool used to execute simulated thread blocks.
//
// The pool parallelises the *host-side* execution of kernels when the host
// has spare cores; modeled device time is independent of how many host
// workers run the blocks.  Kernel bodies must only write to disjoint outputs
// per block, so the static block partitioning below is race-free — a
// contract that is machine-checked by the access auditor
// (src/analysis/access_audit.h) when GBDT_AUDIT_ACCESS is armed.
//
// Exceptions: a throw from fn is captured (first wins), the remaining
// unclaimed chunks are drained as no-ops, and the exception is rethrown on
// the calling thread once the launch has quiesced; the pool stays reusable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gbdt::device {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads; 0 means hardware concurrency.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size()) + 1;  // + calling thread
  }

  /// Runs fn(chunk_index) for chunk_index in [0, chunks) across the workers
  /// and the calling thread; returns when all chunks finished.  If any
  /// invocation throws, the first exception is rethrown here after the
  /// remaining chunks have been drained; the pool remains usable.
  void run_chunks(std::uint64_t chunks,
                  const std::function<void(std::uint64_t)>& fn);

  /// Chunk index the calling thread is currently executing inside
  /// run_chunks, or -1 outside of one.  Thread-local: each host worker sees
  /// its own chunk, giving diagnostics (e.g. the access auditor's reports)
  /// a stable identity for "who ran this" independent of the host thread id.
  [[nodiscard]] static std::int64_t current_chunk();

 private:
  void worker_loop();
  /// Runs one claimed chunk, routing success/failure into the shared
  /// counters.  On a throw: records the first exception, fast-forwards the
  /// unclaimed chunks so the launch can quiesce, and counts this chunk done.
  void run_one_chunk(const std::function<void(std::uint64_t)>& fn,
                     std::uint64_t c);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::uint64_t)>* job_ = nullptr;
  std::uint64_t total_chunks_ = 0;
  std::uint64_t next_chunk_ = 0;
  std::uint64_t done_chunks_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace gbdt::device
