// Converts counted kernel work into modeled seconds.
//
// The model is deliberately simple and fully documented so its assumptions
// can be audited (see DESIGN.md section 6):
//
//   t_kernel = launch + schedule + max(t_compute, t_memory)
//
//   t_compute = thread_work / compute_throughput, but never below the time
//               the single busiest block needs on one SM (load imbalance).
//   t_memory  = coalesced_bytes / BW
//             + irregular_accesses * transaction_bytes * penalty / BW
//             + atomic serialisation cost
//   schedule  = blocks * block_schedule_ns / num_sms
//
// The GBDT kernels are memory bound, so the ratios between configurations
// track bandwidth and irregular-traffic differences, which is exactly the
// axis on which the paper's optimizations act.
#pragma once

#include "device/device_config.h"
#include "device/kernel_stats.h"

namespace gbdt::device {

class CostModel {
 public:
  explicit CostModel(DeviceConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] const DeviceConfig& config() const { return cfg_; }

  /// Modeled execution time of one kernel, in seconds (includes launch cost).
  [[nodiscard]] double kernel_seconds(const KernelStats& s) const;

  /// Modeled time of a host<->device transfer of `bytes`, in seconds.
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const;

 private:
  DeviceConfig cfg_;
};

}  // namespace gbdt::device
