#include "device/device_config.h"

#include <algorithm>
#include <cmath>

namespace gbdt::device {

DeviceConfig DeviceConfig::titan_x_pascal() {
  DeviceConfig c;
  c.name = "TitanX-Pascal";
  c.num_sms = 28;
  c.cores_per_sm = 128;
  c.clock_ghz = 1.417;
  c.mem_bandwidth_gbps = 480.0;
  c.global_mem_bytes = std::size_t{12} * (1u << 30);
  return c;
}

DeviceConfig DeviceConfig::tesla_p100() {
  DeviceConfig c;
  c.name = "Tesla-P100";
  c.num_sms = 56;
  c.cores_per_sm = 64;
  c.clock_ghz = 1.328;
  c.mem_bandwidth_gbps = 732.0;
  c.global_mem_bytes = std::size_t{16} * (1u << 30);
  return c;
}

DeviceConfig DeviceConfig::tesla_k20() {
  DeviceConfig c;
  c.name = "Tesla-K20";
  c.num_sms = 13;
  c.cores_per_sm = 192;
  c.clock_ghz = 0.706;
  c.ipc = 0.5;  // Kepler cores sustain less of peak on divergent code
  c.mem_bandwidth_gbps = 208.0;
  c.global_mem_bytes = std::size_t{5} * (1u << 30);
  return c;
}

double CpuConfig::parallel_speedup(int t) const {
  if (t <= 1) return 1.0;
  // Physical cores scale with efficiency e; SMT threads beyond the core count
  // add a small extra factor.  With the defaults (20C/40T) this gives
  // speedup(40) ~= 8.1 and speedup(20) ~= 7.4, matching the xgbst-40/xgbst-1
  // ratios (5.7x - 10.7x) observed across Table II of the paper.
  const double core_eff = 0.45;
  const double smt_gain = 0.10;
  const double core_part =
      1.0 + core_eff * (std::min(t, cores) - 1);
  const double smt_part =
      t > cores ? 1.0 + smt_gain * (static_cast<double>(t - cores) / cores)
                : 1.0;
  return core_part * smt_part;
}

CpuConfig CpuConfig::dual_xeon_e5_2640v4() {
  CpuConfig c;
  c.name = "2x Xeon E5-2640v4";
  c.cores = 20;
  c.threads = 40;
  c.clock_ghz = 2.4;
  c.ipc = 1.6;
  c.mem_bandwidth_gbps = 120.0;
  return c;
}

}  // namespace gbdt::device
