#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace gbdt::obs {

namespace internal {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

std::vector<double> default_buckets() {
  std::vector<double> b;
  for (double x = 1e-6; x < 1e3; x *= 4.0) b.push_back(x);
  return b;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

std::string Registry::key_of(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) key += ',';
      key += sorted[i].first;
      key += '=';
      key += sorted[i].second;
    }
    key += '}';
  }
  return key;
}

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          const Labels& labels,
                                          MetricKind kind,
                                          std::vector<double> bounds) {
  const std::string key = key_of(name, labels);
  std::lock_guard lk(mu_);
  for (auto& [k, e] : metrics_) {
    if (k == key) {
      if (e.kind != kind) {
        throw std::logic_error("metric '" + key +
                               "' registered with a different type");
      }
      return e;
    }
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>(
          bounds.empty() ? default_buckets() : std::move(bounds));
      break;
  }
  metrics_.emplace_back(key, std::move(e));
  return metrics_.back().second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, MetricKind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, MetricKind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::vector<double> bounds) {
  return *find_or_create(name, labels, MetricKind::kHistogram,
                         std::move(bounds))
              .histogram;
}

Json Registry::to_json() const {
  std::vector<std::pair<std::string, const Entry*>> sorted;
  {
    std::lock_guard lk(mu_);
    sorted.reserve(metrics_.size());
    for (const auto& [k, e] : metrics_) sorted.emplace_back(k, &e);
  }
  std::sort(sorted.begin(), sorted.end());
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  for (const auto& [key, e] : sorted) {
    switch (e->kind) {
      case MetricKind::kCounter:
        counters[key] = Json(e->counter->value());
        break;
      case MetricKind::kGauge:
        gauges[key] = Json(e->gauge->value());
        break;
      case MetricKind::kHistogram: {
        Json h = Json::object();
        h["count"] = Json(e->histogram->count());
        h["sum"] = Json(e->histogram->sum());
        Json bounds = Json::array();
        for (double b : e->histogram->bounds()) bounds.push_back(Json(b));
        h["bounds"] = std::move(bounds);
        Json buckets = Json::array();
        for (std::uint64_t c : e->histogram->bucket_counts()) {
          buckets.push_back(Json(c));
        }
        h["buckets"] = std::move(buckets);
        histograms[key] = std::move(h);
        break;
      }
    }
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

void Registry::reset_for_test() {
  std::lock_guard lk(mu_);
  metrics_.clear();
}

}  // namespace gbdt::obs
