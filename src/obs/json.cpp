#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gbdt::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";
    return;
  }
  // Integers up to 2^53 print exactly, without a trailing ".0"; everything
  // else round-trips through %.17g.
  if (n == std::floor(n) && std::abs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (!failed_ && pos_ != text_.size()) fail("trailing characters");
    return failed_ ? Json() : v;
  }

 private:
  void fail(const std::string& what) {
    if (!failed_ && err_ != nullptr) {
      *err_ = what + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  std::string string_body() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else { fail("bad \\u escape"); return out; }
            }
            // Reports only ever contain ASCII; encode BMP code points as
            // UTF-8 and let anything fancier degrade to that.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape"); return out;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return out;
  }

  Json value() {
    skip_ws();
    if (failed_ || depth_ > 200) {
      fail("nesting too deep");
      return {};
    }
    switch (peek()) {
      case '{': {
        ++depth_;
        ++pos_;
        Json obj = Json::object();
        skip_ws();
        if (consume('}')) { --depth_; return obj; }
        while (!failed_) {
          skip_ws();
          if (peek() != '"') { fail("expected object key"); break; }
          std::string key = string_body();
          skip_ws();
          if (!consume(':')) { fail("expected ':'"); break; }
          obj[key] = value();
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) break;
          fail("expected ',' or '}'");
        }
        --depth_;
        return obj;
      }
      case '[': {
        ++depth_;
        ++pos_;
        Json arr = Json::array();
        skip_ws();
        if (consume(']')) { --depth_; return arr; }
        while (!failed_) {
          arr.push_back(value());
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) break;
          fail("expected ',' or ']'");
        }
        --depth_;
        return arr;
      }
      case '"':
        return Json(string_body());
      case 't':
        return literal("true") ? Json(true) : Json();
      case 'f':
        return literal("false") ? Json(false) : Json();
      case 'n':
        return literal("null") ? Json() : Json();
      default: {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ == start) {
          fail("unexpected character");
          return {};
        }
        const std::string num(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) {
          fail("bad number");
          return {};
        }
        return Json(v);
      }
    }
  }

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
};

}  // namespace

Json& Json::operator[](std::string_view key) {
  if (kind_ != Kind::kObject) {
    *this = object();
  }
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (kind_ != Kind::kArray) *this = array();
  items_.push_back(std::move(v));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

Json Json::parse(std::string_view text, std::string* err) {
  return Parser(text, err).run();
}

bool write_json_file(const std::string& path, const Json& doc) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << doc.dump();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Json read_json_file(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str(), err);
}

}  // namespace gbdt::obs
