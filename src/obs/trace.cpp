#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace gbdt::obs {

namespace internal {

std::atomic<ObsSession*> g_session{nullptr};

void on_kernel_slow(std::string_view name, const device::KernelStats& stats,
                    double seconds) {
  ObsSession* s = g_session.load(std::memory_order_acquire);
  if (s == nullptr) return;
  std::lock_guard lk(s->mu_);
  Span* span = s->stack_.empty() ? &s->root_ : s->stack_.back();
  auto& st = span->stats_;
  st.kernel_seconds += seconds;
  ++st.launches;
  for (auto& [label, agg] : st.kernels) {
    if (label == name) {
      ++agg.launches;
      agg.seconds += seconds;
      agg.stats += stats;
      return;
    }
  }
  KernelAgg agg;
  agg.launches = 1;
  agg.seconds = seconds;
  agg.stats = stats;
  st.kernels.emplace_back(std::string(name), agg);
}

void on_transfer_slow(std::uint64_t bytes, double seconds) {
  ObsSession* s = g_session.load(std::memory_order_acquire);
  if (s == nullptr) return;
  std::lock_guard lk(s->mu_);
  Span* span = s->stack_.empty() ? &s->root_ : s->stack_.back();
  span->stats_.transfer_seconds += seconds;
  span->stats_.transfer_bytes += bytes;
}

void note_device_usage_slow(std::size_t used_bytes) {
  ObsSession* s = g_session.load(std::memory_order_acquire);
  if (s == nullptr) return;
  std::lock_guard lk(s->mu_);
  // The high-water belongs to every currently-open span (and the root), not
  // just the innermost: an allocation made during a child phase also raises
  // the parent phase's footprint.
  if (used_bytes > s->root_.stats_.peak_device_bytes) {
    s->root_.stats_.peak_device_bytes = used_bytes;
  }
  for (Span* span : s->stack_) {
    if (used_bytes > span->stats_.peak_device_bytes) {
      span->stats_.peak_device_bytes = used_bytes;
    }
  }
}

}  // namespace internal

// ---- Span -----------------------------------------------------------------

const Span* Span::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Span* Span::find_or_add_child(std::string_view name) {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  children_.push_back(std::make_unique<Span>(std::string(name)));
  return children_.back().get();
}

double Span::modeled_total_seconds() const {
  double total = stats_.modeled_self_seconds();
  for (const auto& c : children_) total += c->modeled_total_seconds();
  return total;
}

std::size_t Span::peak_device_bytes_total() const {
  std::size_t peak = stats_.peak_device_bytes;
  for (const auto& c : children_) {
    peak = std::max(peak, c->peak_device_bytes_total());
  }
  return peak;
}

Json Span::to_json() const {
  Json j = Json::object();
  j["name"] = Json(name_);
  j["invocations"] = Json(stats_.invocations);
  j["wall_seconds"] = Json(stats_.wall_seconds);
  j["modeled_seconds"] = Json(modeled_total_seconds());
  j["modeled_self_seconds"] = Json(stats_.modeled_self_seconds());
  j["kernel_seconds"] = Json(stats_.kernel_seconds);
  j["transfer_seconds"] = Json(stats_.transfer_seconds);
  j["transfer_bytes"] = Json(stats_.transfer_bytes);
  j["launches"] = Json(stats_.launches);
  j["peak_device_bytes"] = Json(peak_device_bytes_total());
  if (!stats_.kernels.empty()) {
    Json kernels = Json::object();
    for (const auto& [label, agg] : stats_.kernels) {
      Json k = Json::object();
      k["launches"] = Json(agg.launches);
      k["seconds"] = Json(agg.seconds);
      k["thread_work"] = Json(agg.stats.thread_work);
      k["coalesced_bytes"] = Json(agg.stats.coalesced_bytes);
      k["irregular_accesses"] = Json(agg.stats.irregular_accesses);
      k["atomic_ops"] = Json(agg.stats.atomic_ops);
      k["flops"] = Json(agg.stats.flops);
      k["blocks"] = Json(agg.stats.blocks);
      k["max_block_work"] = Json(agg.stats.max_block_work);
      kernels[label] = std::move(k);
    }
    j["kernels"] = std::move(kernels);
  }
  if (!children_.empty()) {
    Json kids = Json::array();
    for (const auto& c : children_) kids.push_back(c->to_json());
    j["children"] = std::move(kids);
  }
  return j;
}

// ---- ObsSession -----------------------------------------------------------

ObsSession::ObsSession() : root_("run") {}

ObsSession::~ObsSession() { deactivate(); }

void ObsSession::activate() {
  ObsSession* expected = nullptr;
  if (!internal::g_session.compare_exchange_strong(
          expected, this, std::memory_order_acq_rel)) {
    if (expected == this) return;
    throw std::logic_error("another ObsSession is already active");
  }
}

void ObsSession::deactivate() {
  ObsSession* expected = this;
  internal::g_session.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
}

bool ObsSession::active() const { return current() == this; }

Span* ObsSession::open_span(std::string_view name) {
  std::lock_guard lk(mu_);
  Span* parent = stack_.empty() ? &root_ : stack_.back();
  Span* span = parent->find_or_add_child(name);
  stack_.push_back(span);
  return span;
}

void ObsSession::close_span(Span* span, double wall_seconds) {
  std::lock_guard lk(mu_);
  span->stats_.wall_seconds += wall_seconds;
  ++span->stats_.invocations;
  // RAII nesting means `span` is the top of the stack; tolerate out-of-order
  // closes by popping through it so a missed pop cannot wedge attribution.
  while (!stack_.empty()) {
    Span* top = stack_.back();
    stack_.pop_back();
    if (top == span) break;
  }
}

Json ObsSession::report() const {
  Json j = Json::object();
  j["schema"] = Json("gbdt-obs-run-v1");
  {
    std::lock_guard lk(mu_);
    j["trace"] = root_.to_json();
  }
  j["metrics"] = Registry::global().to_json();
  return j;
}

bool ObsSession::write_report(const std::string& path) const {
  return write_json_file(path, report());
}

// ---- ScopedSpan -----------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) {
  ObsSession* s = ObsSession::current();
  if (s == nullptr) return;
  session_ = s;
  span_ = s->open_span(name);
  wall_start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (session_ == nullptr) return;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  session_->close_span(span_, wall);
}

}  // namespace gbdt::obs
