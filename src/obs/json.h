// Minimal JSON document type for the observability subsystem.
//
// One value class covers both directions: report emitters build documents
// with object()/array()/operator[] and serialize with dump(), and
// `gbdt_bench --compare` reads historical BENCH_*.json files back with
// parse().  Object keys keep insertion order so emitted reports are stable
// and diffable across runs; numbers round-trip through %.17g.
//
// This is deliberately not a general-purpose JSON library: no comments, no
// NaN/Inf (serialized as null, like browsers do), UTF-8 passed through
// verbatim with only the mandatory escapes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gbdt::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double n) : kind_(Kind::kNumber), num_(n) {}
  Json(int n) : Json(static_cast<double>(n)) {}
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  /// Object access; creates the key (as null) on a mutable object.
  Json& operator[](std::string_view key);
  /// Read-only lookup: nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

  void push_back(Json v);

  [[nodiscard]] double number_or(double def) const {
    return kind_ == Kind::kNumber ? num_ : def;
  }
  [[nodiscard]] bool bool_or(bool def) const {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  [[nodiscard]] const std::string& str() const { return str_; }
  [[nodiscard]] std::string str_or(std::string_view def) const {
    return kind_ == Kind::kString ? str_ : std::string(def);
  }

  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : members_.size();
  }

  /// Serializes with 2-space indentation (indent < 0: single line).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document.  On failure returns null and, when
  /// `err` is given, describes the first error with a byte offset.
  [[nodiscard]] static Json parse(std::string_view text,
                                  std::string* err = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `doc.dump()` atomically-ish (tmp file + rename) to `path`.
/// Returns false (and keeps any existing file) on I/O failure.
bool write_json_file(const std::string& path, const Json& doc);

/// Reads and parses a JSON file; returns null on I/O or parse failure and
/// describes the problem in `err` when given.
[[nodiscard]] Json read_json_file(const std::string& path,
                                  std::string* err = nullptr);

}  // namespace gbdt::obs
