// Hierarchical phase tracing for the simulated-GPU trainers.
//
// An ObsSession owns a tree of named spans.  Trainers open RAII ScopedSpans
// around their phases (gradient compute, find-split, partition, ...); while
// a span is open, every kernel launch, PCI-e transfer and device allocation
// reported by the device layer is attributed to it.  A span aggregates:
//
//   - wall seconds (host clock) and invocation count,
//   - modeled kernel/transfer seconds plus per-kernel-label KernelStats
//     (rolled up from Device::launch via the on_kernel hook),
//   - the DeviceAllocator high-water mark observed while open.
//
// Repeated spans with the same name under the same parent merge, so the
// per-tree/per-level loops of a training run collapse into one aggregate row
// per phase.
//
// Cost when idle: exactly one relaxed atomic load per hook site — the
// process-wide current-session pointer.  With no active session the
// instrumented trainers are bitwise identical to uninstrumented ones (the
// hooks only read), which test_determinism verifies.
//
//   obs::ObsSession session;
//   session.activate();
//   { obs::ScopedSpan span("gradient_compute"); compute_gradients(...); }
//   session.deactivate();
//   obs::write_json_file("run.json", session.report());
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "device/kernel_stats.h"
#include "obs/json.h"

namespace gbdt::obs {

class ObsSession;

namespace internal {
extern std::atomic<ObsSession*> g_session;
void on_kernel_slow(std::string_view name, const device::KernelStats& stats,
                    double seconds);
void on_transfer_slow(std::uint64_t bytes, double seconds);
void note_device_usage_slow(std::size_t used_bytes);
}  // namespace internal

/// True while some ObsSession is activated (one relaxed load).
[[nodiscard]] inline bool tracing_active() {
  return internal::g_session.load(std::memory_order_acquire) != nullptr;
}

// ---- hooks called by the device layer (near-zero cost when inactive) -----

inline void on_kernel(std::string_view name, const device::KernelStats& stats,
                      double seconds) {
  if (tracing_active()) internal::on_kernel_slow(name, stats, seconds);
}

inline void on_transfer(std::uint64_t bytes, double seconds) {
  if (tracing_active()) internal::on_transfer_slow(bytes, seconds);
}

inline void note_device_usage(std::size_t used_bytes) {
  if (tracing_active()) internal::note_device_usage_slow(used_bytes);
}

/// Aggregate of one kernel label inside one span.
struct KernelAgg {
  std::uint64_t launches = 0;
  double seconds = 0.0;
  device::KernelStats stats;
};

struct SpanStats {
  std::uint64_t invocations = 0;     // times this span was opened
  double wall_seconds = 0.0;         // summed over invocations
  double kernel_seconds = 0.0;       // modeled, attributed to this span only
  double transfer_seconds = 0.0;     // modeled PCI-e time, this span only
  std::uint64_t transfer_bytes = 0;
  std::uint64_t launches = 0;
  /// High-water mark of device-allocator usage observed while open (0 when
  /// nothing was allocated inside the span).
  std::size_t peak_device_bytes = 0;
  /// Per-kernel-label aggregates, in first-seen order.
  std::vector<std::pair<std::string, KernelAgg>> kernels;

  /// Modeled seconds attributed directly to this span (excluding children).
  [[nodiscard]] double modeled_self_seconds() const {
    return kernel_seconds + transfer_seconds;
  }
};

/// One node of the span tree.  Owned by the session; stable address.
class Span {
 public:
  explicit Span(std::string name) : name_(std::move(name)) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const SpanStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Span>>& children() const {
    return children_;
  }
  /// Child span by name, nullptr when absent (reader-side helper).
  [[nodiscard]] const Span* child(std::string_view name) const;

  /// Modeled seconds of this span plus all descendants.
  [[nodiscard]] double modeled_total_seconds() const;
  /// Peak device bytes over this span and all descendants.
  [[nodiscard]] std::size_t peak_device_bytes_total() const;

  [[nodiscard]] Json to_json() const;

 private:
  friend class ObsSession;
  friend void internal::on_kernel_slow(std::string_view,
                                       const device::KernelStats&, double);
  friend void internal::on_transfer_slow(std::uint64_t, double);
  friend void internal::note_device_usage_slow(std::size_t);
  Span* find_or_add_child(std::string_view name);

  std::string name_;
  SpanStats stats_;
  std::vector<std::unique_ptr<Span>> children_;
};

/// A recording session.  Create, activate() to install as the process-wide
/// current session, run the workload, deactivate(), then read the report.
/// The session must outlive every ScopedSpan opened while it was active.
class ObsSession {
 public:
  ObsSession();
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Installs this session as the target of ScopedSpan and the device
  /// hooks.  Throws std::logic_error if another session is already active.
  void activate();
  /// Uninstalls (idempotent).  Open spans keep recording into this session
  /// until they close; new ScopedSpans become no-ops.
  void deactivate();
  [[nodiscard]] bool active() const;

  [[nodiscard]] static ObsSession* current() {
    return internal::g_session.load(std::memory_order_acquire);
  }

  [[nodiscard]] const Span& root() const { return root_; }

  /// Schema-versioned run report:
  ///   {"schema":"gbdt-obs-run-v1","trace":{...},"metrics":{...}}
  [[nodiscard]] Json report() const;
  bool write_report(const std::string& path) const;

 private:
  friend class ScopedSpan;
  friend void internal::on_kernel_slow(std::string_view,
                                       const device::KernelStats&, double);
  friend void internal::on_transfer_slow(std::uint64_t, double);
  friend void internal::note_device_usage_slow(std::size_t);

  Span* open_span(std::string_view name);
  void close_span(Span* span, double wall_seconds);

  mutable std::mutex mu_;
  Span root_;
  std::vector<Span*> stack_;  // currently open spans, root excluded
};

/// RAII span.  A no-op (one atomic load) when no session is active at
/// construction.  Span names must be string literals so reports stay
/// greppable — tools/gbdt_lint enforces this.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ObsSession* session_ = nullptr;
  Span* span_ = nullptr;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace gbdt::obs
