// Process-wide metrics registry: counters, gauges and histograms with
// optional labels.
//
// The write path is lock-free: every metric spreads its state over a fixed
// set of cache-line-padded shards, each thread picks a shard once (round
// robin at first use) and updates it with relaxed atomics.  Kernel bodies
// running on ThreadPool workers can therefore increment counters freely;
// reads (snapshot / to_json) sum the shards and only then take the registry
// mutex, so they see a value that is exact once the writers have quiesced.
//
// Registration (looking a metric up by name) takes a mutex and returns a
// reference that stays valid for the life of the registry — cache it:
//
//   static obs::Counter& launches =
//       obs::Registry::global().counter("device_launches_total");
//   launches.inc();
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace gbdt::obs {

/// Metric labels as key=value pairs; order-insensitive (sorted on use).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

inline constexpr std::size_t kShards = 32;

/// Shard index of the calling thread (stable per thread, round-robin).
std::size_t thread_shard();

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

/// Relaxed add of a double into an atomic bit-pattern cell.
inline void atomic_add_double(std::atomic<std::uint64_t>& cell, double x) {
  std::uint64_t old = cell.load(std::memory_order_relaxed);
  double cur;
  do {
    std::memcpy(&cur, &old, sizeof cur);
    cur += x;
    std::uint64_t want;
    std::memcpy(&want, &cur, sizeof want);
    if (cell.compare_exchange_weak(old, want, std::memory_order_relaxed)) {
      return;
    }
  } while (true);
}

inline double load_double(const std::atomic<std::uint64_t>& cell) {
  const std::uint64_t bits = cell.load(std::memory_order_relaxed);
  double out;
  std::memcpy(&out, &bits, sizeof out);
  return out;
}

}  // namespace internal

/// Monotonically increasing integer.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[internal::thread_shard()].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  Counter() = default;  // create via Registry so the metric is reported

 private:
  std::array<internal::PaddedU64, internal::kShards> shards_;
};

/// Last-write-wins double value (set) with a sharded add() for accumulation.
class Gauge {
 public:
  void set(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    set_.store(bits, std::memory_order_relaxed);
    set_used_.store(true, std::memory_order_relaxed);
  }
  void add(double x) {
    internal::atomic_add_double(shards_[internal::thread_shard()].v, x);
  }
  [[nodiscard]] double value() const {
    double total =
        set_used_.load(std::memory_order_relaxed)
            ? internal::load_double(set_)
            : 0.0;
    for (const auto& s : shards_) total += internal::load_double(s.v);
    return total;
  }

  Gauge() = default;  // create via Registry so the metric is reported

 private:
  std::atomic<std::uint64_t> set_{0};
  std::atomic<bool> set_used_{false};
  std::array<internal::PaddedU64, internal::kShards> shards_;
};

/// Histogram over fixed upper-bound buckets (cumulative on read, like
/// Prometheus); also tracks count and sum.
class Histogram {
 public:
  void observe(double x) {
    const std::size_t shard = internal::thread_shard();
    auto& cells = buckets_[shard];
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    cells[b].fetch_add(1, std::memory_order_relaxed);
    internal::atomic_add_double(sum_[shard].v, x);
  }
  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& shard : buckets_) {
      for (const auto& c : shard) total += c.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] double sum() const {
    double total = 0.0;
    for (const auto& s : sum_) total += internal::load_double(s.v);
    return total;
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the overflow.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
    for (const auto& shard : buckets_) {
      for (std::size_t b = 0; b < out.size(); ++b) {
        out[b] += shard[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  // Create via Registry so the metric is reported.
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    for (auto& shard : buckets_) {
      shard = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    }
  }

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::array<std::vector<std::atomic<std::uint64_t>>, internal::kShards>
      buckets_;
  std::array<internal::PaddedU64, internal::kShards> sum_;
};

/// Default histogram buckets: exponential from 1e-6 upward (seconds-ish).
[[nodiscard]] std::vector<double> default_buckets();

class Registry {
 public:
  /// The process-wide registry.
  [[nodiscard]] static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  References stay valid until reset()/destruction.
  [[nodiscard]] Counter& counter(std::string_view name,
                                 const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     const Labels& labels = {},
                                     std::vector<double> bounds = {});

  /// Aggregated view of every registered metric, sorted by key:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  [[nodiscard]] Json to_json() const;

  /// Drops every metric.  Only for tests; invalidates cached references.
  void reset_for_test();

 private:
  enum class MetricKind { kCounter, kGauge, kHistogram };
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  [[nodiscard]] static std::string key_of(std::string_view name,
                                          const Labels& labels);
  Entry& find_or_create(std::string_view name, const Labels& labels,
                        MetricKind kind, std::vector<double> bounds);

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> metrics_;  // key -> entry
};

}  // namespace gbdt::obs
