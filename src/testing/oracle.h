// Trainer-path equivalence oracle.
//
// Trains one FuzzCase through every trainer path in the repository — the
// exact-greedy CPU reference (xgb_exact), the sparse GPU path, both RLE
// node-split strategies (Directly-Split and decompress/partition/
// recompress), feature-parallel multi-GPU, and out-of-core streaming — and
// verifies the paper's exactness claim: every path must construct the same
// trees and the same training scores as the reference.
//
// Comparison policy per leg (mirrors the repository's established tests):
//  * gpu_sparse must match the CPU reference bit for bit (trees and
//    scores) — the accumulation orders are deliberately identical;
//  * the other legs must match tree for tree within 1e-7 on split values,
//    except that *exact* gain ties may be broken differently when prefix
//    sums differ in the last ulp; such a divergence is accepted only when
//    the forests are functionally equivalent (same tree count and the same
//    training fit to within 1e-3 RMSE) and is reported separately from a
//    real discrepancy;
//  * the device histogram trainer (hist_vs_exact) splits on bin boundaries,
//    so its trees legitimately differ from the exact reference; the leg
//    demands the same tree count and a training fit within a quality
//    tolerance of the reference instead (quality equivalence, not bitwise).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "testing/case_gen.h"

namespace gbdt::testing {

/// Outcome of one trainer leg compared against the CPU reference.
struct LegResult {
  std::string name;
  bool ran = false;            // leg skipped (e.g. too few attributes)
  bool exact = false;          // every tree structurally identical
  int divergent_trees = 0;     // trees differing within tie tolerance
  bool tie_equivalent = false; // divergences are functionally equivalent
  bool quality_equivalent = false;  // approximate leg: fit within tolerance
  bool invariant_violation = false;
  double rle_ratio = 1.0;      // RLE legs only
  std::string detail;          // first failure / divergence description

  /// A real discrepancy: ran, and neither exact, tie-equivalent nor
  /// quality-equivalent (or an invariant fired inside the trainer).
  [[nodiscard]] bool failed() const {
    return ran && (invariant_violation ||
                   !(exact || tie_equivalent || quality_equivalent));
  }
};

struct OracleResult {
  FuzzCase c;
  std::vector<LegResult> legs;

  [[nodiscard]] bool pass() const {
    for (const auto& l : legs) {
      if (l.failed()) return false;
    }
    return true;
  }
  [[nodiscard]] int ties() const {
    int t = 0;
    for (const auto& l : legs) t += l.divergent_trees;
    return t;
  }
  /// Multi-line report of the failing legs (empty when pass()).
  [[nodiscard]] std::string failure_report() const;
};

/// Runs every trainer path on the case and compares against the CPU
/// reference.  With check_invariants, the structural invariant hooks inside
/// the trainers are armed for the duration of the run (a violation marks
/// the leg failed instead of propagating).
[[nodiscard]] OracleResult run_oracle(const FuzzCase& c,
                                      bool check_invariants = true);

/// Histogram-only oracle: the CPU reference plus the hist_vs_exact leg (the
/// quality-equivalence comparison the histogram trainer is validated by —
/// approximate splits cannot be compared structurally).  Much cheaper than
/// the full oracle; used by `gbdt_fuzz --hist` and the hist_smoke suite.
[[nodiscard]] OracleResult run_hist_oracle(const FuzzCase& c,
                                           bool check_invariants = true);

/// Serving-path oracle (`gbdt_fuzz --serve`): trains the case's model on
/// the sparse GPU path, computes the offline predict_on_device reference,
/// then routes every row through the serving stack and demands bitwise
/// agreement on three legs:
///  * serve_vs_batch     — the micro-batched queue path (batch size, shard
///    count, shard mode and overflow policy all derived from the seed);
///  * serve_row          — the single-row RowPredictor fast path;
///  * serve_relay        — the tree-shard relay with >= 2 shards (skipped
///    when the forest has a single tree).
/// With check_invariants, the snapshot fingerprint check is armed, so an
/// armed serve_torn_swap fault surfaces as an invariant_violation.
[[nodiscard]] OracleResult run_serve_oracle(const FuzzCase& c,
                                            bool check_invariants = true);

/// Objective/sampling oracle (`gbdt_fuzz --objective`): seeded-sampling
/// determinism plus the ranking objective's quality claim.
///  * trivial_plan_bitwise  — subsample=1.0 + feature_bag=all must be
///    bitwise identical to the same case with no sampling fields set at all
///    (the trivially-degenerate plan compiles out);
///  * sampled_replay_bitwise — replaying a sampled run with the same
///    sampling_seed must reproduce the forest bit for bit;
///  * sampled_rle_vs_sparse / sampled_multigpu / sampled_ooc — the sampled
///    forest must agree across trainer paths (the masks are drawn on the
///    host, so every path sees the identical plan);
///  * sampled_hist — the histogram trainer under the same masks must keep
///    the tree budget and a training fit comparable to the sampled exact
///    path (quality equivalence, like hist_vs_exact);
///  * ranking_beats_pointwise — on seeded query-grouped data whose queries
///    carry a query-constant bias feature, LambdaMART's held-out NDCG@10
///    must beat the squared-error baseline trained on the same data.
[[nodiscard]] OracleResult run_objective_oracle(const FuzzCase& c,
                                                bool check_invariants = true);

/// Multi-GPU collective oracle (`gbdt_fuzz --mgpu`): the ring-allreduce
/// merge path against its escape hatches, all bitwise.
///  * ring_vs_alltoone   — the default ring collective must produce the
///    same forest bit for bit as the GBDT_ALLTOONE=1 legacy all-to-one
///    schedule (same shards, same compute; only the fold order differs, and
///    every trainer combine is order-independent);
///  * tree_vs_ring       — the binomial tree collective, same claim;
///  * feature_vs_data    — feature-parallel sharding against data-parallel
///    (different shard layouts, so exact gain ties may break differently:
///    compared at 1e-7 with the functional-equivalence backstop);
///  * hist_ring_vs_alltoone — the histogram-allreduce mode through the same
///    hatch, bitwise;
///  * mgpu_hist_vs_single — K-shard histogram training must reproduce the
///    single-device histogram trainer bit for bit (global cuts, quantized
///    int64 histogram sums and the merged-histogram splits are all
///    shard-count-invariant).
[[nodiscard]] OracleResult run_mgpu_oracle(const FuzzCase& c,
                                           bool check_invariants = true);

/// Race-detection oracle (`gbdt_fuzz --race`): the full trainer-path oracle
/// with the happens-before race detector armed (a RaceViolation or
/// AuditViolation inside any leg marks it as an invariant violation), plus
/// stream-specific legs on the out-of-core double-buffer pipeline:
///  * ooc_sync_hatch        — the GBDT_SYNC_STREAMS serial schedule must be
///    bitwise identical to the eager async pipeline;
///  * ooc_schedule_fuzz_<k> — seeded random-but-legal interleavings of the
///    two streams (Device::set_schedule_fuzz) must also be bitwise
///    identical; a schedule-sensitive result means a missing ordering edge.
[[nodiscard]] OracleResult run_race_oracle(const FuzzCase& c,
                                           bool check_invariants = true);

/// Shrinks a failing case by halving rows/columns and dropping trees/depth
/// while `still_fails` keeps returning true; returns the smallest
/// still-failing case.  max_attempts bounds the number of re-runs.
[[nodiscard]] FuzzCase minimize_case_with(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& still_fails,
    int max_attempts = 64);

/// minimize_case_with over the full trainer oracle.
[[nodiscard]] FuzzCase minimize_case(const FuzzCase& failing,
                                     bool check_invariants = true,
                                     int max_attempts = 64);

}  // namespace gbdt::testing
