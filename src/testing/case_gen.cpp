#include "testing/case_gen.h"

#include <sstream>

namespace gbdt::testing {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// Uniform pick in [lo, hi] from one splitmix64 draw.
std::int64_t pick(std::uint64_t& state, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  splitmix64(state) %
                  static_cast<std::uint64_t>(hi - lo + 1));
}

double pick_unit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FuzzCase FuzzCase::from_seed(std::uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  std::uint64_t s = seed;

  c.n_instances = pick(s, 30, 600);
  c.n_attributes = pick(s, 2, 24);
  // Half the cases dense, half sparse with density in [0.2, 1).
  c.density = pick(s, 0, 1) == 0 ? 1.0 : 0.2 + 0.8 * pick_unit(s);
  // Half continuous, half low-cardinality (the RLE-compressible regime).
  c.distinct_values =
      pick(s, 0, 1) == 0 ? 0 : static_cast<int>(pick(s, 2, 16));
  c.zipf_values = pick(s, 0, 1) == 0;

  c.depth = static_cast<int>(pick(s, 1, 6));
  c.n_trees = static_cast<int>(pick(s, 1, 4));
  c.lambda = pick(s, 0, 1) == 0 ? 1.0 : 0.1 + 10.0 * pick_unit(s);
  c.gamma = pick(s, 0, 3) == 0 ? 0.5 * pick_unit(s) : 0.0;
  c.loss = pick(s, 0, 1) == 0 ? LossKind::kSquaredError : LossKind::kLogistic;

  c.n_gpus = static_cast<int>(
      pick(s, 2, std::min<std::int64_t>(4, c.n_attributes)));
  // 64 KiB (the trainer's minimum) up to 1 MiB: small enough that most
  // cases stream several chunks per level.
  c.ooc_chunk_bytes = static_cast<std::size_t>(1)
                      << static_cast<unsigned>(pick(s, 16, 20));
  c.ooc_stream_compressed = pick(s, 0, 1) == 0;
  // Drawn last so the histogram knob never perturbs the replay of fields
  // earlier cases already depended on.
  c.n_bins = 1 << static_cast<unsigned>(pick(s, 3, 8));  // 8..256
  // Objective/sampling knobs, appended after n_bins for the same
  // replay-stability reason.
  c.subsample = pick(s, 0, 1) == 0 ? 1.0 : 0.5 + 0.45 * pick_unit(s);
  c.feature_bag =
      pick(s, 0, 2) == 0 ? 0 : (pick(s, 0, 1) == 0 ? -1
                                                   : pick(s, 1, c.n_attributes));
  c.sampling_seed = splitmix64(s);
  c.query_size = static_cast<int>(pick(s, 5, 16));
  return c;
}

data::SyntheticSpec FuzzCase::dataset_spec() const {
  data::SyntheticSpec spec;
  spec.name = "fuzz";
  spec.n_instances = n_instances;
  spec.n_attributes = n_attributes;
  spec.density = density;
  spec.distinct_values = distinct_values;
  spec.zipf_values = zipf_values;
  spec.binary_labels = loss == LossKind::kLogistic;
  // The generation seed is derived from the case seed, never from global
  // state, so --seed replays are exact even after the minimizer shrinks
  // other fields.
  std::uint64_t s = seed ^ 0xd1f3a9b5c7e81357ull;
  spec.seed = static_cast<unsigned>(splitmix64(s));
  return spec;
}

GBDTParam FuzzCase::base_param() const {
  GBDTParam p;
  p.depth = depth;
  p.n_trees = n_trees;
  p.lambda = lambda;
  p.gamma = gamma;
  p.loss = loss;
  p.use_rle = false;
  p.force_rle = false;
  return p;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed << std::dec << " n=" << n_instances
     << " d=" << n_attributes << " density=" << density
     << " distinct=" << distinct_values
     << (zipf_values ? " zipf" : " uniform") << " depth=" << depth
     << " trees=" << n_trees << " lambda=" << lambda << " gamma=" << gamma
     << " loss=" << (loss == LossKind::kSquaredError ? "l2" : "logistic")
     << " gpus=" << n_gpus << " chunk=" << ooc_chunk_bytes
     << (ooc_stream_compressed ? " ooc-rle" : " ooc-raw")
     << " bins=" << n_bins << " subsample=" << subsample
     << " bag=" << feature_bag << " qsize=" << query_size;
  return os.str();
}

std::string FuzzCase::repro_command() const {
  const FuzzCase fresh = from_seed(seed);
  std::ostringstream os;
  os << "tools/gbdt_fuzz --seed 0x" << std::hex << seed << std::dec;
  // Only shrunken fields need explicit overrides.
  if (n_instances != fresh.n_instances) os << " --rows " << n_instances;
  if (n_attributes != fresh.n_attributes) os << " --cols " << n_attributes;
  if (n_trees != fresh.n_trees) os << " --trees " << n_trees;
  if (depth != fresh.depth) os << " --depth " << depth;
  return os.str();
}

}  // namespace gbdt::testing
