// Randomized trainer-configuration cases for differential fuzzing.
//
// One 64-bit seed deterministically expands into a complete case: dataset
// shape (cardinality, dimensionality, density, value cardinality), loss,
// tree depth/count, regularization, RLE gating, multi-GPU shard count and
// out-of-core chunking.  Replaying the same seed reproduces the same case
// and (because every downstream RNG is derived from it) the same training
// run, which is what makes `gbdt_fuzz --seed` repro commands exact.
#pragma once

#include <cstdint>
#include <string>

#include "core/param.h"
#include "data/synthetic.h"

namespace gbdt::testing {

/// SplitMix64 step: the sub-seed derivation used everywhere in the fuzz
/// harness, so no generator ever touches hidden global RNG state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// One fuzz case.  All fields are derived from `seed` by FuzzCase::from_seed;
/// the minimizer then shrinks fields directly (the shrunken case is replayed
/// through explicit field overrides, not through the seed).
struct FuzzCase {
  std::uint64_t seed = 0;

  // Dataset shape.
  std::int64_t n_instances = 200;
  std::int64_t n_attributes = 8;
  double density = 1.0;
  int distinct_values = 0;  // 0 = continuous
  bool zipf_values = true;

  // Boosting configuration.
  int depth = 4;
  int n_trees = 2;
  double lambda = 1.0;
  double gamma = 0.0;
  LossKind loss = LossKind::kSquaredError;

  // Path-specific knobs.
  int n_gpus = 2;                  // multi-GPU leg (always <= n_attributes)
  std::size_t ooc_chunk_bytes = std::size_t{1} << 17;
  bool ooc_stream_compressed = true;
  int n_bins = 64;                 // histogram-trainer leg bin budget

  // Objective/sampling knobs (gbdt_fuzz --objective legs).  Defaults are the
  // disabled configuration; base_param() never sets them, so the other
  // oracles keep training exactly the pre-objective-layer configuration.
  double subsample = 1.0;
  std::int64_t feature_bag = 0;       // 0 = all, -1 = sqrt, n > 0 = explicit
  std::uint64_t sampling_seed = 42;
  int query_size = 10;                // mean docs per query, ranking leg

  [[nodiscard]] static FuzzCase from_seed(std::uint64_t seed);

  /// The synthetic dataset spec of this case (generation seed derived from
  /// the case seed).
  [[nodiscard]] data::SyntheticSpec dataset_spec() const;

  /// Base hyper-parameters shared by every trainer leg.
  [[nodiscard]] GBDTParam base_param() const;

  /// One-line human-readable summary.
  [[nodiscard]] std::string describe() const;

  /// Command-line that replays exactly this case (including any minimizer
  /// shrinks) through tools/gbdt_fuzz.
  [[nodiscard]] std::string repro_command() const;
};

}  // namespace gbdt::testing
