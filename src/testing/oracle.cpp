#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "analysis/access_audit.h"
#include "analysis/hb_race.h"
#include "baselines/xgb_exact.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "core/out_of_core.h"
#include "core/trainer.h"
#include "core/trainer_hist.h"
#include "core/predictor.h"
#include "multigpu/allreduce.h"
#include "multigpu/multi_trainer.h"
#include "primitives/fused_split.h"
#include "serve/service.h"
#include "testing/invariants.h"

namespace gbdt::testing {

namespace {

using device::Device;
using device::DeviceConfig;

/// Trees + scores of one trainer leg, normalised across report types.
struct LegOutput {
  std::vector<Tree> trees;
  std::vector<double> scores;
  double rle_ratio = 1.0;
};

/// Compares a leg against the reference.  `tol` 0.0 demands bitwise
/// equality (the sparse GPU leg); otherwise exact gain ties broken
/// differently are tolerated when the forests fit identically.
void compare_leg(LegResult& leg, const LegOutput& ref, const LegOutput& got,
                 double tol, const std::vector<float>& labels,
                 double fit_tol = 1e-3) {
  if (got.trees.size() != ref.trees.size()) {
    leg.detail = "forest size " + std::to_string(got.trees.size()) +
                 " != reference " + std::to_string(ref.trees.size());
    return;
  }
  for (std::size_t t = 0; t < ref.trees.size(); ++t) {
    if (!Tree::same_structure(ref.trees[t], got.trees[t], tol)) {
      ++leg.divergent_trees;
      if (leg.detail.empty()) {
        leg.detail = "tree " + std::to_string(t) +
                     " diverges from the reference";
      }
    }
  }
  if (leg.divergent_trees == 0) {
    if (tol == 0.0) {
      // Bitwise score agreement too.
      for (std::size_t i = 0; i < ref.scores.size(); ++i) {
        if (got.scores[i] != ref.scores[i]) {
          leg.detail = "train score " + std::to_string(i) +
                       " differs bitwise (" + std::to_string(got.scores[i]) +
                       " vs " + std::to_string(ref.scores[i]) + ")";
          return;
        }
      }
    }
    leg.exact = true;
    leg.detail.clear();
    return;
  }
  // Tie-break divergence: accept only functional equivalence.
  const double ref_fit = rmse(ref.scores, labels);
  const double got_fit = rmse(got.scores, labels);
  if (tol > 0.0 && std::abs(ref_fit - got_fit) <= fit_tol * (1.0 + ref_fit)) {
    leg.tie_equivalent = true;
    leg.detail += " (exact-gain tie, fits agree: " + std::to_string(ref_fit) +
                  " vs " + std::to_string(got_fit) + ")";
  } else {
    leg.detail += "; fits disagree: rmse " + std::to_string(ref_fit) +
                  " vs " + std::to_string(got_fit);
  }
}

/// Runs one leg, converting invariant violations and trainer errors into a
/// failed LegResult instead of propagating.
LegResult run_leg(const std::string& name,
                  const std::function<LegOutput()>& body, const LegOutput& ref,
                  double tol, const std::vector<float>& labels,
                  double fit_tol = 1e-3) {
  LegResult leg;
  leg.name = name;
  leg.ran = true;
  try {
    const LegOutput got = body();
    leg.rle_ratio = got.rle_ratio;
    compare_leg(leg, ref, got, tol, labels, fit_tol);
  } catch (const InvariantViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const analysis::RaceViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const analysis::AuditViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const std::exception& e) {
    leg.detail = std::string("trainer threw: ") + e.what();
  }
  return leg;
}

/// The hist_vs_exact leg: the device histogram trainer splits on bin
/// boundaries, so structural comparison against the exact reference is
/// meaningless.  Quality equivalence instead: the forest must have the same
/// tree count, every tree must respect the depth budget, and the training
/// fit must land within a multiplicative+additive tolerance of the
/// reference's.  The tolerance is deliberately loose — with few bins on a
/// high-cardinality column the approximation genuinely costs accuracy — but
/// tight enough that a broken trainer (wrong histogram, wrong gain, wrong
/// partition) blows through it.
LegResult hist_leg(const FuzzCase& c, const LegOutput& ref,
                   const data::Dataset& ds) {
  LegResult leg;
  leg.name = "hist_vs_exact";
  leg.ran = true;
  try {
    GBDTParam p = c.base_param();
    p.use_hist_trainer = true;
    p.n_bins = c.n_bins;
    Device dev(DeviceConfig::titan_x_pascal());
    auto r = GpuHistTrainer(dev, p).train(ds);
    if (r.trees.size() != ref.trees.size()) {
      leg.detail = "forest size " + std::to_string(r.trees.size()) +
                   " != reference " + std::to_string(ref.trees.size());
      return leg;
    }
    for (std::size_t t = 0; t < r.trees.size(); ++t) {
      if (r.trees[t].depth() > c.depth) {
        leg.detail = "tree " + std::to_string(t) + " depth " +
                     std::to_string(r.trees[t].depth()) +
                     " exceeds the budget " + std::to_string(c.depth);
        return leg;
      }
    }
    const double ref_fit = rmse(ref.scores, ds.labels());
    const double got_fit = rmse(r.train_scores, ds.labels());
    leg.quality_equivalent = got_fit <= ref_fit * 1.5 + 0.1;
    leg.detail = "fit " + std::to_string(got_fit) + " vs exact " +
                 std::to_string(ref_fit) + " (" + std::to_string(c.n_bins) +
                 " bins)";
    if (leg.quality_equivalent) leg.detail.clear();
  } catch (const InvariantViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const analysis::RaceViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const analysis::AuditViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const std::exception& e) {
    leg.detail = std::string("trainer threw: ") + e.what();
  }
  return leg;
}

/// Shared prologue of both oracles: arm invariants, build the dataset and
/// the CPU exact-greedy reference.
LegOutput reference_leg(const data::Dataset& ds, const GBDTParam& base) {
  LegOutput ref;
  auto r = baseline::XgbExactTrainer(base).train(ds);
  ref.trees = std::move(r.trees);
  ref.scores = std::move(r.train_scores);
  return ref;
}

/// Seeded query-grouped ranking data for the ranking_beats_pointwise leg.
/// Attribute 0 is a query-constant bias feature whose level also shifts
/// every label in the query; attribute 1 carries the within-query relevance
/// signal; the rest is noise.  Squared error spends its split budget
/// explaining the bias (it dominates the label variance) while LambdaMART
/// ignores it (within-query lambda sums are zero), so under a tight tree
/// budget the ranking objective orders held-out queries strictly better.
data::Dataset make_ranking_dataset(const FuzzCase& c,
                                   std::int64_t n_queries) {
  std::uint64_t s = c.seed ^ 0x72616e6b64617461ull;  // "rankdata" stream
  auto unit = [&s] {
    return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  };
  data::Dataset ds(4);
  std::vector<std::int64_t> offsets{0};
  std::vector<data::Entry> row;
  for (std::int64_t q = 0; q < n_queries; ++q) {
    // 16 bias levels at weight 4: the bias contributes ~64x the label
    // variance of the relevance signal, and resolving 16 levels costs 4
    // full tree levels — more than the leg's depth budget — so squared
    // error keeps chasing the bias residual on every tree.
    const std::int64_t m = static_cast<std::int64_t>(c.query_size) +
                           static_cast<std::int64_t>(splitmix64(s) % 5);
    const auto bias_level = static_cast<int>(splitmix64(s) % 16);
    for (std::int64_t i = 0; i < m; ++i) {
      const auto rel = static_cast<int>(splitmix64(s) % 8);
      row.assign({{0, static_cast<float>(bias_level)},
                  {1, static_cast<float>(rel + 0.9 * unit())},
                  {2, static_cast<float>(8.0 * unit())},
                  {3, static_cast<float>(8.0 * unit())}});
      ds.add_instance(row, static_cast<float>(rel + 4 * bias_level));
    }
    offsets.push_back(offsets.back() + m);
  }
  ds.set_query_offsets(std::move(offsets));
  return ds;
}

/// The ranking_beats_pointwise leg: identical data, identical tree budget,
/// only the objective differs; held-out NDCG@10 decides.
LegResult ranking_leg(const FuzzCase& c) {
  LegResult leg;
  leg.name = "ranking_beats_pointwise";
  leg.ran = true;
  try {
    const std::int64_t n_train_q = 24;
    const std::int64_t n_valid_q = 12;
    const auto full = make_ranking_dataset(c, n_train_q + n_valid_q);
    const auto [train_set, valid] = full.split_queries_at(n_train_q);

    GBDTParam pointwise;
    pointwise.depth = 3;
    pointwise.n_trees = 3;
    pointwise.lambda = 1.0;
    pointwise.loss = LossKind::kSquaredError;
    pointwise.use_rle = false;
    pointwise.force_rle = false;

    GBDTParam rank = pointwise;
    rank.objective = ObjectiveKind::kRanking;
    rank.ndcg_k = 10;

    Device rank_dev(DeviceConfig::titan_x_pascal());
    const auto rank_model = GBDTModel::train(rank_dev, train_set, rank).first;
    Device point_dev(DeviceConfig::titan_x_pascal());
    const auto point_model =
        GBDTModel::train(point_dev, train_set, pointwise).first;

    const double rank_ndcg =
        ndcg_at_k(rank_model.predict(valid), valid.labels(),
                  valid.query_offsets(), 10);
    const double point_ndcg =
        ndcg_at_k(point_model.predict(valid), valid.labels(),
                  valid.query_offsets(), 10);
    leg.exact = rank_ndcg > point_ndcg;
    if (!leg.exact) {
      leg.detail = "held-out ndcg@10: lambdarank " +
                   std::to_string(rank_ndcg) + " does not beat pointwise " +
                   std::to_string(point_ndcg);
    }
  } catch (const InvariantViolation& e) {
    leg.invariant_violation = true;
    leg.detail = e.what();
  } catch (const std::exception& e) {
    leg.detail = std::string("ranking leg threw: ") + e.what();
  }
  return leg;
}

}  // namespace

std::string OracleResult::failure_report() const {
  std::ostringstream os;
  for (const auto& l : legs) {
    if (!l.failed()) continue;
    os << "  leg " << l.name << ": " << l.detail << "\n";
  }
  return os.str();
}

OracleResult run_oracle(const FuzzCase& c, bool check_invariants) {
  OracleResult result;
  result.c = c;

  const bool was_enabled = invariants_enabled();
  set_invariants_enabled(check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const GBDTParam base = c.base_param();

  // Reference: the exact-greedy CPU baseline.
  const LegOutput ref = reference_leg(ds, base);

  result.legs.push_back(run_leg(
      "gpu_sparse",
      [&] {
        Device dev(DeviceConfig::titan_x_pascal());
        auto r = GpuGbdtTrainer(dev, base).train(ds);
        return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
      },
      ref, 0.0, ds.labels()));

  auto rle_leg = [&](bool direct) {
    GBDTParam p = base;
    p.use_rle = true;
    p.force_rle = true;
    p.use_direct_rle_split = direct;
    Device dev(DeviceConfig::titan_x_pascal());
    auto r = GpuGbdtTrainer(dev, p).train(ds);
    return LegOutput{std::move(r.trees), std::move(r.train_scores),
                     r.rle_ratio};
  };
  result.legs.push_back(run_leg("gpu_rle_direct", [&] { return rle_leg(true); },
                                ref, 1e-7, ds.labels()));
  result.legs.push_back(
      run_leg("gpu_rle_fallback", [&] { return rle_leg(false); }, ref, 1e-7,
              ds.labels()));

  // The two RLE node-split strategies must account compression identically.
  {
    auto& direct = result.legs[result.legs.size() - 2];
    auto& fallback = result.legs.back();
    if (direct.ran && fallback.ran && !direct.invariant_violation &&
        !fallback.invariant_violation &&
        direct.rle_ratio != fallback.rle_ratio) {
      direct.exact = false;
      direct.tie_equivalent = false;
      direct.detail = "rle_ratio accounting differs between Directly-Split (" +
                      std::to_string(direct.rle_ratio) + ") and fallback (" +
                      std::to_string(fallback.rle_ratio) + ")";
    }
  }

  const int n_gpus =
      static_cast<int>(std::min<std::int64_t>(c.n_gpus, c.n_attributes));
  if (n_gpus >= 2) {
    result.legs.push_back(run_leg(
        "multigpu_x" + std::to_string(n_gpus),
        [&] {
          multigpu::MultiGpuTrainer trainer(DeviceConfig::titan_x_pascal(),
                                            n_gpus, base);
          auto r = trainer.train(ds);
          return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
        },
        ref, 1e-7, ds.labels()));
  } else {
    LegResult skipped;
    skipped.name = "multigpu";
    skipped.ran = false;
    skipped.detail = "skipped: fewer than 2 shardable attributes";
    result.legs.push_back(std::move(skipped));
  }

  result.legs.push_back(run_leg(
      "out_of_core",
      [&] {
        Device dev(DeviceConfig::titan_x_pascal());
        OutOfCoreTrainer trainer(dev, base, c.ooc_chunk_bytes,
                                 c.ooc_stream_compressed);
        auto r = trainer.train(ds);
        return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
      },
      ref, 1e-7, ds.labels()));

  // Fused vs unfused find-split pipeline: the GBDT_UNFUSED_SPLIT escape
  // hatch must reproduce the fused trees bit for bit on every path (only
  // the modeled cost accounting may differ between the modes).
  {
    const bool was_fused = prim::fused_split_enabled();
    auto fused_pair_leg = [&](const GBDTParam& p, const std::string& name) {
      LegOutput fused;
      prim::set_fused_split_enabled(true);
      try {
        Device dev(DeviceConfig::titan_x_pascal());
        auto r = GpuGbdtTrainer(dev, p).train(ds);
        fused = LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
      } catch (const std::exception& e) {
        LegResult leg;
        leg.name = name;
        leg.ran = true;
        leg.detail = std::string("fused trainer threw: ") + e.what();
        result.legs.push_back(std::move(leg));
        prim::set_fused_split_enabled(was_fused);
        return;
      }
      prim::set_fused_split_enabled(false);
      result.legs.push_back(run_leg(
          name,
          [&] {
            Device dev(DeviceConfig::titan_x_pascal());
            auto r = GpuGbdtTrainer(dev, p).train(ds);
            return LegOutput{std::move(r.trees), std::move(r.train_scores),
                             1.0};
          },
          fused, 0.0, ds.labels()));
      prim::set_fused_split_enabled(was_fused);
    };
    fused_pair_leg(base, "unfused_vs_fused_sparse");
    GBDTParam p = base;
    p.use_rle = true;
    p.force_rle = true;
    fused_pair_leg(p, "unfused_vs_fused_rle");
  }

  result.legs.push_back(hist_leg(c, ref, ds));

  set_invariants_enabled(was_enabled);
  return result;
}

OracleResult run_hist_oracle(const FuzzCase& c, bool check_invariants) {
  OracleResult result;
  result.c = c;

  const bool was_enabled = invariants_enabled();
  set_invariants_enabled(check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const LegOutput ref = reference_leg(ds, c.base_param());
  result.legs.push_back(hist_leg(c, ref, ds));

  set_invariants_enabled(was_enabled);
  return result;
}

OracleResult run_serve_oracle(const FuzzCase& c, bool check_invariants) {
  OracleResult result;
  result.c = c;

  const bool was_enabled = invariants_enabled();
  set_invariants_enabled(check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const GBDTParam base = c.base_param();

  // The model under serve is the sparse GPU trainer's forest; the offline
  // reference is predict_on_device over the same rows on a fresh device.
  std::optional<GBDTModel> model;
  std::vector<double> ref;
  try {
    Device dev(DeviceConfig::titan_x_pascal());
    model.emplace(GBDTModel::train(dev, ds, base).first);
    Device ref_dev(DeviceConfig::titan_x_pascal());
    ref = model->predict_device(ref_dev, ds);
  } catch (const std::exception& e) {
    LegResult leg;
    leg.name = "serve_setup";
    leg.ran = true;
    leg.detail = std::string("training/reference threw: ") + e.what();
    result.legs.push_back(std::move(leg));
    set_invariants_enabled(was_enabled);
    return result;
  }

  // One serving leg: run `body`, demand bitwise agreement with the offline
  // reference row for row.  Invariant violations (the torn-swap detector)
  // are recorded, not propagated.
  auto serve_leg = [&](const std::string& name,
                       const std::function<std::vector<double>()>& body) {
    LegResult leg;
    leg.name = name;
    leg.ran = true;
    try {
      const std::vector<double> got = body();
      if (got.size() != ref.size()) {
        leg.detail = "scored " + std::to_string(got.size()) + " rows, offline " +
                     std::to_string(ref.size());
        return leg;
      }
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (got[i] != ref[i]) {
          leg.detail = "row " + std::to_string(i) + " differs bitwise (" +
                       std::to_string(got[i]) + " vs offline " +
                       std::to_string(ref[i]) + ")";
          return leg;
        }
      }
      leg.exact = true;
    } catch (const InvariantViolation& e) {
      leg.invariant_violation = true;
      leg.detail = e.what();
    } catch (const std::exception& e) {
      leg.detail = std::string("serving threw: ") + e.what();
    }
    return leg;
  };

  // Serving knobs derived from the case seed (SplitMix64 finalizer) so the
  // fuzzer sweeps batch sizes, shard counts, modes and worker counts.
  std::uint64_t h = c.seed + 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;

  serve::ServeConfig sc;
  sc.max_batch = 1 + static_cast<std::size_t>(h % 32);
  sc.n_shards = 1 + static_cast<int>((h >> 8) % 3);
  sc.mode = ((h >> 16) & 1) != 0 ? serve::ShardMode::kTreeShard
                                 : serve::ShardMode::kReplicate;
  sc.n_workers = 1 + static_cast<int>((h >> 24) % 2);
  sc.queue_capacity = 256;
  sc.policy = serve::OverflowPolicy::kBlock;  // the oracle must score all rows
  sc.max_wait_ticks = 1;

  result.legs.push_back(serve_leg("serve_vs_batch", [&] {
    serve::PredictionService svc(*model, sc);
    const std::uint64_t want_version = svc.current_snapshot()->version;
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(static_cast<std::size_t>(ds.n_instances()));
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      auto row = ds.instance(i);
      auto f = svc.submit({row.begin(), row.end()});
      if (!f) throw std::runtime_error("kBlock submit rejected a request");
      futs.push_back(std::move(*f));
    }
    svc.shutdown();
    std::vector<double> got;
    got.reserve(futs.size());
    for (auto& f : futs) {
      const serve::Response r = f.get();
      if (r.version != want_version) {
        throw std::runtime_error("response attributed to version " +
                                 std::to_string(r.version) + ", published " +
                                 std::to_string(want_version));
      }
      got.push_back(r.score);
    }
    return got;
  }));

  result.legs.push_back(serve_leg("serve_row", [&] {
    serve::ServeConfig row_cfg = sc;
    row_cfg.n_workers = 1;
    row_cfg.n_shards = 1;
    serve::PredictionService svc(*model, row_cfg);
    std::vector<double> got;
    got.reserve(static_cast<std::size_t>(ds.n_instances()));
    for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
      got.push_back(svc.predict_row(ds.instance(i)).score);
    }
    return got;
  }));

  if (model->trees().size() >= 2) {
    result.legs.push_back(serve_leg("serve_relay", [&] {
      auto snap = serve::make_snapshot(*model, 1);
      if (invariants_enabled()) snap->verify();
      const int shards = static_cast<int>(
          std::min<std::size_t>(3, model->trees().size()));
      serve::ShardScorer scorer(snap, shards, serve::ShardMode::kTreeShard,
                                DeviceConfig::titan_x_pascal());
      return scorer.score_batch(ds);
    }));
  } else {
    LegResult skipped;
    skipped.name = "serve_relay";
    skipped.ran = false;
    skipped.detail = "skipped: single-tree forest";
    result.legs.push_back(std::move(skipped));
  }

  set_invariants_enabled(was_enabled);
  return result;
}

OracleResult run_objective_oracle(const FuzzCase& c, bool check_invariants) {
  OracleResult result;
  result.c = c;

  const bool was_enabled = invariants_enabled();
  set_invariants_enabled(check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const GBDTParam base = c.base_param();

  // Sampled configuration under test: force both masks live so the
  // determinism legs always exercise the sampling machinery, even when the
  // case drew the disabled knobs.
  GBDTParam sampled = base;
  sampled.subsample = c.subsample < 1.0 ? c.subsample : 0.7;
  sampled.feature_bag = c.feature_bag != 0 ? c.feature_bag : -1;
  sampled.sampling_seed = c.sampling_seed;

  auto sparse_run = [&](const GBDTParam& p) {
    Device dev(DeviceConfig::titan_x_pascal());
    auto r = GpuGbdtTrainer(dev, p).train(ds);
    return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
  };

  // Leg: subsample=1.0 + feature_bag=all is the trivially-degenerate plan —
  // it must compile out entirely, whatever the sampling seed.
  {
    bool have_plain = false;
    LegOutput plain;
    try {
      plain = sparse_run(base);
      have_plain = true;
    } catch (const std::exception& e) {
      LegResult leg;
      leg.name = "trivial_plan_bitwise";
      leg.ran = true;
      leg.detail = std::string("baseline trainer threw: ") + e.what();
      result.legs.push_back(std::move(leg));
    }
    if (have_plain) {
      GBDTParam degenerate = base;
      degenerate.subsample = 1.0;
      degenerate.feature_bag = 0;
      degenerate.sampling_seed = c.sampling_seed;
      result.legs.push_back(
          run_leg("trivial_plan_bitwise",
                  [&] { return sparse_run(degenerate); }, plain, 0.0,
                  ds.labels()));
    }
  }

  // Sampled baseline: the sparse path's forest under the case's masks.
  bool have_sampled = false;
  LegOutput sampled_ref;
  try {
    sampled_ref = sparse_run(sampled);
    have_sampled = true;
  } catch (const std::exception& e) {
    LegResult leg;
    leg.name = "sampled_baseline";
    leg.ran = true;
    leg.detail = std::string("sampled trainer threw: ") + e.what();
    result.legs.push_back(std::move(leg));
  }

  if (have_sampled) {
    // Same seed, fresh device: the forest must replay bit for bit.
    result.legs.push_back(run_leg("sampled_replay_bitwise",
                                  [&] { return sparse_run(sampled); },
                                  sampled_ref, 0.0, ds.labels()));

    // The masks are drawn on the host, so every trainer path must see the
    // identical plan.  Masked rows carry zero gradients, which turns whole
    // threshold ranges into exact-gain plateaus; the paths enumerate split
    // candidates in different orders, so tie-break divergence is much more
    // frequent than in the unsampled oracle and the functional-equivalence
    // band is widened to 1e-2 accordingly.
    constexpr double kSampledFitTol = 1e-2;
    result.legs.push_back(run_leg(
        "sampled_rle_vs_sparse",
        [&] {
          GBDTParam p = sampled;
          p.use_rle = true;
          p.force_rle = true;
          return sparse_run(p);
        },
        sampled_ref, 1e-7, ds.labels(), kSampledFitTol));

    const int n_gpus =
        static_cast<int>(std::min<std::int64_t>(c.n_gpus, c.n_attributes));
    if (n_gpus >= 2) {
      result.legs.push_back(run_leg(
          "sampled_multigpu_x" + std::to_string(n_gpus),
          [&] {
            multigpu::MultiGpuTrainer trainer(DeviceConfig::titan_x_pascal(),
                                              n_gpus, sampled);
            auto r = trainer.train(ds);
            return LegOutput{std::move(r.trees), std::move(r.train_scores),
                             1.0};
          },
          sampled_ref, 1e-7, ds.labels(), kSampledFitTol));
    }

    result.legs.push_back(run_leg(
        "sampled_ooc",
        [&] {
          Device dev(DeviceConfig::titan_x_pascal());
          OutOfCoreTrainer trainer(dev, sampled, c.ooc_chunk_bytes,
                                   c.ooc_stream_compressed);
          auto r = trainer.train(ds);
          return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
        },
        sampled_ref, 1e-7, ds.labels(), kSampledFitTol));

    // The histogram trainer under the same masks: quality equivalence
    // against the sampled exact path (same policy as hist_vs_exact).
    {
      LegResult leg;
      leg.name = "sampled_hist";
      leg.ran = true;
      try {
        GBDTParam p = sampled;
        p.use_hist_trainer = true;
        p.n_bins = c.n_bins;
        Device dev(DeviceConfig::titan_x_pascal());
        auto r = GpuHistTrainer(dev, p).train(ds);
        if (r.trees.size() != sampled_ref.trees.size()) {
          leg.detail = "forest size " + std::to_string(r.trees.size()) +
                       " != sampled exact " +
                       std::to_string(sampled_ref.trees.size());
        } else {
          bool depth_ok = true;
          for (const auto& t : r.trees) {
            if (t.depth() > c.depth) {
              leg.detail = "tree depth " + std::to_string(t.depth()) +
                           " exceeds the budget " + std::to_string(c.depth);
              depth_ok = false;
              break;
            }
          }
          if (depth_ok) {
            const double ref_fit = rmse(sampled_ref.scores, ds.labels());
            const double got_fit = rmse(r.train_scores, ds.labels());
            leg.quality_equivalent = got_fit <= ref_fit * 1.5 + 0.1;
            if (!leg.quality_equivalent) {
              leg.detail = "fit " + std::to_string(got_fit) +
                           " vs sampled exact " + std::to_string(ref_fit);
            }
          }
        }
      } catch (const InvariantViolation& e) {
        leg.invariant_violation = true;
        leg.detail = e.what();
      } catch (const std::exception& e) {
        leg.detail = std::string("trainer threw: ") + e.what();
      }
      result.legs.push_back(std::move(leg));
    }
  }

  result.legs.push_back(ranking_leg(c));

  set_invariants_enabled(was_enabled);
  return result;
}

OracleResult run_mgpu_oracle(const FuzzCase& c, bool check_invariants) {
  OracleResult result;
  result.c = c;

  const bool was_enabled = invariants_enabled();
  set_invariants_enabled(check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const GBDTParam base = c.base_param();
  const int n_gpus =
      static_cast<int>(std::min<std::int64_t>(c.n_gpus, c.n_attributes));

  if (n_gpus < 2) {
    LegResult skipped;
    skipped.name = "mgpu";
    skipped.ran = false;
    skipped.detail = "skipped: fewer than 2 shardable attributes";
    result.legs.push_back(std::move(skipped));
    set_invariants_enabled(was_enabled);
    return result;
  }

  auto mgpu_run = [&](const GBDTParam& p, multigpu::MultiGpuOptions opts) {
    multigpu::MultiGpuTrainer trainer(DeviceConfig::titan_x_pascal(), n_gpus,
                                      p, multigpu::Interconnect::pcie3(),
                                      opts);
    auto r = trainer.train(ds);
    return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
  };
  // Runs `body` with the GBDT_ALLTOONE hatch armed, restoring the
  // environment state afterwards even when the trainer throws.
  auto with_alltoone = [&](const std::function<LegOutput()>& body) {
    multigpu::set_alltoone_forced(1);
    try {
      LegOutput out = body();
      multigpu::set_alltoone_forced(-1);
      return out;
    } catch (...) {
      multigpu::set_alltoone_forced(-1);
      throw;
    }
  };

  const multigpu::MultiGpuOptions ring_opts;  // data-parallel, ring

  // Exact path: the ring-merged forest is the reference; the hatch, the
  // tree collective and feature sharding are compared against it.
  bool have_ring = false;
  LegOutput ring_ref;
  try {
    ring_ref = mgpu_run(base, ring_opts);
    have_ring = true;
  } catch (const std::exception& e) {
    LegResult leg;
    leg.name = "mgpu_ring_baseline";
    leg.ran = true;
    leg.detail = std::string("ring trainer threw: ") + e.what();
    result.legs.push_back(std::move(leg));
  }

  if (have_ring) {
    result.legs.push_back(run_leg(
        "ring_vs_alltoone",
        [&] { return with_alltoone([&] { return mgpu_run(base, ring_opts); }); },
        ring_ref, 0.0, ds.labels()));

    result.legs.push_back(run_leg(
        "tree_vs_ring",
        [&] {
          multigpu::MultiGpuOptions opts;
          opts.algo = multigpu::AllreduceAlgo::kTree;
          return mgpu_run(base, opts);
        },
        ring_ref, 0.0, ds.labels()));

    result.legs.push_back(run_leg(
        "feature_vs_data",
        [&] {
          multigpu::MultiGpuOptions opts;
          opts.shard = multigpu::ShardMode::kFeature;
          return mgpu_run(base, opts);
        },
        ring_ref, 1e-7, ds.labels()));
  }

  // Histogram-allreduce mode: K-shard hist training vs the single-device
  // histogram trainer, and the ring collective vs the hatch — all bitwise.
  GBDTParam hist = base;
  hist.use_hist_trainer = true;
  hist.n_bins = c.n_bins;

  bool have_hist = false;
  LegOutput hist_ref;
  try {
    Device dev(DeviceConfig::titan_x_pascal());
    auto r = GpuHistTrainer(dev, hist).train(ds);
    hist_ref = LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
    have_hist = true;
  } catch (const std::exception& e) {
    LegResult leg;
    leg.name = "mgpu_hist_single_baseline";
    leg.ran = true;
    leg.detail = std::string("single-device hist trainer threw: ") + e.what();
    result.legs.push_back(std::move(leg));
  }

  if (have_hist) {
    result.legs.push_back(run_leg(
        "mgpu_hist_vs_single", [&] { return mgpu_run(hist, ring_opts); },
        hist_ref, 0.0, ds.labels()));

    result.legs.push_back(run_leg(
        "hist_ring_vs_alltoone",
        [&] { return with_alltoone([&] { return mgpu_run(hist, ring_opts); }); },
        hist_ref, 0.0, ds.labels()));
  }

  set_invariants_enabled(was_enabled);
  return result;
}

OracleResult run_race_oracle(const FuzzCase& c, bool check_invariants) {
  // Arm the happens-before detector for every trainer path (a race anywhere
  // fails its leg as an invariant violation), and force real streams so the
  // out-of-core double buffer is actually exercised.
  const bool race_was = analysis::race_detect_enabled();
  const bool async_was = device::stream_async_enabled();
  analysis::set_race_detect_enabled(true);
  device::set_stream_async_enabled(true);

  OracleResult result = run_oracle(c, check_invariants);

  const auto ds = data::generate(c.dataset_spec());
  const GBDTParam base = c.base_param();
  auto ooc_leg = [&](Device& dev) {
    auto r = OutOfCoreTrainer(dev, base, c.ooc_chunk_bytes,
                              c.ooc_stream_compressed)
                 .train(ds);
    return LegOutput{std::move(r.trees), std::move(r.train_scores), 1.0};
  };

  // Eager async baseline for the schedule-equivalence legs (the detector
  // stays armed: these runs must also be race-clean).
  bool have_async = false;
  LegOutput async_ref;
  try {
    Device dev(DeviceConfig::titan_x_pascal());
    async_ref = ooc_leg(dev);
    have_async = true;
  } catch (const std::exception& e) {
    LegResult leg;
    leg.name = "ooc_async_baseline";
    leg.ran = true;
    leg.detail = std::string("async pipeline threw: ") + e.what();
    result.legs.push_back(std::move(leg));
  }

  if (have_async) {
    result.legs.push_back(run_leg(
        "ooc_sync_hatch",
        [&] {
          device::set_stream_async_enabled(false);
          try {
            Device dev(DeviceConfig::titan_x_pascal());
            LegOutput out = ooc_leg(dev);
            device::set_stream_async_enabled(true);
            return out;
          } catch (...) {
            device::set_stream_async_enabled(true);
            throw;
          }
        },
        async_ref, 0.0, ds.labels()));

    for (int k = 0; k < 3; ++k) {
      result.legs.push_back(run_leg(
          "ooc_schedule_fuzz_" + std::to_string(k),
          [&] {
            Device dev(DeviceConfig::titan_x_pascal());
            dev.set_schedule_fuzz(c.seed * 1315423911ull +
                                  static_cast<std::uint64_t>(k));
            LegOutput out = ooc_leg(dev);
            dev.clear_schedule_fuzz();
            return out;
          },
          async_ref, 0.0, ds.labels()));
    }
  }

  device::set_stream_async_enabled(async_was);
  analysis::set_race_detect_enabled(race_was);
  return result;
}

FuzzCase minimize_case_with(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& still_fails,
    int max_attempts) {
  FuzzCase best = failing;
  int attempts = 0;
  bool shrunk = true;
  while (shrunk && attempts < max_attempts) {
    shrunk = false;
    // Shrink operations, most impactful first.
    const std::vector<std::function<bool(FuzzCase&)>> ops = {
        [](FuzzCase& c) {
          if (c.n_instances <= 10) return false;
          c.n_instances = std::max<std::int64_t>(10, c.n_instances / 2);
          return true;
        },
        [](FuzzCase& c) {
          if (c.n_trees <= 1) return false;
          c.n_trees = std::max(1, c.n_trees / 2);
          return true;
        },
        [](FuzzCase& c) {
          if (c.n_attributes <= 2) return false;
          c.n_attributes = std::max<std::int64_t>(2, c.n_attributes / 2);
          return true;
        },
        [](FuzzCase& c) {
          if (c.depth <= 1) return false;
          c.depth = std::max(1, c.depth / 2);
          return true;
        },
    };
    for (const auto& op : ops) {
      if (attempts >= max_attempts) break;
      FuzzCase candidate = best;
      if (!op(candidate)) continue;
      ++attempts;
      if (still_fails(candidate)) {
        best = candidate;
        shrunk = true;
      }
    }
  }
  return best;
}

FuzzCase minimize_case(const FuzzCase& failing, bool check_invariants,
                       int max_attempts) {
  return minimize_case_with(
      failing,
      [check_invariants](const FuzzCase& c) {
        return !run_oracle(c, check_invariants).pass();
      },
      max_attempts);
}

}  // namespace gbdt::testing
