#include "testing/invariants.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/trainer_detail.h"

namespace gbdt::testing {

namespace {

enum class Flag : int { kUnset = -1, kOff = 0, kOn = 1 };

std::atomic<int> g_enabled{static_cast<int>(Flag::kUnset)};

bool env_enabled() {
  const char* v = std::getenv("GBDT_CHECK_INVARIANTS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}

[[noreturn]] void fail(const char* where, const std::string& what) {
  throw InvariantViolation(std::string(where) + ": " + what);
}

}  // namespace

bool invariants_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state == static_cast<int>(Flag::kUnset)) {
    state = env_enabled() ? static_cast<int>(Flag::kOn)
                          : static_cast<int>(Flag::kOff);
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == static_cast<int>(Flag::kOn);
}

void set_invariants_enabled(bool enabled) {
  g_enabled.store(static_cast<int>(enabled ? Flag::kOn : Flag::kOff),
                  std::memory_order_relaxed);
}

FaultInjection& fault_injection() {
  static FaultInjection fi;
  return fi;
}

void maybe_inject_partition_fault(detail::TrainState& st) {
  if (!invariants_enabled() || !fault_injection().break_partition_order) {
    return;
  }
  // Make the first segment with >= 2 elements ascend instead of descend.
  const auto off = st.seg_offsets.span();
  for (std::size_t s = 0; s + 1 < off.size(); ++s) {
    const std::int64_t lo = off[s];
    const std::int64_t hi = off[s + 1];
    if (hi - lo >= 2) {
      auto& head = st.values[static_cast<std::size_t>(lo)];
      head = st.values[static_cast<std::size_t>(lo) + 1] - 1.f;
      return;
    }
  }
}

void check_sparse_layout(const detail::TrainState& st, std::int64_t n_seg,
                         const char* where) {
  if (!invariants_enabled()) return;
  const auto off = st.seg_offsets.span();
  if (static_cast<std::int64_t>(off.size()) != n_seg + 1) {
    fail(where, "seg_offsets has " + std::to_string(off.size()) +
                    " entries, expected " + std::to_string(n_seg + 1));
  }
  if (n_seg > 0 && off[0] != 0) {
    fail(where, "seg_offsets[0] = " + std::to_string(off[0]));
  }
  for (std::int64_t s = 0; s < n_seg; ++s) {
    const auto u = static_cast<std::size_t>(s);
    if (off[u] > off[u + 1]) {
      fail(where, "seg_offsets not monotone at segment " + std::to_string(s));
    }
  }
  if (n_seg > 0 && off[static_cast<std::size_t>(n_seg)] != st.n_elems) {
    fail(where, "seg_offsets do not cover all " + std::to_string(st.n_elems) +
                    " elements (last = " +
                    std::to_string(off[static_cast<std::size_t>(n_seg)]) + ")");
  }
  const auto values = st.values.span();
  const auto inst = st.inst.span();
  for (std::int64_t s = 0; s < n_seg; ++s) {
    const auto u = static_cast<std::size_t>(s);
    for (std::int64_t e = off[u]; e < off[u + 1]; ++e) {
      const auto eu = static_cast<std::size_t>(e);
      if (e > off[u] && values[eu - 1] < values[eu]) {
        fail(where, "segment " + std::to_string(s) +
                        " not sorted descending at element " +
                        std::to_string(e) + " (" +
                        std::to_string(values[eu - 1]) + " < " +
                        std::to_string(values[eu]) + ")");
      }
      if (inst[eu] < 0 || inst[eu] >= st.n_inst) {
        fail(where, "instance id " + std::to_string(inst[eu]) +
                        " out of range at element " + std::to_string(e));
      }
    }
  }
}

void check_rle_layout(const detail::TrainState& st, std::int64_t n_seg,
                      const char* where) {
  if (!invariants_enabled()) return;
  const std::int64_t n_runs = st.n_runs;
  const auto starts = st.run_starts.span();
  const auto roff = st.run_seg_offsets.span();
  const auto eoff = st.seg_offsets.span();
  const auto rv = st.run_values.span();
  if (static_cast<std::int64_t>(starts.size()) != n_runs + 1) {
    fail(where, "run_starts has " + std::to_string(starts.size()) +
                    " entries, expected " + std::to_string(n_runs + 1));
  }
  if (static_cast<std::int64_t>(roff.size()) != n_seg + 1 ||
      static_cast<std::int64_t>(eoff.size()) != n_seg + 1) {
    fail(where, "segment offset arrays sized for " +
                    std::to_string(roff.size() - 1) + "/" +
                    std::to_string(eoff.size() - 1) + " segments, expected " +
                    std::to_string(n_seg));
  }
  if (starts[0] != 0 ||
      starts[static_cast<std::size_t>(n_runs)] != st.n_elems) {
    fail(where, "run starts cover [" + std::to_string(starts[0]) + ", " +
                    std::to_string(starts[static_cast<std::size_t>(n_runs)]) +
                    "), expected [0, " + std::to_string(st.n_elems) + ")");
  }
  for (std::int64_t r = 0; r < n_runs; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (starts[u + 1] <= starts[u]) {
      fail(where, "run " + std::to_string(r) + " has non-positive length " +
                      std::to_string(starts[u + 1] - starts[u]));
    }
  }
  if (roff[0] != 0 || roff[static_cast<std::size_t>(n_seg)] != n_runs) {
    fail(where, "run segment offsets do not cover all runs");
  }
  for (std::int64_t s = 0; s < n_seg; ++s) {
    const auto u = static_cast<std::size_t>(s);
    if (roff[u] > roff[u + 1]) {
      fail(where,
           "run seg_offsets not monotone at segment " + std::to_string(s));
    }
    // Element-domain boundary of the segment must be the start of its first
    // run (empty segments share the boundary with their successor).
    if (starts[static_cast<std::size_t>(roff[u])] != eoff[u]) {
      fail(where, "segment " + std::to_string(s) +
                      ": run/element boundaries disagree (" +
                      std::to_string(starts[static_cast<std::size_t>(roff[u])]) +
                      " vs " + std::to_string(eoff[u]) + ")");
    }
    for (std::int64_t r = roff[u] + 1; r < roff[u + 1]; ++r) {
      const auto ru = static_cast<std::size_t>(r);
      if (!(rv[ru - 1] > rv[ru])) {
        fail(where, "segment " + std::to_string(s) +
                        ": run values not strictly descending at run " +
                        std::to_string(r) + " (" + std::to_string(rv[ru - 1]) +
                        " then " + std::to_string(rv[ru]) + ")");
      }
    }
  }
}

void check_rle_roundtrip(device::Device& dev, const rle::DeviceRle& compressed,
                         const device::DeviceBuffer<float>& original,
                         const char* where) {
  if (!invariants_enabled()) return;
  if (compressed.n_elements !=
      static_cast<std::int64_t>(original.size())) {
    fail(where, "compressed element count " +
                    std::to_string(compressed.n_elements) + " != original " +
                    std::to_string(original.size()));
  }
  auto restored = dev.alloc<float>(original.size());
  rle::decompress(dev, compressed, restored);
  const auto a = restored.span();
  const auto b = original.span();
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (a[i] != b[i]) {
      fail(where, "decompress(compress(x)) differs from x at element " +
                      std::to_string(i) + " (" + std::to_string(a[i]) +
                      " vs " + std::to_string(b[i]) + ")");
    }
  }
}

void check_level_conservation(const detail::TrainState& st,
                              const detail::LevelPlan& plan,
                              const char* where) {
  if (!invariants_enabled()) return;
  std::vector<std::pair<std::int32_t, std::int64_t>> expected;
  expected.reserve(plan.next_active.size());
  for (std::size_t s = 0; s < plan.per_slot.size(); ++s) {
    const auto& e = plan.per_slot[s];
    if (!e.split) continue;
    const detail::ActiveNode& parent = st.active[s];
    const std::int32_t lslot =
        plan.next_slot_of_tree[static_cast<std::size_t>(e.left_id)];
    const std::int32_t rslot =
        plan.next_slot_of_tree[static_cast<std::size_t>(e.right_id)];
    detail::ActiveNode left = plan.next_active[static_cast<std::size_t>(lslot)];
    detail::ActiveNode right =
        plan.next_active[static_cast<std::size_t>(rslot)];
    if (fault_injection().break_child_counts && left.count > 0) {
      left.count -= 1;
    }
    if (left.count <= 0 || right.count <= 0) {
      fail(where, "slot " + std::to_string(s) + " split produced an empty " +
                      "child (" + std::to_string(left.count) + " / " +
                      std::to_string(right.count) + ")");
    }
    if (left.count + right.count != parent.count) {
      fail(where, "slot " + std::to_string(s) + " child counts " +
                      std::to_string(left.count) + " + " +
                      std::to_string(right.count) + " != parent " +
                      std::to_string(parent.count));
    }
    const double scale =
        1.0 + std::abs(parent.sum_g) + std::abs(parent.sum_h);
    if (std::abs(left.sum_g + right.sum_g - parent.sum_g) > 1e-6 * scale ||
        std::abs(left.sum_h + right.sum_h - parent.sum_h) > 1e-6 * scale) {
      fail(where, "slot " + std::to_string(s) +
                      " child gradient sums do not conserve the parent");
    }
    expected.emplace_back(e.left_id, left.count);
    expected.emplace_back(e.right_id, right.count);
  }
  check_instance_counts(st.node_of.span(), expected, where);
}

void check_instance_counts(
    std::span<const std::int32_t> node_of,
    std::span<const std::pair<std::int32_t, std::int64_t>> expected,
    const char* where) {
  if (!invariants_enabled() || expected.empty()) return;
  std::int32_t max_id = 0;
  for (const auto& [id, cnt] : expected) max_id = std::max(max_id, id);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_id) + 1, 0);
  for (const std::int32_t id : node_of) {
    if (id >= 0 && id <= max_id) ++counts[static_cast<std::size_t>(id)];
  }
  for (const auto& [id, cnt] : expected) {
    if (counts[static_cast<std::size_t>(id)] != cnt) {
      fail(where, "instance->node map holds " +
                      std::to_string(counts[static_cast<std::size_t>(id)]) +
                      " instances for node " + std::to_string(id) +
                      ", expected " + std::to_string(cnt));
    }
  }
}

namespace {

/// Host traversal mirroring the trainer's split convention: present value
/// >= split goes left, missing goes to the learned default child.
std::int32_t traverse(const Tree& tree, std::span<const data::Entry> row) {
  std::int32_t id = 0;
  while (!tree.node(id).is_leaf()) {
    const TreeNode& n = tree.node(id);
    const float* found = nullptr;
    std::size_t lo = 0, hi = row.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (row[mid].attr < n.attr) {
        lo = mid + 1;
      } else if (row[mid].attr > n.attr) {
        hi = mid;
      } else {
        found = &row[mid].value;
        break;
      }
    }
    const bool go_left =
        found != nullptr ? *found >= n.split_value : n.default_left;
    id = go_left ? n.left : n.right;
  }
  return id;
}

}  // namespace

void check_leaf_map(std::span<const std::int32_t> node_of, const Tree& tree,
                    const data::Dataset& ds, const char* where) {
  if (!invariants_enabled()) return;
  for (std::int64_t i = 0; i < ds.n_instances(); ++i) {
    const std::int32_t expected = traverse(tree, ds.instance(i));
    const std::int32_t got = node_of[static_cast<std::size_t>(i)];
    if (got != expected) {
      std::ostringstream os;
      os << "instance " << i << " maps to node " << got
         << " but tree traversal reaches leaf " << expected
         << " (SmartGD would gather the wrong leaf weight)";
      fail(where, os.str());
    }
  }
}

}  // namespace gbdt::testing
