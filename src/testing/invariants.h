// Structural invariant checks for the trainer paths, gated behind the
// GBDT_CHECK_INVARIANTS flag (environment variable or programmatic toggle).
//
// Every optimization in the paper — RLE compression, Directly-Split-RLE,
// the order-preserving partition, SmartGD — is claimed to be *exact*.  The
// checks in this header make the structural half of that claim executable:
// trainers call them at their hook points, and when checking is enabled a
// violated invariant throws InvariantViolation with enough context to
// pinpoint the broken kernel.  When disabled (the default) every check is a
// single relaxed atomic load, so the hooks are free in normal builds.
//
// Checked invariants:
//  * attribute lists stay value-sorted (descending) inside every segment
//    after each order-preserving partition;
//  * segment offsets are monotone and cover the whole element/run domain;
//  * RLE runs have positive length, strictly descending distinct values per
//    segment, and run/element segment boundaries agree;
//  * decompress(compress(x)) == x for the root-level RLE build;
//  * child instance counts (and gradient sums) conserve the parent, both in
//    the host-side level plan and in the device instance->node map;
//  * the instance->leaf map SmartGD gathers through matches a host-side
//    traversal of the finished tree (the gradients it produces are exactly
//    the traversal-computed ones).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/tree.h"
#include "data/dataset.h"
#include "device/device_context.h"
#include "rle/rle.h"

namespace gbdt::detail {
struct TrainState;
struct LevelPlan;
}  // namespace gbdt::detail

namespace gbdt::testing {

/// Thrown by any check when its invariant does not hold.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error("invariant violation: " + what) {}
};

/// Whether the trainer hook points run their checks.  Initialised lazily
/// from the GBDT_CHECK_INVARIANTS environment variable ("1"/"on"/"true");
/// set_invariants_enabled overrides it (tests, the fuzz harness).
[[nodiscard]] bool invariants_enabled();
void set_invariants_enabled(bool enabled);

/// Test-only fault injection: lets the fuzz self-test corrupt trainer state
/// on purpose and verify the invariant checker catches it.  All flags are
/// off by default and only honoured while invariants are enabled.
struct FaultInjection {
  /// Break the descending value order of one partitioned segment (sparse
  /// path): the next check_sparse_layout must throw.
  bool break_partition_order = false;
  /// Drop one instance from a child count in the level plan before the
  /// conservation check (host-side bookkeeping corruption).
  bool break_child_counts = false;
  /// Corrupt one derived cell after the histogram-subtraction kernel: the
  /// hist trainer's bitwise subtraction self-check must throw.
  bool break_hist_subtraction = false;
  /// Publish a torn serving snapshot: one leaf weight is flipped *after*
  /// the snapshot's fingerprint is taken, modeling a reader observing a
  /// half-swapped forest.  The serving layer's per-batch snapshot verify
  /// must throw.
  bool serve_torn_swap = false;
};
[[nodiscard]] FaultInjection& fault_injection();

/// Applies any armed fault to the freshly partitioned sparse working layout
/// (no-op unless invariants are enabled and a fault is armed).
void maybe_inject_partition_fault(detail::TrainState& st);

// ---- layout checks (called after each order-preserving partition) ---------

/// Sparse working layout: seg_offsets monotone over [0, n_elems] with n_seg
/// segments, values sorted descending inside every segment, instance ids in
/// range.
void check_sparse_layout(const detail::TrainState& st, std::int64_t n_seg,
                         const char* where);

/// RLE working layout: run_starts strictly increasing (positive run
/// lengths) covering [0, n_elems], run_seg_offsets monotone over
/// [0, n_runs], strictly descending distinct run values inside every
/// segment, and element-domain segment offsets consistent with the run
/// domain.
void check_rle_layout(const detail::TrainState& st, std::int64_t n_seg,
                      const char* where);

/// decompress(compressed) must reproduce `original` bit for bit.
void check_rle_roundtrip(device::Device& dev, const rle::DeviceRle& compressed,
                         const device::DeviceBuffer<float>& original,
                         const char* where);

// ---- conservation checks ---------------------------------------------------

/// Host-side level plan: each splitting node's children must conserve its
/// instance count exactly and its gradient/hessian sums to within fp
/// tolerance, with both children non-empty; the device instance->node map
/// must agree with the planned child counts.
void check_level_conservation(const detail::TrainState& st,
                              const detail::LevelPlan& plan,
                              const char* where);

/// node_of occurrence counts must equal `expected` (pairs of tree-node id
/// and count) for every listed node.  Used by trainers that do not go
/// through LevelPlan (out-of-core).
void check_instance_counts(
    std::span<const std::int32_t> node_of,
    std::span<const std::pair<std::int32_t, std::int64_t>> expected,
    const char* where);

// ---- SmartGD ---------------------------------------------------------------

/// The instance->leaf map left by tree construction (what SmartGD gathers
/// its prediction updates through) must match a host-side traversal of the
/// finished tree for every training instance.
void check_leaf_map(std::span<const std::int32_t> node_of, const Tree& tree,
                    const data::Dataset& ds, const char* where);

}  // namespace gbdt::testing
