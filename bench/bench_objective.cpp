// Objective/sampling subsystem benchmarks (src/objective/): what does
// stochastic GBDT buy and what does it cost?
//
//   * subsample sweep — row-sampling ratios on a paper-analog dataset;
//     masked-out rows carry zero gradients, so find-split still scans the
//     full columns but the fit degrades gracefully while per-tree work on
//     gradient-dependent phases shrinks.
//   * feature bagging — sqrt-bag and combined row+feature sampling; the
//     feature mask prunes whole columns from split enumeration, which DOES
//     cut modeled find-split time.
//   * ranking — LambdaMART vs pointwise squared error on a query-grouped
//     dataset with a query-constant nuisance feature, scored by held-out
//     NDCG@10 (the objective-oracle's ranking leg, at bench scale).
//   * early stopping — validation-driven truncation: trees kept vs budget.
//
// EXPERIMENTS.md renders the subsample and ranking tables from the JSON
// this writes (--json=BENCH_objective.json).
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "objective/sampling.h"

namespace {

/// Query-grouped learning-to-rank analog: attr0 is a query-constant bias
/// level that dominates label variance (pointwise bait, carries no ranking
/// information), attr1 is a noisy per-doc relevance signal, attrs 2-3 are
/// noise.  Same construction as the objective oracle's ranking leg.
gbdt::data::Dataset make_ranking_dataset(std::int64_t n_queries,
                                         std::uint64_t seed) {
  std::uint64_t s = seed ^ 0x72616e6b64617461ull;  // "rankdata" stream
  auto unit = [&s] {
    return static_cast<double>(gbdt::objective::splitmix64(s) >> 11) *
           0x1.0p-53;
  };
  gbdt::data::Dataset ds(4);
  std::vector<std::int64_t> offsets{0};
  std::vector<gbdt::data::Entry> row;
  for (std::int64_t q = 0; q < n_queries; ++q) {
    const std::int64_t m =
        8 + static_cast<std::int64_t>(gbdt::objective::splitmix64(s) % 9);
    const auto bias =
        static_cast<int>(gbdt::objective::splitmix64(s) % 16);
    for (std::int64_t i = 0; i < m; ++i) {
      const auto rel =
          static_cast<int>(gbdt::objective::splitmix64(s) % 8);
      row.assign({{0, static_cast<float>(bias)},
                  {1, static_cast<float>(rel + 0.9 * unit())},
                  {2, static_cast<float>(8.0 * unit())},
                  {3, static_cast<float>(8.0 * unit())}});
      ds.add_instance(row, static_cast<float>(rel + 4 * bias));
    }
    offsets.push_back(offsets.back() + m);
  }
  ds.set_query_offsets(std::move(offsets));
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/20);
  print_header("Objective layer: sampling cost/quality and LambdaMART", opt);
  BenchJson sink("bench_objective", opt);

  // --- Subsample sweep -------------------------------------------------
  {
    const auto info = data::paper_dataset("higgs", opt.scale);
    const auto ds = data::generate(info.spec);
    std::printf("\n%-22s | %10s %10s %10s\n", "case", "modeled(s)", "rmse",
                "rows kept");
    for (int pct : {100, 90, 70, 50, 30}) {
      auto param = paper_param(opt);
      param.subsample = pct / 100.0;
      param.sampling_seed = 42;
      const std::string name = "subsample_" + std::to_string(pct);
      BenchCase c(sink, name.c_str());
      const auto r = run_gpu(ds, param);
      const double fit = rmse(r.train_scores, ds.labels());
      c.metric("modeled_seconds", r.modeled.total());
      c.metric("find_split_seconds", r.modeled.find_split);
      c.metric("rmse", fit);
      c.metric("subsample", param.subsample);
      std::printf("%-22s | %10.3f %10.4f %9d%%\n", name.c_str(),
                  r.modeled.total(), fit, pct);
    }

    // Feature bagging: sqrt-bag alone, then combined with row sampling.
    for (const auto& [name, sub, bag] :
         {std::tuple<const char*, double, std::int64_t>{"feature_bag_sqrt",
                                                        1.0, -1},
          {"stochastic_70_sqrt", 0.7, -1}}) {
      auto param = paper_param(opt);
      param.subsample = sub;
      param.feature_bag = bag;
      param.sampling_seed = 42;
      BenchCase c(sink, name);
      const auto r = run_gpu(ds, param);
      const double fit = rmse(r.train_scores, ds.labels());
      c.metric("modeled_seconds", r.modeled.total());
      c.metric("find_split_seconds", r.modeled.find_split);
      c.metric("rmse", fit);
      c.metric("subsample", sub);
      std::printf("%-22s | %10.3f %10.4f %9.0f%%\n", name,
                  r.modeled.total(), fit, sub * 100.0);
    }
  }

  // --- Ranking: LambdaMART vs pointwise -------------------------------
  {
    const auto n_queries = std::max<std::int64_t>(
        40, static_cast<std::int64_t>(400 * opt.scale));
    const auto full = make_ranking_dataset(n_queries, 0x9e3779b9u);
    const auto [train_set, valid] = full.split_queries_at(n_queries * 2 / 3);

    // Tight budget on purpose: the query-constant bias needs 4 tree levels
    // to resolve, so a depth-3 forest can't just memorize it — pointwise
    // squared error burns trees chasing the bias residual while LambdaMART
    // ignores it (within-query lambda sums cancel on query-constant splits).
    GBDTParam pointwise = paper_param(opt);
    pointwise.depth = 3;
    pointwise.n_trees = std::max(3, opt.trees / 4);
    pointwise.loss = LossKind::kSquaredError;
    GBDTParam rank = pointwise;
    rank.objective = ObjectiveKind::kRanking;
    rank.ndcg_k = 10;

    std::printf("\n%-22s | %10s %10s\n", "objective", "modeled(s)",
                "ndcg@10");
    for (const auto& [name, param] :
         {std::pair<const char*, const GBDTParam&>{"ranking_pointwise",
                                                   pointwise},
          {"ranking_lambdamart", rank}}) {
      BenchCase c(sink, name);
      device::Device dev(device::DeviceConfig::titan_x_pascal());
      const auto [model, report] = GBDTModel::train(dev, train_set, param);
      const double ndcg = ndcg_at_k(model.predict(valid), valid.labels(),
                                    valid.query_offsets(), 10);
      c.metric("modeled_seconds", report.modeled.total());
      c.metric("valid_ndcg_at_10", ndcg);
      std::printf("%-22s | %10.3f %10.4f\n", name, report.modeled.total(),
                  ndcg);
    }
  }

  // --- Early stopping --------------------------------------------------
  {
    // One draw, row-split 80/20: the synthetic label function depends on
    // the seed, so a separately-seeded "validation set" would measure a
    // different function and stop immediately.
    const auto info = data::paper_dataset("higgs", opt.scale);
    const auto full = data::generate(info.spec);
    const auto [train_set, valid] =
        full.split_at(full.n_instances() * 4 / 5);

    auto param = paper_param(opt);
    param.n_trees = opt.trees * 3;  // give the stopper room to act
    BenchCase c(sink, "early_stop");
    device::Device dev(device::DeviceConfig::titan_x_pascal());
    const auto [model, report, history] = GBDTModel::train_with_validation(
        dev, train_set, valid, param, /*early_stopping_rounds=*/5);
    c.metric("modeled_seconds", report.modeled.total());
    c.metric("tree_budget", static_cast<double>(param.n_trees));
    c.metric("trees_kept", static_cast<double>(model.trees().size()));
    c.metric("best_iteration", static_cast<double>(history.best_iteration));
    c.metric("stopped_early", history.stopped_early ? 1.0 : 0.0);
    c.metric("best_valid_rmse",
             history.best_iteration >= 0
                 ? *std::min_element(history.metric.begin(),
                                     history.metric.end())
                 : 0.0);
    std::printf("\nearly stopping: kept %zu of %d trees (best iteration %d, "
                "%s)\n",
                model.trees().size(), param.n_trees, history.best_iteration,
                history.stopped_early ? "stopped early" : "ran to budget");
  }

  std::printf("(row masks zero gradients in place — no compaction — so "
              "quality degrades smoothly; feature bags prune columns from "
              "split enumeration)\n");
  return 0;
}
