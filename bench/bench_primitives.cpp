// Microbenchmarks of the device primitives (google-benchmark).  These
// measure *host wall time* of the simulation and report the modeled device
// throughput as a counter, supporting the ablation benches: the per-element
// costs of scan / segmented scan / sort / partition / RLE are what the
// analytic results in bench_table2 and bench_fig9 are built from.
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "device/device_context.h"
#include "device/workspace_arena.h"
#include "primitives/fused_split.h"
#include "primitives/partition.h"
#include "primitives/scan.h"
#include "primitives/segmented.h"
#include "primitives/sort.h"
#include "rle/rle.h"

namespace {

using namespace gbdt;
using device::Device;
using device::DeviceConfig;

void BM_InclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Device dev(DeviceConfig::titan_x_pascal());
  auto in = dev.alloc<double>(n);
  auto out = dev.alloc<double>(n);
  prim::fill(dev, in, 1.0);
  double modeled = 0.0;
  for (auto _ : state) {
    const double before = dev.elapsed_seconds();
    prim::inclusive_scan(dev, in, out);
    modeled += dev.elapsed_seconds() - before;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["modeled_GB/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n * 16 / modeled / 1e9);
}
BENCHMARK(BM_InclusiveScan)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SegmentedScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto seg_len = static_cast<std::int64_t>(state.range(1));
  Device dev(DeviceConfig::titan_x_pascal());
  auto vals = dev.alloc<double>(n);
  prim::fill(dev, vals, 1.0);
  std::vector<std::int64_t> offs{0};
  while (offs.back() < static_cast<std::int64_t>(n)) {
    offs.push_back(std::min<std::int64_t>(static_cast<std::int64_t>(n),
                                          offs.back() + seg_len));
  }
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(n);
  prim::set_keys(dev, d_offs, keys,
                 prim::auto_segs_per_block(
                     static_cast<std::int64_t>(offs.size()) - 1, 28));
  auto out = dev.alloc<double>(n);
  for (auto _ : state) {
    prim::segmented_inclusive_scan_by_key(dev, vals, keys, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentedScan)
    ->Args({1 << 18, 4})      // many tiny segments (deep high-dim trees)
    ->Args({1 << 18, 1000})   // medium
    ->Args({1 << 18, 1 << 18});  // one segment (root node)

void BM_SetKeysCustomVsNaive(benchmark::State& state) {
  const std::int64_t n_seg = state.range(0);
  const bool custom = state.range(1) != 0;
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<std::int64_t> offs(static_cast<std::size_t>(n_seg) + 1);
  for (std::int64_t s = 0; s <= n_seg; ++s) {
    offs[static_cast<std::size_t>(s)] = s * 2;  // 2-element segments
  }
  auto d_offs = dev.to_device<std::int64_t>(offs);
  auto keys = dev.alloc<std::int32_t>(static_cast<std::size_t>(n_seg) * 2);
  double modeled = 0.0;
  for (auto _ : state) {
    const double before = dev.elapsed_seconds();
    prim::set_keys(dev, d_offs, keys,
                   custom ? prim::auto_segs_per_block(n_seg, 28) : 1);
    modeled += dev.elapsed_seconds() - before;
  }
  state.counters["modeled_us"] =
      benchmark::Counter(modeled * 1e6 / state.iterations());
}
BENCHMARK(BM_SetKeysCustomVsNaive)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng();
    vals[i] = static_cast<std::uint32_t>(i);
  }
  for (auto _ : state) {
    Device dev(DeviceConfig::titan_x_pascal());
    auto d_k = dev.to_device<std::uint64_t>(keys);
    auto d_v = dev.to_device<std::uint32_t>(vals);
    prim::radix_sort_pairs(dev, d_k, d_v);
    benchmark::DoNotOptimize(d_k.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 14)->Arg(1 << 18);

void BM_HistogramPartition(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t parts = state.range(1);
  const bool custom = state.range(2) != 0;
  Device dev(DeviceConfig::titan_x_pascal());
  std::mt19937 rng(2);
  std::vector<std::int32_t> ids(static_cast<std::size_t>(n));
  for (auto& x : ids) x = static_cast<std::int32_t>(rng() % parts);
  auto d_ids = dev.to_device<std::int32_t>(ids);
  auto scatter = dev.alloc<std::int64_t>(static_cast<std::size_t>(n));
  auto offs = dev.alloc<std::int64_t>(static_cast<std::size_t>(parts) + 1);
  const auto plan = prim::plan_partition(n, parts, std::size_t{1} << 26, custom);
  double modeled = 0.0;
  for (auto _ : state) {
    const double before = dev.elapsed_seconds();
    prim::histogram_partition(dev, d_ids.span(), parts, scatter.span(),
                              offs.span(), plan);
    modeled += dev.elapsed_seconds() - before;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["modeled_us"] =
      benchmark::Counter(modeled * 1e6 / state.iterations());
}
BENCHMARK(BM_HistogramPartition)
    ->Args({1 << 18, 64, 1})
    ->Args({1 << 18, 64, 0})
    ->Args({1 << 18, 4096, 1})
    ->Args({1 << 18, 4096, 0});

/// Shared fixture for the fused-find-split ablations: n elements in
/// seg_len-sized segments, an instance indirection for the gather, and a
/// gradient array.
struct FusedFixture {
  Device dev{DeviceConfig::titan_x_pascal()};
  device::WorkspaceArena arena{dev.allocator()};
  std::int64_t n, n_seg;
  device::DeviceBuffer<std::int64_t> d_offs;
  device::DeviceBuffer<std::int32_t> keys;
  device::DeviceBuffer<std::int32_t> inst;
  device::DeviceBuffer<double> grad;

  FusedFixture(std::int64_t n_, std::int64_t seg_len) : n(n_) {
    std::vector<std::int64_t> offs{0};
    while (offs.back() < n) {
      offs.push_back(std::min<std::int64_t>(n, offs.back() + seg_len));
    }
    n_seg = static_cast<std::int64_t>(offs.size()) - 1;
    d_offs = dev.to_device<std::int64_t>(offs);
    keys = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
    prim::set_keys(dev, d_offs, keys, prim::auto_segs_per_block(n_seg, 28));
    inst = dev.alloc<std::int32_t>(static_cast<std::size_t>(n));
    grad = dev.alloc<double>(static_cast<std::size_t>(n));
    std::mt19937 rng(3);
    for (std::int64_t i = 0; i < n; ++i) {
      inst[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(rng() % static_cast<unsigned>(n));
      grad[static_cast<std::size_t>(i)] = static_cast<double>(rng() % 17);
    }
  }
};

/// Fused gather+scan+totals vs the unfused gather -> segmented scan ->
/// present-totals sequence it replaces (range(1): 1 = fused).
void BM_GatherScanTotals(benchmark::State& state) {
  FusedFixture f(state.range(0), 1000);
  const bool fused = state.range(1) != 0;
  auto out = f.dev.alloc<double>(static_cast<std::size_t>(f.n));
  auto tot = f.dev.alloc<double>(static_cast<std::size_t>(f.n_seg));
  auto idx = f.inst.span();
  auto g = f.grad.span();
  const std::int64_t n = f.n;
  const std::int64_t n_seg = f.n_seg;
  double modeled = 0.0;
  for (auto _ : state) {
    const double before = f.dev.elapsed_seconds();
    if (fused) {
      prim::fused_gather_scan_totals(
          f.dev, f.arena, f.keys, out, tot,
          [idx, g](device::BlockCtx& b, std::int64_t i) {
            b.reads(idx, i);
            b.reads(g, idx[static_cast<std::size_t>(i)]);
            b.mem_coalesced(sizeof(std::int32_t));
            b.mem_irregular(1);
            return g[static_cast<std::size_t>(
                idx[static_cast<std::size_t>(i)])];
          },
          "bench_fused_gather_scan");
    } else {
      auto ghe = f.arena.alloc<double>(static_cast<std::size_t>(n));
      auto ge = ghe.span();
      f.dev.launch("bench_gather", device::grid_for(n, prim::kBlockDim),
                   prim::kBlockDim, [&](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t i) {
                       if (i >= n) return;
                       const auto u = static_cast<std::size_t>(i);
                       ge[u] = g[static_cast<std::size_t>(idx[u])];
                     });
                     b.reads_tile(idx, n);
                     b.writes_tile(ge, n);
                     const auto m = prim::elems_in_block(b, n);
                     b.mem_coalesced(m * 12);
                     b.mem_irregular(m);
                   });
      prim::segmented_inclusive_scan_by_key(f.dev, ghe, f.keys, out,
                                            "bench_seg_scan");
      auto o = out.span();
      auto t = tot.span();
      auto offs = f.d_offs.span();
      f.dev.launch("bench_seg_totals",
                   device::grid_for(n_seg, prim::kBlockDim), prim::kBlockDim,
                   [&](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t s) {
                       if (s >= n_seg) return;
                       const auto u = static_cast<std::size_t>(s);
                       if (offs[u] == offs[u + 1]) return;
                       t[u] = o[static_cast<std::size_t>(offs[u + 1] - 1)];
                       b.reads(o, offs[u + 1] - 1);
                     });
                     b.reads_tile(offs, n_seg + 1);
                     b.writes_tile(t, n_seg);
                     const auto m = prim::elems_in_block(b, n_seg);
                     b.mem_coalesced(m * 24);
                     b.mem_irregular(m);
                   });
      ghe.free();
    }
    modeled += f.dev.elapsed_seconds() - before;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.n);
  state.counters["modeled_us"] =
      benchmark::Counter(modeled * 1e6 / state.iterations());
}
BENCHMARK(BM_GatherScanTotals)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

/// Fused gain+argmax vs the unfused compute-gains -> segmented argmax pair
/// it replaces (range(1): 1 = fused).
void BM_GainArgmax(benchmark::State& state) {
  FusedFixture f(state.range(0), 1000);
  const bool fused = state.range(1) != 0;
  auto scan = f.dev.alloc<double>(static_cast<std::size_t>(f.n));
  prim::fill(f.dev, scan, 1.5);
  auto best_val = f.dev.alloc<double>(static_cast<std::size_t>(f.n_seg));
  auto best_idx = f.dev.alloc<std::int64_t>(static_cast<std::size_t>(f.n_seg));
  auto best_dir = f.dev.alloc<std::uint8_t>(static_cast<std::size_t>(f.n_seg));
  const std::int64_t n = f.n;
  const std::int64_t spb = prim::auto_segs_per_block(f.n_seg, 28);
  auto sc = scan.span();
  double modeled = 0.0;
  for (auto _ : state) {
    const double before = f.dev.elapsed_seconds();
    if (fused) {
      prim::fused_gain_argmax(
          f.dev, f.d_offs, best_val, best_idx, best_dir, spb,
          [sc](device::BlockCtx& b, std::int64_t s, std::int64_t e,
               std::int64_t lo, std::int64_t hi) {
            (void)s;
            (void)hi;
            b.reads(sc, e);
            b.mem_coalesced(sizeof(double));
            if (e == lo) b.mem_irregular(1);  // segment-invariant tables
            b.flop(16);
            const double x = sc[static_cast<std::size_t>(e)];
            return prim::GainDir{x * x - x, 0};
          },
          "bench_fused_gain_argmax");
    } else {
      auto gains = f.arena.alloc<double>(static_cast<std::size_t>(n));
      auto gn = gains.span();
      f.dev.launch("bench_compute_gains", device::grid_for(n, prim::kBlockDim),
                   prim::kBlockDim, [&](device::BlockCtx& b) {
                     b.for_each_thread([&](std::int64_t e) {
                       if (e >= n) return;
                       const auto u = static_cast<std::size_t>(e);
                       gn[u] = sc[u] * sc[u] - sc[u];
                     });
                     b.reads_tile(sc, n);
                     b.writes_tile(gn, n);
                     const auto m = prim::elems_in_block(b, n);
                     b.mem_coalesced(m * 16);
                     b.mem_irregular(m / 2);
                     b.flop(m * 16);
                   });
      prim::segmented_arg_max(f.dev, gains, f.d_offs, best_val, best_idx, spb,
                              "bench_seg_argmax");
      gains.free();
    }
    modeled += f.dev.elapsed_seconds() - before;
    benchmark::DoNotOptimize(best_val.data());
  }
  state.SetItemsProcessed(state.iterations() * f.n);
  state.counters["modeled_us"] =
      benchmark::Counter(modeled * 1e6 / state.iterations());
}
BENCHMARK(BM_GainArgmax)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_RleCompress(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int distinct = static_cast<int>(state.range(1));
  Device dev(DeviceConfig::titan_x_pascal());
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Sorted-descending values with n/distinct-length runs.
    v[static_cast<std::size_t>(i)] =
        static_cast<float>(distinct - i * distinct / n);
  }
  std::vector<std::int64_t> offs{0, n};
  auto d_v = dev.to_device<float>(v);
  auto d_o = dev.to_device<std::int64_t>(offs);
  for (auto _ : state) {
    auto compressed = rle::compress(dev, d_v.span(), d_o.span());
    benchmark::DoNotOptimize(compressed.n_runs);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RleCompress)->Args({1 << 18, 8})->Args({1 << 18, 1 << 16});

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): translates the suite-wide
// --json=<path> flag into google-benchmark's --benchmark_out so every bench
// binary accepts the same reporting flag (the emitted file uses
// google-benchmark's own schema, not gbdt-bench-v1; tools/gbdt_bench skips
// it when comparing).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (args[i] + 7);
      fmt_flag = "--benchmark_out_format=json";
      args[i] = out_flag.data();
      args.insert(args.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  fmt_flag.data());
      break;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
