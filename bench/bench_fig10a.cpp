// Reproduces Figure 10a: performance-price ratio of GPU-GBDT on the Titan X
// (1200 USD) vs xgbst-40 on the dual Xeon E5-2640v4 workstation (1878 USD),
// normalized to the CPU.  performance = 1/time; paper finding: the GPU is
// 1.5-3x more cost effective.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/10);
  print_header("Figure 10a — performance-price ratio (normalized to CPU)",
               opt);

  constexpr double kGpuPriceUsd = 1200.0;  // NVIDIA Titan X [16]
  constexpr double kCpuPriceUsd = 1878.0;  // 2x Xeon E5-2640v4 [17]

  BenchJson sink("fig10a", opt);
  std::printf("%-10s %10s %10s %12s\n", "dataset", "ours(s)", "xgb-40(s)",
              "perf/price");
  for (const auto& info : data::paper_datasets(opt.scale)) {
    const auto ds = data::generate(info.spec);
    const auto param = paper_param(opt);
    BenchCase c(sink, info.paper_name);
    const auto gpu = run_gpu(ds, param);
    const auto cpu = run_cpu(ds, param);
    const double gpu_s = gpu.modeled.total();
    const double cpu_s = cpu.modeled_seconds(cpu_config(), 40);
    // (1 / (t_gpu * price_gpu)) / (1 / (t_cpu * price_cpu))
    const double ratio = (cpu_s * kCpuPriceUsd) / (gpu_s * kGpuPriceUsd);
    c.metric("modeled_seconds", gpu_s);
    c.metric("perf_price_ratio", ratio);
    std::printf("%-10s %10.3f %10.3f %12.2f\n", info.paper_name.c_str(),
                gpu_s, cpu_s, ratio);
  }
  std::printf("(paper: GPU-GBDT is 1.5-3x more cost-effective than its CPU "
              "counterpart)\n");
  return 0;
}
