// Reproduces Figure 8b: speedup of GPU-GBDT over xgbst-40 as the number of
// trees varies from 10 to 80 (paper: flat — the trees of a GBDT are
// sequentially dependent, so more trees bring no extra parallelism).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt = Options::parse(argc, argv, /*default_scale=*/0.2);
  print_header("Figure 8b — speedup over xgbst-40 vs number of trees", opt);
  BenchJson sink("fig8b", opt);

  const std::vector<std::string> names{"covtype", "higgs", "news20", "susy"};
  std::printf("%-6s", "trees");
  for (const auto& n : names) std::printf(" %9s", n.c_str());
  std::printf("\n");

  for (int trees : {10, 20, 40, 80}) {
    std::printf("%-6d", trees);
    for (const auto& name : names) {
      const auto info = data::paper_dataset(name, opt.scale);
      const auto ds = data::generate(info.spec);
      GBDTParam p = paper_param(opt);
      p.n_trees = trees;
      BenchCase c(sink, name + "_trees" + std::to_string(trees));
      const auto gpu = run_gpu(ds, p);
      const auto cpu = run_cpu(ds, p);
      const double speedup =
          cpu.modeled_seconds(cpu_config(), 40) / gpu.modeled.total();
      c.metric("modeled_seconds", gpu.modeled.total());
      c.metric("speedup_over_xgb40", speedup);
      std::printf(" %9.2f", speedup);
    }
    std::printf("\n");
  }
  std::printf("(paper: the speedup is stable in the number of trees)\n");
  return 0;
}
