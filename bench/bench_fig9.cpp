// Reproduces Figure 9: impact of the individual optimizations.  Each of the
// five techniques is disabled in turn and the change in total execution time
// is reported as a percentage increase over the fully-optimized trainer.
//
// Paper findings: SmartGD and Directly-Split-RLE have the largest impact;
// Customized SetKey buys 10-20% on the high-dimensional datasets
// (log1p/news20); RLE matters on compressible datasets.
//
// RLE-dependent toggles (RLE itself, Directly-Split-RLE) are evaluated with
// compression forced on, so the effect is visible even on analogs whose
// dim/cardinality gate would leave RLE off; '-' marks datasets where a
// toggle is not applicable.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.25, /*trees=*/10);
  print_header("Figure 9 — impact of disabling individual optimizations", opt);
  BenchJson sink("fig9", opt);

  struct Toggle {
    const char* name;
    void (*apply)(GBDTParam&);
    bool needs_rle;
  };
  const std::vector<Toggle> toggles{
      {"Customized SetKey", [](GBDTParam& p) { p.use_custom_setkey = false; },
       false},
      {"Customized IdxComp",
       [](GBDTParam& p) { p.use_custom_idxcomp_workload = false; }, false},
      {"RLE", [](GBDTParam& p) { p.use_rle = false; p.force_rle = false; },
       true},
      {"SmartGD", [](GBDTParam& p) { p.use_smart_gd = false; }, false},
      {"Directly Split RLE",
       [](GBDTParam& p) { p.use_direct_rle_split = false; }, true},
  };

  std::printf("%-10s %10s", "dataset", "full(s)");
  for (const auto& t : toggles) std::printf(" %19s", t.name);
  std::printf(" %19s\n", "Autotune");

  for (const auto& info : data::paper_datasets(opt.scale)) {
    const auto ds = data::generate(info.spec);
    // Compressible analogs exercise the RLE toggles.
    const bool compressible = info.spec.distinct_values > 0;

    GBDTParam base = paper_param(opt);
    base.force_rle = compressible;
    BenchCase c(sink, info.paper_name);
    const auto full = run_gpu(ds, base);
    c.metric("modeled_seconds", full.modeled.total());
    std::printf("%-10s %10.3f", info.paper_name.c_str(),
                full.modeled.total());

    for (const auto& t : toggles) {
      if (t.needs_rle && !compressible) {
        std::printf(" %18s%%", "-");
        continue;
      }
      GBDTParam p = base;
      t.apply(p);
      const auto ablated = run_gpu(ds, p);
      const double delta =
          100.0 * (ablated.modeled.total() - full.modeled.total()) /
          full.modeled.total();
      std::printf(" %+18.1f%%", delta);
    }
    // The autotune column is an on/off comparison against the paper's fixed
    // constants, not an ablation: the cost-model search may keep the paper
    // configuration (delta 0) or predict a win and re-tune (delta <= 0).
    {
      GBDTParam p = base;
      p.autotune = true;
      const auto tuned = run_gpu(ds, p);
      c.metric("autotune_seconds", tuned.modeled.total());
      const double delta =
          100.0 * (tuned.modeled.total() - full.modeled.total()) /
          full.modeled.total();
      std::printf(" %+18.1f%%", delta);
    }
    std::printf("\n");
  }
  std::printf("(positive %% = slower without the optimization; paper: "
              "SmartGD and Directly-Split-RLE largest, SetKey 10-20%% on "
              "high-dimensional datasets)\n");
  return 0;
}
