// Shared plumbing for the paper-reproduction benches: dataset analogs,
// trainer invocations, table formatting, and machine-readable reports.
//
// Every bench accepts:
//   --scale=<f>   cardinality scale of the dataset analogs (default varies)
//   --trees=<n>   number of trees
//   --depth=<d>   tree depth
//   --json=<p>    also write a schema-versioned JSON report to <p>
//   --help        print the flags and exit
// and prints both modeled seconds (the reproduction metric, see DESIGN.md
// section 2) and host wall-clock seconds (transparency).
//
// JSON reports ("gbdt-bench-v1") carry one entry per case with a metrics
// map (modeled_seconds, wall_seconds, peak_device_bytes, plus bench-specific
// keys), a per-phase modeled-seconds summary and the full trace-span tree
// captured by an obs::ObsSession.  tools/gbdt_bench consumes them for the
// consolidated suite report and --compare regression checks.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "baselines/xgb_exact.h"
#include "baselines/xgb_gpu_dense.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace gbdt::bench {

struct Options {
  double scale = 0.25;
  int trees = 40;
  int depth = 6;
  std::string json_path;  // empty: no JSON report

  static Options parse(int argc, char** argv, double default_scale,
                       int default_trees = 40, int default_depth = 6) {
    Options o;
    o.scale = default_scale;
    o.trees = default_trees;
    o.depth = default_depth;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        std::printf(
            "usage: %s [--scale=<f>] [--trees=<n>] [--depth=<d>] "
            "[--json=<path>]\n"
            "  --scale=<f>   dataset-analog cardinality scale "
            "(default %.3g)\n"
            "  --trees=<n>   number of trees (default %d)\n"
            "  --depth=<d>   tree depth (default %d)\n"
            "  --json=<path> write a gbdt-bench-v1 JSON report\n"
            "  --help        this message\n",
            argv[0], default_scale, default_trees, default_depth);
        std::exit(0);
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        o.scale = std::atof(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--trees=", 8) == 0) {
        o.trees = std::atoi(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--depth=", 8) == 0) {
        o.depth = std::atoi(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        o.json_path = argv[i] + 7;
      } else {
        std::fprintf(stderr,
                     "unknown flag %s (supported: --scale= --trees= "
                     "--depth= --json= --help)\n",
                     argv[i]);
        std::exit(2);
      }
    }
    return o;
  }
};

/// Per-phase modeled seconds, flattened over the span tree: each name gets
/// the sum of its spans' *self* seconds, so the values partition the total.
inline void accumulate_phase_seconds(
    const obs::Span& s,
    std::vector<std::pair<std::string, double>>& out) {
  bool found = false;
  for (auto& [name, secs] : out) {
    if (name == s.name()) {
      secs += s.stats().modeled_self_seconds();
      found = true;
      break;
    }
  }
  if (!found) out.emplace_back(s.name(), s.stats().modeled_self_seconds());
  for (const auto& c : s.children()) accumulate_phase_seconds(*c, out);
}

/// Accumulates bench cases and writes the gbdt-bench-v1 report on
/// destruction (no-op without --json=).
class BenchJson {
 public:
  BenchJson(const char* bench, const Options& o)
      : path_(o.json_path), doc_(obs::Json::object()) {
    doc_["schema"] = "gbdt-bench-v1";
    doc_["bench"] = bench;
    auto op = obs::Json::object();
    op["scale"] = o.scale;
    op["trees"] = o.trees;
    op["depth"] = o.depth;
    doc_["options"] = std::move(op);
    doc_["cases"] = obs::Json::array();
  }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { flush(); }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  void append(obs::Json c) { doc_["cases"].push_back(std::move(c)); }

  /// Writes the report (idempotent; also called by the destructor).
  void flush() {
    if (path_.empty() || written_) return;
    written_ = true;
    if (!obs::write_json_file(path_, doc_)) {
      std::fprintf(stderr, "failed to write JSON report to %s\n",
                   path_.c_str());
    }
  }

 private:
  std::string path_;
  obs::Json doc_;
  bool written_ = false;
};

/// RAII recorder for one bench case: activates an ObsSession so trainer
/// spans, kernel stats and allocator high-water marks are captured, then
/// appends {name, metrics, phases, trace} to the sink on close.
///
/// modeled_seconds / wall_seconds / peak_device_bytes are derived from the
/// trace unless the bench set them explicitly via metric() — benches that
/// run several trainers per case should set modeled_seconds to the metric
/// the table prints, so --compare tracks the same number.
class BenchCase {
 public:
  BenchCase(BenchJson& sink, std::string name)
      : sink_(&sink), name_(std::move(name)), metrics_(obs::Json::object()) {
    session_.activate();
    wall_start_ = std::chrono::steady_clock::now();
  }
  BenchCase(const BenchCase&) = delete;
  BenchCase& operator=(const BenchCase&) = delete;
  ~BenchCase() { close(); }

  void metric(const char* key, double value) { metrics_[key] = value; }

  /// Drops the case without appending it to the report — for configurations
  /// that turn out infeasible at the current scale (e.g. a histogram arena
  /// that would not fit device memory).
  void skip() {
    if (sink_ == nullptr) return;
    session_.deactivate();
    sink_ = nullptr;
  }

  void close() {
    if (sink_ == nullptr) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start_)
            .count();
    session_.deactivate();
    const obs::Span& root = session_.root();
    if (!metrics_.contains("modeled_seconds")) {
      metrics_["modeled_seconds"] = root.modeled_total_seconds();
    }
    if (!metrics_.contains("wall_seconds")) metrics_["wall_seconds"] = wall;
    if (!metrics_.contains("peak_device_bytes")) {
      metrics_["peak_device_bytes"] =
          static_cast<std::uint64_t>(root.peak_device_bytes_total());
    }
    if (sink_->enabled()) {
      auto c = obs::Json::object();
      c["name"] = name_;
      c["metrics"] = std::move(metrics_);
      std::vector<std::pair<std::string, double>> phases;
      accumulate_phase_seconds(root, phases);
      auto ph = obs::Json::object();
      for (auto& [pname, secs] : phases) ph[pname] = secs;
      c["phases"] = std::move(ph);
      c["trace"] = root.to_json();
      sink_->append(std::move(c));
    }
    sink_ = nullptr;
  }

 private:
  BenchJson* sink_;
  std::string name_;
  obs::Json metrics_;
  obs::ObsSession session_;
  std::chrono::steady_clock::time_point wall_start_;
};

/// One GPU-GBDT training run on a fresh simulated Titan X.
inline TrainReport run_gpu(const data::Dataset& ds, const GBDTParam& param) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  GpuGbdtTrainer trainer(dev, param);
  return trainer.train(ds);
}

/// One instrumented CPU run; modeled seconds are read per thread count.
inline baseline::CpuTrainReport run_cpu(const data::Dataset& ds,
                                        const GBDTParam& param) {
  baseline::XgbExactTrainer trainer(param);
  return trainer.train(ds);
}

inline const device::CpuConfig& cpu_config() {
  static const device::CpuConfig cfg = device::CpuConfig::dual_xeon_e5_2640v4();
  return cfg;
}

inline GBDTParam paper_param(const Options& o) {
  GBDTParam p;
  p.depth = o.depth;
  p.n_trees = o.trees;
  return p;
}

inline void print_header(const char* title, const Options& o) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("analog scale %.3g, %d trees, depth %d "
              "(modeled seconds; see EXPERIMENTS.md)\n",
              o.scale, o.trees, o.depth);
  std::printf("================================================================\n");
}

}  // namespace gbdt::bench
