// Shared plumbing for the paper-reproduction benches: dataset analogs,
// trainer invocations, and table formatting.
//
// Every bench accepts:
//   --scale=<f>   cardinality scale of the dataset analogs (default varies)
//   --trees=<n>   number of trees
//   --depth=<d>   tree depth
// and prints both modeled seconds (the reproduction metric, see DESIGN.md
// section 2) and host wall-clock seconds (transparency).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/xgb_exact.h"
#include "baselines/xgb_gpu_dense.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "device/device_context.h"

namespace gbdt::bench {

struct Options {
  double scale = 0.25;
  int trees = 40;
  int depth = 6;

  static Options parse(int argc, char** argv, double default_scale,
                       int default_trees = 40, int default_depth = 6) {
    Options o;
    o.scale = default_scale;
    o.trees = default_trees;
    o.depth = default_depth;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        o.scale = std::atof(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--trees=", 8) == 0) {
        o.trees = std::atoi(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--depth=", 8) == 0) {
        o.depth = std::atoi(argv[i] + 8);
      } else {
        std::fprintf(stderr,
                     "unknown flag %s (supported: --scale= --trees= "
                     "--depth=)\n",
                     argv[i]);
        std::exit(2);
      }
    }
    return o;
  }
};

/// One GPU-GBDT training run on a fresh simulated Titan X.
inline TrainReport run_gpu(const data::Dataset& ds, const GBDTParam& param) {
  device::Device dev(device::DeviceConfig::titan_x_pascal());
  GpuGbdtTrainer trainer(dev, param);
  return trainer.train(ds);
}

/// One instrumented CPU run; modeled seconds are read per thread count.
inline baseline::CpuTrainReport run_cpu(const data::Dataset& ds,
                                        const GBDTParam& param) {
  baseline::XgbExactTrainer trainer(param);
  return trainer.train(ds);
}

inline const device::CpuConfig& cpu_config() {
  static const device::CpuConfig cfg = device::CpuConfig::dual_xeon_e5_2640v4();
  return cfg;
}

inline GBDTParam paper_param(const Options& o) {
  GBDTParam p;
  p.depth = o.depth;
  p.n_trees = o.trees;
  return p;
}

inline void print_header(const char* title, const Options& o) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("analog scale %.3g, %d trees, depth %d "
              "(modeled seconds; see EXPERIMENTS.md)\n",
              o.scale, o.trees, o.depth);
  std::printf("================================================================\n");
}

}  // namespace gbdt::bench
