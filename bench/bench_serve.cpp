// Serving latency/throughput: open-loop arrival curves through the
// prediction service at several request rates and shard configurations,
// plus the single-row fast path vs the 1-row micro-batch path.
//
// Reported per case: exact p50/p95/p99 request latency (scheduled-arrival
// to score-ready, so queueing delay counts), sustained rows/sec, and the
// modeled device seconds spent by the shard fleet.  The `row_fast_path`
// case must come in well under `batch1_closed_loop` — that gap is the
// entire reason the fast path exists.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/gbdt.h"
#include "serve/percentile.h"
#include "serve/service.h"

namespace {

using namespace gbdt;
using gbdt::bench::BenchCase;
using gbdt::bench::BenchJson;

struct LoadResult {
  std::vector<double> latency;  // seconds, per completed request
  double wall = 0.0;
  std::uint64_t batches = 0;
  double modeled = 0.0;
};

/// Open-loop replay: request k is scheduled at k/rate regardless of how the
/// service keeps up, so overload shows up as queueing latency.
LoadResult run_open_loop(const GBDTModel& model, const data::Dataset& ds,
                         const serve::ServeConfig& cfg, double rate,
                         std::int64_t n_requests) {
  serve::PredictionService svc(model, cfg);
  LoadResult r;
  std::vector<std::future<serve::Response>> futs;
  std::vector<std::chrono::steady_clock::time_point> sched;
  futs.reserve(static_cast<std::size_t>(n_requests));
  sched.reserve(futs.capacity());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t k = 0; k < n_requests; ++k) {
    const auto due =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(k) / rate));
    std::this_thread::sleep_until(due);
    auto row = ds.instance(k % ds.n_instances());
    auto f = svc.submit({row.begin(), row.end()});
    if (!f) continue;  // kReject configs shed here
    futs.push_back(std::move(*f));
    sched.push_back(due);
  }
  svc.shutdown();
  r.latency.reserve(futs.size());
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto resp = futs[i].get();
    r.latency.push_back(
        std::chrono::duration<double>(resp.completed - sched[i]).count());
  }
  r.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  r.batches = svc.batches();
  r.modeled = svc.modeled_seconds();
  return r;
}

void report(BenchJson& sink, const std::string& name, const LoadResult& r) {
  BenchCase c(sink, name);
  const auto pcts = serve::percentiles(r.latency, {50.0, 95.0, 99.0});
  const double p50 = pcts[0];
  const double p95 = pcts[1];
  const double p99 = pcts[2];
  const double rps = static_cast<double>(r.latency.size()) / r.wall;
  c.metric("p50_latency_seconds", p50);
  c.metric("p95_latency_seconds", p95);
  c.metric("p99_latency_seconds", p99);
  c.metric("rows_per_sec", rps);
  c.metric("batches", static_cast<double>(r.batches));
  c.metric("modeled_seconds", r.modeled);
  std::printf("  %-28s %9.4f %9.4f %9.4f %10.0f %8llu\n", name.c_str(),
              1e3 * p50, 1e3 * p95, 1e3 * p99, rps,
              static_cast<unsigned long long>(r.batches));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbdt::bench;
  const auto opt = Options::parse(argc, argv, /*default_scale=*/0.25,
                                  /*default_trees=*/20, /*default_depth=*/4);
  print_header("Serving latency/throughput (open-loop arrival curves)", opt);
  BenchJson sink("serve", opt);

  // Model + request stream: a dense-ish regression analog.
  data::SyntheticSpec spec;
  spec.n_instances = std::max<std::int64_t>(
      200, static_cast<std::int64_t>(4000 * opt.scale));
  spec.n_attributes = 16;
  spec.density = 0.8;
  spec.seed = 99;
  const auto ds = data::generate(spec);
  GBDTParam p;
  p.n_trees = opt.trees;
  p.depth = opt.depth;
  device::Device train_dev(device::DeviceConfig::titan_x_pascal());
  const GBDTModel model = GBDTModel::train(train_dev, ds, p).first;

  const auto n_requests = std::max<std::int64_t>(
      200, static_cast<std::int64_t>(3000 * opt.scale));

  std::printf("model: %d trees depth %d; %lld request rows; %lld requests "
              "per case\n",
              opt.trees, opt.depth, static_cast<long long>(ds.n_instances()),
              static_cast<long long>(n_requests));
  std::printf("  %-28s %9s %9s %9s %10s %8s\n", "case", "p50(ms)", "p95(ms)",
              "p99(ms)", "rows/s", "batches");

  struct ShardConfig {
    const char* tag;
    int shards;
    serve::ShardMode mode;
  };
  const ShardConfig shard_configs[] = {
      {"shards1_rep", 1, serve::ShardMode::kReplicate},
      {"shards2_tree", 2, serve::ShardMode::kTreeShard},
      {"shards2_rep", 2, serve::ShardMode::kReplicate},
  };

  // Open-loop arrival curves: three rates x the shard configs.
  for (const double rate : {2000.0, 10000.0, 50000.0}) {
    for (const auto& sc : shard_configs) {
      serve::ServeConfig cfg;
      cfg.n_shards = sc.shards;
      cfg.mode = sc.mode;
      cfg.max_batch = 64;
      cfg.max_wait_ticks = 4;
      cfg.n_workers = sc.mode == serve::ShardMode::kReplicate ? sc.shards : 1;
      const auto r = run_open_loop(model, ds, cfg, rate, n_requests);
      report(sink,
             "rate" + std::to_string(static_cast<int>(rate)) + "_" + sc.tag,
             r);
    }
  }

  // Single-row fast path vs the same rows pushed one-at-a-time through the
  // micro-batcher (closed loop: each request waits for the previous one).
  {
    serve::ServeConfig cfg;
    serve::PredictionService svc(model, cfg);
    LoadResult fast;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t k = 0; k < n_requests; ++k) {
      const auto sent = std::chrono::steady_clock::now();
      const auto resp = svc.predict_row(ds.instance(k % ds.n_instances()));
      fast.latency.push_back(
          std::chrono::duration<double>(resp.completed - sent).count());
    }
    fast.wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    fast.modeled = svc.modeled_seconds();
    svc.shutdown();
    report(sink, "row_fast_path", fast);
  }
  {
    serve::ServeConfig cfg;
    cfg.max_batch = 1;
    cfg.max_wait_ticks = 1;
    serve::PredictionService svc(model, cfg);
    LoadResult one;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t k = 0; k < n_requests; ++k) {
      auto row = ds.instance(k % ds.n_instances());
      const auto sent = std::chrono::steady_clock::now();
      auto f = svc.submit({row.begin(), row.end()});
      if (!f) continue;
      const auto resp = f->get();
      one.latency.push_back(
          std::chrono::duration<double>(resp.completed - sent).count());
    }
    one.wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    one.batches = svc.batches();
    one.modeled = svc.modeled_seconds();
    svc.shutdown();
    report(sink, "batch1_closed_loop", one);
  }

  std::printf("(row_fast_path must sit well below batch1_closed_loop: the "
              "host-side traversal skips the queue and the device "
              "round-trip)\n");
  return 0;
}
