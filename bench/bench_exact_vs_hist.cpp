// Exact vs approximate split finding: the paper trains "without
// approximation" and its related work notes that LightGBM "only supports
// finding the best split points approximately".  This bench quantifies the
// trade on the dense/medium-dimensional analogs: the histogram method is
// faster per tree; coarse bins cost accuracy, and fine bins approach (or
// occasionally luck past — greedy splitting is not globally optimal) the
// exact fit.
#include "baselines/hist_trainer.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/20);
  print_header("Exact vs histogram (approximate) split finding", opt);
  BenchJson sink("exact_vs_hist", opt);

  std::printf("%-10s | %10s %10s | %7s", "dataset", "exact(s)", "rmse", "");
  for (int bins : {16, 64, 256}) std::printf("  hist%-4d(s)  rmse  ", bins);
  std::printf("\n");

  for (const char* name : {"susy", "higgs", "covtype", "insurance"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    const auto param = paper_param(opt);
    BenchCase c(sink, name);
    const auto exact = run_gpu(ds, param);
    c.metric("modeled_seconds", exact.modeled.total());
    c.metric("rmse", rmse(exact.train_scores, ds.labels()));
    std::printf("%-10s | %10.3f %10.4f | %7s", name, exact.modeled.total(),
                rmse(exact.train_scores, ds.labels()), "");
    for (int bins : {16, 64, 256}) {
      device::Device dev(device::DeviceConfig::titan_x_pascal());
      baseline::HistGbdtTrainer hist(dev, param, bins);
      const auto r = hist.train(ds);
      c.metric(("hist" + std::to_string(bins) + "_seconds").c_str(),
               r.modeled_seconds);
      std::printf("  %10.3f %6.4f", r.modeled_seconds,
                  rmse(r.train_scores, ds.labels()));
    }
    std::printf("\n");
  }
  std::printf("(exact split finding pays more time per tree for the best "
              "achievable fit; histograms trade accuracy for speed)\n");
  return 0;
}
