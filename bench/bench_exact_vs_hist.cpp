// Exact vs approximate split finding: the paper trains "without
// approximation" and its related work notes that LightGBM "only supports
// finding the best split points approximately".  This bench quantifies the
// trade on the dense/medium-dimensional analogs — for the CPU histogram
// baseline at several bin budgets AND the device-side histogram trainer
// (core/trainer_hist) — then sweeps a rows x bins grid to chart where the
// device histogram method's find-split cost crosses below the exact
// trainer's (the `xover_*` cases; EXPERIMENTS.md plots the crossover).
#include "baselines/hist_trainer.h"
#include "bench_common.h"
#include "core/trainer_hist.h"

namespace {

/// One device-hist training run on a fresh simulated Titan X.
gbdt::TrainReport run_device_hist(const gbdt::data::Dataset& ds,
                                  gbdt::GBDTParam param, int bins) {
  param.use_hist_trainer = true;
  param.n_bins = bins;
  gbdt::device::Device dev(gbdt::device::DeviceConfig::titan_x_pascal());
  return gbdt::GpuHistTrainer(dev, param).train(ds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/20);
  print_header("Exact vs histogram (approximate) split finding", opt);
  BenchJson sink("exact_vs_hist", opt);

  std::printf("%-10s | %10s %10s | %7s", "dataset", "exact(s)", "rmse", "");
  for (int bins : {16, 64, 256}) std::printf("  hist%-4d(s)  rmse  ", bins);
  std::printf("  devhist64(s)  rmse\n");

  for (const char* name : {"susy", "higgs", "covtype", "insurance"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    const auto param = paper_param(opt);
    BenchCase c(sink, name);
    const auto exact = run_gpu(ds, param);
    c.metric("modeled_seconds", exact.modeled.total());
    c.metric("exact_find_split_seconds", exact.modeled.find_split);
    c.metric("rmse", rmse(exact.train_scores, ds.labels()));
    std::printf("%-10s | %10.3f %10.4f | %7s", name, exact.modeled.total(),
                rmse(exact.train_scores, ds.labels()), "");
    for (int bins : {16, 64, 256}) {
      device::Device dev(device::DeviceConfig::titan_x_pascal());
      baseline::HistGbdtTrainer hist(dev, param, bins);
      const auto r = hist.train(ds);
      c.metric(("hist" + std::to_string(bins) + "_seconds").c_str(),
               r.modeled_seconds);
      std::printf("  %10.3f %6.4f", r.modeled_seconds,
                  rmse(r.train_scores, ds.labels()));
    }
    const auto dh = run_device_hist(ds, param, 64);
    c.metric("dhist64_seconds", dh.modeled.total());
    c.metric("dhist64_find_split_seconds", dh.modeled.find_split);
    std::printf("    %10.3f %6.4f\n", dh.modeled.total(),
                rmse(dh.train_scores, ds.labels()));
  }

  // Crossover sweep: where does the device histogram's modeled find-split
  // cost drop below the exact trainer's?  Exact enumerates every present
  // (attribute, value) per level; the histogram method pays one pass over
  // the entry stream plus n_attr * n_bins cells per node — so it wins on
  // many rows / few bins and loses on few rows / many bins.
  std::printf("\n%-18s | %14s %14s | winner\n", "rows x bins",
              "exact fs(s)", "dev-hist fs(s)");
  for (std::int64_t base_rows : {20'000, 80'000, 320'000}) {
    const auto rows = std::max<std::int64_t>(
        200, static_cast<std::int64_t>(static_cast<double>(base_rows) *
                                       opt.scale));
    data::SyntheticSpec spec;
    spec.name = "xover";
    spec.n_instances = rows;
    spec.n_attributes = 16;
    spec.density = 1.0;
    spec.label_noise = 0.1;
    spec.seed = static_cast<unsigned>(1009 + base_rows);
    const auto ds = data::generate(spec);
    const auto param = paper_param(opt);
    const auto exact = run_gpu(ds, param);
    for (int bins : {16, 64, 256}) {
      const std::string cname =
          "xover_r" + std::to_string(rows) + "_b" + std::to_string(bins);
      BenchCase c(sink, cname);
      const auto dh = run_device_hist(ds, param, bins);
      c.metric("modeled_seconds", dh.modeled.find_split);
      c.metric("exact_find_split_seconds", exact.modeled.find_split);
      c.metric("dhist_find_split_seconds", dh.modeled.find_split);
      c.metric("hist_wins",
               dh.modeled.find_split < exact.modeled.find_split ? 1.0 : 0.0);
      std::printf("%8lld x %-6d | %14.4f %14.4f | %s\n",
                  static_cast<long long>(rows), bins,
                  exact.modeled.find_split, dh.modeled.find_split,
                  dh.modeled.find_split < exact.modeled.find_split
                      ? "hist"
                      : "exact");
    }
  }
  std::printf("(exact split finding pays more time per tree for the best "
              "achievable fit; histograms trade accuracy for speed)\n");
  return 0;
}
