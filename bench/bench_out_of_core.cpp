// Out-of-core (column-streaming) training vs in-core GPU-GBDT: quantifies
// the PCI-e traffic the streaming mode pays per level and how much of it
// RLE-compressed chunk shipping recovers — the paper's Section III-C claim
// that RLE "reduce[s] the memory traffic for transferring the training
// dataset through PCI-e", exercised end to end.
#include <algorithm>

#include "bench_common.h"
#include "core/out_of_core.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/10);
  print_header("Out-of-core streaming vs in-core (PCI-e traffic)", opt);
  BenchJson sink("out_of_core", opt);

  std::printf("%-10s | %9s %9s | %9s %11s | %9s %11s %7s %9s\n", "dataset",
              "incore(s)", "lists", "raw(s)", "streamedMB", "rle(s)",
              "streamedMB", "chunks", "ovl r/rle");
  for (const char* name : {"covtype", "insurance", "susy", "news20"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    GBDTParam p = paper_param(opt);
    p.use_rle = false;

    BenchCase c(sink, name);
    const auto in_core = run_gpu(ds, p);

    // Chunk budget: the paper's 2 MiB cap, shrunk at small --scale so the
    // dataset still splits into several chunks — one chunk means no copy/
    // compute double-buffering and the overlap metric degenerates to 0.
    const auto est_bytes = static_cast<std::size_t>(
        static_cast<double>(ds.n_instances()) *
        static_cast<double>(ds.n_attributes()) * info.spec.density * 12.0);
    const std::size_t chunk_budget = std::clamp(
        est_bytes / 8, std::size_t{1} << 16, std::size_t{2} << 20);

    device::Device dev1(device::DeviceConfig::titan_x_pascal());
    OutOfCoreTrainer raw(dev1, p, chunk_budget, false);
    const auto r_raw = raw.train(ds);

    device::Device dev2(device::DeviceConfig::titan_x_pascal());
    OutOfCoreTrainer rle(dev2, p, chunk_budget, true);
    const auto r_rle = rle.train(ds);
    c.metric("modeled_seconds", r_raw.modeled_seconds);
    c.metric("incore_seconds", in_core.modeled.total());
    c.metric("rle_stream_seconds", r_rle.modeled_seconds);
    c.metric("streamed_bytes_raw",
             static_cast<double>(r_raw.streamed_bytes));
    c.metric("streamed_bytes_rle",
             static_cast<double>(r_rle.streamed_bytes));
    // Fraction of busy device seconds hidden by the copy/compute
    // double-buffer; 0 under GBDT_SYNC_STREAMS=1.
    c.metric("overlap_ratio_raw", r_raw.overlap_ratio);
    c.metric("overlap_ratio_rle", r_rle.overlap_ratio);

    std::printf(
        "%-10s | %9.3f %8.1fM | %9.3f %11.1f | %9.3f %11.1f %7d %4.2f/%4.2f\n",
        name, in_core.modeled.total(),
        static_cast<double>(r_raw.in_core_bytes) / (1 << 20),
        r_raw.modeled_seconds,
        static_cast<double>(r_raw.streamed_bytes) / (1 << 20),
        r_rle.modeled_seconds,
        static_cast<double>(r_rle.streamed_bytes) / (1 << 20), r_rle.n_chunks,
        r_raw.overlap_ratio, r_rle.overlap_ratio);
  }
  std::printf("(streaming pays PCI-e traffic ~ entries x depth x trees; "
              "RLE chunk shipping recovers most of it on repetitive data "
              "while the forest stays identical; ovl is the fraction of "
              "busy seconds the upload stream hides behind compute)\n");
  return 0;
}
