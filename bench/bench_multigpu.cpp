// Multi-GPU scaling (the paper's Section VI future work: "our algorithm is
// naturally applicable to multiple GPUs"): trains the dataset analogs on
// 1/2/4/8 simulated Titan X boards and reports the modeled end-to-end time,
// the communication share, the comm/compute overlap, and the speedup over
// one device.
//
// Three sweeps per dataset:
//  * data-parallel sharding x {alltoone, ring, tree} collectives — the ring
//    schedule must beat the legacy all-to-one at K >= 4 (mgpu_smoke gates
//    this via the GBDT_ALLTOONE=1 hatch re-run and gbdt_bench --compare);
//    the ring rows also record an NVLink-interconnect column;
//  * feature-parallel sharding (ring) — each shard owns a contiguous
//    column range, trading the node-sync broadcast for per-shard column
//    locality;
//  * the histogram trainer on K shards (ring histogram-allreduce) — the
//    QGH histograms are merged with the same collective machinery.
#include "bench_common.h"
#include "multigpu/multi_trainer.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/10);
  print_header("Multi-GPU scaling (future work of paper Section VI)", opt);
  BenchJson sink("multigpu", opt);

  const auto algo_of = [](const char* name) {
    multigpu::AllreduceAlgo a = multigpu::AllreduceAlgo::kRing;
    (void)multigpu::parse_allreduce_algo(name, a);
    return a;
  };

  for (const char* name : {"news20", "higgs"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    GBDTParam p = paper_param(opt);
    p.use_rle = false;
    std::printf("%s (%lld x %lld):\n", name,
                static_cast<long long>(ds.n_instances()),
                static_cast<long long>(ds.n_attributes()));

    // One case: train, record the comm metrics, print one table row.
    const auto run_case = [&](const std::string& case_name,
                              const GBDTParam& param,
                              multigpu::MultiGpuOptions mo, int k,
                              double base, bool with_nvlink) {
      BenchCase c(sink, case_name);
      multigpu::MultiGpuTrainer pcie(device::DeviceConfig::titan_x_pascal(),
                                     k, param, multigpu::Interconnect::pcie3(),
                                     mo);
      multigpu::MultiTrainReport rp;
      try {
        rp = pcie.train(ds);
      } catch (const std::exception& e) {
        c.skip();
        std::printf("  %-8s %8s %4d  skipped: %s\n",
                    multigpu::shard_mode_name(mo.shard),
                    multigpu::allreduce_algo_name(mo.algo), k, e.what());
        return 0.0;
      }
      c.metric("modeled_seconds", rp.modeled_seconds);
      c.metric("comm_seconds", rp.comm_seconds);
      c.metric("allreduce_seconds", rp.allreduce_seconds);
      c.metric("comm_bytes", static_cast<double>(rp.comm_bytes));
      c.metric("comm_messages", static_cast<double>(rp.comm_messages));
      c.metric("comm_overlap_ratio", rp.comm_overlap_ratio);
      double nv_secs = 0.0;
      if (with_nvlink) {
        multigpu::MultiGpuTrainer nv(device::DeviceConfig::titan_x_pascal(),
                                     k, param,
                                     multigpu::Interconnect::nvlink(), mo);
        nv_secs = nv.train(ds).modeled_seconds;
        c.metric("nvlink_seconds", nv_secs);
      }
      std::printf("  %-8s %8s %4d %12.4f %11.1f%% %9.0f%% %10.2f",
                  multigpu::shard_mode_name(mo.shard),
                  multigpu::allreduce_algo_name(mo.algo), k,
                  rp.modeled_seconds,
                  100.0 * rp.comm_seconds / rp.modeled_seconds,
                  100.0 * rp.comm_overlap_ratio,
                  base > 0.0 ? base / rp.modeled_seconds : 1.0);
      if (with_nvlink) {
        std::printf(" | %12.4f %10.2f", nv_secs,
                    base > 0.0 ? base / nv_secs : 1.0);
      }
      std::printf("\n");
      return rp.modeled_seconds;
    };

    std::printf("  %-8s %8s %4s %12s %12s %10s %10s | %12s %10s\n", "shard",
                "algo", "GPUs", "pcie(s)", "comm-share", "overlap", "speedup",
                "nvlink(s)", "speedup");

    // Data-parallel sharding, collective-algorithm sweep.  A single shard
    // has no collective, so K=1 is one row (the speedup baseline).
    const double base = run_case(std::string(name) + "_data_ring_gpus1", p,
                                 multigpu::MultiGpuOptions{}, 1, 0.0, true);
    for (int k : {2, 4, 8}) {
      for (const char* algo : {"alltoone", "ring", "tree"}) {
        multigpu::MultiGpuOptions mo;
        mo.algo = algo_of(algo);
        const std::string cn =
            std::string(name) + "_data_" + algo + "_gpus" + std::to_string(k);
        run_case(cn, p, mo, k, base, std::string(algo) == "ring");
      }
    }

    // Feature-parallel sharding (ring).
    for (int k : {2, 4, 8}) {
      multigpu::MultiGpuOptions mo;
      mo.shard = multigpu::ShardMode::kFeature;
      run_case(std::string(name) + "_feature_ring_gpus" + std::to_string(k),
               p, mo, k, base, false);
    }

    // Histogram-allreduce mode (data shards, ring).
    std::printf("  histogram-allreduce mode:\n");
    GBDTParam ph = p;
    ph.use_hist_trainer = true;
    for (int k : {2, 4}) {
      run_case(std::string(name) + "_hist_ring_gpus" + std::to_string(k), ph,
               multigpu::MultiGpuOptions{}, k, 0.0, false);
    }
  }
  std::printf(
      "(ring spreads 2(K-1) chunk legs across every shard's comm stream vs "
      "2(K-1) full payloads serialised on shard 0 for all-to-one; scaling "
      "stays sublinear: per-instance work and node sync replicate)\n");
  return 0;
}
