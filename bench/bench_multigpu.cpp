// Multi-GPU scaling (the paper's Section VI future work: "our algorithm is
// naturally applicable to multiple GPUs"): trains the dataset analogs on
// 1/2/4/8 simulated Titan X boards with attribute sharding and reports the
// modeled end-to-end time, the communication share, and the speedup over
// one device — over both a PCI-e switch and an NVLink-style interconnect.
#include "bench_common.h"
#include "multigpu/multi_trainer.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/10);
  print_header("Multi-GPU scaling (future work of paper Section VI)", opt);
  BenchJson sink("multigpu", opt);

  for (const char* name : {"news20", "higgs"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    GBDTParam p = paper_param(opt);
    p.use_rle = false;
    std::printf("%s (%lld x %lld):\n", name,
                static_cast<long long>(ds.n_instances()),
                static_cast<long long>(ds.n_attributes()));
    std::printf("  %4s %12s %12s %10s | %12s %10s\n", "GPUs", "pcie(s)",
                "comm-share", "speedup", "nvlink(s)", "speedup");
    double base = 0.0;
    for (int k : {1, 2, 4, 8}) {
      BenchCase c(sink, std::string(name) + "_gpus" + std::to_string(k));
      multigpu::MultiGpuTrainer pcie(device::DeviceConfig::titan_x_pascal(),
                                     k, p, multigpu::Interconnect::pcie3());
      const auto rp = pcie.train(ds);
      multigpu::MultiGpuTrainer nv(device::DeviceConfig::titan_x_pascal(), k,
                                   p, multigpu::Interconnect::nvlink());
      const auto rn = nv.train(ds);
      if (k == 1) base = rp.modeled_seconds;
      c.metric("modeled_seconds", rp.modeled_seconds);
      c.metric("comm_seconds", rp.comm_seconds);
      c.metric("nvlink_seconds", rn.modeled_seconds);
      std::printf("  %4d %12.4f %11.1f%% %10.2f | %12.4f %10.2f\n", k,
                  rp.modeled_seconds,
                  100.0 * rp.comm_seconds / rp.modeled_seconds,
                  base / rp.modeled_seconds, rn.modeled_seconds,
                  base / rn.modeled_seconds);
    }
  }
  std::printf("(attribute-parallel scaling is sublinear: per-instance work "
              "and the instance->node synchronisation replicate)\n");
  return 0;
}
