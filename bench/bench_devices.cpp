// Reproduces the Section IV remark "We have also tested GPU-GBDT on Tesla
// P100 and K20, and the speedup is almost sublinear in the number of cores
// of the GPUs": trains the same workload on the three device presets and
// reports modeled time against core count and bandwidth.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/10);
  print_header("Section IV footnote — device scaling (K20 / Titan X / P100)",
               opt);
  BenchJson sink("devices", opt);

  const std::vector<device::DeviceConfig> devices{
      device::DeviceConfig::tesla_k20(),
      device::DeviceConfig::titan_x_pascal(),
      device::DeviceConfig::tesla_p100(),
  };

  for (const char* name : {"covtype", "susy"}) {
    const auto info = data::paper_dataset(name, opt.scale);
    const auto ds = data::generate(info.spec);
    const auto param = paper_param(opt);
    std::printf("%s:\n", name);
    std::printf("  %-14s %7s %8s %10s %10s\n", "device", "cores", "GB/s",
                "time(s)", "rel-speed");
    double k20_time = 0.0;
    for (const auto& cfg : devices) {
      BenchCase c(sink, std::string(name) + "_" + cfg.name);
      device::Device dev(cfg);
      GpuGbdtTrainer trainer(dev, param);
      const auto r = trainer.train(ds);
      if (k20_time == 0.0) k20_time = r.modeled.total();
      c.metric("modeled_seconds", r.modeled.total());
      std::printf("  %-14s %7d %8.0f %10.4f %10.2f\n", cfg.name.c_str(),
                  cfg.num_sms * cfg.cores_per_sm, cfg.mem_bandwidth_gbps,
                  r.modeled.total(), k20_time / r.modeled.total());
    }
  }
  std::printf("(speedup tracks memory bandwidth / core count sublinearly, "
              "matching the paper's remark)\n");
  return 0;
}
