// Reproduces Figure 10b: test error under a training-time budget on susy.
// Both trainers build the same forest (the trees are identical — Table II),
// but GPU-GBDT finishes each tree faster, so for any budget it has more
// trees available and a lower test error.
//
// The error-after-k-trees curve is computed by incremental prediction over
// the held-out split; the budget axis uses each system's modeled seconds,
// distributed uniformly across trees (per-tree cost is constant, Fig 8b).
#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.3, /*trees=*/80);
  print_header("Figure 10b — test error given a time budget (susy)", opt);

  const auto info = data::paper_dataset("susy", opt.scale);
  const auto full = data::generate(info.spec);
  const auto [train, test] = full.split_at(full.n_instances() * 4 / 5);

  BenchJson sink("fig10b", opt);
  BenchCase c(sink, "susy_budget");
  GBDTParam param = paper_param(opt);
  param.loss = LossKind::kLogistic;
  const auto gpu = run_gpu(train, param);
  const auto cpu = run_cpu(train, param);
  const double gpu_total = gpu.modeled.total();
  const double cpu40_total = cpu.modeled_seconds(cpu_config(), 40);
  const int n_trees = static_cast<int>(gpu.trees.size());
  c.metric("modeled_seconds", gpu_total);
  c.metric("cpu40_seconds", cpu40_total);
  c.close();

  // Incremental test scores after each tree (forests are identical; compute
  // the error curve once from the GPU forest).
  std::vector<double> score(static_cast<std::size_t>(test.n_instances()),
                            param.base_score);
  std::vector<double> err_after(static_cast<std::size_t>(n_trees) + 1);
  auto error_now = [&]() {
    std::size_t wrong = 0;
    for (std::int64_t i = 0; i < test.n_instances(); ++i) {
      const double p =
          1.0 / (1.0 + std::exp(-score[static_cast<std::size_t>(i)]));
      wrong += (p >= 0.5) !=
               (test.labels()[static_cast<std::size_t>(i)] >= 0.5f);
    }
    return static_cast<double>(wrong) /
           static_cast<double>(test.n_instances());
  };
  err_after[0] = error_now();
  std::vector<std::int32_t> attrs;
  std::vector<float> vals;
  for (int t = 0; t < n_trees; ++t) {
    for (std::int64_t i = 0; i < test.n_instances(); ++i) {
      const auto row = test.instance(i);
      attrs.resize(row.size());
      vals.resize(row.size());
      for (std::size_t k = 0; k < row.size(); ++k) {
        attrs[k] = row[k].attr;
        vals[k] = row[k].value;
      }
      score[static_cast<std::size_t>(i)] += gpu.trees[static_cast<std::size_t>(t)].predict(
          attrs.data(), vals.data(), static_cast<std::int64_t>(row.size()));
    }
    err_after[static_cast<std::size_t>(t) + 1] = error_now();
  }

  // For a budget b, a system with per-tree time c has floor(b/c) trees.
  std::printf("%12s %14s %14s\n", "budget(s)", "GPU-GBDT err", "xgbst-40 err");
  const double gpu_per_tree = gpu_total / n_trees;
  const double cpu_per_tree = cpu40_total / n_trees;
  for (int step = 1; step <= 10; ++step) {
    const double budget = cpu40_total * step / 10.0;
    const int gpu_trees =
        std::min<int>(n_trees, static_cast<int>(budget / gpu_per_tree));
    const int cpu_trees =
        std::min<int>(n_trees, static_cast<int>(budget / cpu_per_tree));
    std::printf("%12.4f %14.4f %14.4f\n", budget,
                err_after[static_cast<std::size_t>(gpu_trees)],
                err_after[static_cast<std::size_t>(cpu_trees)]);
  }
  std::printf("(paper: for the same budget GPU-GBDT reaches clearly lower "
              "test error than XGBoost)\n");
  return 0;
}
