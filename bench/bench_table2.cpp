// Reproduces Table II: overall comparison of GPU-GBDT against sequential
// XGBoost (xgbst-1), 40-thread XGBoost (xgbst-40) and the dense GPU plugin
// (xgbst-gpu) on the eight dataset analogs — execution time, speedups, RMSE
// equality, xgbst-gpu failures, and the find-split time share from Section
// IV-A.
//
// The xgbst-gpu column runs behaviourally on the analogs that fit, with its
// memory gate evaluated at the *real* dataset shapes (that is what OOMs on
// the 12 GB Titan X in the paper).  Its tree count is capped and
// extrapolated linearly (tree cost is constant per tree, Figure 8b).
#include <algorithm>
#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt = Options::parse(argc, argv, /*default_scale=*/0.4);
  print_header("Table II — overall comparison vs XGBoost", opt);
  BenchJson sink("table2", opt);

  std::printf("%-10s %9s %8s | %8s %8s %8s %-14s | %6s %6s | %7s %7s %9s | %5s\n",
              "dataset", "card", "dim", "ours(s)", "xgb-1(s)", "xgb-40(s)",
              "xgb-gpu", "vs-1", "vs-40", "rmse", "rmse40", "rmse-gpu",
              "paper");
  double find_frac_ours = 0.0, find_frac_cpu = 0.0;
  int counted = 0;

  for (const auto& info : data::paper_datasets(opt.scale)) {
    const auto ds = data::generate(info.spec);
    const auto param = paper_param(opt);

    BenchCase c(sink, info.paper_name);
    const auto gpu = run_gpu(ds, param);
    const auto cpu = run_cpu(ds, param);
    const double ours_s = gpu.modeled.total();
    const double cpu1_s = cpu.modeled_seconds(cpu_config(), 1);
    const double cpu40_s = cpu.modeled_seconds(cpu_config(), 40);

    const double rmse_ours = rmse(gpu.train_scores, ds.labels());
    const double rmse_cpu = rmse(cpu.train_scores, ds.labels());

    // xgbst-gpu: gate on the real shape.  Small dense workloads run the full
    // tree count (comparable RMSE); large ones run tree-capped and
    // extrapolate the time (per-tree cost is constant, Figure 8b) with the
    // RMSE marked as from fewer trees.
    GBDTParam dense_param = param;
    const std::size_t dense_cells =
        static_cast<std::size_t>(ds.n_instances()) *
        static_cast<std::size_t>(ds.n_attributes());
    const bool capped = dense_cells > 600'000;
    if (capped) dense_param.n_trees = std::min(param.n_trees, 5);
    const auto dense = baseline::train_xgb_gpu_dense(
        device::DeviceConfig::titan_x_pascal(), ds, dense_param,
        info.paper_cardinality, info.paper_dimension);
    char dense_col[32];
    double rmse_dense = std::nan("");
    if (dense.oom) {
      std::snprintf(dense_col, sizeof dense_col, "OOM(%zuGB)",
                    dense.required_bytes >> 30);
    } else {
      const double dense_s = dense.report.modeled.total() *
                             static_cast<double>(param.n_trees) /
                             dense_param.n_trees;
      std::snprintf(dense_col, sizeof dense_col, "%.3f%s", dense_s,
                    capped ? "*" : "");
      rmse_dense = rmse(dense.report.train_scores, ds.labels());
    }

    std::printf("%-10s %9lld %8lld | %8.3f %8.3f %8.3f %-14s | %6.1f %6.2f "
                "| %7.4f %7.4f %9s | %5.2f\n",
                info.paper_name.c_str(),
                static_cast<long long>(ds.n_instances()),
                static_cast<long long>(ds.n_attributes()), ours_s, cpu1_s,
                cpu40_s, dense_col, cpu1_s / ours_s, cpu40_s / ours_s,
                rmse_ours, rmse_cpu,
                std::isnan(rmse_dense)
                    ? "-"
                    : std::to_string(rmse_dense).substr(0, 6).c_str(),
                info.paper_speedup_over_xgb40);

    find_frac_ours += gpu.modeled.find_split / gpu.modeled.total();
    find_frac_cpu += cpu.find_split_fraction(cpu_config());
    ++counted;

    c.metric("modeled_seconds", ours_s);
    c.metric("cpu1_seconds", cpu1_s);
    c.metric("cpu40_seconds", cpu40_s);
    c.metric("rmse", rmse_ours);
  }

  std::printf("----------------------------------------------------------------\n");
  std::printf("'paper' column: Table II speedup over xgbst-40 where legible "
              "(0 = not legible).\n");
  std::printf("'*': xgbst-gpu time extrapolated from %d trees "
              "(linear in trees, cf. Fig 8b).\n",
              std::min(opt.trees, 5));
  std::printf("rmse == rmse40 on every row reproduces 'GPU-GBDT produces "
              "exactly the same RMSE as XGBoost'.\n");
  std::printf("find-split share of training: ours %.0f%%, xgboost %.0f%% "
              "(paper: ~95%% / ~75%%)\n",
              100.0 * find_frac_ours / counted,
              100.0 * find_frac_cpu / counted);
  return 0;
}
