// Reproduces Figure 8a: speedup of GPU-GBDT over xgbst-40 as the tree depth
// varies from 2 to 8 (paper: best at depth 2, then roughly stable).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gbdt;
  using namespace gbdt::bench;
  const auto opt =
      Options::parse(argc, argv, /*default_scale=*/0.25, /*trees=*/10);
  print_header("Figure 8a — speedup over xgbst-40 vs tree depth", opt);
  BenchJson sink("fig8a", opt);

  const std::vector<std::string> names{"covtype", "higgs", "news20", "susy"};
  std::printf("%-6s", "depth");
  for (const auto& n : names) std::printf(" %9s", n.c_str());
  std::printf("\n");

  for (int depth = 2; depth <= 8; ++depth) {
    std::printf("%-6d", depth);
    for (const auto& name : names) {
      const auto info = data::paper_dataset(name, opt.scale);
      const auto ds = data::generate(info.spec);
      GBDTParam p = paper_param(opt);
      p.depth = depth;
      BenchCase c(sink, name + "_depth" + std::to_string(depth));
      const auto gpu = run_gpu(ds, p);
      const auto cpu = run_cpu(ds, p);
      const double speedup =
          cpu.modeled_seconds(cpu_config(), 40) / gpu.modeled.total();
      c.metric("modeled_seconds", gpu.modeled.total());
      c.metric("speedup_over_xgb40", speedup);
      std::printf(" %9.2f", speedup);
    }
    std::printf("\n");
  }
  std::printf("(paper: speedup peaks at depth 2 and stays roughly stable "
              "afterwards)\n");
  return 0;
}
